//! er-lint fixture: `panic` must fire on `unwrap()`/`expect(`/`panic!`
//! in library code and stay silent in tests, debug validators, and on
//! allowed lines.
//!
//! NOT a compiled target — parsed only by the lint engine's tests.

pub fn hard_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // fires
}

pub fn hard_expect(x: Option<u32>) -> u32 {
    x.expect("must be present") // fires
}

pub fn bail(cond: bool) {
    if cond {
        panic!("unrecoverable"); // fires
    }
}

pub fn fallback(x: Option<u32>) -> u32 {
    x.unwrap_or(0) // silent: different method
}

pub fn justified(len: usize) -> usize {
    // er-lint: allow(panic) -- fixture invariant: len is validated at construction
    len.checked_add(1).unwrap()
}

#[cfg(debug_assertions)]
pub fn debug_validator(ok: bool) {
    if !ok {
        panic!("invariant violated"); // silent: debug-gated
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1); // silent: test-gated
    }
}
