//! er-lint fixture: malformed directives are hard errors — a typo'd
//! allow must never silently disable a rule.
//!
//! NOT a compiled target — parsed only by the lint engine's tests.

pub fn reasonless(x: Option<u32>) -> u32 {
    x.unwrap() // er-lint: allow(panic)
}

pub fn unknown_rule(x: Option<u32>) -> u32 {
    x.unwrap() // er-lint: allow(no_such_rule) -- because
}

// er-lint: zero-alloc
pub static DANGLING: usize = 0;

pub fn typoed() {
    // er-lint: frobnicate
}
