//! er-lint fixture: `dispatch` must fire on pooled calls that are not
//! under a `pool.dispatch(…)` decision in the same fn.
//!
//! NOT a compiled target — parsed only by the lint engine's tests.

pub fn undecided(pool: &Pool, pairs: &[u32]) {
    pool.scope(|s| s.run(pairs)); // fires (no dispatch in this fn)
    pool.for_each_range(pairs.len(), 64, |_r| {}); // fires
}

pub fn undecided_scoring(scorer: &Scorer, pool: &Pool) -> Vec<f64> {
    scorer.score_pairs_pooled(pool) // fires
}

pub fn decided(pool: &Pool, pairs: &[u32]) {
    if pool.dispatch(pairs.len()).is_parallel() {
        pool.scope(|s| s.run(pairs)); // silent: dispatched above
    }
}

pub fn decided_scoring(scorer: &Scorer, pool: &Pool, work: usize) -> Vec<f64> {
    let _mode = pool.dispatch(work);
    scorer.score_pairs_pooled(pool) // silent: dispatched above
}

pub fn delegated(pool: &Pool, pairs: &[u32]) {
    // er-lint: allow(dispatch) -- decided in fixture caller `decided`
    pool.scope(|s| s.run(pairs));
}
