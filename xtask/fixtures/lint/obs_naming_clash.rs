//! er-lint fixture: cross-file half of the `obs_naming` uniqueness
//! check — `fixture.phase` is first registered by `obs_naming.rs`
//! (lexicographically first), so re-registering it here fires unless
//! allowed.
//!
//! NOT a compiled target — parsed only by the lint engine's tests.

pub fn emit_elsewhere() {
    let _s = er_obs::span("fixture.phase"); // fires (registered by obs_naming.rs)
    // er-lint: allow(obs_naming) -- deliberately shared phase name with obs_naming.rs
    let _t = er_obs::span("fixture.phase"); // allowed
    let _u = er_obs::span("fixture.clash_free"); // silent: unique
}
