//! er-lint fixture: `unordered_iteration` must fire on every
//! order-exposing HashMap/HashSet use and stay silent on order-free
//! operations, Vec iteration, and allowed lines.
//!
//! NOT a compiled target — parsed only by the lint engine's tests,
//! which assert the exact (rule, line) set below.

use std::collections::{HashMap, HashSet};

pub fn iterate(map: &HashMap<u32, f64>, set: &HashSet<u32>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in map.iter() {
        // fires (`.iter()` on map)
        total += v;
    }
    for x in set {
        // fires (direct `for … in set`)
        total += f64::from(*x);
    }
    total
}

pub fn methods(map: &mut HashMap<u32, f64>) -> usize {
    let names = map.keys().count(); // fires (`.keys()`)
    let _ = map.values().count(); // fires (`.values()`)
    map.drain(); // fires (`.drain()`)
    names
}

pub fn bound_by_ctor() -> usize {
    let mut seen = HashSet::new();
    seen.insert(3_u32);
    seen.iter().count() // fires (ctor-bound binding)
}

pub fn order_free(map: &HashMap<u32, f64>, items: &[u32]) -> f64 {
    let mut total = 0.0;
    for k in items {
        // Vec/slice iteration is ordered: silent.
        total += map.get(k).copied().unwrap_or(0.0); // lookups are order-free: silent
    }
    total + map.len() as f64
}

pub fn justified(map: &HashMap<u32, f64>) -> f64 {
    // er-lint: allow(unordered_iteration) -- commutative sum, order cannot leak
    map.values().sum()
}
