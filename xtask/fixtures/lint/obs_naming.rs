//! er-lint fixture: `obs_naming` must fire on malformed er-obs name
//! literals and accept dotted.snake_case; same-file re-emission of one
//! name is fine. Cross-file uniqueness pairs this file with
//! `obs_naming_clash.rs`.
//!
//! NOT a compiled target — parsed only by the lint engine's tests.

pub fn emit() {
    let _g = er_obs::span("BadCamel"); // fires (uppercase)
    er_obs::counter_add("kebab-case.name", 1); // fires (dash)
    er_obs::gauge_set("trailing.", 0.0); // fires (empty segment)
    let _s = er_obs::span("fixture.phase"); // silent: well-formed
    let _s2 = er_obs::span("fixture.phase"); // silent: same-file re-emission
    er_obs::counter_add("fixture.events_total", 1); // silent
}
