//! er-lint fixture: `zero_alloc` must fire on every allocating
//! construct inside a `// er-lint: zero-alloc` fn, and nowhere else.
//!
//! NOT a compiled target — parsed only by the lint engine's tests.

// er-lint: zero-alloc
#[inline]
pub fn marked_kernel(dst: &mut [f64], src: &[f64]) -> f64 {
    let tmp = vec![0.0; 4]; // fires (`vec![…]`)
    let copy = src.to_vec(); // fires (`.to_vec()`)
    let gathered: Vec<f64> = src.iter().copied().collect(); // fires (`.collect()`)
    let boxed = Box::new(1.0); // fires (`Box::new`)
    let grown = Vec::with_capacity(8); // fires (`Vec::with_capacity`)
    let name = String::from("kernel"); // fires (`String::from`)
    let label = format!("{name}"); // fires (`format!`)
    dst[0] = tmp[0] + copy[0] + gathered[0] + *boxed;
    let _ = (grown, label);
    // er-lint: allow(zero_alloc) -- cold error path, never at steady state
    let cold = "err".to_string();
    dst[0] + cold.len() as f64
}

pub fn unmarked_setup() -> Vec<f64> {
    // Unmarked fns may allocate freely: silent.
    let mut buf = Vec::new();
    buf.push(1.0);
    buf
}
