//! `cargo xtask bench-diff` — the CI bench-regression gate.
//!
//! Compares two `er-obs/v1` [`BenchFile`]s (e.g. the `BENCH_fusion.json`
//! artifact from the last main-branch run vs the one this PR produced).
//! Runs are matched by their `(label, dataset, mode, threads)` identity;
//! within each matched pair, every **top-level** span (no `/` in the
//! path — the phase roots, not their children) present in both reports
//! is compared by total wall time.
//!
//! A span is a regression when BOTH hold:
//!
//! * `current > baseline × (1 + tolerance)` — the relative gate
//!   (default 20 %), and
//! * `current − baseline ≥ min_seconds` — the absolute floor (default
//!   50 ms), which keeps micro-spans whose noise dwarfs their runtime
//!   from flapping the gate.
//!
//! Spans whose baseline is below `min_seconds` are skipped outright for
//! the same reason. Runs present on only one side are reported but never
//! fail the gate (benchmarks come and go across revisions); a *missing
//! baseline file* is a clean success with a warning, so the first run on
//! a fresh branch — or a fork without artifact access — passes.

use std::fmt::Write as _;
use std::path::Path;

use er_obs::{BenchFile, BenchRun, SpanStat};

/// Gate thresholds (see module docs for the exact predicate).
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative slowdown allowed before a span regresses (0.2 = 20 %).
    pub tolerance: f64,
    /// Absolute floor: baselines below this are skipped, and a slowdown
    /// must exceed it to count.
    pub min_seconds: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            tolerance: 0.2,
            min_seconds: 0.05,
        }
    }
}

/// One compared top-level span.
#[derive(Debug)]
pub struct SpanDelta {
    /// `label/dataset/mode/tN` — the run identity.
    pub run: String,
    /// Top-level span path within the run's report.
    pub path: String,
    pub baseline_s: f64,
    pub current_s: f64,
    /// `current / baseline` (baseline clamped away from zero).
    pub ratio: f64,
    pub regressed: bool,
    /// Baseline under `min_seconds`: compared for the table, never gated.
    pub skipped: bool,
}

/// Everything `bench-diff` derives from one baseline/current pair.
#[derive(Debug, Default)]
pub struct DiffOutcome {
    pub rows: Vec<SpanDelta>,
    /// Run identities present in current but not baseline (informational).
    pub new_runs: Vec<String>,
    /// Run identities present in baseline but not current (informational).
    pub dropped_runs: Vec<String>,
}

impl DiffOutcome {
    pub fn regressions(&self) -> impl Iterator<Item = &SpanDelta> {
        self.rows.iter().filter(|r| r.regressed)
    }
}

fn run_key(run: &BenchRun) -> String {
    format!(
        "{}/{}/{}/t{}",
        run.label, run.dataset, run.mode, run.threads
    )
}

/// One checked `tN` vs `t1` comparison from the scaling gate.
#[derive(Debug)]
pub struct ScalingRow {
    /// `label/dataset/mode/tN` — the multi-threaded run's identity.
    pub run: String,
    /// Top-level span compared, or `(scaling_ratio)` when the ratio was
    /// emitted by the harness rather than derived from matched spans.
    pub path: String,
    pub t1_s: f64,
    pub tn_s: f64,
    /// `tN / t1`: above 1.0 means threads made the run slower.
    pub ratio: f64,
    /// `ratio > 1 + tolerance` with both sides above the floor.
    pub inverted: bool,
    /// Both times under `min_seconds`: reported, never gated.
    pub skipped: bool,
}

/// Longest top-level span of a run, in seconds (the run's wall time).
fn longest_top_span(run: &BenchRun) -> f64 {
    run.report
        .spans
        .iter()
        .filter(|s| s.is_top_level())
        .map(SpanStat::total_seconds)
        .fold(0.0, f64::max)
}

/// The `--gate-scaling` check: every multi-threaded run in `current`
/// must not be slower than its 1-thread counterpart beyond tolerance.
///
/// Runs carrying an emitted `scaling_ratio` (the bench harness computes
/// `tN/t1` on the top-level span at write time) are gated on that value
/// directly. Runs without one are matched to the `threads = 1` run of
/// the same `(label, dataset, mode)` and every shared top-level span is
/// compared. Comparisons where both sides sit under `min_seconds` are
/// reported but never gated — timer noise dominates down there. Only
/// `current` is consulted: a scaling inversion is a property of one
/// revision, not a drift between two.
pub fn check_scaling(current: &BenchFile, opts: DiffOptions) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for run in &current.runs {
        if run.threads <= 1 {
            continue;
        }
        let key = run_key(run);
        if let Some(ratio) = run.scaling_ratio {
            let tn_s = longest_top_span(run);
            let t1_s = if ratio > 0.0 { tn_s / ratio } else { 0.0 };
            let skipped = tn_s.max(t1_s) < opts.min_seconds;
            rows.push(ScalingRow {
                run: key,
                path: "(scaling_ratio)".to_owned(),
                t1_s,
                tn_s,
                ratio,
                inverted: !skipped && ratio > 1.0 + opts.tolerance,
                skipped,
            });
            continue;
        }
        let Some(t1) = current.find(&run.label, &run.dataset, &run.mode, 1) else {
            continue;
        };
        for span in run.report.spans.iter().filter(|s| s.is_top_level()) {
            let Some(base) = t1.report.span(&span.path) else {
                continue;
            };
            let (t1_s, tn_s) = (base.total_seconds(), span.total_seconds());
            let ratio = tn_s / t1_s.max(1e-12);
            let skipped = tn_s.max(t1_s) < opts.min_seconds;
            rows.push(ScalingRow {
                run: key.clone(),
                path: span.path.clone(),
                t1_s,
                tn_s,
                ratio,
                inverted: !skipped && ratio > 1.0 + opts.tolerance,
                skipped,
            });
        }
    }
    rows
}

/// Renders the scaling-gate rows as a markdown section.
pub fn render_scaling_markdown(rows: &[ScalingRow], opts: DiffOptions) -> String {
    let mut md = String::new();
    let n_inverted = rows.iter().filter(|r| r.inverted).count();
    let verdict = if n_inverted == 0 {
        "✅ no inversions".to_owned()
    } else {
        format!("❌ {n_inverted} inversion(s)")
    };
    let _ = writeln!(
        md,
        "## Parallel-scaling gate — {verdict}\n\n\
         tN/t1 must stay ≤ {:.2}; pairs under the {:.0} ms floor are \
         informational. {} comparison(s).\n",
        1.0 + opts.tolerance,
        opts.min_seconds * 1000.0,
        rows.len()
    );
    if !rows.is_empty() {
        md.push_str("| run | span | t1 | tN | tN/t1 | |\n");
        md.push_str("|---|---|---:|---:|---:|---|\n");
        for row in rows {
            let mark = if row.inverted {
                "❌ inverted"
            } else if row.skipped {
                "— below floor"
            } else {
                ""
            };
            let _ = writeln!(
                md,
                "| {} | {} | {:.3}s | {:.3}s | {:.2}x | {mark} |",
                row.run, row.path, row.t1_s, row.tn_s, row.ratio
            );
        }
    }
    md
}

/// Compares every matched run's top-level spans. Pure function of the two
/// files; the CLI wrapper below handles I/O and exit codes.
pub fn diff(baseline: &BenchFile, current: &BenchFile, opts: DiffOptions) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    let base_keys: Vec<String> = baseline.runs.iter().map(run_key).collect();
    let cur_keys: Vec<String> = current.runs.iter().map(run_key).collect();
    for (run, key) in current.runs.iter().zip(&cur_keys) {
        let Some(base_idx) = base_keys.iter().position(|k| k == key) else {
            out.new_runs.push(key.clone());
            continue;
        };
        let base_run = &baseline.runs[base_idx];
        for span in run.report.spans.iter().filter(|s| s.is_top_level()) {
            let Some(base_span) = base_run.report.span(&span.path) else {
                continue;
            };
            let (base_s, cur_s) = (base_span.total_seconds(), span.total_seconds());
            let skipped = base_s < opts.min_seconds;
            let regressed = !skipped
                && cur_s > base_s * (1.0 + opts.tolerance)
                && cur_s - base_s >= opts.min_seconds;
            out.rows.push(SpanDelta {
                run: key.clone(),
                path: span.path.clone(),
                baseline_s: base_s,
                current_s: cur_s,
                ratio: cur_s / base_s.max(1e-12),
                regressed,
                skipped,
            });
        }
    }
    for key in base_keys {
        if !cur_keys.contains(&key) {
            out.dropped_runs.push(key);
        }
    }
    out
}

/// Renders the outcome as a GitHub-flavored markdown job summary.
pub fn render_markdown(outcome: &DiffOutcome, opts: DiffOptions) -> String {
    let mut md = String::new();
    let n_regressed = outcome.regressions().count();
    let verdict = if n_regressed == 0 {
        "✅ no regressions".to_owned()
    } else {
        format!("❌ {n_regressed} regression(s)")
    };
    let _ = writeln!(
        md,
        "## Bench regression gate — {verdict}\n\n\
         Tolerance {:.0}% relative, {:.0} ms absolute floor. \
         {} span(s) compared.\n",
        opts.tolerance * 100.0,
        opts.min_seconds * 1000.0,
        outcome.rows.len()
    );
    if !outcome.rows.is_empty() {
        md.push_str("| run | span | baseline | current | ratio | |\n");
        md.push_str("|---|---|---:|---:|---:|---|\n");
        for row in &outcome.rows {
            let mark = if row.regressed {
                "❌ regressed"
            } else if row.skipped {
                "— below floor"
            } else {
                ""
            };
            let _ = writeln!(
                md,
                "| {} | {} | {:.3}s | {:.3}s | {:.2}x | {mark} |",
                row.run, row.path, row.baseline_s, row.current_s, row.ratio
            );
        }
    }
    for (title, keys) in [
        ("New runs (no baseline)", &outcome.new_runs),
        ("Dropped runs (baseline only)", &outcome.dropped_runs),
    ] {
        if !keys.is_empty() {
            let _ = writeln!(md, "\n**{title}:** {}", keys.join(", "));
        }
    }
    md
}

/// Parses `--tolerance` values: `20%` → 0.2, `0.2` → 0.2.
pub fn parse_tolerance(text: &str) -> Result<f64, String> {
    let (body, scale) = match text.strip_suffix('%') {
        Some(pct) => (pct, 0.01),
        None => (text, 1.0),
    };
    let v: f64 = body
        .trim()
        .parse()
        .map_err(|_| format!("invalid tolerance {text:?} (expected e.g. `20%` or `0.2`)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!(
            "tolerance {text:?} must be a finite non-negative value"
        ));
    }
    Ok(v * scale)
}

/// The `cargo xtask bench-diff` entry point. Arguments:
/// `--baseline <path> --current <path> [--tolerance 20%]
/// [--min-seconds 0.05] [--summary-out <path>] [--gate-scaling]`.
///
/// The baseline/current regression diff passes with a warning when the
/// baseline file is missing (first run on a branch). `--gate-scaling`
/// additionally checks the *current* file for parallel-scaling
/// inversions (`tN/t1 > 1 + tolerance`); that gate needs no baseline,
/// so it runs — and can fail — even when the regression diff was
/// skipped.
pub fn cli(args: &[String]) -> Result<(), String> {
    let mut baseline_path = None;
    let mut current_path = None;
    let mut opts = DiffOptions::default();
    let mut summary_out: Option<String> = None;
    let mut gate_scaling = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline_path = Some(value("--baseline")?),
            "--current" => current_path = Some(value("--current")?),
            "--tolerance" => opts.tolerance = parse_tolerance(&value("--tolerance")?)?,
            "--min-seconds" => {
                opts.min_seconds = value("--min-seconds")?
                    .parse()
                    .map_err(|e| format!("invalid --min-seconds: {e}"))?;
            }
            "--summary-out" => summary_out = Some(value("--summary-out")?),
            "--gate-scaling" => gate_scaling = true,
            other => return Err(format!("unknown bench-diff argument `{other}`")),
        }
    }
    let baseline_path = baseline_path.ok_or("bench-diff requires --baseline <path>")?;
    let current_path = current_path.ok_or("bench-diff requires --current <path>")?;

    let baseline_exists = Path::new(&baseline_path).exists();
    if !baseline_exists {
        eprintln!(
            "xtask: bench-diff: baseline {baseline_path} does not exist; \
             nothing to compare (first run on this branch?) — regression \
             gate passing"
        );
        if !gate_scaling {
            return Ok(());
        }
    }
    let load = |path: &str| -> Result<BenchFile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        BenchFile::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let current = load(&current_path)?;

    let mut md = String::new();
    let mut failures: Vec<String> = Vec::new();
    let mut compared = 0usize;
    if baseline_exists {
        let outcome = diff(&load(&baseline_path)?, &current, opts);
        md.push_str(&render_markdown(&outcome, opts));
        compared += outcome.rows.len();
        failures.extend(outcome.regressions().map(|r| {
            format!(
                "{} {} {:.3}s -> {:.3}s ({:.2}x)",
                r.run, r.path, r.baseline_s, r.current_s, r.ratio
            )
        }));
    }
    if gate_scaling {
        let rows = check_scaling(&current, opts);
        md.push('\n');
        md.push_str(&render_scaling_markdown(&rows, opts));
        compared += rows.len();
        failures.extend(rows.iter().filter(|r| r.inverted).map(|r| {
            format!(
                "{} {} scaling inverted: t1 {:.3}s -> {:.3}s ({:.2}x)",
                r.run, r.path, r.t1_s, r.tn_s, r.ratio
            )
        }));
    }
    println!("{md}");
    if let Some(path) = summary_out {
        std::fs::write(&path, &md).map_err(|e| format!("write {path}: {e}"))?;
    }
    if failures.is_empty() {
        eprintln!("xtask: bench-diff passed ({compared} comparisons)");
        Ok(())
    } else {
        Err(format!(
            "bench regression gate failed:\n  {}",
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> BenchFile {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        BenchFile::from_json(&text).unwrap()
    }

    #[test]
    fn within_tolerance_passes() {
        let outcome = diff(
            &fixture("bench_baseline.json"),
            &fixture("bench_current_ok.json"),
            DiffOptions::default(),
        );
        assert_eq!(outcome.regressions().count(), 0, "{outcome:?}");
        assert!(!outcome.rows.is_empty());
    }

    #[test]
    fn injected_25pct_slowdown_fails_at_20pct_tolerance() {
        let outcome = diff(
            &fixture("bench_baseline.json"),
            &fixture("bench_current_regressed.json"),
            DiffOptions::default(),
        );
        let regressed: Vec<&SpanDelta> = outcome.regressions().collect();
        assert_eq!(regressed.len(), 1, "{outcome:?}");
        assert_eq!(regressed[0].run, "fusion/paper/pooled/t2");
        assert_eq!(regressed[0].path, "fusion");
        // The micro-span also slowed 25%, but its baseline sits below the
        // absolute floor, so it must not trip the gate.
        assert!(outcome
            .rows
            .iter()
            .any(|r| r.path == "micro" && r.skipped && !r.regressed));
    }

    #[test]
    fn cli_exits_nonzero_on_regressed_fixture() {
        let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let arg = |name: &str| fixtures.join(name).to_string_lossy().into_owned();
        let args = vec![
            "--baseline".to_owned(),
            arg("bench_baseline.json"),
            "--current".to_owned(),
            arg("bench_current_regressed.json"),
            "--tolerance".to_owned(),
            "20%".to_owned(),
        ];
        let err = cli(&args).unwrap_err();
        assert!(err.contains("fusion/paper/pooled/t2"), "{err}");
    }

    #[test]
    fn missing_baseline_file_passes() {
        let args = vec![
            "--baseline".to_owned(),
            "/nonexistent/BENCH_fusion.json".to_owned(),
            "--current".to_owned(),
            "/nonexistent/also_missing.json".to_owned(),
        ];
        cli(&args).unwrap();
    }

    #[test]
    fn run_identity_mismatches_are_informational() {
        let outcome = diff(
            &fixture("bench_baseline.json"),
            &fixture("bench_current_ok.json"),
            DiffOptions::default(),
        );
        assert_eq!(outcome.new_runs, vec!["matmul/n256/packed/t1"]);
        assert_eq!(outcome.dropped_runs, vec!["fusion/restaurant/pooled/t1"]);
    }

    #[test]
    fn scaling_gate_flags_inversions_from_both_sources() {
        let rows = check_scaling(
            &fixture("bench_scaling_inverted.json"),
            DiffOptions::default(),
        );
        // Emitted-ratio path: the paper t4 run carries scaling_ratio 1.4.
        let paper = rows
            .iter()
            .find(|r| r.run == "fusion/paper/pooled/t4")
            .unwrap();
        assert_eq!(paper.path, "(scaling_ratio)");
        assert!(paper.inverted, "{paper:?}");
        assert!((paper.ratio - 1.4).abs() < 1e-9);
        // Span-derived path: restaurant t4 has no emitted ratio, so its
        // fusion span is matched against the t1 run (0.65s / 0.5s).
        let restaurant = rows
            .iter()
            .find(|r| r.run == "fusion/restaurant/pooled/t4")
            .unwrap();
        assert_eq!(restaurant.path, "fusion");
        assert!(restaurant.inverted, "{restaurant:?}");
        assert!((restaurant.ratio - 1.3).abs() < 1e-9);
        // The micro pair inverts 3x but sits under the absolute floor.
        let micro = rows
            .iter()
            .find(|r| r.run == "micro/tiny/pooled/t4")
            .unwrap();
        assert!(micro.skipped && !micro.inverted, "{micro:?}");
    }

    #[test]
    fn cli_gate_scaling_fails_inverted_fixture_without_baseline() {
        // The regression diff is skipped (no baseline file), but the
        // scaling gate still runs on --current and must fail.
        let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let args = vec![
            "--baseline".to_owned(),
            "/nonexistent/BENCH_fusion.json".to_owned(),
            "--current".to_owned(),
            fixtures
                .join("bench_scaling_inverted.json")
                .to_string_lossy()
                .into_owned(),
            "--gate-scaling".to_owned(),
        ];
        let err = cli(&args).unwrap_err();
        assert!(err.contains("scaling inverted"), "{err}");
        assert!(err.contains("fusion/paper/pooled/t4"), "{err}");
        assert!(err.contains("fusion/restaurant/pooled/t4"), "{err}");
        assert!(!err.contains("micro/tiny"), "{err}");
    }

    #[test]
    fn cli_gate_scaling_passes_healthy_current() {
        // bench_current_ok.json has no tN/t1 pairs and no emitted
        // ratios, so the gate has nothing to flag.
        let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let arg = |name: &str| fixtures.join(name).to_string_lossy().into_owned();
        let args = vec![
            "--baseline".to_owned(),
            arg("bench_baseline.json"),
            "--current".to_owned(),
            arg("bench_current_ok.json"),
            "--gate-scaling".to_owned(),
        ];
        cli(&args).unwrap();
    }

    #[test]
    fn scaling_gate_respects_tolerance() {
        // At 50% tolerance the 1.4x and 1.3x inversions pass.
        let rows = check_scaling(
            &fixture("bench_scaling_inverted.json"),
            DiffOptions {
                tolerance: 0.5,
                min_seconds: 0.05,
            },
        );
        assert!(rows.iter().all(|r| !r.inverted), "{rows:?}");
    }

    #[test]
    fn tolerance_parsing() {
        assert!((parse_tolerance("20%").unwrap() - 0.2).abs() < 1e-12);
        assert!((parse_tolerance("0.2").unwrap() - 0.2).abs() < 1e-12);
        assert!(parse_tolerance("abc").is_err());
        assert!(parse_tolerance("-5%").is_err());
    }
}
