//! Workspace automation, invoked as `cargo xtask <command>`.
//!
//! * `analyze` — the static-analysis gate: `rustfmt --check`, `clippy -D
//!   warnings` over every target, a `--no-default-features` build of
//!   every non-bench crate (the `obs` feature must compile out cleanly),
//!   a first-party unsafe audit (no `unsafe` outside `er-pool`; every
//!   `er-pool` unsafe site carries a `// SAFETY:` comment; every
//!   first-party crate opts into the workspace lint wall and denies
//!   `unsafe_code` unless it is the pool), and the `er-lint` domain
//!   rules (see below). The audit walks `src/`, `crates/*/src`,
//!   `crates/*/benches` and `xtask/src` — bench harnesses are
//!   first-party code too.
//! * `lint [--update-baseline] [--summary-out <path>]` — `er-lint`, the
//!   project-invariant rules: no HashMap/HashSet iteration on
//!   deterministic paths, no allocation in `// er-lint: zero-alloc`
//!   kernels, every pooled region under a `pool.dispatch(…)` decision,
//!   no `unwrap()`/`expect(`/`panic!` in library code, and
//!   `dotted.snake_case` unique er-obs names. Pre-existing violations
//!   are grandfathered in `xtask/lint_baseline.json`; new ones fail.
//! * `loom` — model-checks `er-pool` by rebuilding it with
//!   `RUSTFLAGS="--cfg loom"` so its `sync` shim swaps in the vendored
//!   loom scheduler.
//! * `miri [--strict]` — runs the pool tests under Miri when `cargo miri`
//!   is installed; otherwise skips (or fails, with `--strict`, for CI
//!   jobs that must not silently degrade).
//! * `san [--strict]` — AddressSanitizer/ThreadSanitizer over the
//!   er-pool and er-matrix suites on nightly (`-Z sanitizer`); skips
//!   unless a nightly toolchain is installed, like `miri`.
//! * `bench-diff` — the CI bench-regression gate over `er-obs/v1`
//!   `BENCH_*.json` files (see `bench_diff` module docs).
//! * `all` — analyze, loom, and miri in sequence.

#![deny(unsafe_code)]

mod bench_diff;
mod lint;
mod sources;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use sources::{workspace_sources, SourceKind};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--strict");
    let result = match args.first().map(String::as_str) {
        Some("analyze") => analyze(),
        Some("lint") => lint::cli(&args[1..], &workspace_root()),
        Some("loom") => loom(),
        Some("miri") => miri(strict),
        Some("san") => san(strict),
        Some("bench-diff") => bench_diff::cli(&args[1..]),
        Some("all") => analyze().and_then(|()| loom()).and_then(|()| miri(strict)),
        Some("help" | "--help" | "-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  analyze          rustfmt --check, clippy -D warnings, no-default-features build,
                   first-party unsafe audit, er-lint domain rules
  lint             er-lint only: determinism / zero-alloc / dispatch / panic /
                   obs-naming rules against xtask/lint_baseline.json
                   (--update-baseline regenerates the baseline;
                    --summary-out <path> writes a markdown drift summary)
  loom             model-check er-pool (RUSTFLAGS=\"--cfg loom\")
  miri [--strict]  er-pool tests under Miri; skipped unless cargo-miri is installed
  san [--strict]   er-pool + er-matrix tests under Address/ThreadSanitizer
                   (nightly -Z sanitizer); skipped unless nightly is installed
                   (ER_SAN=address|thread|all selects which, default all)
  bench-diff       compare two er-obs BENCH_*.json files, fail on span regressions
                   (--baseline <path> --current <path> [--tolerance 20%]
                    [--min-seconds 0.05] [--summary-out <path>] [--gate-scaling]);
                   --gate-scaling also fails when any tN/t1 scaling ratio in
                   --current exceeds 1 + tolerance (runs even without a baseline)
  all [--strict]   analyze, then loom, then miri";

fn workspace_root() -> PathBuf {
    // xtask/ sits directly under the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

/// Runs a command from the workspace root, failing on non-zero exit.
fn run(mut cmd: Command) -> Result<(), String> {
    let pretty = format!("{cmd:?}").replace('"', "");
    eprintln!("xtask: running {pretty}");
    let status = cmd
        .current_dir(workspace_root())
        .status()
        .map_err(|e| format!("could not spawn `{pretty}`: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("`{pretty}` failed with {status}"))
    }
}

fn cargo(args: &[&str]) -> Command {
    let mut cmd = Command::new("cargo");
    cmd.args(args);
    cmd
}

fn analyze() -> Result<(), String> {
    run(cargo(&["fmt", "--all", "--", "--check"]))?;
    run(cargo(&[
        "clippy",
        "--workspace",
        "--all-targets",
        "--",
        "-D",
        "warnings",
    ]))?;
    check_no_default_features()?;
    audit_unsafe()?;
    audit_lint_wall()?;
    eprintln!("xtask: running er-lint");
    lint::run(&workspace_root(), false, None)?;
    eprintln!("xtask: analyze passed");
    Ok(())
}

/// The workspace must also build with every default feature off — in
/// particular with `er-obs/enabled` absent, so the telemetry layer's
/// no-op stubs stay compilable. `er-bench` is deliberately excluded: it
/// pins the `obs` feature on its first-party deps, and selecting it
/// would re-unify `enabled` into every crate, defeating the check.
fn check_no_default_features() -> Result<(), String> {
    run(cargo(&[
        "check",
        "--no-default-features",
        "-p",
        "unsupervised-er",
        "-p",
        "er-core",
        "-p",
        "er-pool",
        "-p",
        "er-graph",
        "-p",
        "er-matrix",
        "-p",
        "er-text",
        "-p",
        "er-obs",
    ]))
}

fn loom() -> Result<(), String> {
    let mut cmd = cargo(&["test", "-p", "er-pool", "--test", "loom_pool", "--release"]);
    let mut flags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !flags.split_whitespace().any(|f| f == "--cfg=loom") {
        flags.push_str(" --cfg loom");
    }
    cmd.env("RUSTFLAGS", flags.trim());
    run(cmd)?;
    eprintln!("xtask: loom model checking passed");
    Ok(())
}

fn miri(strict: bool) -> Result<(), String> {
    let available = Command::new("cargo")
        .args(["miri", "--version"])
        .current_dir(workspace_root())
        .output()
        .is_ok_and(|out| out.status.success());
    if !available {
        if strict {
            return Err("cargo-miri is not installed (required by --strict); \
                 install with `rustup +nightly component add miri`"
                .into());
        }
        eprintln!(
            "xtask: cargo-miri is not installed; skipping \
             (install with `rustup +nightly component add miri`, or pass --strict to fail)"
        );
        return Ok(());
    }
    run(cargo(&["miri", "test", "-p", "er-pool"]))?;
    eprintln!("xtask: miri passed");
    Ok(())
}

/// AddressSanitizer / ThreadSanitizer driver over the crates with the
/// concurrency- and aliasing-heavy suites (`er-pool`, `er-matrix`).
///
/// `-Z sanitizer` needs nightly, so like `miri` this skips (or fails
/// under `--strict`) when no nightly toolchain is installed, and it
/// only runs on x86_64/aarch64 Linux, the tier-1 sanitizer targets.
/// ThreadSanitizer additionally wants std itself instrumented
/// (`-Z build-std`), which needs the `rust-src` component; when that
/// is missing only AddressSanitizer runs. `ER_SAN=address|thread|all`
/// narrows the pass (default `all`).
fn san(strict: bool) -> Result<(), String> {
    let host_target = match (std::env::consts::ARCH, std::env::consts::OS) {
        ("x86_64", "linux") => "x86_64-unknown-linux-gnu",
        ("aarch64", "linux") => "aarch64-unknown-linux-gnu",
        (arch, os) => {
            let msg = format!("sanitizers need x86_64/aarch64 Linux (host is {arch}-{os})");
            if strict {
                return Err(msg);
            }
            eprintln!("xtask: {msg}; skipping");
            return Ok(());
        }
    };
    let nightly = Command::new("cargo")
        .args(["+nightly", "--version"])
        .current_dir(workspace_root())
        .output()
        .is_ok_and(|out| out.status.success());
    if !nightly {
        if strict {
            return Err("no nightly toolchain (required by --strict); \
                 install with `rustup toolchain install nightly`"
                .into());
        }
        eprintln!(
            "xtask: no nightly toolchain; skipping sanitizers \
             (install with `rustup toolchain install nightly`, or pass --strict to fail)"
        );
        return Ok(());
    }
    let which = std::env::var("ER_SAN").unwrap_or_else(|_| "all".into());
    let run_address = which == "all" || which == "address";
    let run_thread = which == "all" || which == "thread";
    if run_address {
        san_pass("address", host_target, false)?;
    }
    if run_thread {
        // TSan without an instrumented std reports races inside std's
        // own synchronization; only meaningful with -Z build-std.
        let has_src = Command::new("rustup")
            .args(["+nightly", "component", "list", "--installed"])
            .output()
            .is_ok_and(|out| {
                out.status.success()
                    && String::from_utf8_lossy(&out.stdout)
                        .lines()
                        .any(|l| l.starts_with("rust-src"))
            });
        if has_src {
            san_pass("thread", host_target, true)?;
        } else {
            let msg = "rust-src component missing: ThreadSanitizer needs `-Z build-std` \
                 (install with `rustup +nightly component add rust-src`)";
            if strict && which == "thread" {
                return Err(msg.into());
            }
            eprintln!("xtask: {msg}; skipping TSan");
        }
    }
    eprintln!("xtask: sanitizers passed");
    Ok(())
}

fn san_pass(sanitizer: &str, target: &str, build_std: bool) -> Result<(), String> {
    // --lib --tests: doctests compile through rustdoc, which does not
    // link the sanitizer runtime; the unit/integration suites are the
    // coverage that matters here.
    let mut args = vec![
        "+nightly",
        "test",
        "-p",
        "er-pool",
        "-p",
        "er-matrix",
        "--lib",
        "--tests",
    ];
    if build_std {
        args.extend(["-Z", "build-std"]);
    }
    args.extend(["--target", target]);
    let mut cmd = cargo(&args);
    let mut flags = std::env::var("RUSTFLAGS").unwrap_or_default();
    flags.push_str(&format!(" -Zsanitizer={sanitizer}"));
    cmd.env("RUSTFLAGS", flags.trim());
    // One suite at a time keeps TSan reports attributable.
    cmd.env("RUST_TEST_THREADS", "1");
    run(cmd)?;
    eprintln!("xtask: {sanitizer} sanitizer pass clean");
    Ok(())
}

/// True when a comment- and string-stripped line uses the `unsafe`
/// keyword (`unsafe_code` lint references don't count).
fn line_has_unsafe_code(code: &str) -> bool {
    let mut rest = code;
    while let Some(at) = rest.find("unsafe") {
        let before_ok = at == 0
            || !rest[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[at + "unsafe".len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = after;
    }
    false
}

/// The audit's file set: everything first-party that compiles into a
/// build or bench — `src/`, `crates/*/src`, `crates/*/benches`,
/// `xtask/src`. Integration-test dirs are excluded: the counting
/// `GlobalAlloc` in `tests/zero_alloc.rs` legitimately implements an
/// unsafe trait, and tests run under `cargo test`'s own scrutiny.
fn audited_sources() -> Result<Vec<sources::SourceFile>, String> {
    let mut files = workspace_sources(&workspace_root())?;
    files.retain(|f| {
        matches!(
            f.kind,
            SourceKind::Lib | SourceKind::Bin | SourceKind::Bench | SourceKind::Xtask
        )
    });
    Ok(files)
}

/// No `unsafe` outside `er-pool`, and every pool unsafe site is preceded
/// by a `// SAFETY:` comment within its contiguous comment block (clippy's
/// `undocumented_unsafe_blocks` covers blocks; this also covers `unsafe
/// impl`/`unsafe fn`, and keeps the policy enforced even where clippy
/// does not run). Bench harnesses are the one exception to the ban:
/// their counting `GlobalAlloc` evidence allocators legitimately
/// implement an unsafe trait, so Bench-kind files are held to the same
/// SAFETY-comment standard as pool instead.
fn audit_unsafe() -> Result<(), String> {
    let mut errors = Vec::new();
    for file in audited_sources()? {
        let text = std::fs::read_to_string(&file.path)
            .map_err(|e| format!("read {}: {e}", file.path.display()))?;
        let raw: Vec<&str> = text.lines().collect();
        let code = lint::lexer::code_lines(&text);
        for (i, line) in code.iter().enumerate() {
            if !line_has_unsafe_code(line) {
                continue;
            }
            let at = format!("{}:{}", file.rel, i + 1);
            if file.krate != "pool" && file.kind != SourceKind::Bench {
                errors.push(format!(
                    "{at}: `unsafe` outside er-pool (the only crate allowed to use it)"
                ));
                continue;
            }
            // The SAFETY comment lives in the raw text the stripper
            // removed; look it up in the contiguous comment block above.
            let documented = raw[..i]
                .iter()
                .rev()
                .take_while(|l| {
                    let t = l.trim_start();
                    t.starts_with("//") || t.starts_with("#[")
                })
                .any(|l| l.contains("SAFETY:"));
            if !documented && !raw[i].contains("SAFETY:") {
                errors.push(format!(
                    "{at}: unsafe site without a `// SAFETY:` comment directly above it"
                ));
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(format!("unsafe audit failed:\n  {}", errors.join("\n  ")))
    }
}

/// Every first-party crate inherits `[lints] workspace = true` and its
/// root module denies `unsafe_code` — except er-pool, whose manifest
/// still inherits the lint wall but whose lib.rs may use unsafe (each
/// site is audited above instead).
fn audit_lint_wall() -> Result<(), String> {
    let root = workspace_root();
    let mut errors = Vec::new();
    let mut manifests = vec![root.join("Cargo.toml"), root.join("xtask/Cargo.toml")];
    let mut lib_roots = vec![("unsupervised-er".to_owned(), root.join("src/lib.rs"))];
    let crates = root.join("crates");
    let entries =
        std::fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", crates.display()))?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        manifests.push(entry.path().join("Cargo.toml"));
        if name != "pool" {
            lib_roots.push((name, entry.path().join("src/lib.rs")));
        }
    }
    for manifest in manifests {
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("read {}: {e}", manifest.display()))?;
        if !text.contains("[lints]") {
            errors.push(format!(
                "{}: missing `[lints]\\nworkspace = true` (the workspace lint wall)",
                manifest.display()
            ));
        }
    }
    for (name, lib) in lib_roots {
        let text =
            std::fs::read_to_string(&lib).map_err(|e| format!("read {}: {e}", lib.display()))?;
        if !text.contains("#![deny(unsafe_code)]") {
            errors.push(format!(
                "{}: {name} must carry `#![deny(unsafe_code)]` (only er-pool may use unsafe)",
                lib.display()
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "lint-wall audit failed:\n  {}",
            errors.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has_unsafe(src: &str) -> Vec<bool> {
        lint::lexer::code_lines(src)
            .iter()
            .map(|l| line_has_unsafe_code(l))
            .collect()
    }

    #[test]
    fn unsafe_detection_ignores_comments_and_lint_names() {
        assert_eq!(has_unsafe("let x = unsafe { *p };"), [true]);
        assert_eq!(has_unsafe("unsafe impl<T: Send> Send for M<T> {}"), [true]);
        assert_eq!(has_unsafe("// unsafe is mentioned here"), [false]);
        assert_eq!(has_unsafe("#![deny(unsafe_code)]"), [false]);
        assert_eq!(has_unsafe("let not_unsafe_thing = 3;"), [false]);
        assert_eq!(has_unsafe("call(); // unsafe in a tail comment"), [false]);
        assert_eq!(has_unsafe("let m = \"mentions unsafe\";"), [false]);
        assert_eq!(has_unsafe("let q = '\"'; let u = unsafe { f() };"), [true]);
        assert_eq!(
            has_unsafe("let s = \"spans\nunsafe lines\";"),
            [false, false]
        );
        assert_eq!(
            has_unsafe("/* unsafe in\nblock comment */ unsafe {}"),
            [false, true]
        );
        // Raw strings could derail a naive tracker into reading the
        // rest of the file as string content.
        assert_eq!(
            has_unsafe("let s = r#\"has \" unsafe\"#;\nunsafe { f() }"),
            [false, true]
        );
    }

    #[test]
    fn audits_cover_benches_and_xtask() {
        let files = audited_sources().unwrap();
        assert!(files.iter().any(|f| f.rel.starts_with("xtask/src/")));
        assert!(files
            .iter()
            .any(|f| f.rel.starts_with("crates/bench/benches/")));
        assert!(!files.iter().any(|f| f.rel.contains("/fixtures/")));
        assert!(!files.iter().any(|f| f.rel.starts_with("vendor/")));
    }

    #[test]
    fn audits_pass_on_this_workspace() {
        audit_unsafe().unwrap();
        audit_lint_wall().unwrap();
    }
}
