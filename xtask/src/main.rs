//! Workspace automation, invoked as `cargo xtask <command>`.
//!
//! * `analyze` — the static-analysis gate: `rustfmt --check`, `clippy -D
//!   warnings` over every target, a `--no-default-features` build of
//!   every non-bench crate (the `obs` feature must compile out cleanly),
//!   and a first-party unsafe audit (no `unsafe` outside `er-pool`;
//!   every `er-pool` unsafe site carries a `// SAFETY:` comment; every
//!   first-party crate opts into the workspace lint wall and denies
//!   `unsafe_code` unless it is the pool).
//! * `loom` — model-checks `er-pool` by rebuilding it with
//!   `RUSTFLAGS="--cfg loom"` so its `sync` shim swaps in the vendored
//!   loom scheduler.
//! * `miri [--strict]` — runs the pool tests under Miri when `cargo miri`
//!   is installed; otherwise skips (or fails, with `--strict`, for CI
//!   jobs that must not silently degrade).
//! * `bench-diff` — the CI bench-regression gate over `er-obs/v1`
//!   `BENCH_*.json` files (see `bench_diff` module docs).
//! * `all` — analyze, loom, and miri in sequence.

#![deny(unsafe_code)]

mod bench_diff;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--strict");
    let result = match args.first().map(String::as_str) {
        Some("analyze") => analyze(),
        Some("loom") => loom(),
        Some("miri") => miri(strict),
        Some("bench-diff") => bench_diff::cli(&args[1..]),
        Some("all") => analyze().and_then(|()| loom()).and_then(|()| miri(strict)),
        Some("help" | "--help" | "-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  analyze          rustfmt --check, clippy -D warnings, no-default-features build,
                   first-party unsafe audit
  loom             model-check er-pool (RUSTFLAGS=\"--cfg loom\")
  miri [--strict]  er-pool tests under Miri; skipped unless cargo-miri is installed
  bench-diff       compare two er-obs BENCH_*.json files, fail on span regressions
                   (--baseline <path> --current <path> [--tolerance 20%]
                    [--min-seconds 0.05] [--summary-out <path>] [--gate-scaling]);
                   --gate-scaling also fails when any tN/t1 scaling ratio in
                   --current exceeds 1 + tolerance (runs even without a baseline)
  all [--strict]   analyze, then loom, then miri";

fn workspace_root() -> PathBuf {
    // xtask/ sits directly under the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

/// Runs a command from the workspace root, failing on non-zero exit.
fn run(mut cmd: Command) -> Result<(), String> {
    let pretty = format!("{cmd:?}").replace('"', "");
    eprintln!("xtask: running {pretty}");
    let status = cmd
        .current_dir(workspace_root())
        .status()
        .map_err(|e| format!("could not spawn `{pretty}`: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("`{pretty}` failed with {status}"))
    }
}

fn cargo(args: &[&str]) -> Command {
    let mut cmd = Command::new("cargo");
    cmd.args(args);
    cmd
}

fn analyze() -> Result<(), String> {
    run(cargo(&["fmt", "--all", "--", "--check"]))?;
    run(cargo(&[
        "clippy",
        "--workspace",
        "--all-targets",
        "--",
        "-D",
        "warnings",
    ]))?;
    check_no_default_features()?;
    audit_unsafe()?;
    audit_lint_wall()?;
    eprintln!("xtask: analyze passed");
    Ok(())
}

/// The workspace must also build with every default feature off — in
/// particular with `er-obs/enabled` absent, so the telemetry layer's
/// no-op stubs stay compilable. `er-bench` is deliberately excluded: it
/// pins the `obs` feature on its first-party deps, and selecting it
/// would re-unify `enabled` into every crate, defeating the check.
fn check_no_default_features() -> Result<(), String> {
    run(cargo(&[
        "check",
        "--no-default-features",
        "-p",
        "unsupervised-er",
        "-p",
        "er-core",
        "-p",
        "er-pool",
        "-p",
        "er-graph",
        "-p",
        "er-matrix",
        "-p",
        "er-text",
        "-p",
        "er-obs",
    ]))
}

fn loom() -> Result<(), String> {
    let mut cmd = cargo(&["test", "-p", "er-pool", "--test", "loom_pool", "--release"]);
    let mut flags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !flags.split_whitespace().any(|f| f == "--cfg=loom") {
        flags.push_str(" --cfg loom");
    }
    cmd.env("RUSTFLAGS", flags.trim());
    run(cmd)?;
    eprintln!("xtask: loom model checking passed");
    Ok(())
}

fn miri(strict: bool) -> Result<(), String> {
    let available = Command::new("cargo")
        .args(["miri", "--version"])
        .current_dir(workspace_root())
        .output()
        .is_ok_and(|out| out.status.success());
    if !available {
        if strict {
            return Err("cargo-miri is not installed (required by --strict); \
                 install with `rustup +nightly component add miri`"
                .into());
        }
        eprintln!(
            "xtask: cargo-miri is not installed; skipping \
             (install with `rustup +nightly component add miri`, or pass --strict to fail)"
        );
        return Ok(());
    }
    run(cargo(&["miri", "test", "-p", "er-pool"]))?;
    eprintln!("xtask: miri passed");
    Ok(())
}

/// First-party `.rs` files, grouped as (crate name, file path).
fn first_party_sources() -> Result<Vec<(String, PathBuf)>, String> {
    let root = workspace_root();
    let mut crate_dirs: Vec<(String, PathBuf)> = vec![
        ("unsupervised-er".into(), root.join("src")),
        ("xtask".into(), root.join("xtask/src")),
    ];
    let crates = root.join("crates");
    let entries =
        std::fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", crates.display()))?;
        if entry.path().is_dir() {
            let name = entry.file_name().to_string_lossy().into_owned();
            crate_dirs.push((name, entry.path().join("src")));
        }
    }
    let mut out = Vec::new();
    for (name, dir) in crate_dirs {
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        out.extend(files.into_iter().map(|f| (name.clone(), f)));
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Splits a source file into lines with comments and string literals
/// blanked out, so keyword scans only ever see code. Tracks state across
/// lines (multi-line strings and block comments) and steps over char
/// literals so `'"'` cannot derail the string tracking.
fn code_lines(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Str,
        LineComment,
        BlockComment,
    }
    let mut lines = Vec::new();
    let mut cur = String::new();
    let mut st = St::Code;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            lines.push(std::mem::take(&mut cur));
            continue;
        }
        match st {
            St::Code => match c {
                '"' => st = St::Str,
                '\'' => {
                    // Char literal ('x' / '\n') or lifetime ('a). Step
                    // over literals; leave lifetimes to the code stream.
                    if chars.peek() == Some(&'\\') {
                        chars.next();
                        chars.next();
                        chars.next();
                    } else {
                        let mut ahead = chars.clone();
                        ahead.next();
                        if ahead.peek() == Some(&'\'') {
                            chars.next();
                            chars.next();
                        }
                    }
                }
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    st = St::LineComment;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    st = St::BlockComment;
                }
                _ => cur.push(c),
            },
            St::Str => match c {
                '\\' => {
                    chars.next();
                }
                '"' => st = St::Code,
                _ => {}
            },
            St::LineComment => {}
            St::BlockComment => {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    st = St::Code;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// True when a comment- and string-stripped line uses the `unsafe`
/// keyword (`unsafe_code` lint references don't count).
fn line_has_unsafe_code(code: &str) -> bool {
    let mut rest = code;
    while let Some(at) = rest.find("unsafe") {
        let before_ok = at == 0
            || !rest[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[at + "unsafe".len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = after;
    }
    false
}

/// No `unsafe` outside `er-pool`, and every pool unsafe site is preceded
/// by a `// SAFETY:` comment within its contiguous comment block (clippy's
/// `undocumented_unsafe_blocks` covers blocks; this also covers `unsafe
/// impl`/`unsafe fn`, and keeps the policy enforced even where clippy
/// does not run).
fn audit_unsafe() -> Result<(), String> {
    let mut errors = Vec::new();
    for (krate, file) in first_party_sources()? {
        let text =
            std::fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let raw: Vec<&str> = text.lines().collect();
        let code = code_lines(&text);
        for (i, line) in code.iter().enumerate() {
            if !line_has_unsafe_code(line) {
                continue;
            }
            let at = format!("{}:{}", file.display(), i + 1);
            if krate != "pool" {
                errors.push(format!(
                    "{at}: `unsafe` outside er-pool (the only crate allowed to use it)"
                ));
                continue;
            }
            // The SAFETY comment lives in the raw text the stripper
            // removed; look it up in the contiguous comment block above.
            let documented = raw[..i]
                .iter()
                .rev()
                .take_while(|l| {
                    let t = l.trim_start();
                    t.starts_with("//") || t.starts_with("#[")
                })
                .any(|l| l.contains("SAFETY:"));
            if !documented && !raw[i].contains("SAFETY:") {
                errors.push(format!(
                    "{at}: unsafe site without a `// SAFETY:` comment directly above it"
                ));
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(format!("unsafe audit failed:\n  {}", errors.join("\n  ")))
    }
}

/// Every first-party crate inherits `[lints] workspace = true` and its
/// root module denies `unsafe_code` — except er-pool, whose manifest
/// still inherits the lint wall but whose lib.rs may use unsafe (each
/// site is audited above instead).
fn audit_lint_wall() -> Result<(), String> {
    let root = workspace_root();
    let mut errors = Vec::new();
    let mut manifests = vec![root.join("Cargo.toml"), root.join("xtask/Cargo.toml")];
    let mut lib_roots = vec![("unsupervised-er".to_owned(), root.join("src/lib.rs"))];
    let crates = root.join("crates");
    let entries =
        std::fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", crates.display()))?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        manifests.push(entry.path().join("Cargo.toml"));
        if name != "pool" {
            lib_roots.push((name, entry.path().join("src/lib.rs")));
        }
    }
    for manifest in manifests {
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("read {}: {e}", manifest.display()))?;
        if !text.contains("[lints]") {
            errors.push(format!(
                "{}: missing `[lints]\\nworkspace = true` (the workspace lint wall)",
                manifest.display()
            ));
        }
    }
    for (name, lib) in lib_roots {
        let text =
            std::fs::read_to_string(&lib).map_err(|e| format!("read {}: {e}", lib.display()))?;
        if !text.contains("#![deny(unsafe_code)]") {
            errors.push(format!(
                "{}: {name} must carry `#![deny(unsafe_code)]` (only er-pool may use unsafe)",
                lib.display()
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "lint-wall audit failed:\n  {}",
            errors.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has_unsafe(src: &str) -> Vec<bool> {
        code_lines(src)
            .iter()
            .map(|l| line_has_unsafe_code(l))
            .collect()
    }

    #[test]
    fn unsafe_detection_ignores_comments_and_lint_names() {
        assert_eq!(has_unsafe("let x = unsafe { *p };"), [true]);
        assert_eq!(has_unsafe("unsafe impl<T: Send> Send for M<T> {}"), [true]);
        assert_eq!(has_unsafe("// unsafe is mentioned here"), [false]);
        assert_eq!(has_unsafe("#![deny(unsafe_code)]"), [false]);
        assert_eq!(has_unsafe("let not_unsafe_thing = 3;"), [false]);
        assert_eq!(has_unsafe("call(); // unsafe in a tail comment"), [false]);
        assert_eq!(has_unsafe("let m = \"mentions unsafe\";"), [false]);
        assert_eq!(has_unsafe("let q = '\"'; let u = unsafe { f() };"), [true]);
        assert_eq!(
            has_unsafe("let s = \"spans\nunsafe lines\";"),
            [false, false]
        );
        assert_eq!(
            has_unsafe("/* unsafe in\nblock comment */ unsafe {}"),
            [false, true]
        );
    }

    #[test]
    fn audits_pass_on_this_workspace() {
        audit_unsafe().unwrap();
        audit_lint_wall().unwrap();
    }
}
