//! Rule `zero_alloc`: functions annotated `// er-lint: zero-alloc` may
//! not contain allocating constructs.
//!
//! PR 3 made the CliqueRank recurrences, ITER sweeps and packed GEMM
//! zero-allocation at steady state, pinned *dynamically* by a counting
//! `GlobalAlloc` test. This rule is the static complement: the marked
//! kernels reject `Vec::new`/`vec![…]`/`.collect()`/`Box::new`/
//! `.to_vec()`/`String::from`/`format!` (and close cousins:
//! `with_capacity`, `.to_string()`, `.to_owned()`, `String::new`) at
//! review time, before the allocator test ever runs. A justified
//! cold-path allocation inside a marked fn takes
//! `// er-lint: allow(zero_alloc) -- <why it is not on the hot path>`.

use super::{at, code_indices, path_seg};
use crate::lint::lexer::Kind;
use crate::lint::source::SourceModel;
use crate::lint::Violation;

/// `Type::method` constructor forms that allocate.
const CTORS: [(&str, &str); 7] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Vec", "from"),
];

/// `.method(` forms that allocate.
const METHODS: [&str; 4] = ["collect", "to_vec", "to_string", "to_owned"];

/// `name!(…)` macros that allocate.
const MACROS: [&str; 2] = ["vec", "format"];

pub fn check(m: &SourceModel<'_>, out: &mut Vec<Violation>) {
    let code = code_indices(m);
    for f in m.fns.iter().filter(|f| f.zero_alloc) {
        for (ci, &ti) in code.iter().enumerate() {
            if !f.body.contains(&ti) {
                continue;
            }
            let tok = &m.toks[ti];
            if tok.kind != Kind::Ident {
                continue;
            }
            let hit = if MACROS.contains(&tok.text)
                && at(m, &code, ci + 1).is_some_and(|t| t.is_punct('!'))
            {
                Some(format!("`{}!(…)`", tok.text))
            } else if CTORS
                .iter()
                .any(|&(ty, meth)| tok.text == ty && path_seg(m, &code, ci + 1, meth))
            {
                let meth = at(m, &code, ci + 3).map_or("?", |t| t.text);
                Some(format!("`{}::{meth}`", tok.text))
            } else if METHODS.contains(&tok.text)
                && ci > 0
                && at(m, &code, ci - 1).is_some_and(|t| t.is_punct('.'))
                && at(m, &code, ci + 1).is_some_and(|t| t.is_punct('(') || t.is_punct(':'))
            {
                // `.collect()` and turbofished `.collect::<Vec<_>>()`.
                Some(format!("`.{}(…)`", tok.text))
            } else {
                None
            };
            if let Some(what) = hit {
                m.report(
                    out,
                    "zero_alloc",
                    tok.line,
                    format!(
                        "{what} allocates inside `fn {}`, which is marked \
                         `// er-lint: zero-alloc`; use the scratch arenas \
                         (`MatrixArena`/`ScratchSlot`) or hoist the allocation to setup",
                        f.name
                    ),
                );
            }
        }
    }
}
