//! Rule `panic`: no `unwrap()` / `expect(…)` / `panic!(…)` in library
//! crates outside `#[cfg(test)]` modules and debug validators.
//!
//! The library crates are headed for an always-on serving path
//! (`er-serve` on the ROADMAP): a panic in a scoring loop is a crashed
//! worker, not a failed request. Fallible paths should return
//! `Result`; lookups whose failure is a bug should use invariant-
//! checked indexing (a checked helper, or indexing that the type's
//! construction already bounds). A genuinely unreachable panic — an
//! invariant the module itself establishes — stays, with
//! `// er-lint: allow(panic) -- <the invariant>` naming it.
//!
//! `#[cfg(test)]` and `#[cfg(debug_assertions)]` regions are exempt
//! (tests and debug validators *should* fail loudly), as are
//! `debug_assert!`-family macros (compiled out in release).

use super::{at, code_indices};
use crate::lint::lexer::Kind;
use crate::lint::source::SourceKind;
use crate::lint::source::SourceModel;
use crate::lint::Violation;

pub fn check(m: &SourceModel<'_>, out: &mut Vec<Violation>) {
    if m.kind != SourceKind::Lib {
        return;
    }
    let code = code_indices(m);
    for ci in 0..code.len() {
        let tok = &m.toks[code[ci]];
        if tok.kind != Kind::Ident {
            continue;
        }
        let hit = match tok.text {
            // `.unwrap()` exactly — `unwrap_or(…)` is a different ident
            // and fine.
            "unwrap"
                if ci > 0
                    && at(m, &code, ci - 1).is_some_and(|t| t.is_punct('.'))
                    && at(m, &code, ci + 1).is_some_and(|t| t.is_punct('('))
                    && at(m, &code, ci + 2).is_some_and(|t| t.is_punct(')')) =>
            {
                Some("`.unwrap()`")
            }
            "expect"
                if ci > 0
                    && at(m, &code, ci - 1).is_some_and(|t| t.is_punct('.'))
                    && at(m, &code, ci + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                Some("`.expect(…)`")
            }
            "panic" if at(m, &code, ci + 1).is_some_and(|t| t.is_punct('!')) => Some("`panic!(…)`"),
            _ => None,
        };
        if let Some(what) = hit {
            m.report(
                out,
                "panic",
                tok.line,
                format!(
                    "{what} in library code: return `Result`, use invariant-checked \
                     indexing, or justify with `// er-lint: allow(panic) -- <invariant>`"
                ),
            );
        }
    }
}
