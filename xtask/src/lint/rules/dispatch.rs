//! Rule `dispatch`: every pooled region must sit under a
//! `pool.dispatch(…)` cost-model decision.
//!
//! PR 6 fixed the parallel-scaling inversion by routing every pooled
//! call site through `DispatchPolicy` — small inputs run serial-inline
//! instead of paying queue coordination. Nothing but review stops the
//! next pooled call site from skipping that decision and reintroducing
//! the t4 > t1 inversion, so this rule flags any `.scope(…)`,
//! `.for_each_range(…)` or `.score_pairs_pooled(…)` call in a function
//! that does not evaluate `.dispatch(…)` earlier in its own body.
//!
//! Functions that receive an already-made decision (the caller
//! dispatched and passed a pre-filtered `Option<&WorkerPool>`) carry
//! `// er-lint: allow(dispatch) -- decision made in <caller>` — the
//! point is that every pooled region names where its cost decision
//! lives, in the source, next to the call.

use super::{at, code_indices};
use crate::lint::lexer::Kind;
use crate::lint::source::SourceModel;
use crate::lint::Violation;

/// Methods that enqueue work on the shared pool.
const POOLED: [&str; 3] = ["scope", "for_each_range", "score_pairs_pooled"];

pub fn check(m: &SourceModel<'_>, out: &mut Vec<Violation>) {
    // er-pool implements the primitives; it cannot dispatch to itself.
    if m.krate == "pool" {
        return;
    }
    let code = code_indices(m);
    for ci in 0..code.len() {
        let tok = &m.toks[code[ci]];
        if tok.kind != Kind::Ident || !POOLED.contains(&tok.text) {
            continue;
        }
        // Method-call position only: `recv.method(`. Definitions
        // (`fn score_pairs_pooled(`) have no leading dot.
        let called = ci > 0
            && at(m, &code, ci - 1).is_some_and(|t| t.is_punct('.'))
            && at(m, &code, ci + 1).is_some_and(|t| t.is_punct('('));
        if !called {
            continue;
        }
        let ti = code[ci];
        let Some(f) = m.enclosing_fn(ti) else {
            continue;
        };
        // Compliant when `.dispatch(` appears earlier in the same body.
        let decided = code
            .iter()
            .enumerate()
            .take_while(|&(_, &t)| t < ti)
            .any(|(cj, &tj)| {
                f.body.contains(&tj)
                    && m.toks[tj].is_ident("dispatch")
                    && cj > 0
                    && at(m, &code, cj - 1).is_some_and(|t| t.is_punct('.'))
                    && at(m, &code, cj + 1).is_some_and(|t| t.is_punct('('))
            });
        if !decided {
            m.report(
                out,
                "dispatch",
                tok.line,
                format!(
                    "pooled call `.{}(…)` in `fn {}` (line {}) is not under a \
                     `pool.dispatch(…)` decision; route it through the cost model, or state \
                     where the decision is made: \
                     `// er-lint: allow(dispatch) -- decided in <caller>`",
                    tok.text, f.name, f.line
                ),
            );
        }
    }
}
