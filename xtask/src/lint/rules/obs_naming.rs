//! Rule `obs_naming`: every `er-obs` span/counter/gauge name literal is
//! `dotted.snake_case` and unique workspace-wide.
//!
//! The telemetry registry is stringly keyed: `er_obs::span("fusion")`,
//! `er_obs::counter_add("pool.dispatch.parallel", 1)`. Two phases in
//! two crates registering the same name silently merge in every
//! exported report, and a `CamelCase` or `kebab-case` name breaks the
//! Prometheus exposition mapping. Each name must match
//! `seg(.seg)*` where `seg` is `[a-z][a-z0-9_]*`, and a name may only
//! be registered from one file (re-emitting the same name from several
//! code paths *within* a file — e.g. the serial and pooled variants of
//! one phase — is explicitly fine and common).
//!
//! The uniqueness half needs the whole workspace, so the per-file pass
//! collects registrations and [`finish`] reports cross-file clashes
//! against the lexicographically first registering file.

use std::collections::BTreeMap;

use super::{at, code_indices, path_seg};
use crate::lint::lexer::Kind;
use crate::lint::source::SourceModel;
use crate::lint::Violation;

/// `er_obs::<fn>` entry points that register a name.
const EMITTERS: [&str; 4] = ["span", "counter_add", "gauge_set", "time"];

/// One name registration, carried to the global uniqueness pass.
#[derive(Debug)]
pub struct Registration {
    pub name: String,
    pub path: String,
    pub line: usize,
    pub text: String,
    /// Already suppressed per-line/file; kept so [`finish`] honors it.
    pub allowed: bool,
}

pub fn check(m: &SourceModel<'_>, out: &mut Vec<Violation>, registrations: &mut Vec<Registration>) {
    // er-obs implements the registry; its internals and doc examples
    // use arbitrary names.
    if m.krate == "obs" {
        return;
    }
    let code = code_indices(m);
    for ci in 0..code.len() {
        if !m.toks[code[ci]].is_ident("er_obs") {
            continue;
        }
        let Some(emitter) = EMITTERS.iter().find(|e| path_seg(m, &code, ci + 1, e)) else {
            continue;
        };
        let open = at(m, &code, ci + 4);
        let lit = at(m, &code, ci + 5);
        let (Some(open), Some(lit)) = (open, lit) else {
            continue;
        };
        if !open.is_punct('(') || lit.kind != Kind::Str || !lit.text.starts_with('"') {
            continue;
        }
        let name = lit.text.trim_matches('"');
        if m.is_gated(lit.line) {
            continue;
        }
        if !well_formed(name) {
            m.report(
                out,
                "obs_naming",
                lit.line,
                format!(
                    "er_obs::{emitter} name `{name}` is not dotted.snake_case \
                     (segments `[a-z][a-z0-9_]*` joined by `.`)"
                ),
            );
        }
        registrations.push(Registration {
            name: name.to_owned(),
            path: m.rel_path.clone(),
            line: lit.line,
            text: m
                .lines
                .get(lit.line - 1)
                .map(|l| l.trim().to_owned())
                .unwrap_or_default(),
            allowed: m.is_allowed("obs_naming", lit.line),
        });
    }
}

/// Cross-file uniqueness: a name registered from more than one file is
/// flagged at every site outside the lexicographically first file, so
/// the report (and the fix) is deterministic.
pub fn finish(registrations: &[Registration]) -> Vec<Violation> {
    let mut by_name: BTreeMap<&str, Vec<&Registration>> = BTreeMap::new();
    for reg in registrations {
        by_name.entry(&reg.name).or_default().push(reg);
    }
    let mut out = Vec::new();
    for (name, regs) in by_name {
        let Some(home) = regs.iter().map(|r| r.path.as_str()).min() else {
            continue;
        };
        for reg in &regs {
            if reg.path != home && !reg.allowed {
                out.push(Violation {
                    rule: "obs_naming",
                    path: reg.path.clone(),
                    line: reg.line,
                    text: reg.text.clone(),
                    message: format!(
                        "er-obs name `{name}` is already registered by {home}; telemetry \
                         names are unique workspace-wide (same-file re-emission is fine) — \
                         pick a distinct name or allow with the shared-phase justification"
                    ),
                });
            }
        }
    }
    out
}

/// `seg(.seg)*`, `seg` = `[a-z][a-z0-9_]*`.
fn well_formed(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            let mut chars = seg.chars();
            chars.next().is_some_and(|c| c.is_ascii_lowercase())
                && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[cfg(test)]
mod tests {
    use super::well_formed;

    #[test]
    fn naming_convention() {
        for good in [
            "fusion",
            "pool.dispatch.parallel",
            "cliquerank_full",
            "a.b_c.d2",
        ] {
            assert!(well_formed(good), "{good} should pass");
        }
        for bad in [
            "",
            "Fusion",
            "pool.Dispatch",
            "kebab-case",
            "a..b",
            ".a",
            "a.",
            "2x",
        ] {
            assert!(!well_formed(bad), "{bad} should fail");
        }
    }
}
