//! Rule `unordered_iteration`: no iteration over `HashMap`/`HashSet`
//! in first-party non-test code.
//!
//! The framework's headline guarantee is bit-identical fusion output at
//! any thread count; `std::collections` hash iteration order varies per
//! process (`RandomState`), so a single `for (k, v) in &map` in a
//! scoring loop silently breaks it. The rule tracks identifiers bound
//! to hash collections — `let` bindings (by annotation or constructor),
//! fn parameters and struct fields — and flags order-exposing uses:
//! `.iter()`, `.iter_mut()`, `.keys()`, `.values()`, `.values_mut()`,
//! `.drain()`, `.into_iter()`, `.into_keys()`, `.into_values()`, and
//! direct `for … in [&[mut]] binding` loops.
//!
//! Order-insensitive uses (`.get`, `.insert`, `.contains_key`,
//! `.len()`) are fine and never flagged. Justified iteration — feeding
//! a sort, a commutative fold — takes
//! `// er-lint: allow(unordered_iteration) -- <why order cannot leak>`.

use std::collections::BTreeSet;

use super::{at, code_indices};
use crate::lint::lexer::Kind;
use crate::lint::source::SourceModel;
use crate::lint::Violation;

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

pub fn check(m: &SourceModel<'_>, out: &mut Vec<Violation>) {
    let code = code_indices(m);
    let bindings = collect_bindings(m, &code);
    if bindings.is_empty() {
        return;
    }
    flag_method_calls(m, &code, &bindings, out);
    flag_for_loops(m, &code, &bindings, out);
}

/// Identifiers bound to a HashMap/HashSet anywhere in the file. The
/// tracking is file-global and flow-insensitive — deliberately coarse
/// for a lint: a false positive takes an allow-comment, a false
/// negative is caught by the next reviewer.
fn collect_bindings(m: &SourceModel<'_>, code: &[usize]) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    for ci in 0..code.len() {
        let tok = &m.toks[code[ci]];
        // `let [mut] name …;` — bind when a hash type appears anywhere
        // before the statement's `;` (covers `let m: HashMap<…> = …`,
        // `let m = HashMap::new()`, and collect-into-annotated forms).
        if tok.is_ident("let") {
            let mut j = ci + 1;
            if at(m, code, j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = at(m, code, j).filter(|t| t.kind == Kind::Ident) else {
                continue;
            };
            let name = name.text.to_owned();
            let mut depth = 0usize;
            for &ti in &code[j + 1..] {
                let t = &m.toks[ti];
                match t.kind {
                    Kind::Open => depth += 1,
                    Kind::Close => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    Kind::Punct if t.text == ";" && depth == 0 => break,
                    Kind::Ident if HASH_TYPES.contains(&t.text) => {
                        bound.insert(name.clone());
                        break;
                    }
                    _ => {}
                }
            }
            continue;
        }
        // `name: …HashMap…` up to the next `,` / `)` / `;` / `{` / `=`
        // at the same depth — fn parameters and struct fields.
        if tok.kind == Kind::Ident && at(m, code, ci + 1).is_some_and(|t| t.is_punct(':')) {
            // Exclude `::` paths and `name::<…>`.
            if at(m, code, ci + 2).is_some_and(|t| t.is_punct(':')) {
                continue;
            }
            let mut depth = 0usize;
            for &ti in &code[ci + 2..] {
                let t = &m.toks[ti];
                match t.kind {
                    Kind::Open => depth += 1,
                    Kind::Close if depth == 0 => break,
                    Kind::Close => depth -= 1,
                    Kind::Punct
                        if depth == 0 && (t.text == "," || t.text == ";" || t.text == "=") =>
                    {
                        break;
                    }
                    Kind::Ident if HASH_TYPES.contains(&t.text) => {
                        bound.insert(tok.text.to_owned());
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    bound
}

/// `binding.iter()` and friends, including `self.field.keys()`.
fn flag_method_calls(
    m: &SourceModel<'_>,
    code: &[usize],
    bound: &BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    for ci in 0..code.len() {
        let recv = &m.toks[code[ci]];
        if recv.kind != Kind::Ident || !bound.contains(recv.text) {
            continue;
        }
        if !at(m, code, ci + 1).is_some_and(|t| t.is_punct('.')) {
            continue;
        }
        let Some(method) = at(m, code, ci + 2).filter(|t| t.kind == Kind::Ident) else {
            continue;
        };
        if ITER_METHODS.contains(&method.text)
            && at(m, code, ci + 3).is_some_and(|t| t.is_punct('('))
        {
            m.report(
                out,
                "unordered_iteration",
                method.line,
                format!(
                    "`.{}()` on hash collection `{}`: iteration order is nondeterministic \
                     (breaks bit-identical output); use a sorted Vec/BTreeMap, or sort the \
                     result before it can influence anything ordered",
                    method.text, recv.text
                ),
            );
        }
    }
}

/// `for pat in [&[mut]] binding { … }` (method-call forms like
/// `for k in map.keys()` are caught by [`flag_method_calls`]).
fn flag_for_loops(
    m: &SourceModel<'_>,
    code: &[usize],
    bound: &BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    for ci in 0..code.len() {
        if !m.toks[code[ci]].is_ident("for") {
            continue;
        }
        // Find `in` at pattern depth 0 within a short window (patterns
        // like `(k, v)` nest one level).
        let mut depth = 0usize;
        let mut in_at = None;
        for (k, &ti) in code.iter().enumerate().skip(ci + 1).take(11) {
            let t = &m.toks[ti];
            match t.kind {
                Kind::Open => depth += 1,
                Kind::Close => depth = depth.saturating_sub(1),
                Kind::Ident if t.text == "in" && depth == 0 => {
                    in_at = Some(k);
                    break;
                }
                _ => {}
            }
        }
        let Some(mut j) = in_at else { continue };
        j += 1;
        while at(m, code, j).is_some_and(|t| t.is_punct('&') || t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = at(m, code, j).filter(|t| t.kind == Kind::Ident) else {
            continue;
        };
        if !bound.contains(name.text) {
            continue;
        }
        // Only a direct iteration: the loop body must open right after
        // the binding (anything else — `.keys()`, indexing — is either
        // flagged elsewhere or not hash iteration).
        if at(m, code, j + 1).is_some_and(|t| t.kind == Kind::Open && t.text == "{") {
            m.report(
                out,
                "unordered_iteration",
                name.line,
                format!(
                    "`for … in {0}` iterates hash collection `{0}` in nondeterministic \
                     order (breaks bit-identical output); iterate a sorted view instead",
                    name.text
                ),
            );
        }
    }
}
