//! The five `er-lint` rules. Each rule is a pure function from a
//! [`SourceModel`] to violations; `obs_naming` additionally feeds a
//! workspace-global uniqueness pass (see [`obs_naming::finish`]).
//!
//! | rule                  | scope                      | invariant it proves                                   |
//! |-----------------------|----------------------------|-------------------------------------------------------|
//! | `unordered_iteration` | lib, bin, xtask (non-test) | no HashMap/HashSet iteration on deterministic paths   |
//! | `zero_alloc`          | `// er-lint: zero-alloc` fns | no allocating constructs in marked hot kernels      |
//! | `dispatch`            | lib, bin (non-test)        | every pooled region sits under `pool.dispatch(…)`     |
//! | `panic`               | lib (non-test, non-debug)  | no `unwrap()`/`expect(`/`panic!` in library code      |
//! | `obs_naming`          | lib, bin, bench (non-test) | er-obs names are `dotted.snake_case`, unique per file |

pub mod dispatch;
pub mod obs_naming;
pub mod panic;
pub mod unordered_iteration;
pub mod zero_alloc;

use super::lexer::{Kind, Tok};
use super::source::SourceModel;

/// Indices of non-comment tokens, so rules can pattern-match on code
/// with straight lookahead while keeping original token indices (for
/// [`SourceModel::enclosing_fn`]) and line numbers.
pub fn code_indices(m: &SourceModel<'_>) -> Vec<usize> {
    (0..m.toks.len())
        .filter(|&i| m.toks[i].kind != Kind::Comment)
        .collect()
}

/// Token at code-index `ci` of `code`, if in range.
pub fn at<'m, 'a>(m: &'m SourceModel<'a>, code: &[usize], ci: usize) -> Option<&'m Tok<'a>> {
    code.get(ci).map(|&ti| &m.toks[ti])
}

/// True when the code tokens at `ci..` are `:: ident` with this text.
pub fn path_seg(m: &SourceModel<'_>, code: &[usize], ci: usize, text: &str) -> bool {
    at(m, code, ci).is_some_and(|t| t.is_punct(':'))
        && at(m, code, ci + 1).is_some_and(|t| t.is_punct(':'))
        && at(m, code, ci + 2).is_some_and(|t| t.is_ident(text))
}
