//! Engine self-tests: each rule must demonstrably fire on its
//! committed bad-code fixture (`xtask/fixtures/lint/`), each
//! suppression must silence it, and the committed workspace baseline
//! must be exactly what `--update-baseline` would regenerate.

use std::path::{Path, PathBuf};

use super::source::SourceKind;
use super::{against_baseline, baseline, lint_files, lint_workspace, LintReport, Violation};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/lint")
}

/// Loads committed fixtures as library sources of a `fixture` crate.
fn lint_fixtures(names: &[&str]) -> LintReport {
    let files: Vec<(String, SourceKind, String, String)> = names
        .iter()
        .map(|name| {
            let path = fixtures_dir().join(name);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
            (
                "fixture".to_owned(),
                SourceKind::Lib,
                format!("xtask/fixtures/lint/{name}"),
                text,
            )
        })
        .collect();
    lint_files(&files)
}

fn rule_hits<'r>(report: &'r LintReport, rule: &str) -> Vec<&'r Violation> {
    report
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .collect()
}

#[test]
fn unordered_iteration_fires_and_allow_silences() {
    let report = lint_fixtures(&["unordered_iteration.rs"]);
    let hits = rule_hits(&report, "unordered_iteration");
    let texts: Vec<&str> = hits.iter().map(|v| v.text.as_str()).collect();
    assert_eq!(hits.len(), 6, "hits: {texts:?}");
    for needle in [
        "map.iter()",
        "for x in set",
        "map.keys()",
        "map.values()",
        "map.drain()",
        "seen.iter()",
    ] {
        assert!(
            texts.iter().any(|t| t.contains(needle)),
            "expected a hit on `{needle}`, got {texts:?}"
        );
    }
    // The allowed commutative sum must not appear.
    assert!(!texts.iter().any(|t| t.contains("values().sum")));
    assert!(report.directive_errors.is_empty());
}

#[test]
fn zero_alloc_fires_only_in_marked_fn_and_allow_silences() {
    let report = lint_fixtures(&["zero_alloc.rs"]);
    let hits = rule_hits(&report, "zero_alloc");
    let texts: Vec<&str> = hits.iter().map(|v| v.text.as_str()).collect();
    assert_eq!(hits.len(), 7, "hits: {texts:?}");
    for needle in [
        "vec![0.0; 4]",
        ".to_vec()",
        ".collect()",
        "Box::new",
        "Vec::with_capacity",
        "String::from",
        "format!",
    ] {
        assert!(
            texts.iter().any(|t| t.contains(needle)),
            "expected a hit on `{needle}`, got {texts:?}"
        );
    }
    // The allowed cold path and the unmarked fn stay silent.
    assert!(!texts.iter().any(|t| t.contains("to_string")));
    assert!(!texts.iter().any(|t| t.contains("Vec::new")));
    assert!(report.directive_errors.is_empty());
}

#[test]
fn dispatch_fires_without_decision_and_is_silent_with_one() {
    let report = lint_fixtures(&["dispatch.rs"]);
    let hits = rule_hits(&report, "dispatch");
    let texts: Vec<&str> = hits.iter().map(|v| v.text.as_str()).collect();
    assert_eq!(hits.len(), 3, "hits: {texts:?}");
    assert!(hits.iter().all(|v| v.message.contains("undecided")));
    // Every fire is in an `undecided*` fn; `decided*` and the allowed
    // `delegated` are silent.
    assert!(report.directive_errors.is_empty());
}

#[test]
fn panic_fires_in_lib_code_and_respects_gates() {
    let report = lint_fixtures(&["panic.rs"]);
    let hits = rule_hits(&report, "panic");
    let texts: Vec<&str> = hits.iter().map(|v| v.text.as_str()).collect();
    assert_eq!(hits.len(), 3, "hits: {texts:?}");
    assert!(texts.iter().any(|t| t.contains("x.unwrap()")));
    assert!(texts.iter().any(|t| t.contains("x.expect(")));
    assert!(texts
        .iter()
        .any(|t| t.contains("panic!(\"unrecoverable\")")));
    // unwrap_or, the allowed line, the debug validator and the test
    // module are silent.
    assert!(!texts.iter().any(|t| t.contains("unwrap_or")));
    assert!(!texts.iter().any(|t| t.contains("checked_add")));
    assert!(!texts.iter().any(|t| t.contains("invariant violated")));
    assert!(report.directive_errors.is_empty());
}

#[test]
fn panic_rule_only_covers_library_crates() {
    let text = std::fs::read_to_string(fixtures_dir().join("panic.rs")).unwrap();
    let report = lint_files(&[(
        "bench".into(),
        SourceKind::Bench,
        "crates/bench/benches/fixture.rs".into(),
        text,
    )]);
    assert!(rule_hits(&report, "panic").is_empty());
}

#[test]
fn obs_naming_flags_bad_names_and_cross_file_clashes() {
    let report = lint_fixtures(&["obs_naming.rs", "obs_naming_clash.rs"]);
    let hits = rule_hits(&report, "obs_naming");
    let texts: Vec<&str> = hits.iter().map(|v| v.text.as_str()).collect();
    // 3 malformed names + 1 unallowed cross-file clash.
    assert_eq!(hits.len(), 4, "hits: {texts:?}");
    for needle in ["BadCamel", "kebab-case.name", "trailing."] {
        assert!(
            texts.iter().any(|t| t.contains(needle)),
            "expected a hit on `{needle}`, got {texts:?}"
        );
    }
    let clash: Vec<&&Violation> = hits
        .iter()
        .filter(|v| v.message.contains("already registered"))
        .collect();
    assert_eq!(clash.len(), 1, "one unallowed clash: {texts:?}");
    assert!(clash[0].path.ends_with("obs_naming_clash.rs"));
    assert!(clash[0].message.contains("obs_naming.rs"));
    assert!(report.directive_errors.is_empty());
}

#[test]
fn malformed_directives_are_hard_errors_and_do_not_suppress() {
    let report = lint_fixtures(&["directives.rs"]);
    assert_eq!(
        report.directive_errors.len(),
        4,
        "reasonless allow, unknown rule, dangling zero-alloc, typo: {:?}",
        report.directive_errors
    );
    // The botched allows must NOT have suppressed the panics they sat on.
    assert_eq!(rule_hits(&report, "panic").len(), 2);
}

#[test]
fn baseline_grandfathers_and_reports_stale() {
    let report = lint_fixtures(&["panic.rs"]);
    let entries = baseline::keyed(&report.violations);
    // Full baseline: nothing fresh, nothing stale.
    let outcome = against_baseline(&report.violations, &entries);
    assert!(outcome.fresh.is_empty());
    assert_eq!(outcome.baselined, report.violations.len());
    assert!(outcome.stale.is_empty());
    // Drop one entry: exactly that violation is fresh.
    let outcome = against_baseline(&report.violations, &entries[1..]);
    assert_eq!(outcome.fresh.len(), 1);
    // Add a bogus entry: it shows up stale.
    let mut padded = entries.clone();
    padded.push(baseline::Entry {
        path: "crates/gone/src/lib.rs".into(),
        rule: "panic".into(),
        text: "fixed_long_ago.unwrap()".into(),
        nth: 0,
    });
    let outcome = against_baseline(&report.violations, &padded);
    assert_eq!(outcome.stale.len(), 1);
    assert!(outcome.fresh.is_empty());
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent")
        .to_path_buf()
}

/// The tree must lint clean against the committed baseline: no fresh
/// violations, no stale entries, no malformed directives.
#[test]
fn workspace_lints_clean_against_committed_baseline() {
    let root = workspace_root();
    let report = lint_workspace(&root).unwrap();
    assert!(
        report.directive_errors.is_empty(),
        "malformed directives: {:?}",
        report.directive_errors
    );
    let entries = baseline::load(&root.join("xtask/lint_baseline.json")).unwrap();
    let outcome = against_baseline(&report.violations, &entries);
    assert!(
        outcome.fresh.is_empty(),
        "new violations (fix or allow them): {:#?}",
        outcome.fresh
    );
    assert!(
        outcome.stale.is_empty(),
        "stale baseline entries (run `cargo xtask lint --update-baseline`): {:?}",
        outcome.stale
    );
}

/// `--update-baseline` output is deterministic and the committed file
/// IS that output, byte for byte (no timestamps, stable ordering) —
/// the CI drift guard.
#[test]
fn committed_baseline_is_byte_identical_to_regeneration() {
    let root = workspace_root();
    let first = baseline::render(&baseline::keyed(&lint_workspace(&root).unwrap().violations));
    let second = baseline::render(&baseline::keyed(&lint_workspace(&root).unwrap().violations));
    assert_eq!(first, second, "regeneration must be deterministic");
    let committed = std::fs::read_to_string(root.join("xtask/lint_baseline.json")).unwrap();
    assert_eq!(
        committed, first,
        "committed baseline drifted; run `cargo xtask lint --update-baseline`"
    );
}
