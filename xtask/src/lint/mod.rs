//! `er-lint` — the project-invariant static-analysis engine behind
//! `cargo xtask lint`.
//!
//! Five rules keyed to this repo's invariants (see `rules/`):
//! `unordered_iteration`, `zero_alloc`, `dispatch`, `panic`,
//! `obs_naming`. The engine is a hand-rolled miniature — a small Rust
//! lexer plus a brace/item tracker, in the same vendored-miniature
//! spirit as `vendor/loom` — because the invariants it proves are
//! project-specific and the workspace is hermetic (no external deps).
//!
//! Violation lifecycle:
//!
//! 1. A rule fires on a line → suppressed if the line carries (or sits
//!    under) `// er-lint: allow(<rule>) -- <reason>`, or the file has
//!    a matching `allow-file`, or the line is `#[cfg(test)]`/
//!    `#[cfg(debug_assertions)]`-gated.
//! 2. Surviving violations are matched against the committed
//!    `xtask/lint_baseline.json`: grandfathered ones pass (reported as
//!    a count), **new ones fail the run**.
//! 3. `--update-baseline` rewrites the baseline from the current tree
//!    (for intentional grandfathering; the diff shows reviewers
//!    exactly what was admitted). Output is deterministic — sorted,
//!    timestamp-free — so regeneration is reviewable and CI can assert
//!    byte-stability.
//!
//! Malformed `er-lint:` directives are hard errors, never baselined:
//! a typo'd allow must not silently disable a rule.

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod source;

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

use crate::sources::{workspace_sources, SourceFile, SourceKind};
use source::SourceModel;

/// Every real rule name (the `directive` pseudo-rule — malformed
/// annotations — is not allowable and so not listed).
pub const RULES: [&str; 5] = [
    "unordered_iteration",
    "zero_alloc",
    "dispatch",
    "panic",
    "obs_naming",
];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Trimmed source text of the line (the baseline key).
    pub text: String,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Everything one lint pass produces, before baseline filtering.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    pub directive_errors: Vec<Violation>,
}

/// Lints a set of already-loaded files. Separated from the filesystem
/// walk so tests can run the engine over fixture files.
pub fn lint_files(files: &[(String, SourceKind, String, String)]) -> LintReport {
    let mut report = LintReport::default();
    let mut registrations = Vec::new();
    for (krate, kind, rel, text) in files {
        let m = SourceModel::build(krate, *kind, rel, text);
        report
            .directive_errors
            .extend(m.directive_errors.iter().cloned());
        let out = &mut report.violations;
        if matches!(kind, SourceKind::Lib | SourceKind::Bin | SourceKind::Xtask) {
            rules::unordered_iteration::check(&m, out);
        }
        rules::zero_alloc::check(&m, out);
        if matches!(kind, SourceKind::Lib | SourceKind::Bin) {
            rules::dispatch::check(&m, out);
        }
        rules::panic::check(&m, out);
        if matches!(kind, SourceKind::Lib | SourceKind::Bin | SourceKind::Bench) {
            rules::obs_naming::check(&m, out, &mut registrations);
        }
    }
    report
        .violations
        .extend(rules::obs_naming::finish(&registrations));
    // File order is already deterministic; make line order within the
    // merged (per-rule + global) stream deterministic too.
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Reads and lints every first-party source under `root`.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let sources = workspace_sources(root)?;
    let mut files = Vec::new();
    for SourceFile {
        krate,
        kind,
        path,
        rel,
    } in sources
    {
        // Tests/examples are never linted (every rule exempts them);
        // skipping the read keeps the pass fast.
        if matches!(kind, SourceKind::Test | SourceKind::Example) {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        files.push((krate, kind, rel, text));
    }
    Ok(lint_files(&files))
}

/// The outcome of matching a report against the baseline.
pub struct Outcome {
    /// Violations not in the baseline — these fail the run.
    pub fresh: Vec<Violation>,
    /// Count of grandfathered violations that still fire.
    pub baselined: usize,
    /// Baseline entries that no longer fire (fixed or moved): stale,
    /// reported so `--update-baseline` gets run, but never fatal.
    pub stale: Vec<baseline::Entry>,
}

/// Splits `violations` into fresh vs baselined and finds stale entries.
pub fn against_baseline(violations: &[Violation], entries: &[baseline::Entry]) -> Outcome {
    let known: BTreeSet<&baseline::Entry> = entries.iter().collect();
    let keys = baseline::keyed(violations);
    let mut fresh = Vec::new();
    let mut baselined = 0usize;
    let mut seen: BTreeSet<&baseline::Entry> = BTreeSet::new();
    for (v, key) in violations.iter().zip(&keys) {
        match known.get(key) {
            Some(entry) => {
                seen.insert(entry);
                baselined += 1;
            }
            None => fresh.push(v.clone()),
        }
    }
    let stale = entries
        .iter()
        .filter(|e| !seen.contains(e))
        .cloned()
        .collect();
    Outcome {
        fresh,
        baselined,
        stale,
    }
}

/// Markdown drift summary for CI step summaries.
pub fn render_summary(outcome: &Outcome, violations: &[Violation]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### er-lint");
    let _ = writeln!(
        out,
        "\n{} violation(s): {} new, {} baselined, {} stale baseline entr(ies).\n",
        violations.len(),
        outcome.fresh.len(),
        outcome.baselined,
        outcome.stale.len()
    );
    if !violations.is_empty() {
        let _ = writeln!(out, "| rule | firing |");
        let _ = writeln!(out, "| --- | ---: |");
        for rule in RULES {
            let n = violations.iter().filter(|v| v.rule == rule).count();
            if n > 0 {
                let _ = writeln!(out, "| {rule} | {n} |");
            }
        }
        let _ = writeln!(out);
    }
    if !outcome.fresh.is_empty() {
        let _ = writeln!(out, "**New violations (failing):**\n");
        for v in &outcome.fresh {
            let _ = writeln!(out, "- `{}:{}` [{}] {}", v.path, v.line, v.rule, v.message);
        }
        let _ = writeln!(out);
    }
    if !outcome.stale.is_empty() {
        let _ = writeln!(
            out,
            "**Stale baseline entries** (fixed since grandfathering — run \
             `cargo xtask lint --update-baseline` to shrink the baseline):\n"
        );
        for e in &outcome.stale {
            let _ = writeln!(out, "- `{}` [{}] `{}`", e.path, e.rule, e.text);
        }
    }
    out
}

/// `cargo xtask lint [--update-baseline] [--summary-out <path>]`.
pub fn cli(args: &[String], root: &Path) -> Result<(), String> {
    let mut update = false;
    let mut summary_out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--update-baseline" => update = true,
            "--summary-out" => {
                summary_out = Some(it.next().ok_or("--summary-out needs a path")?.to_owned());
            }
            other => return Err(format!("unknown lint flag `{other}`")),
        }
    }
    run(root, update, summary_out.as_deref())
}

/// The full pass: lint, baseline-match, report. Errors on new
/// violations or malformed directives (unless `--update-baseline`
/// grandfathers the former).
pub fn run(root: &Path, update_baseline: bool, summary_out: Option<&str>) -> Result<(), String> {
    let baseline_path = root.join("xtask/lint_baseline.json");
    let report = lint_workspace(root)?;
    for err in &report.directive_errors {
        eprintln!("xtask lint: {err}");
    }
    if update_baseline {
        let rendered = baseline::render(&baseline::keyed(&report.violations));
        std::fs::write(&baseline_path, &rendered)
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        eprintln!(
            "xtask lint: baseline updated with {} entr(ies) at {}",
            report.violations.len(),
            baseline_path.display()
        );
    }
    let entries = baseline::load(&baseline_path)?;
    let outcome = against_baseline(&report.violations, &entries);
    for v in &outcome.fresh {
        eprintln!("xtask lint: {v}");
    }
    for e in &outcome.stale {
        eprintln!(
            "xtask lint: stale baseline entry [{}] {} `{}` (run --update-baseline)",
            e.rule, e.path, e.text
        );
    }
    if let Some(path) = summary_out {
        std::fs::write(path, render_summary(&outcome, &report.violations))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    eprintln!(
        "xtask lint: {} violation(s) — {} new, {} baselined, {} stale",
        report.violations.len(),
        outcome.fresh.len(),
        outcome.baselined,
        outcome.stale.len()
    );
    if !report.directive_errors.is_empty() {
        return Err(format!(
            "{} malformed er-lint directive(s) (never baselined)",
            report.directive_errors.len()
        ));
    }
    if !outcome.fresh.is_empty() {
        return Err(format!(
            "{} new lint violation(s); fix them, add `// er-lint: allow(<rule>) -- reason`, \
             or (for intentional grandfathering) run `cargo xtask lint --update-baseline`",
            outcome.fresh.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests;
