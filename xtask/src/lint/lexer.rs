//! A miniature Rust lexer for `er-lint`.
//!
//! Tokenizes a source file into just enough structure for source-level
//! invariant checking: identifiers (with `r#` raw-ident normalization),
//! lifetimes vs char literals, every string-literal flavor (`"…"`,
//! `r"…"`, `r#"…"#` at any hash depth, `b"…"`, `br#"…"#`), nested block
//! comments, numbers (including float/exponent forms so `1.0e-5` is one
//! token), and single-character punctuation. Generic closers like `>>`
//! are deliberately emitted as two `>` puncts, so the lexer never has
//! the shift-vs-generics ambiguity a parser would.
//!
//! Comments are *kept* as tokens: `er-lint` annotations
//! (`// er-lint: …`) live in them, and the unsafe audit looks for
//! `SAFETY:` markers there.

/// Token classification. Keywords are plain [`Kind::Ident`]s — the
/// rules match on text where it matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword; `r#ident` is normalized to `ident`.
    Ident,
    /// A lifetime such as `'a` (text keeps the quote).
    Lifetime,
    /// Numeric literal, including suffixes and exponents.
    Num,
    /// Any string-flavored literal (plain, raw, byte, raw-byte).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// One opening delimiter: `(`, `[` or `{`.
    Open,
    /// One closing delimiter: `)`, `]` or `}`.
    Close,
    /// Any other single punctuation character.
    Punct,
    /// Line or block comment, delimiters included in the text.
    Comment,
}

/// One token: its classification, raw text and 1-based starting line.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: Kind,
    pub text: &'a str,
    pub line: usize,
}

impl Tok<'_> {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == Kind::Ident && self.text == text
    }

    /// True for a punct/delimiter token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        matches!(self.kind, Kind::Punct | Kind::Open | Kind::Close) && self.text.chars().eq([ch])
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenizes `src`. Unterminated literals and comments end at EOF
/// rather than erroring: the linter runs on whatever is committed, and
/// rustc itself is the gate for actual syntax validity.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    toks: Vec<Tok<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok<'a>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let start_line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                    self.push(Kind::Comment, start, start_line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(Kind::Comment, start, start_line);
                }
                b'"' => {
                    self.plain_string();
                    self.push(Kind::Str, start, start_line);
                }
                b'r' | b'b' if self.string_prefix_len().is_some() => {
                    if self.bytes[self.pos] == b'b' {
                        self.pos += 1;
                    }
                    if self.bytes.get(self.pos) == Some(&b'r') {
                        // Raw (maybe byte) string: `r`/`br` then hashes.
                        self.pos += 1;
                        self.raw_string();
                    } else {
                        // Byte string `b"…"`: escaped like a plain one.
                        self.plain_string();
                    }
                    self.push(Kind::Str, start, start_line);
                }
                b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier: emit with the `r#` stripped so
                    // `r#fn` and `fn` compare equal where it matters.
                    self.pos += 2;
                    let ident_start = self.pos;
                    self.consume_while(is_ident_continue);
                    self.toks.push(Tok {
                        kind: Kind::Ident,
                        text: &self.src[ident_start..self.pos],
                        line: start_line,
                    });
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.char_literal();
                    self.push(Kind::Char, start, start_line);
                }
                b'\'' => {
                    if self.lex_quote() {
                        self.push(Kind::Char, start, start_line);
                    } else {
                        self.push(Kind::Lifetime, start, start_line);
                    }
                }
                b'0'..=b'9' => {
                    self.number();
                    self.push(Kind::Num, start, start_line);
                }
                _ if is_ident_start(b) => {
                    self.consume_while(is_ident_continue);
                    self.push(Kind::Ident, start, start_line);
                }
                b'(' | b'[' | b'{' => {
                    self.pos += 1;
                    self.push(Kind::Open, start, start_line);
                }
                b')' | b']' | b'}' => {
                    self.pos += 1;
                    self.push(Kind::Close, start, start_line);
                }
                _ => {
                    // Single punctuation char; step a whole UTF-8 char
                    // so stray non-ASCII outside literals can't split.
                    let ch_len = self.src[self.pos..]
                        .chars()
                        .next()
                        .map_or(1, char::len_utf8);
                    self.pos += ch_len;
                    self.push(Kind::Punct, start, start_line);
                }
            }
        }
        self.toks
    }

    fn push(&mut self, kind: Kind, start: usize, line: usize) {
        self.toks.push(Tok {
            kind,
            text: &self.src[start..self.pos],
            line,
        });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn consume_while(&mut self, pred: impl Fn(u8) -> bool) {
        while self.pos < self.bytes.len() && pred(self.bytes[self.pos]) {
            self.pos += 1;
        }
    }

    /// Length of a string-literal prefix (`r`, `b`, `br` plus any `#`s)
    /// starting at `pos`, if the characters really begin a string.
    fn string_prefix_len(&self) -> Option<usize> {
        let mut i = 0;
        if self.peek(i) == Some(b'b') {
            i += 1;
        }
        let raw = self.peek(i) == Some(b'r');
        if raw {
            i += 1;
            while self.peek(i) == Some(b'#') {
                i += 1;
            }
        }
        // `b` or `br`/`r` consumed something, and a quote follows.
        (i > 0 && self.peek(i) == Some(b'"')).then_some(i)
    }

    /// `pos` is on the opening quote of an escaped (non-raw) string.
    fn plain_string(&mut self) {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos = (self.pos + 2).min(self.bytes.len()),
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// `pos` is on the `#`s-or-quote of a raw string (prefix consumed
    /// up to but not including the hashes).
    fn raw_string(&mut self) {
        let mut hashes = 0;
        while self.bytes.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.bytes.get(self.pos) != Some(&b'"') {
            return; // not actually a raw string; be permissive
        }
        self.pos += 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.bytes[self.pos] == b'"' {
                let after = self.pos + 1;
                let closing = self.bytes[after..]
                    .iter()
                    .take(hashes)
                    .take_while(|&&b| b == b'#')
                    .count();
                if closing == hashes {
                    self.pos = after + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// `pos` is on the `'` of a definite char literal (e.g. after `b`).
    fn char_literal(&mut self) {
        self.pos += 1; // opening '
        if self.bytes.get(self.pos) == Some(&b'\\') {
            self.pos += 2;
        } else if self.pos < self.bytes.len() {
            let ch_len = self.src[self.pos..]
                .chars()
                .next()
                .map_or(1, char::len_utf8);
            self.pos += ch_len;
        }
        if self.bytes.get(self.pos) == Some(&b'\'') {
            self.pos += 1;
        }
    }

    /// `pos` is on a bare `'`: char literal or lifetime? Returns true
    /// for a char literal (and consumes it); false consumes a lifetime.
    fn lex_quote(&mut self) -> bool {
        // `'\…'` is always a char literal.
        if self.peek(1) == Some(b'\\') {
            self.char_literal();
            return true;
        }
        // `'X'` (one char then a quote) is a char literal; `'ident`
        // with no closing quote is a lifetime. Multi-byte chars: `'é'`.
        let rest = &self.src[self.pos + 1..];
        let mut chars = rest.chars();
        match chars.next() {
            Some(c) if chars.as_str().starts_with('\'') => {
                self.pos += 1 + c.len_utf8() + 1;
                true
            }
            _ => {
                self.pos += 1;
                self.consume_while(is_ident_continue);
                false
            }
        }
    }

    /// `pos` is on a leading digit.
    fn number(&mut self) {
        self.consume_while(is_ident_continue);
        // Fraction: only when a digit follows the dot, so `0..n` and
        // `1.max(2)` stay three/one tokens respectively.
        if self.bytes.get(self.pos) == Some(&b'.')
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
            self.consume_while(is_ident_continue);
        }
        // Exponent sign: `1e-5` / `2.5E+3` (the `e` was consumed above).
        if matches!(self.bytes.get(self.pos), Some(b'+' | b'-'))
            && self
                .bytes
                .get(self.pos - 1)
                .is_some_and(|&b| b == b'e' || b == b'E')
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
            self.consume_while(is_ident_continue);
        }
    }

    /// `pos` is on the `/` of `/*`. Handles nesting.
    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
    }
}

/// Reconstructs per-line source text with comments and every literal
/// blanked out, so plain substring scans only ever see code. This is
/// what the unsafe audit runs on (it predates the lexer; routing it
/// through here adds raw-string correctness for free).
pub fn code_lines(src: &str) -> Vec<String> {
    let n_lines = src.lines().count().max(1) + usize::from(src.ends_with('\n'));
    let mut lines = vec![String::new(); n_lines];
    for tok in lex(src) {
        if matches!(tok.kind, Kind::Comment | Kind::Str | Kind::Char) {
            continue;
        }
        let line = &mut lines[tok.line - 1];
        if !line.is_empty() {
            line.push(' ');
        }
        // Multi-line tokens can only be literals/comments, both
        // filtered above, so the whole text belongs to one line.
        line.push_str(tok.text);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        assert_eq!(
            kinds("fn main() {}"),
            vec![
                (Kind::Ident, "fn"),
                (Kind::Ident, "main"),
                (Kind::Open, "("),
                (Kind::Close, ")"),
                (Kind::Open, "{"),
                (Kind::Close, "}"),
            ]
        );
    }

    #[test]
    fn nested_generics_close_as_single_puncts() {
        // `Vec<Vec<u8>>` must not fuse `>>` into one token.
        let toks = kinds("let x: Vec<Vec<u8>> = v;");
        let closes: Vec<&str> = toks
            .iter()
            .filter(|(k, t)| *k == Kind::Punct && *t == ">")
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(closes.len(), 2);
    }

    #[test]
    fn raw_strings_at_any_hash_depth() {
        let toks = kinds(r####"let s = r#"quote " inside"#; let t = r##"deep "# inside"##;"####);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Str)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].contains("quote"));
        assert!(strs[1].contains("deep"));
        // Nothing after the raw strings leaked into them.
        assert!(toks.iter().any(|(k, t)| *k == Kind::Ident && *t == "t"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = br#"raw "bytes""#;"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 2);
    }

    #[test]
    fn raw_idents_normalize() {
        let toks = kinds("let r#fn = r#type;");
        assert!(toks.iter().any(|(k, t)| *k == Kind::Ident && *t == "fn"));
        assert!(toks.iter().any(|(k, t)| *k == Kind::Ident && *t == "type"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 2);
        // The '"' char literal must not open a string: the final `}`
        // still lexes as a delimiter.
        assert_eq!(toks.last().unwrap().0, Kind::Close);
    }

    #[test]
    fn block_comments_nest_and_track_lines() {
        let src = "a /* outer /* inner */ still */ b\nc";
        let toks = lex(src);
        assert_eq!(
            toks.iter()
                .map(|t| (t.kind, t.text, t.line))
                .collect::<Vec<_>>(),
            vec![
                (Kind::Ident, "a", 1),
                (Kind::Comment, "/* outer /* inner */ still */", 1),
                (Kind::Ident, "b", 1),
                (Kind::Ident, "c", 2),
            ]
        );
    }

    #[test]
    fn numbers_with_fractions_exponents_and_ranges() {
        assert_eq!(
            kinds("1.0e-5 0..n 1.5_f64 0xff"),
            vec![
                (Kind::Num, "1.0e-5"),
                (Kind::Num, "0"),
                (Kind::Punct, "."),
                (Kind::Punct, "."),
                (Kind::Ident, "n"),
                (Kind::Num, "1.5_f64"),
                (Kind::Num, "0xff"),
            ]
        );
    }

    #[test]
    fn code_lines_blank_comments_and_literals() {
        let lines = code_lines("let s = \"has unsafe\"; // unsafe too\nunsafe { f() }\n");
        assert!(!lines[0].contains("unsafe"));
        assert!(lines[1].contains("unsafe"));
    }

    #[test]
    fn code_lines_survive_raw_strings_with_quotes() {
        let lines = code_lines("let s = r#\"one \" two\"#;\nlet t = 3;\n");
        assert!(lines[0].contains("let s ="));
        assert!(lines[1].contains("let t = 3"));
    }

    #[test]
    fn multiline_string_keeps_line_numbers() {
        let toks = lex("let s = \"a\nb\";\nlet t = 1;");
        let t = toks.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t.line, 3);
    }
}
