//! The committed violation baseline (`xtask/lint_baseline.json`).
//!
//! Pre-existing violations are grandfathered: they live in a committed
//! baseline file, `cargo xtask lint` fails only on violations *not* in
//! it, and `--update-baseline` regenerates it from the current tree.
//!
//! Entries are keyed by `(rule, path, trimmed line text, nth)` — the
//! *content* of the offending line, not its line number — so unrelated
//! edits above a grandfathered site don't churn the baseline or
//! spuriously "fix"/"create" violations. `nth` disambiguates identical
//! lines (the nth occurrence of that exact (rule, path, text) triple,
//! in file order). The file is fully sorted and carries no timestamps,
//! so regeneration is byte-for-byte deterministic — CI asserts this.

use std::collections::BTreeMap;
use std::path::Path;

use er_obs::json::{self, Value};

use super::Violation;

/// One grandfathered violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    pub path: String,
    pub rule: String,
    pub text: String,
    pub nth: usize,
}

/// Assigns each violation its `nth` index among identical
/// (rule, path, text) triples, in input (file) order.
pub fn keyed(violations: &[Violation]) -> Vec<Entry> {
    let mut counts: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
    violations
        .iter()
        .map(|v| {
            let slot = counts
                .entry((v.rule, v.path.as_str(), v.text.as_str()))
                .or_insert(0);
            let nth = *slot;
            *slot += 1;
            Entry {
                path: v.path.clone(),
                rule: v.rule.to_owned(),
                text: v.text.clone(),
                nth,
            }
        })
        .collect()
}

/// Serializes entries (sorted, no timestamps — deterministic).
pub fn render(entries: &[Entry]) -> String {
    let mut sorted: Vec<&Entry> = entries.iter().collect();
    sorted.sort();
    let items = sorted
        .into_iter()
        .map(|e| {
            Value::Obj(vec![
                ("path".into(), Value::Str(e.path.clone())),
                ("rule".into(), Value::Str(e.rule.clone())),
                ("text".into(), Value::Str(e.text.clone())),
                ("nth".into(), Value::Num(e.nth as f64)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema".into(), Value::Str("er-lint-baseline/v1".into())),
        ("entries".into(), Value::Arr(items)),
    ])
    .to_pretty()
}

/// Loads a baseline file; a missing file is an empty baseline (the
/// bootstrap case), a malformed one is an error.
pub fn load(path: &Path) -> Result<Vec<Entry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    let value = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = value.get("schema").and_then(Value::as_str);
    if schema != Some("er-lint-baseline/v1") {
        return Err(format!(
            "{}: unexpected schema {schema:?} (want er-lint-baseline/v1)",
            path.display()
        ));
    }
    let entries = value
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{}: missing `entries` array", path.display()))?;
    entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let field = |k: &str| {
                e.get(k)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("{}: entry {i} missing `{k}`", path.display()))
            };
            Ok(Entry {
                path: field("path")?,
                rule: field("rule")?,
                text: field("text")?,
                nth: e
                    .get("nth")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("{}: entry {i} missing `nth`", path.display()))?
                    as usize,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, text: &str) -> Violation {
        Violation {
            rule,
            path: path.into(),
            line: 1,
            text: text.into(),
            message: String::new(),
        }
    }

    #[test]
    fn nth_disambiguates_identical_lines() {
        let entries = keyed(&[
            v("panic", "a.rs", "x.unwrap();"),
            v("panic", "a.rs", "x.unwrap();"),
            v("panic", "b.rs", "x.unwrap();"),
        ]);
        assert_eq!(entries.iter().map(|e| e.nth).collect::<Vec<_>>(), [0, 1, 0]);
    }

    #[test]
    fn render_is_order_independent_and_deterministic() {
        let a = v("panic", "z.rs", "boom!");
        let b = v("dispatch", "a.rs", "pool.scope(…)");
        let fwd = render(&keyed(&[a.clone(), b.clone()]));
        let rev = render(&keyed(&[b, a]));
        assert_eq!(fwd, rev);
        assert!(!fwd.contains("20"), "no timestamps: {fwd}");
    }

    #[test]
    fn round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("er-lint-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let entries = keyed(&[v("obs_naming", "a.rs", "er_obs::span(\"X\")")]);
        std::fs::write(&path, render(&entries)).unwrap();
        assert_eq!(load(&path).unwrap(), entries);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty_and_garbage_errors() {
        assert!(load(Path::new("/nonexistent/baseline.json"))
            .unwrap()
            .is_empty());
        let dir = std::env::temp_dir().join("er-lint-baseline-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"schema\": \"other/v9\", \"entries\": []}\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
