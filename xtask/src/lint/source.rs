//! Per-file source model for `er-lint`: a brace/item tracker over the
//! token stream plus the annotation grammar.
//!
//! From one lexed file this derives everything the rules consume:
//!
//! * **Function spans** — each `fn`, its name, header line and body
//!   token range (brace-matched, with paren tracking so argument lists
//!   and trait-fn declarations without bodies are handled).
//! * **Gated lines** — lines under `#[cfg(test)]` / `#[cfg(any(…,
//!   test, …))]` items or `#[cfg(debug_assertions)]` debug validators.
//!   Rules skip them: tests and debug-only checks may panic, allocate
//!   and iterate however they like. `cfg(not(test))` is production
//!   code and is *not* gated.
//! * **Annotations** — the `er-lint` comment grammar:
//!   * `// er-lint: zero-alloc` — marks the next `fn` as a zero-alloc
//!     region (within 8 lines, attributes allowed between).
//!   * `// er-lint: allow(<rule>) -- <reason>` — suppresses `<rule>` on
//!     the same line, or on the next line when the comment stands
//!     alone. The reason is mandatory.
//!   * `// er-lint: allow-file(<rule>) -- <reason>` — suppresses the
//!     rule for the whole file (for e.g. a retained HashMap oracle).
//!
//!   Malformed directives (unknown rule name, missing `-- reason`) are
//!   themselves violations, so a typo'd allow cannot silently disable
//!   anything.

use std::collections::BTreeSet;

use super::lexer::{self, Kind, Tok};
use super::{Violation, RULES};

/// The directive body of a comment token: `Some` only for a *plain*
/// comment whose first word is `er-lint:`. Doc comments (`///`, `//!`,
/// `/**`, `/*!`) and prose that merely mentions the grammar mid-comment
/// are never parsed as directives.
fn directive_text(comment: &str) -> Option<&str> {
    let body = if let Some(rest) = comment.strip_prefix("//") {
        if rest.starts_with('/') || rest.starts_with('!') {
            return None;
        }
        rest
    } else if let Some(rest) = comment.strip_prefix("/*") {
        if rest.starts_with('*') || rest.starts_with('!') {
            return None;
        }
        rest.trim_end_matches("*/")
    } else {
        comment
    };
    body.trim().strip_prefix("er-lint:").map(str::trim)
}

/// True when only comments, attributes (`#[…]`) and fn-header keywords
/// (`pub(crate)`, `unsafe`, `const`, `async`, `extern "C"`) stand
/// between token `from` and the `fn` keyword at `fn_idx` — i.e. the fn
/// really is the next item after a `zero-alloc` mark.
fn mark_precedes_fn(toks: &[Tok<'_>], mut from: usize, fn_idx: usize) -> bool {
    while from < fn_idx {
        let t = &toks[from];
        match t.kind {
            Kind::Comment | Kind::Str => from += 1,
            Kind::Punct
                if t.text == "#"
                    && toks
                        .get(from + 1)
                        .is_some_and(|n| n.kind == Kind::Open && n.text == "[") =>
            {
                let mut depth = 1usize;
                from += 2;
                while from < fn_idx && depth > 0 {
                    match toks[from].kind {
                        Kind::Open => depth += 1,
                        Kind::Close => depth -= 1,
                        _ => {}
                    }
                    from += 1;
                }
                if depth > 0 {
                    return false;
                }
            }
            Kind::Open | Kind::Close if t.text == "(" || t.text == ")" => from += 1,
            Kind::Ident
                if matches!(
                    t.text,
                    "pub"
                        | "crate"
                        | "super"
                        | "self"
                        | "in"
                        | "unsafe"
                        | "const"
                        | "async"
                        | "extern"
                ) =>
            {
                from += 1;
            }
            _ => return false,
        }
    }
    true
}

/// Where a first-party file lives; rules scope themselves by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `crates/*/src` — library code, every rule applies.
    Lib,
    /// Root `src/` — the CLI binary crate.
    Bin,
    /// `xtask/src` — workspace automation.
    Xtask,
    /// `crates/*/benches` — bench harnesses.
    Bench,
    /// `tests/` integration-test directories.
    Test,
    /// `examples/`.
    Example,
}

/// One `fn` item and the facts the rules need about it.
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body, *inside* the braces. Empty for
    /// bodiless trait-fn declarations.
    pub body: std::ops::Range<usize>,
    /// Annotated `// er-lint: zero-alloc`.
    pub zero_alloc: bool,
}

/// A fully analyzed source file.
pub struct SourceModel<'a> {
    pub krate: String,
    pub kind: SourceKind,
    /// Workspace-relative path with `/` separators (baseline key).
    pub rel_path: String,
    pub lines: Vec<&'a str>,
    pub toks: Vec<Tok<'a>>,
    pub fns: Vec<FnSpan>,
    /// `gated[line-1]` ⇒ the line sits under cfg(test)/cfg(debug_assertions).
    gated: Vec<bool>,
    /// (rule, line) pairs suppressed by `allow(...)` comments.
    allows: BTreeSet<(&'static str, usize)>,
    /// Rules suppressed file-wide by `allow-file(...)`.
    allow_file: BTreeSet<&'static str>,
    /// Malformed-directive violations found while parsing annotations.
    pub directive_errors: Vec<Violation>,
}

impl<'a> SourceModel<'a> {
    pub fn build(krate: &str, kind: SourceKind, rel_path: &str, src: &'a str) -> Self {
        let toks = lexer::lex(src);
        let n_lines = src.lines().count().max(1);
        let mut model = SourceModel {
            krate: krate.to_owned(),
            kind,
            rel_path: rel_path.to_owned(),
            lines: src.lines().collect(),
            toks,
            fns: Vec::new(),
            gated: vec![false; n_lines + 1],
            allows: BTreeSet::new(),
            allow_file: BTreeSet::new(),
            directive_errors: Vec::new(),
        };
        let zero_alloc_marks = model.scan_annotations();
        model.scan_gated_regions();
        model.scan_fns(&zero_alloc_marks);
        model
    }

    /// True when `line` (1-based) is under cfg(test)/cfg(debug_assertions).
    pub fn is_gated(&self, line: usize) -> bool {
        self.gated.get(line - 1).copied().unwrap_or(false)
    }

    /// True when `rule` is suppressed at `line` by an allow comment or
    /// a file-wide allow.
    pub fn is_allowed(&self, rule: &'static str, line: usize) -> bool {
        self.allow_file.contains(rule) || self.allows.contains(&(rule, line))
    }

    /// The innermost `fn` whose body contains token index `ti`.
    pub fn enclosing_fn(&self, ti: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&ti))
            .min_by_key(|f| f.body.len())
    }

    /// Emits `violation` unless its line is allowed or gated.
    pub fn report(
        &self,
        out: &mut Vec<Violation>,
        rule: &'static str,
        line: usize,
        message: String,
    ) {
        if self.is_gated(line) || self.is_allowed(rule, line) {
            return;
        }
        out.push(self.violation(rule, line, message));
    }

    /// Builds a violation record without the gating/allow filter (for
    /// directive errors, which must not be suppressible).
    pub fn violation(&self, rule: &'static str, line: usize, message: String) -> Violation {
        Violation {
            rule,
            path: self.rel_path.clone(),
            line,
            text: self
                .lines
                .get(line - 1)
                .map(|l| l.trim().to_owned())
                .unwrap_or_default(),
            message,
        }
    }

    /// Parses every `er-lint:` comment. Returns the token indices of
    /// `zero-alloc` marks for `scan_fns` to attach.
    fn scan_annotations(&mut self) -> Vec<usize> {
        let mut marks = Vec::new();
        let mut prev_line = 0usize;
        let mut errors = Vec::new();
        for (ti, tok) in self.toks.iter().enumerate() {
            let first_on_line = tok.line != prev_line;
            prev_line = tok.line;
            if tok.kind != Kind::Comment {
                continue;
            }
            let Some(directive) = directive_text(tok.text) else {
                continue;
            };
            if directive == "zero-alloc" {
                marks.push(ti);
                continue;
            }
            let (form, file_wide) = if let Some(rest) = directive.strip_prefix("allow-file(") {
                (rest, true)
            } else if let Some(rest) = directive.strip_prefix("allow(") {
                (rest, false)
            } else {
                errors.push((
                    tok.line,
                    format!(
                        "unrecognized er-lint directive `{directive}` (expected `zero-alloc`, \
                     `allow(<rule>) -- reason` or `allow-file(<rule>) -- reason`)"
                    ),
                ));
                continue;
            };
            let Some((rule_name, rest)) = form.split_once(')') else {
                errors.push((tok.line, "malformed er-lint allow: missing `)`".into()));
                continue;
            };
            let Some(rule) = RULES.iter().copied().find(|r| *r == rule_name.trim()) else {
                errors.push((
                    tok.line,
                    format!(
                        "unknown er-lint rule `{}` (known: {})",
                        rule_name.trim(),
                        RULES.join(", ")
                    ),
                ));
                continue;
            };
            let reason_ok = rest
                .split_once("--")
                .is_some_and(|(_, reason)| !reason.trim().is_empty());
            if !reason_ok {
                errors.push((
                    tok.line,
                    format!("er-lint allow({rule}) needs a justification: `-- <reason>`"),
                ));
                continue;
            }
            if file_wide {
                self.allow_file.insert(rule);
            } else {
                self.allows.insert((rule, tok.line));
                if first_on_line {
                    // A comment standing on its own line covers the
                    // line below it.
                    self.allows.insert((rule, tok.line + 1));
                }
            }
        }
        for (line, msg) in errors {
            let v = self.violation("directive", line, msg);
            self.directive_errors.push(v);
        }
        marks
    }

    /// Marks line ranges of items under `#[cfg(test)]` or
    /// `#[cfg(debug_assertions)]` attributes.
    fn scan_gated_regions(&mut self) {
        let toks = &self.toks;
        let mut i = 0;
        while i < toks.len() {
            if !(toks[i].is_punct('#')
                && toks
                    .get(i + 1)
                    .is_some_and(|t| t.kind == Kind::Open && t.text == "["))
            {
                i += 1;
                continue;
            }
            // Collect the attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr: Vec<&Tok<'a>> = Vec::new();
            while j < toks.len() && depth > 0 {
                match toks[j].kind {
                    Kind::Open => depth += 1,
                    Kind::Close => depth -= 1,
                    _ => {}
                }
                if depth > 0 {
                    attr.push(&toks[j]);
                }
                j += 1;
            }
            let is_cfg = attr.first().is_some_and(|t| t.is_ident("cfg"));
            let negated = attr.iter().any(|t| t.is_ident("not"));
            let gating = is_cfg
                && !negated
                && attr
                    .iter()
                    .any(|t| t.is_ident("test") || t.is_ident("debug_assertions"));
            if !gating {
                i = j;
                continue;
            }
            // The attribute applies to the next item; find its extent.
            let Some((start_line, end_line)) = self.item_extent(j) else {
                i = j;
                continue;
            };
            let attr_line = toks[i].line;
            for line in attr_line..=end_line.max(start_line) {
                if let Some(slot) = self.gated.get_mut(line - 1) {
                    *slot = true;
                }
            }
            i = j;
        }
    }

    /// Line range of the item starting at token index `from` (skipping
    /// comments and further attributes): up to the `;` that ends a
    /// bodiless item, or the `}` matching its first top-level brace.
    fn item_extent(&self, from: usize) -> Option<(usize, usize)> {
        let toks = &self.toks;
        let mut i = from;
        // Skip comments and stacked attributes.
        loop {
            match toks.get(i) {
                Some(t) if t.kind == Kind::Comment => i += 1,
                Some(t)
                    if t.is_punct('#')
                        && toks
                            .get(i + 1)
                            .is_some_and(|n| n.kind == Kind::Open && n.text == "[") =>
                {
                    let mut depth = 1usize;
                    i += 2;
                    while i < toks.len() && depth > 0 {
                        match toks[i].kind {
                            Kind::Open => depth += 1,
                            Kind::Close => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                }
                Some(_) => break,
                None => return None,
            }
        }
        let start_line = toks.get(i)?.line;
        let mut depth = 0usize;
        let mut saw_brace = false;
        while i < toks.len() {
            let t = &toks[i];
            match t.kind {
                Kind::Open => {
                    if t.text == "{" && depth == 0 {
                        saw_brace = true;
                    }
                    depth += 1;
                }
                Kind::Close => {
                    depth = depth.saturating_sub(1);
                    if saw_brace && depth == 0 && t.text == "}" {
                        return Some((start_line, t.line));
                    }
                }
                Kind::Punct if t.text == ";" && depth == 0 => {
                    return Some((start_line, t.line));
                }
                _ => {}
            }
            i += 1;
        }
        Some((start_line, toks.last()?.line))
    }

    /// Finds every `fn` item and its brace-matched body.
    fn scan_fns(&mut self, zero_alloc_marks: &[usize]) {
        let toks = &self.toks;
        let mut fns = Vec::new();
        let mut unattached: Vec<usize> = Vec::new();
        let mut marks = zero_alloc_marks.iter().copied().peekable();
        for i in 0..toks.len() {
            if !toks[i].is_ident("fn") {
                continue;
            }
            let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == Kind::Ident) else {
                continue;
            };
            // A pending zero-alloc mark attaches to this fn when it
            // appears at most 8 lines above AND the fn is the very next
            // item (only comments, attributes and fn-header keywords
            // between) — a mark stranded on a non-fn item is dangling.
            let mut zero_alloc = false;
            while let Some(&mark) = marks.peek() {
                if mark >= i {
                    break;
                }
                let mark_line = toks[mark].line;
                if toks[i].line >= mark_line
                    && toks[i].line <= mark_line + 8
                    && mark_precedes_fn(toks, mark + 1, i)
                {
                    zero_alloc = true;
                } else {
                    unattached.push(mark_line);
                }
                marks.next();
            }
            // Walk the header to the body `{` (or `;` for trait decls),
            // tracking non-brace delimiters so closures in default
            // argument positions can't confuse it.
            let mut j = i + 2;
            let mut depth = 0usize;
            let mut body = 0..0;
            while j < toks.len() {
                let t = &toks[j];
                match t.kind {
                    Kind::Open if t.text == "{" && depth == 0 => {
                        // Body found: match braces to the close.
                        let open = j;
                        let mut bdepth = 1usize;
                        j += 1;
                        while j < toks.len() && bdepth > 0 {
                            match toks[j].kind {
                                Kind::Open if toks[j].text == "{" => bdepth += 1,
                                Kind::Close if toks[j].text == "}" => bdepth -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                        body = open + 1..j.saturating_sub(1);
                        break;
                    }
                    Kind::Open => depth += 1,
                    Kind::Close => depth = depth.saturating_sub(1),
                    Kind::Punct if t.text == ";" && depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            fns.push(FnSpan {
                name: name_tok.text.to_owned(),
                line: toks[i].line,
                body,
                zero_alloc,
            });
        }
        unattached.extend(marks.map(|m| toks[m].line));
        for line in unattached {
            let v = self.violation(
                "directive",
                line,
                "`er-lint: zero-alloc` mark is not followed by a `fn` within 8 lines".into(),
            );
            self.directive_errors.push(v);
        }
        self.fns = fns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> SourceModel<'_> {
        SourceModel::build("demo", SourceKind::Lib, "demo.rs", src)
    }

    #[test]
    fn fn_bodies_are_brace_matched() {
        let m = model("fn a() { if x { y(); } }\nfn b(c: usize) -> usize { c }\n");
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "a");
        assert_eq!(m.fns[1].name, "b");
        assert_eq!(m.fns[1].line, 2);
        assert!(!m.fns[0].body.is_empty());
    }

    #[test]
    fn trait_fn_declarations_have_empty_bodies() {
        let m = model("trait T { fn decl(&self) -> usize; fn with_default(&self) { } }");
        assert_eq!(m.fns.len(), 2);
        assert!(m.fns[0].body.is_empty());
    }

    #[test]
    fn cfg_test_mod_is_gated_and_cfg_not_test_is_not() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n#[cfg(not(test))]\nfn also_live() {}\n";
        let m = model(src);
        assert!(!m.is_gated(1));
        assert!(m.is_gated(2));
        assert!(m.is_gated(4));
        assert!(m.is_gated(5));
        assert!(!m.is_gated(7));
    }

    #[test]
    fn cfg_debug_assertions_fn_is_gated() {
        let m = model("#[cfg(debug_assertions)]\nfn validate() { assert!(true); }\nfn hot() {}\n");
        assert!(m.is_gated(2));
        assert!(!m.is_gated(3));
    }

    #[test]
    fn zero_alloc_mark_attaches_through_attributes() {
        let src =
            "// er-lint: zero-alloc\n#[inline(always)]\nfn kernel() { work(); }\nfn other() {}\n";
        let m = model(src);
        assert!(m.fns[0].zero_alloc, "kernel must carry the mark");
        assert!(!m.fns[1].zero_alloc);
        assert!(m.directive_errors.is_empty());
    }

    #[test]
    fn dangling_zero_alloc_mark_is_a_directive_error() {
        let m = model("// er-lint: zero-alloc\nstatic X: usize = 0;\n");
        assert_eq!(m.directive_errors.len(), 1);
    }

    #[test]
    fn allow_grammar_same_line_and_next_line() {
        let src = "x.unwrap(); // er-lint: allow(panic) -- startup only\n// er-lint: allow(panic) -- covers next line\ny.unwrap();\nz.unwrap();\n";
        let m = model(src);
        assert!(m.is_allowed("panic", 1));
        assert!(m.is_allowed("panic", 3));
        assert!(!m.is_allowed("panic", 4));
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let m = model("x.unwrap(); // er-lint: allow(panic)\n");
        assert_eq!(m.directive_errors.len(), 1);
        assert!(!m.is_allowed("panic", 1));
    }

    #[test]
    fn unknown_rule_in_allow_is_rejected() {
        let m = model("// er-lint: allow(no_such_rule) -- why\nx();\n");
        assert_eq!(m.directive_errors.len(), 1);
    }

    #[test]
    fn allow_file_covers_every_line() {
        let m = model("// er-lint: allow-file(unordered_iteration) -- HashMap oracle\nfn f() {}\n");
        assert!(m.is_allowed("unordered_iteration", 42));
        assert!(!m.is_allowed("panic", 2));
    }

    #[test]
    fn enclosing_fn_finds_innermost() {
        let m = model("fn outer() { fn inner() { mark(); } }");
        let mark_ti = m.toks.iter().position(|t| t.is_ident("mark")).unwrap();
        assert_eq!(m.enclosing_fn(mark_ti).unwrap().name, "inner");
    }
}
