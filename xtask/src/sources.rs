//! First-party source discovery, shared by the unsafe/lint-wall audits
//! and `er-lint`.
//!
//! Walks the workspace for `.rs` files and classifies each by where it
//! lives, so every consumer scopes itself by [`SourceKind`] instead of
//! re-implementing directory walks. Coverage (this used to be only
//! `crates/*/src` plus the root `src/` for the unsafe audit):
//!
//! * `src/` — the root CLI/lib crate
//! * `crates/*/src` — library crates
//! * `crates/*/benches` — bench harnesses (previously unaudited)
//! * `crates/*/tests` and root `tests/` — integration tests
//! * `examples/` — examples
//! * `xtask/src` — this crate
//!
//! `vendor/` (the miniature loom) and `target/` are excluded; vendored
//! code keeps its upstream idioms, and fixtures under `xtask/fixtures/`
//! are deliberately-bad lint inputs, not sources.

use std::path::{Path, PathBuf};

pub use crate::lint::source::SourceKind;

/// One first-party `.rs` file.
#[derive(Debug)]
pub struct SourceFile {
    /// Crate directory name (`core`, `pool`, …); `unsupervised-er` for
    /// the root crate, `xtask` for this one.
    pub krate: String,
    pub kind: SourceKind,
    /// Absolute path.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators (stable across
    /// machines: the lint-baseline key and all report output use it).
    pub rel: String,
}

/// Every first-party source file, sorted by relative path so all
/// downstream output is deterministic.
pub fn workspace_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    let mut add = |krate: &str, kind: SourceKind, dir: PathBuf| -> Result<(), String> {
        if !dir.is_dir() {
            return Ok(());
        }
        let mut files = Vec::new();
        collect_rs(&dir, &mut files)?;
        for path in files {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the workspace", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                krate: krate.to_owned(),
                kind,
                path,
                rel,
            });
        }
        Ok(())
    };
    add("unsupervised-er", SourceKind::Bin, root.join("src"))?;
    add("unsupervised-er", SourceKind::Test, root.join("tests"))?;
    add(
        "unsupervised-er",
        SourceKind::Example,
        root.join("examples"),
    )?;
    add("xtask", SourceKind::Xtask, root.join("xtask/src"))?;
    let crates = root.join("crates");
    let entries =
        std::fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("read {}: {e}", crates.display()))?;
    crate_dirs.retain(|p| p.is_dir());
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        add(&name, SourceKind::Lib, dir.join("src"))?;
        add(&name, SourceKind::Bench, dir.join("benches"))?;
        add(&name, SourceKind::Test, dir.join("tests"))?;
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
