#!/usr/bin/env bash
# Lint gate: formatting and clippy with warnings denied, then the full
# test suite. CI runs this exact script (.github/workflows/ci.yml), so a
# clean local run means a clean CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "All checks passed."
