#!/usr/bin/env bash
# Lint gate: the static-analysis suite (rustfmt, clippy -D warnings,
# no-default-features build, first-party unsafe audit, er-lint domain
# rules — see xtask/src/main.rs and xtask/src/lint/), then the full
# test suite. CI runs this exact script (.github/workflows/ci.yml), so
# a clean local run means a clean CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo xtask analyze"
cargo xtask analyze

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "All checks passed."
