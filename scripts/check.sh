#!/usr/bin/env bash
# Lint gate: the static-analysis suite (rustfmt, clippy -D warnings,
# no-default-features build, first-party unsafe audit, er-lint domain
# rules — see xtask/src/main.rs and xtask/src/lint/), then the full
# test suite. CI runs this exact script (.github/workflows/ci.yml), so
# a clean local run means a clean CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo xtask analyze"
cargo xtask analyze

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
# Vendored crates model external dependencies and keep their own doc
# hygiene; the gate covers first-party crates only.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet \
  --exclude criterion --exclude crossbeam --exclude loom \
  --exclude parking_lot --exclude proptest --exclude rand \
  --exclude serde --exclude serde_derive

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "All checks passed."
