//! Property tests for the streaming corpus and the signature cache: at
//! every ingest prefix the materialized snapshot must be *identical* to
//! what the batch [`CorpusBuilder`] produces from the same texts in the
//! same order, and the cached candidate-generation paths must emit the
//! same pairs as their batch counterparts. This is the foundation of the
//! serving engine's incremental ≡ batch bit-identity guarantee.

use er_pool::WorkerPool;
use er_text::blocking::{BlockingStrategy, MetaBlocking};
use er_text::lsh::{minhash_band_keys, LshParams, SignatureCache};
use er_text::{Corpus, CorpusBuilder, StreamingCorpus, TermId};
use proptest::prelude::*;

fn texts() -> impl Strategy<Value = Vec<String>> {
    // A small alphabet keeps document frequencies high enough for the
    // moving df cap to actually flip terms in and out across prefixes.
    proptest::collection::vec("[a-e]( [a-e]){0,5}", 1..20)
}

/// Field-by-field equality through the public accessors.
fn assert_same(a: &Corpus, b: &Corpus) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.vocab_len(), b.vocab_len());
    for i in 0..a.vocab_len() {
        let t = TermId(i as u32);
        assert_eq!(a.vocab().term(t), b.vocab().term(t));
        assert_eq!(a.vocab().doc_freq(t), b.vocab().doc_freq(t));
        assert_eq!(a.postings(t), b.postings(t));
    }
    for r in 0..a.len() {
        assert_eq!(a.tokens(r), b.tokens(r));
        assert_eq!(a.term_set(r), b.term_set(r));
    }
    assert_eq!(a.removed_terms(), b.removed_terms());
}

proptest! {
    #[test]
    fn streaming_materialize_equals_batch_at_every_prefix(
        texts in texts(),
        df in 0.2f64..1.0,
    ) {
        let mut s = StreamingCorpus::new();
        for (i, t) in texts.iter().enumerate() {
            s.push_record(t);
            let batch = CorpusBuilder::new()
                .extend_texts(texts[..=i].iter().cloned())
                .max_df_fraction(df)
                .build();
            assert_same(&s.materialize(df), &batch);
        }
    }

    #[test]
    fn signature_cache_tracks_growing_corpus(texts in texts()) {
        // Warm the cache across every prefix of a growing corpus (the
        // serving ingest pattern): cached keys must equal a fresh
        // computation each time.
        let pool = WorkerPool::new(1);
        let params = LshParams::default();
        let mut s = StreamingCorpus::new();
        let mut cache = SignatureCache::new();
        for t in &texts {
            s.push_record(t);
            let c = s.materialize(0.5);
            let cached = er_text::lsh::minhash_band_keys_cached(&c, &params, &pool, &mut cache)
                .to_vec();
            prop_assert_eq!(cached, minhash_band_keys(&c, &params, &pool));
        }
    }

    #[test]
    fn cached_blocking_equals_plain_while_ingesting(texts in texts()) {
        let pool = WorkerPool::new(1);
        let strategies = [
            BlockingStrategy::Lsh { params: LshParams::default(), max_block_size: 64 },
            BlockingStrategy::Meta(MetaBlocking::default()),
        ];
        for strategy in &strategies {
            let mut s = StreamingCorpus::new();
            let mut cache = SignatureCache::new();
            for t in &texts {
                s.push_record(t);
                let c = s.materialize(0.5);
                prop_assert_eq!(
                    strategy.candidate_pairs_cached(&c, &pool, &mut cache),
                    strategy.candidate_pairs(&c, &pool),
                    "{}", strategy.name()
                );
            }
        }
    }
}
