//! Property-based tests for the string metrics: bounds, symmetry,
//! identity, and cross-metric invariants that must hold for any input.

use er_text::metrics::{damerau_levenshtein, ngram_multiset};
use er_text::{
    cosine_tokens, dice, jaccard, jaro, jaro_winkler, levenshtein, levenshtein_similarity,
    monge_elkan, ngram_similarity, overlap_coefficient, CorpusBuilder, TermId,
};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    "[a-z0-9]{0,12}"
}

fn term_set() -> impl Strategy<Value = Vec<TermId>> {
    proptest::collection::btree_set(0u32..64, 0..16)
        .prop_map(|s| s.into_iter().map(TermId).collect())
}

proptest! {
    #[test]
    fn levenshtein_symmetry(a in word(), b in word()) {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn levenshtein_identity(a in word()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein_similarity(&a, &a), 1.0);
    }

    #[test]
    fn levenshtein_triangle(a in word(), b in word(), c in word()) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_bounded_by_longer(a in word(), b in word()) {
        let d = levenshtein(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        let diff = a.chars().count().abs_diff(b.chars().count());
        prop_assert!(d >= diff);
    }

    #[test]
    fn damerau_leq_levenshtein(a in word(), b in word()) {
        prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
    }

    #[test]
    fn damerau_symmetry_and_identity(a in word(), b in word()) {
        prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        prop_assert_eq!(damerau_levenshtein(&a, &a), 0);
    }

    #[test]
    fn jaro_bounds_symmetry(a in word(), b in word()) {
        let s = jaro(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - jaro(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in word(), b in word()) {
        let j = jaro(&a, &b);
        let jw = jaro_winkler(&a, &b);
        prop_assert!(jw >= j - 1e-12);
        prop_assert!(jw <= 1.0 + 1e-12);
    }

    #[test]
    fn ngram_bounds_symmetry(a in word(), b in word(), n in 1usize..4) {
        let s = ngram_similarity(&a, &b, n);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        prop_assert!((s - ngram_similarity(&b, &a, n)).abs() < 1e-12);
        prop_assert!((ngram_similarity(&a, &a, n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ngram_multiset_total_count(a in word(), n in 1usize..4) {
        let grams = ngram_multiset(&a, n);
        let total: u32 = grams.values().sum();
        let expected = a.chars().count() + n - 1;
        prop_assert_eq!(total as usize, expected);
    }

    #[test]
    fn token_set_metric_bounds(a in term_set(), b in term_set()) {
        for (name, s) in [
            ("jaccard", jaccard(&a, &b)),
            ("dice", dice(&a, &b)),
            ("overlap", overlap_coefficient(&a, &b)),
            ("cosine", cosine_tokens(&a, &b)),
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "{}: {}", name, s);
        }
        prop_assert!(dice(&a, &b) + 1e-12 >= jaccard(&a, &b));
    }

    #[test]
    fn token_set_metric_identity(a in term_set()) {
        prop_assert_eq!(jaccard(&a, &a), 1.0);
        prop_assert_eq!(dice(&a, &a), 1.0);
    }

    #[test]
    fn monge_elkan_bounds(
        a in proptest::collection::vec(word(), 0..5),
        b in proptest::collection::vec(word(), 0..5),
    ) {
        let ar: Vec<&str> = a.iter().map(String::as_str).collect();
        let br: Vec<&str> = b.iter().map(String::as_str).collect();
        let s = monge_elkan(&ar, &br, jaro_winkler);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s));
        prop_assert!((s - monge_elkan(&br, &ar, jaro_winkler)).abs() < 1e-12);
    }

    #[test]
    fn corpus_shared_terms_subset_of_both(
        texts in proptest::collection::vec("[a-z ]{0,30}", 2..6),
    ) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        for i in 0..corpus.len() {
            for j in 0..corpus.len() {
                let shared = corpus.shared_terms(i, j);
                for t in &shared {
                    prop_assert!(corpus.term_set(i).contains(t));
                    prop_assert!(corpus.term_set(j).contains(t));
                }
                prop_assert_eq!(shared.len(), corpus.shared_term_count(i, j));
            }
        }
    }

    #[test]
    fn corpus_postings_consistent(
        texts in proptest::collection::vec("[a-z ]{0,30}", 1..6),
    ) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        for i in 0..corpus.vocab_len() {
            let t = TermId(i as u32);
            for &r in corpus.postings(t) {
                prop_assert!(corpus.term_set(r as usize).contains(&t));
            }
        }
        // Every term in every record's set appears in that term's postings.
        for r in 0..corpus.len() {
            for &t in corpus.term_set(r) {
                prop_assert!(corpus.postings(t).contains(&(r as u32)));
            }
        }
    }
}
