//! Property tests for the blocking strategies.

use er_text::blocking::{
    blocking_key, blocking_key_into, reduction_ratio, sorted_neighborhood, token_blocking,
};
use er_text::CorpusBuilder;
use proptest::prelude::*;

fn texts() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-d]( [a-d]){0,4}", 2..20)
}

proptest! {
    #[test]
    fn token_blocking_pairs_share_a_term(texts in texts()) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        let pairs = token_blocking(&corpus, 64);
        for (a, b) in pairs {
            prop_assert!(a < b);
            prop_assert!(
                corpus.shared_term_count(a as usize, b as usize) >= 1,
                "blocked pair ({}, {}) shares no term", a, b
            );
        }
    }

    #[test]
    fn token_blocking_is_complete_without_cap(texts in texts()) {
        // With an unbounded cap, token blocking finds EVERY pair that
        // shares a term.
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        let pairs = token_blocking(&corpus, usize::MAX);
        for a in 0..corpus.len() as u32 {
            for b in a + 1..corpus.len() as u32 {
                if corpus.shared_term_count(a as usize, b as usize) >= 1 {
                    prop_assert!(pairs.binary_search(&(a, b)).is_ok());
                }
            }
        }
    }

    #[test]
    fn smaller_cap_never_adds_pairs(texts in texts(), cap in 2usize..10) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        let small = token_blocking(&corpus, cap);
        let big = token_blocking(&corpus, cap * 4);
        for p in &small {
            prop_assert!(big.binary_search(p).is_ok(), "cap widening lost pair {:?}", p);
        }
        prop_assert!(small.len() <= big.len());
    }

    #[test]
    fn sorted_neighborhood_bounds(texts in texts(), window in 2usize..6) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        let pairs = sorted_neighborhood(&corpus, window);
        // At most (window - 1) * n pairs, all ordered and distinct.
        prop_assert!(pairs.len() <= (window - 1) * corpus.len());
        for w in pairs.windows(2) {
            prop_assert!(w[0] < w[1], "pairs must be sorted and deduplicated");
        }
        for &(a, b) in &pairs {
            prop_assert!(a < b);
            prop_assert!((b as usize) < corpus.len());
        }
    }

    #[test]
    fn wider_window_is_superset(texts in texts()) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        let narrow = sorted_neighborhood(&corpus, 2);
        let wide = sorted_neighborhood(&corpus, 5);
        for p in &narrow {
            prop_assert!(wide.binary_search(p).is_ok());
        }
    }

    #[test]
    fn keys_are_deterministic(texts in texts()) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        for r in 0..corpus.len() {
            prop_assert_eq!(blocking_key(&corpus, r), blocking_key(&corpus, r));
        }
    }

    #[test]
    fn key_tape_matches_allocating_keys(texts in texts()) {
        // The zero-alloc buffer-reuse form builds the same keys as the
        // fresh-String wrapper, record by record, across any tape.
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        let mut terms = Vec::new();
        let mut tape = String::new();
        let mut bounds = vec![0usize];
        for r in 0..corpus.len() {
            blocking_key_into(&corpus, r, &mut terms, &mut tape);
            bounds.push(tape.len());
        }
        for r in 0..corpus.len() {
            prop_assert_eq!(&tape[bounds[r]..bounds[r + 1]], blocking_key(&corpus, r));
        }
    }

    #[test]
    fn reduction_ratio_in_unit_range(n in 2usize..100, c in 0usize..5000) {
        let universe = n * (n - 1) / 2;
        let c = c.min(universe);
        let rr = reduction_ratio(n, c);
        prop_assert!((0.0..=1.0).contains(&rr));
    }
}
