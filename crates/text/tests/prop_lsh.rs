//! Property tests for MinHash/LSH banding and the meta-blocking
//! pipeline: recall against the banding bound, and bit-identical output
//! across thread counts and dispatch policies.

use er_pool::{DispatchPolicy, WorkerPool};
use er_text::blocking::{token_blocking, BlockingStrategy, MetaBlocking};
use er_text::lsh::{lsh_blocking, LshParams};
use er_text::metablocking::{meta_block, BlockCollection, MetaConfig, Pruning, WeightScheme};
use er_text::CorpusBuilder;
use proptest::prelude::*;

fn texts() -> impl Strategy<Value = Vec<String>> {
    // A small alphabet with 1–6 tokens per record gives a dense mix of
    // identical, overlapping and disjoint term sets.
    proptest::collection::vec("[a-e]( [a-e]){0,5}", 2..24)
}

/// Exact Jaccard similarity of two records' (post-filter) term sets.
fn jaccard(corpus: &er_text::Corpus, a: usize, b: usize) -> f64 {
    let (ta, tb) = (corpus.term_set(a), corpus.term_set(b));
    if ta.is_empty() && tb.is_empty() {
        return 0.0;
    }
    let shared = corpus.shared_term_count(a, b);
    let union = ta.len() + tb.len() - shared;
    shared as f64 / union as f64
}

proptest! {
    /// The banding bound at work: a pair whose collision probability is
    /// essentially 1 (within 1e-9) must be an LSH candidate. With
    /// 16 bands × 2 rows, identical sets collide with probability 1 and
    /// high-Jaccard sets are within rounding of it — the "expected
    /// rate" of the bound at its ceiling, where a miss is impossible
    /// rather than merely unlikely.
    #[test]
    fn high_jaccard_pairs_are_candidates(texts in texts()) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        let params = LshParams::new(16, 2);
        let pool = WorkerPool::new(1);
        let pairs = lsh_blocking(&corpus, &params, usize::MAX, &pool);
        for a in 0..corpus.len() {
            for b in a + 1..corpus.len() {
                let p = params.collision_probability(jaccard(&corpus, a, b));
                if p >= 1.0 - 1e-9 {
                    prop_assert!(
                        pairs.binary_search(&(a as u32, b as u32)).is_ok(),
                        "pair ({a}, {b}) collides with probability {p} but was missed"
                    );
                }
            }
        }
    }

    /// LSH candidates always share at least one band — and band keys
    /// are a function of the term set, so zero-similarity pairs (no
    /// shared term ⇒ jaccard 0 ⇒ rows can only agree by hash collision,
    /// which the 64-bit key space makes negligible) stay out.
    #[test]
    fn lsh_candidates_are_plausible(texts in texts()) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        let pool = WorkerPool::new(1);
        let pairs = lsh_blocking(&corpus, &LshParams::new(4, 4), usize::MAX, &pool);
        for w in pairs.windows(2) {
            prop_assert!(w[0] < w[1], "sorted + deduplicated");
        }
        for &(a, b) in &pairs {
            prop_assert!(a < b);
            prop_assert!(
                corpus.shared_term_count(a as usize, b as usize) >= 1,
                "LSH paired disjoint records ({a}, {b})"
            );
        }
    }

    /// The full blocking pipeline (MinHash → banding → block graph →
    /// purge/filter/prune) is bit-identical at 1/2/8 threads and across
    /// serial/parallel dispatch.
    #[test]
    fn pipeline_is_thread_and_dispatch_invariant(texts in texts()) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        let strategy = BlockingStrategy::meta_default();
        let reference = strategy.candidate_pairs(
            &corpus,
            &WorkerPool::with_policy(1, DispatchPolicy::always_serial()),
        );
        for threads in [1usize, 2, 8] {
            for policy in [DispatchPolicy::always_serial(), DispatchPolicy::always_parallel()] {
                let pool = WorkerPool::with_policy(threads, policy);
                prop_assert_eq!(
                    &reference,
                    &strategy.candidate_pairs(&corpus, &pool),
                    "threads={} policy={:?}", threads, policy
                );
            }
        }
    }

    /// A neutral meta-blocking config (no filtering, weight floor 1,
    /// same purge cap) over the token block collection reproduces plain
    /// token blocking exactly — the pipeline only ever *removes*
    /// candidates.
    #[test]
    fn neutral_meta_config_is_token_blocking(texts in texts(), cap in 2usize..16) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        let pool = WorkerPool::new(1);
        let blocks = BlockCollection::from_token_blocks(&corpus);
        let neutral = MetaConfig {
            max_block_size: cap,
            filter_ratio: 1.0,
            weight: WeightScheme::Cbs,
            prune: Pruning::MinWeight(1),
        };
        prop_assert_eq!(
            meta_block(&blocks, corpus.len(), &neutral, &pool),
            token_blocking(&corpus, cap)
        );
    }

    /// Meta-blocking output is always a subset of the union of its
    /// source collections' within-block pairs, whatever the config.
    #[test]
    fn meta_never_invents_pairs(texts in texts(), floor in 1u64..4) {
        let corpus = CorpusBuilder::new().extend_texts(texts).build();
        let pool = WorkerPool::new(1);
        let strategy = BlockingStrategy::Meta(MetaBlocking {
            token_blocks: true,
            lsh: Some(LshParams::new(8, 2)),
            config: MetaConfig {
                prune: Pruning::MinWeight(floor),
                ..MetaConfig::default()
            },
        });
        let meta = strategy.candidate_pairs(&corpus, &pool);
        let token = token_blocking(&corpus, usize::MAX);
        let lsh = lsh_blocking(&corpus, &LshParams::new(8, 2), usize::MAX, &pool);
        for &p in &meta {
            prop_assert!(
                token.binary_search(&p).is_ok() || lsh.binary_search(&p).is_ok(),
                "meta pair {:?} is in neither source collection", p
            );
        }
    }
}
