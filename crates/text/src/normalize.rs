//! Text normalization applied before tokenization.
//!
//! The paper tokenizes raw record text and works with lowercase terms; the
//! benchmark datasets mix case, punctuation ("st.", "blvd,"), and
//! alphanumeric model codes ("pslx350h"). Normalization must preserve the
//! discriminative alphanumeric codes intact while folding punctuation, so
//! we map any character that is not alphanumeric to a space and lowercase
//! the rest. ASCII fast-path; non-ASCII letters are lowercased via Unicode.

/// Normalizes `input` for tokenization: lowercases and replaces every
/// non-alphanumeric character with a single space.
///
/// ```
/// assert_eq!(er_text::normalize("Sony PSLX350H, Turntable!"), "sony pslx350h  turntable ");
/// ```
pub fn normalize(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for ch in input.chars() {
        if ch.is_ascii() {
            let b = ch as u8;
            if b.is_ascii_alphanumeric() {
                out.push(b.to_ascii_lowercase() as char);
            } else {
                out.push(' ');
            }
        } else if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
        } else {
            out.push(' ');
        }
    }
    out
}

/// Normalizes into a caller-provided buffer, avoiding an allocation when
/// called in a loop over many records.
pub fn normalize_into(input: &str, out: &mut String) {
    out.clear();
    out.reserve(input.len());
    for ch in input.chars() {
        if ch.is_ascii() {
            let b = ch as u8;
            if b.is_ascii_alphanumeric() {
                out.push(b.to_ascii_lowercase() as char);
            } else {
                out.push(' ');
            }
        } else if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
        } else {
            out.push(' ');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_ascii() {
        assert_eq!(normalize("ABC def"), "abc def");
    }

    #[test]
    fn punctuation_becomes_space() {
        assert_eq!(normalize("a.b,c;d"), "a b c d");
    }

    #[test]
    fn preserves_alphanumeric_codes() {
        assert_eq!(normalize("PSLX350H"), "pslx350h");
        assert_eq!(normalize("TU-1500RD"), "tu 1500rd");
    }

    #[test]
    fn handles_unicode_letters() {
        assert_eq!(normalize("Café"), "café");
        assert_eq!(normalize("ÉLAN"), "élan");
    }

    #[test]
    fn empty_input() {
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn normalize_into_matches_normalize() {
        let mut buf = String::new();
        for s in ["Hello, World!", "a1-B2_c3", "ünïcode TEXT"] {
            normalize_into(s, &mut buf);
            assert_eq!(buf, normalize(s));
        }
    }

    #[test]
    fn digits_survive() {
        assert_eq!(normalize("213/848-6677"), "213 848 6677");
    }
}
