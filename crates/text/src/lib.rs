//! # er-text
//!
//! Text substrate for the unsupervised entity-resolution framework.
//!
//! The paper ("A Graph-Theoretic Fusion Framework for Unsupervised Entity
//! Resolution", ICDE 2018) treats every record as a bag of normalized terms
//! produced by tokenizing its textual content and removing very frequent
//! terms (§VII-A). This crate provides:
//!
//! * [`mod@normalize`] — lowercasing / punctuation folding used before
//!   tokenization.
//! * [`mod@tokenize`] — whitespace tokenization plus a [`Vocabulary`] that
//!   interns terms into dense [`TermId`]s and tracks document frequency.
//! * [`corpus`] — a [`Corpus`] of tokenized records with frequent-term
//!   filtering, inverted indexes, and TF/IDF statistics.
//! * [`blocking`] — scalable candidate generation (token blocking,
//!   sorted-neighborhood, and the [`BlockingStrategy`] switch).
//! * [`lsh`] — MinHash signatures + banding LSH bucketing for
//!   million-record candidate generation.
//! * [`metablocking`] — block purging / filtering / edge-weight pruning
//!   over the block graph.
//! * [`streaming`] — an append-only [`StreamingCorpus`] for the serving
//!   engine's ingest path, materializing batch-identical [`Corpus`]
//!   snapshots on demand, plus the [`SignatureCache`] that keeps MinHash
//!   band keys warm across resolves.
//! * [`metrics`] — the string-similarity metrics used by the paper's
//!   string-distance baselines (Jaccard, TF-IDF cosine) and by the
//!   supervised baselines' feature extractors (edit distance, Jaro,
//!   Jaro-Winkler, n-gram overlap, Monge-Elkan, SoftTFIDF, …).
//! * [`simeng`] — the batched similarity engine: a [`StrTape`] arena
//!   holding every record text contiguously and a [`BatchScorer`] that
//!   scores slices of pair indices against it with the bit-parallel /
//!   antidiagonal DP kernels, bit-identical to the [`metrics`] oracles.
//!
//! Everything here is deterministic and allocation-conscious: records are
//! interned once and all downstream algorithms work with integer term ids.
//!
//! ```
//! use er_text::{Corpus, CorpusBuilder};
//!
//! let corpus: Corpus = CorpusBuilder::new()
//!     .push_text("Fenix at the Argyle 8358 Sunset Blvd")
//!     .push_text("Fenix 8358 Sunset Blvd West Hollywood")
//!     .build();
//! assert_eq!(corpus.len(), 2);
//! let shared = corpus.shared_terms(0, 1);
//! assert!(shared.len() >= 3); // fenix, 8358, sunset, blvd
//! ```

#![deny(unsafe_code)]

pub mod blocking;
pub mod corpus;
pub mod lsh;
pub mod metablocking;
pub mod metrics;
pub mod normalize;
pub mod simeng;
pub mod streaming;
pub mod tokenize;

pub use blocking::{sorted_neighborhood, token_blocking, BlockingStrategy, MetaBlocking};
pub use corpus::{Corpus, CorpusBuilder};
pub use lsh::{
    lsh_blocking, lsh_blocking_cached, minhash_band_keys, minhash_band_keys_cached, LshParams,
    SignatureCache,
};
pub use metablocking::{meta_block, BlockCollection, MetaConfig, Pruning, WeightScheme};
pub use metrics::{
    cosine_tokens, dice, jaccard, jaro, jaro_winkler, levenshtein, levenshtein_similarity,
    monge_elkan, ngram_similarity, overlap_coefficient, soft_tfidf, StringMetric, TfIdfModel,
};
pub use normalize::normalize;
pub use simeng::{BatchScorer, SimKernel, SimScratch, StrTape};
pub use streaming::{StreamingCorpus, DEFAULT_COMPACTION_THRESHOLD};
pub use tokenize::{tokenize, tokenize_normalized, TermId, Vocabulary};
