//! Meta-blocking: block purging, block filtering and edge-weight
//! pruning over the block graph (Papadakis et al., the
//! blocking-and-filtering survey).
//!
//! Blocking schemes emit a *block collection* — overlapping sets of
//! records ([`BlockCollection`]; token blocks, LSH buckets, or both
//! concatenated). Meta-blocking treats the collection as a graph whose
//! nodes are records and whose edges connect records co-occurring in at
//! least one block, then shrinks it in three stages:
//!
//! 1. **Block purging** drops oversized blocks (quadratic, nearly
//!    information-free — the hash-space analogue of stop terms).
//! 2. **Block filtering** keeps each record only in its `⌈ratio · d⌉`
//!    smallest blocks (the most discriminative ones); an edge survives
//!    only through blocks both endpoints kept.
//! 3. **Edge weighting + pruning** scores every surviving edge — CBS
//!    (count of common blocks) or JS (Jaccard of the two records'
//!    kept-block sets) — and discards edges below a floor or below the
//!    collection-wide mean.
//!
//! All weights are exact integers (JS is quantized to parts-per-million
//! by integer division; the mean comparison cross-multiplies in
//! `u128`), comparisons are total orders, and every stage iterates
//! sorted structures — so the surviving candidate list is bit-identical
//! at any thread count and across serial/parallel dispatch.

use er_pool::{chunk_ranges, WorkerPool};

use crate::corpus::Corpus;
use crate::lsh::{lsh_bucket_entries, lsh_bucket_entries_cached, LshParams, SignatureCache};
use crate::tokenize::TermId;

/// An overlapping collection of record blocks in CSR form.
#[derive(Debug, Clone, Default)]
pub struct BlockCollection {
    /// `offsets[i]..offsets[i+1]` indexes block `i`'s records.
    offsets: Vec<usize>,
    /// Concatenated per-block record ids.
    records: Vec<u32>,
}

impl BlockCollection {
    /// An empty collection.
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            records: Vec::new(),
        }
    }

    /// Appends one block (ignored when it holds fewer than 2 records —
    /// singleton blocks generate no pairs).
    pub fn push_block(&mut self, records: &[u32]) {
        if records.len() < 2 {
            return;
        }
        self.records.extend_from_slice(records);
        self.offsets.push(self.records.len());
    }

    /// One block per post-filter term with document frequency ≥ 2, in
    /// term order — the block view of token blocking.
    pub fn from_token_blocks(corpus: &Corpus) -> Self {
        let mut blocks = Self::new();
        for i in 0..corpus.vocab_len() {
            blocks.push_block(corpus.postings(TermId(i as u32)));
        }
        blocks
    }

    /// One block per LSH band bucket with ≥ 2 records, in bucket-key
    /// order (see [`lsh_bucket_entries`]).
    pub fn from_lsh(corpus: &Corpus, params: &LshParams, pool: &WorkerPool) -> Self {
        Self::from_bucket_entries(&lsh_bucket_entries(corpus, params, pool))
    }

    /// [`Self::from_lsh`] through a [`SignatureCache`]: band keys are
    /// recomputed only for records whose term set changed since the
    /// cache last saw them. Identical output to `from_lsh`.
    pub fn from_lsh_cached(
        corpus: &Corpus,
        params: &LshParams,
        pool: &WorkerPool,
        cache: &mut SignatureCache,
    ) -> Self {
        Self::from_bucket_entries(&lsh_bucket_entries_cached(corpus, params, pool, cache))
    }

    /// Groups sorted `(bucket key, record)` entries into blocks.
    fn from_bucket_entries(entries: &[(u64, u32)]) -> Self {
        let mut blocks = Self::new();
        let mut start = 0usize;
        while start < entries.len() {
            let key = entries[start].0;
            let mut end = start + 1;
            while end < entries.len() && entries[end].0 == key {
                end += 1;
            }
            if end - start >= 2 {
                blocks
                    .records
                    .extend(entries[start..end].iter().map(|e| e.1));
                blocks.offsets.push(blocks.records.len());
            }
            start = end;
        }
        blocks
    }

    /// Appends every block of `other` after this collection's blocks.
    pub fn extend_from(&mut self, other: &Self) {
        for b in 0..other.len() {
            self.push_block(other.block(b));
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the collection holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The records of block `i`.
    pub fn block(&self, i: usize) -> &[u32] {
        &self.records[self.offsets[i]..self.offsets[i + 1]]
    }
}

/// Edge-weight scheme over the block graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightScheme {
    /// Common-blocks scheme: the number of kept blocks shared by the
    /// pair. Integer.
    Cbs,
    /// Jaccard scheme: `cbs / (kept(a) + kept(b) − cbs)`, quantized to
    /// parts-per-million by integer division (exact and ordered).
    Js,
}

/// JS weights are scaled to parts-per-million integers.
pub const JS_SCALE: u64 = 1_000_000;

/// Edge-pruning rule applied to the weighted block graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pruning {
    /// Keep edges whose weight is at least this floor (CBS: a block
    /// count; JS: parts-per-million of [`JS_SCALE`]).
    MinWeight(u64),
    /// Weight-edge pruning: keep edges at or above the mean edge
    /// weight, compared exactly by cross-multiplication.
    MeanWeight,
}

/// Meta-blocking configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaConfig {
    /// Block purging: blocks larger than this are dropped outright.
    pub max_block_size: usize,
    /// Block filtering: each record keeps its `⌈ratio · d⌉` smallest
    /// blocks (`d` = blocks containing it). `1.0` disables filtering.
    pub filter_ratio: f64,
    /// Edge-weight scheme.
    pub weight: WeightScheme,
    /// Edge-pruning rule.
    pub prune: Pruning,
}

impl Default for MetaConfig {
    /// Survey-flavored defaults: purge past 128 records, keep the 80%
    /// smallest blocks per record, CBS weights, and require an edge to
    /// be supported by at least 2 common blocks.
    fn default() -> Self {
        Self {
            max_block_size: 128,
            filter_ratio: 0.8,
            weight: WeightScheme::Cbs,
            prune: Pruning::MinWeight(2),
        }
    }
}

/// Runs the meta-blocking pipeline over a block collection: purging →
/// filtering → exact-weight edge pruning. Returns sorted, deduplicated
/// `(a, b)` candidate pairs with `a < b`, bit-identical at any thread
/// count.
///
/// `n_records` is the corpus size (for the reduction-ratio gauges and
/// the record→block index).
pub fn meta_block(
    blocks: &BlockCollection,
    n_records: usize,
    config: &MetaConfig,
    pool: &WorkerPool,
) -> Vec<(u32, u32)> {
    let _span = er_obs::span("blocking.meta");
    assert!(
        (0.0..=1.0).contains(&config.filter_ratio),
        "filter_ratio must be in [0, 1], got {}",
        config.filter_ratio
    );

    // 1. Block purging.
    let surviving: Vec<u32> = (0..blocks.len())
        .filter(|&b| {
            let s = blocks.block(b).len();
            (2..=config.max_block_size).contains(&s)
        })
        .map(|b| b as u32)
        .collect();
    er_obs::counter_add(
        "blocking.meta.purged_blocks",
        (blocks.len() - surviving.len()) as u64,
    );
    er_obs::counter_add("blocking.meta.blocks", surviving.len() as u64);

    // 2. Block filtering: record → surviving blocks (CSR), then keep
    // each record's top-⌈ratio·d⌉ blocks by (size, id) — smallest (most
    // discriminative) first.
    let kept = filter_blocks(blocks, &surviving, n_records, config.filter_ratio);

    // 3. Enumerate within-block pairs over kept memberships, count
    // common blocks per pair (CBS), weight and prune.
    let pairs = weighted_pairs(&kept, config, pool);
    crate::blocking::note_blocking_stats("meta", n_records, pairs.len());
    pairs
}

/// Kept block memberships after filtering: for each surviving block, the
/// records that retained it (ascending), plus each record's kept-block
/// count (the JS denominator).
struct KeptBlocks {
    /// CSR offsets over `records`, aligned with the surviving-block
    /// list passed to [`filter_blocks`].
    offsets: Vec<usize>,
    records: Vec<u32>,
    /// Kept-block count per record.
    kept_degree: Vec<u32>,
}

fn filter_blocks(
    blocks: &BlockCollection,
    surviving: &[u32],
    n_records: usize,
    ratio: f64,
) -> KeptBlocks {
    let _span = er_obs::span("blocking.meta.filter");
    // Record → surviving-block incidence (CSR by counting sort; block
    // index here is the position in `surviving`).
    let mut degree = vec![0u32; n_records];
    for &b in surviving {
        for &r in blocks.block(b as usize) {
            degree[r as usize] += 1;
        }
    }
    let mut rec_offsets = vec![0usize; n_records + 1];
    for r in 0..n_records {
        rec_offsets[r + 1] = rec_offsets[r] + degree[r] as usize;
    }
    let mut rec_blocks = vec![0u32; rec_offsets[n_records]];
    let mut cursor = rec_offsets.clone();
    for (si, &b) in surviving.iter().enumerate() {
        for &r in blocks.block(b as usize) {
            rec_blocks[cursor[r as usize]] = si as u32;
            cursor[r as usize] += 1;
        }
    }

    // Per record: keep the ⌈ratio·d⌉ smallest blocks. Sorting the
    // record's slice by (block size, surviving index) makes the choice
    // deterministic and biased toward discriminative blocks.
    let mut keep = vec![false; rec_blocks.len()];
    let mut kept_degree = vec![0u32; n_records];
    let mut dropped = 0u64;
    for r in 0..n_records {
        let slice = &mut rec_blocks[rec_offsets[r]..rec_offsets[r + 1]];
        if slice.is_empty() {
            continue;
        }
        let quota = ((ratio * slice.len() as f64).ceil() as usize).clamp(1, slice.len());
        slice.sort_unstable_by_key(|&si| (blocks.block(surviving[si as usize] as usize).len(), si));
        kept_degree[r] = quota as u32;
        dropped += (slice.len() - quota) as u64;
        for (i, flag) in keep[rec_offsets[r]..rec_offsets[r + 1]]
            .iter_mut()
            .enumerate()
        {
            *flag = i < quota;
        }
    }
    er_obs::counter_add("blocking.meta.filtered_memberships", dropped);

    // Invert back to block → kept records. Iterating records in
    // ascending order keeps every block's record list sorted.
    let mut block_kept_count = vec![0u32; surviving.len()];
    for r in 0..n_records {
        for (i, &si) in rec_blocks[rec_offsets[r]..rec_offsets[r + 1]]
            .iter()
            .enumerate()
        {
            if keep[rec_offsets[r] + i] {
                block_kept_count[si as usize] += 1;
            }
        }
    }
    let mut offsets = vec![0usize; surviving.len() + 1];
    for si in 0..surviving.len() {
        offsets[si + 1] = offsets[si] + block_kept_count[si] as usize;
    }
    let mut records = vec![0u32; offsets[surviving.len()]];
    let mut bcursor = offsets.clone();
    for r in 0..n_records {
        for (i, &si) in rec_blocks[rec_offsets[r]..rec_offsets[r + 1]]
            .iter()
            .enumerate()
        {
            if keep[rec_offsets[r] + i] {
                records[bcursor[si as usize]] = r as u32;
                bcursor[si as usize] += 1;
            }
        }
    }
    KeptBlocks {
        offsets,
        records,
        kept_degree,
    }
}

/// Enumerates within-block pairs over kept memberships, counts common
/// blocks, applies the weight scheme and pruning rule.
fn weighted_pairs(kept: &KeptBlocks, config: &MetaConfig, pool: &WorkerPool) -> Vec<(u32, u32)> {
    let _span = er_obs::span("blocking.meta.edges");
    let n_blocks = kept.offsets.len() - 1;
    // Two-pass disjoint fill: per-block pair counts → prefix offsets →
    // parallel fill of each block's precomputed output range.
    let mut pair_offsets = vec![0usize; n_blocks + 1];
    for b in 0..n_blocks {
        let k = kept.offsets[b + 1] - kept.offsets[b];
        pair_offsets[b + 1] = pair_offsets[b] + k * k.saturating_sub(1) / 2;
    }
    let total_pairs = pair_offsets[n_blocks];
    let mut raw: Vec<(u32, u32)> = vec![(0, 0); total_pairs];
    let fill_block = |b: usize, out: &mut [(u32, u32)]| {
        let recs = &kept.records[kept.offsets[b]..kept.offsets[b + 1]];
        let mut w = 0usize;
        for (i, &a) in recs.iter().enumerate() {
            for &c in &recs[i + 1..] {
                out[w] = if a < c { (a, c) } else { (c, a) };
                w += 1;
            }
        }
    };
    if pool.dispatch(total_pairs).is_parallel() {
        // Chunk over the pair index space so one giant block cannot
        // serialize the fill; blocks are assigned whole to the chunk
        // holding their range start.
        let ranges = chunk_ranges(n_blocks, pool.threads(), 1);
        let chunks: Vec<std::ops::Range<usize>> = ranges
            .iter()
            .map(|r| pair_offsets[r.start]..pair_offsets[r.end])
            .collect();
        let pair_offsets = &pair_offsets;
        pool.scope(|s| {
            let mut rest = raw.as_mut_slice();
            for (br, pr) in ranges.iter().zip(&chunks) {
                let (chunk, tail) = rest.split_at_mut(pr.len());
                rest = tail;
                let br = br.clone();
                s.submit(move || {
                    let base = pair_offsets[br.start];
                    for b in br {
                        fill_block(
                            b,
                            &mut chunk[pair_offsets[b] - base..pair_offsets[b + 1] - base],
                        );
                    }
                });
            }
        });
    } else {
        for b in 0..n_blocks {
            fill_block(b, &mut raw[pair_offsets[b]..pair_offsets[b + 1]]);
        }
    }

    // Sort; runs of the same pair give CBS (common kept blocks).
    raw.sort_unstable();
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    let mut i = 0usize;
    while i < raw.len() {
        let pair = raw[i];
        let mut j = i + 1;
        while j < raw.len() && raw[j] == pair {
            j += 1;
        }
        let cbs = (j - i) as u64;
        let w = match config.weight {
            WeightScheme::Cbs => cbs,
            WeightScheme::Js => {
                let union = u64::from(kept.kept_degree[pair.0 as usize])
                    + u64::from(kept.kept_degree[pair.1 as usize])
                    - cbs;
                (cbs * JS_SCALE).checked_div(union).unwrap_or(0)
            }
        };
        edges.push((pair.0, pair.1, w));
        i = j;
    }
    er_obs::counter_add("blocking.meta.edges", edges.len() as u64);

    let kept_pairs: Vec<(u32, u32)> = match config.prune {
        Pruning::MinWeight(floor) => edges
            .iter()
            .filter(|&&(_, _, w)| w >= floor)
            .map(|&(a, b, _)| (a, b))
            .collect(),
        Pruning::MeanWeight => {
            let sum: u128 = edges.iter().map(|&(_, _, w)| u128::from(w)).sum();
            let m = edges.len() as u128;
            // w ≥ sum/m  ⇔  w·m ≥ sum, exactly.
            edges
                .iter()
                .filter(|&&(_, _, w)| u128::from(w) * m >= sum)
                .map(|&(a, b, _)| (a, b))
                .collect()
        }
    };
    er_obs::counter_add(
        "blocking.meta.pruned_edges",
        (edges.len() - kept_pairs.len()) as u64,
    );
    kept_pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::token_blocking;
    use crate::corpus::CorpusBuilder;

    fn corpus() -> Corpus {
        CorpusBuilder::new()
            .push_text("fenix sunset 8358 hollywood")
            .push_text("fenix sunset 8358 west hollywood")
            .push_text("grill dayton 9560 beverly")
            .push_text("grill dayton 9560 hills beverly")
            .push_text("unrelated words only")
            .build()
    }

    /// A config that disables every stage: meta-blocking then equals
    /// plain within-block pair enumeration.
    fn neutral(cap: usize) -> MetaConfig {
        MetaConfig {
            max_block_size: cap,
            filter_ratio: 1.0,
            weight: WeightScheme::Cbs,
            prune: Pruning::MinWeight(1),
        }
    }

    #[test]
    fn neutral_meta_equals_token_blocking() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let blocks = BlockCollection::from_token_blocks(&c);
        let meta = meta_block(&blocks, c.len(), &neutral(64), &pool);
        assert_eq!(meta, token_blocking(&c, 64));
    }

    #[test]
    fn purging_drops_large_blocks() {
        let c = CorpusBuilder::new()
            .extend_texts(["x a b", "x c d", "x e f", "x g h"])
            .build();
        let pool = WorkerPool::new(1);
        let blocks = BlockCollection::from_token_blocks(&c);
        // The x-block has 4 records; cap 3 purges it, and nothing else
        // is shared.
        let pairs = meta_block(&blocks, c.len(), &neutral(3), &pool);
        assert!(pairs.is_empty(), "{pairs:?}");
    }

    #[test]
    fn cbs_floor_requires_multiple_common_blocks() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let blocks = BlockCollection::from_token_blocks(&c);
        let cfg = MetaConfig {
            prune: Pruning::MinWeight(3),
            filter_ratio: 1.0,
            ..MetaConfig::default()
        };
        let pairs = meta_block(&blocks, c.len(), &cfg, &pool);
        // (0,1) share fenix/sunset/8358/hollywood (4 blocks); (2,3)
        // share grill/dayton/9560/beverly (4 blocks). Both survive a
        // floor of 3; nothing else shares ≥3 terms.
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn js_weights_match_kept_degrees() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let blocks = BlockCollection::from_token_blocks(&c);
        // Records 0/1: 4 common blocks; record 0 sits in 4 blocks with
        // df >= 2, record 1 in 5 (incl. "west"? no — west is unique).
        // JS = 4 / (4 + 4 - 4) = 1.0 for a full-overlap pair.
        let cfg = MetaConfig {
            weight: WeightScheme::Js,
            prune: Pruning::MinWeight(JS_SCALE), // JS == 1.0 exactly
            filter_ratio: 1.0,
            max_block_size: 64,
        };
        let pairs = meta_block(&blocks, c.len(), &cfg, &pool);
        // Only the full-overlap pairs reach JS = 1.0: each record of
        // (0,1) and (2,3) sits in exactly the 4 blocks the pair shares
        // (the leftover terms are df-1 and form no block).
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn mean_weight_pruning_keeps_heavy_edges() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let blocks = BlockCollection::from_token_blocks(&c);
        let cfg = MetaConfig {
            prune: Pruning::MeanWeight,
            filter_ratio: 1.0,
            ..MetaConfig::default()
        };
        let pairs = meta_block(&blocks, c.len(), &cfg, &pool);
        // The 4-common-block pairs dominate the mean over any stray
        // 1-block edges.
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        assert!(pairs.contains(&(2, 3)), "{pairs:?}");
    }

    #[test]
    fn filtering_is_deterministic_and_reduces_memberships() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let blocks = BlockCollection::from_token_blocks(&c);
        let cfg = MetaConfig {
            filter_ratio: 0.5,
            prune: Pruning::MinWeight(1),
            ..MetaConfig::default()
        };
        let a = meta_block(&blocks, c.len(), &cfg, &pool);
        let b = meta_block(&blocks, c.len(), &cfg, &pool);
        assert_eq!(a, b);
        let unfiltered = meta_block(&blocks, c.len(), &neutral(128), &pool);
        assert!(a.len() <= unfiltered.len());
    }

    #[test]
    fn thread_and_dispatch_invariant() {
        let c = corpus();
        let blocks = BlockCollection::from_token_blocks(&c);
        let cfg = MetaConfig::default();
        let reference = meta_block(
            &blocks,
            c.len(),
            &cfg,
            &WorkerPool::with_policy(1, er_pool::DispatchPolicy::always_serial()),
        );
        for threads in [1usize, 2, 8] {
            let pool = WorkerPool::with_policy(threads, er_pool::DispatchPolicy::always_parallel());
            assert_eq!(reference, meta_block(&blocks, c.len(), &cfg, &pool));
        }
    }

    #[test]
    fn collections_compose() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let mut blocks = BlockCollection::from_token_blocks(&c);
        let before = blocks.len();
        let lsh = BlockCollection::from_lsh(&c, &LshParams::default(), &pool);
        blocks.extend_from(&lsh);
        assert_eq!(blocks.len(), before + lsh.len());
        assert!(!blocks.is_empty());
        // Duplicate listings collide in LSH, so the union collection
        // still finds them after meta-blocking.
        let pairs = meta_block(&blocks, c.len(), &MetaConfig::default(), &pool);
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        assert!(pairs.contains(&(2, 3)), "{pairs:?}");
    }
}
