//! Character n-gram similarity.
//!
//! n-gram overlap is robust to the abbreviation noise in the benchmark
//! datasets ("blvd" vs "boulevard" still share "b", "l", "v" bigrams via
//! the padded representation) and is one of the features fed to the
//! supervised baselines.

use std::collections::HashMap;

/// Extracts the padded character n-gram multiset of `s`.
///
/// The string is padded with `n − 1` leading/trailing `#` sentinels so that
/// boundary characters contribute as much as interior ones (the common
/// convention from the record-linkage literature). Returns gram → count.
pub fn ngram_multiset(s: &str, n: usize) -> HashMap<Vec<char>, u32> {
    assert!(n >= 1, "n-gram length must be at least 1");
    let mut padded: Vec<char> = vec!['#'; n - 1];
    padded.extend(s.chars());
    padded.extend(std::iter::repeat_n('#', n - 1));
    let mut grams: HashMap<Vec<char>, u32> = HashMap::new();
    if padded.len() < n {
        return grams;
    }
    for w in padded.windows(n) {
        *grams.entry(w.to_vec()).or_insert(0) += 1;
    }
    grams
}

/// Dice coefficient over padded character n-gram multisets:
/// `2·|A ∩ B| / (|A| + |B|)`, in `[0, 1]`.
pub fn ngram_similarity(a: &str, b: &str, n: usize) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let ga = ngram_multiset(a, n);
    let gb = ngram_multiset(b, n);
    let total: u32 = ga.values().sum::<u32>() + gb.values().sum::<u32>();
    if total == 0 {
        return 0.0;
    }
    let inter: u32 = ga
        .iter()
        .map(|(g, &ca)| ca.min(gb.get(g).copied().unwrap_or(0)))
        .sum();
    2.0 * inter as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(ngram_similarity("night", "night", 2), 1.0);
        assert_eq!(ngram_similarity("x", "x", 3), 1.0);
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert_eq!(ngram_similarity("aaa", "zzz", 2), 0.0);
    }

    #[test]
    fn classic_night_nacht() {
        // Padded bigrams of "night": #n ni ig gh ht t# ; "nacht": #n na ac ch ht t#
        // Intersection: #n, ht, t# = 3; total = 12 → dice = 0.5.
        let s = ngram_similarity("night", "nacht", 2);
        assert!((s - 0.5).abs() < 1e-12, "{s}");
    }

    #[test]
    fn multiset_counts_duplicates() {
        let grams = ngram_multiset("aaa", 2);
        // #a aa aa a# → "aa" twice.
        assert_eq!(grams[&vec!['a', 'a']], 2);
        assert_eq!(grams[&vec!['#', 'a']], 1);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(ngram_similarity("", "", 2), 1.0);
        assert_eq!(ngram_similarity("", "abc", 2), 0.0);
    }

    #[test]
    fn short_string_shorter_than_n_still_works() {
        // Padding guarantees at least one gram for non-empty strings.
        let s = ngram_similarity("a", "a", 3);
        assert_eq!(s, 1.0);
        let s = ngram_similarity("a", "b", 3);
        assert!(s < 1.0);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("sunset", "sunst"), ("blvd", "boulevard")] {
            assert_eq!(ngram_similarity(a, b, 2), ngram_similarity(b, a, 2));
        }
    }

    #[test]
    fn abbreviations_retain_overlap() {
        assert!(ngram_similarity("blvd", "boulevard", 2) > 0.2);
    }
}
