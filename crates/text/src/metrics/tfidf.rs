//! TF-IDF vectorization and cosine similarity over a [`Corpus`].
//!
//! The TF-IDF baseline (Table II row 2) scores a record pair by the cosine
//! of their TF-IDF vectors — the "word-based information representation"
//! of Cohen \[2\]. IDF uses the smoothed form `ln((n + 1) / (df + 1)) + 1`
//! so that terms present in every record still get a small positive
//! weight, and vectors are L2-normalized once at build time so pair
//! scoring is a sparse dot product.

use crate::corpus::Corpus;
use crate::tokenize::TermId;

/// Precomputed L2-normalized TF-IDF vectors for every record of a corpus.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    /// Per record: sorted `(term, weight)` entries.
    vectors: Vec<Vec<(TermId, f64)>>,
    /// IDF per term id (0 for filtered terms).
    idf: Vec<f64>,
    n_records: usize,
}

impl TfIdfModel {
    /// Builds the model from a corpus (O(total tokens)).
    pub fn fit(corpus: &Corpus) -> Self {
        let n = corpus.len();
        let mut idf = vec![0.0f64; corpus.vocab_len()];
        for (i, w) in idf.iter_mut().enumerate() {
            let df = corpus.filtered_doc_freq(TermId(i as u32));
            if df > 0 {
                *w = ((n as f64 + 1.0) / (df as f64 + 1.0)).ln() + 1.0;
            }
        }
        let mut vectors = Vec::with_capacity(n);
        for r in 0..n {
            let mut v: Vec<(TermId, f64)> = Vec::new();
            let tokens = corpus.tokens(r);
            // Tokens are unsorted; accumulate term frequency via the sorted
            // term set + counting pass.
            let set = corpus.term_set(r);
            let mut tf = vec![0u32; set.len()];
            for &tok in tokens {
                if let Ok(pos) = set.binary_search(&tok) {
                    tf[pos] += 1;
                }
            }
            for (pos, &t) in set.iter().enumerate() {
                let w = tf[pos] as f64 * idf[t.index()];
                if w > 0.0 {
                    v.push((t, w));
                }
            }
            let norm: f64 = v.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
            if norm > 0.0 {
                for (_, w) in &mut v {
                    *w /= norm;
                }
            }
            vectors.push(v);
        }
        Self {
            vectors,
            idf,
            n_records: n,
        }
    }

    /// Number of records the model was fitted on.
    pub fn len(&self) -> usize {
        self.n_records
    }

    /// True when fitted on an empty corpus.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// IDF of a term (0 for filtered/unknown terms).
    pub fn idf(&self, t: TermId) -> f64 {
        self.idf.get(t.index()).copied().unwrap_or(0.0)
    }

    /// The normalized sparse vector of record `r`.
    pub fn vector(&self, r: usize) -> &[(TermId, f64)] {
        &self.vectors[r]
    }

    /// Cosine similarity between records `i` and `j` (dot product of the
    /// pre-normalized sparse vectors; O(|i| + |j|)).
    pub fn cosine(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (&self.vectors[i], &self.vectors[j]);
        let mut dot = 0.0;
        let (mut ia, mut ib) = (0, 0);
        while ia < a.len() && ib < b.len() {
            match a[ia].0.cmp(&b[ib].0) {
                std::cmp::Ordering::Less => ia += 1,
                std::cmp::Ordering::Greater => ib += 1,
                std::cmp::Ordering::Equal => {
                    dot += a[ia].1 * b[ib].1;
                    ia += 1;
                    ib += 1;
                }
            }
        }
        dot.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    fn corpus() -> Corpus {
        CorpusBuilder::new()
            .push_text("sony turntable pslx350h")
            .push_text("sony pslx350h turntable belt drive")
            .push_text("panasonic microwave oven")
            .push_text("sony dvd player")
            .build()
    }

    #[test]
    fn identical_records_cosine_one() {
        let c = CorpusBuilder::new()
            .push_text("a b c")
            .push_text("a b c")
            .build();
        let m = TfIdfModel::fit(&c);
        assert!((m.cosine(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matching_pair_beats_non_matching() {
        let m = TfIdfModel::fit(&corpus());
        assert!(m.cosine(0, 1) > m.cosine(0, 2));
        assert!(m.cosine(0, 1) > m.cosine(0, 3));
    }

    #[test]
    fn rare_terms_have_higher_idf() {
        let c = corpus();
        let m = TfIdfModel::fit(&c);
        let sony = c.vocab().get("sony").unwrap();
        let model_code = c.vocab().get("pslx350h").unwrap();
        assert!(m.idf(model_code) > m.idf(sony));
    }

    #[test]
    fn vectors_are_unit_norm() {
        let m = TfIdfModel::fit(&corpus());
        for r in 0..m.len() {
            let norm: f64 = m.vector(r).iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "record {r}: {norm}");
        }
    }

    #[test]
    fn disjoint_records_cosine_zero() {
        let c = CorpusBuilder::new()
            .push_text("aa bb")
            .push_text("cc dd")
            .build();
        let m = TfIdfModel::fit(&c);
        assert_eq!(m.cosine(0, 1), 0.0);
    }

    #[test]
    fn term_frequency_counted() {
        let c = CorpusBuilder::new()
            .push_text("spam spam spam egg")
            .push_text("spam egg")
            .build();
        let m = TfIdfModel::fit(&c);
        let spam = c.vocab().get("spam").unwrap();
        let w0 = m.vector(0).iter().find(|(t, _)| *t == spam).unwrap().1;
        let w1 = m.vector(1).iter().find(|(t, _)| *t == spam).unwrap().1;
        // Record 0 has tf=3 for spam, so spam dominates its vector more.
        assert!(w0 > w1);
    }

    #[test]
    fn empty_record_yields_empty_vector() {
        let c = CorpusBuilder::new().push_text("").push_text("x y").build();
        let m = TfIdfModel::fit(&c);
        assert!(m.vector(0).is_empty());
        assert_eq!(m.cosine(0, 1), 0.0);
    }

    #[test]
    fn cosine_symmetric() {
        let m = TfIdfModel::fit(&corpus());
        for i in 0..4 {
            for j in 0..4 {
                assert!((m.cosine(i, j) - m.cosine(j, i)).abs() < 1e-12);
            }
        }
    }
}
