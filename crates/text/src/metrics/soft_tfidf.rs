//! SoftTFIDF: TF-IDF cosine with fuzzy token matching.
//!
//! Cohen, Ravikumar & Fienberg's name-matching study \[15\] — cited by the
//! paper as evidence that no single metric dominates — found SoftTFIDF
//! (TF-IDF where tokens match if an inner character metric exceeds a
//! threshold) the strongest overall string metric. The `er-ml` feature
//! extractor includes it as the strongest purely-textual feature.

use crate::metrics::jaro_winkler;

/// SoftTFIDF similarity between two weighted token vectors.
///
/// `a` and `b` are `(token, weight)` lists (weights need not be
/// normalized; normalization happens internally). Tokens `x ∈ a` and
/// `y ∈ b` are "close" when `jaro_winkler(x, y) ≥ threshold`; each close
/// pair contributes `w_a(x) · w_b(y) · jw(x, y)` using the best `y` for
/// each `x`. With `threshold = 1.0` this degrades to exact-match TF-IDF
/// cosine.
pub fn soft_tfidf(a: &[(&str, f64)], b: &[(&str, f64)], threshold: f64) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let norm = |v: &[(&str, f64)]| -> f64 { v.iter().map(|(_, w)| w * w).sum::<f64>().sqrt() };
    let (na, nb) = (norm(a), norm(b));
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let mut total = 0.0;
    for &(x, wx) in a {
        let mut best_sim = 0.0;
        let mut best_w = 0.0;
        for &(y, wy) in b {
            let s = jaro_winkler(x, y);
            if s >= threshold && s > best_sim {
                best_sim = s;
                best_w = wy;
            }
        }
        if best_sim > 0.0 {
            total += wx * best_w * best_sim;
        }
    }
    (total / (na * nb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_score_one() {
        let a = vec![("sunset", 1.0), ("blvd", 0.5)];
        let s = soft_tfidf(&a, &a, 0.9);
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn fuzzy_match_beats_exact_tfidf_on_typos() {
        let a = vec![("restaurant", 1.0), ("pacifico", 2.0)];
        let b = vec![("restaurant", 1.0), ("pacifcio", 2.0)]; // transposed typo
        let soft = soft_tfidf(&a, &b, 0.9);
        let exact = soft_tfidf(&a, &b, 1.0);
        assert!(soft > exact, "soft={soft} exact={exact}");
        assert!(soft > 0.9);
    }

    #[test]
    fn threshold_one_equals_exact_cosine() {
        let a = vec![("x", 3.0), ("y", 4.0)];
        let b = vec![("x", 3.0), ("z", 4.0)];
        let s = soft_tfidf(&a, &b, 1.0);
        // cos = 9 / (5 * 5)
        assert!((s - 9.0 / 25.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn disjoint_dissimilar_tokens_score_zero() {
        let a = vec![("aaaa", 1.0)];
        let b = vec![("zzzz", 1.0)];
        assert_eq!(soft_tfidf(&a, &b, 0.9), 0.0);
    }

    #[test]
    fn empty_handling() {
        let e: Vec<(&str, f64)> = vec![];
        let a = vec![("x", 1.0)];
        assert_eq!(soft_tfidf(&e, &e, 0.9), 1.0);
        assert_eq!(soft_tfidf(&e, &a, 0.9), 0.0);
        let z = vec![("x", 0.0)];
        assert_eq!(soft_tfidf(&z, &a, 0.9), 0.0);
    }

    #[test]
    fn bounded() {
        let a = vec![("abc", 1.0), ("abd", 1.0)];
        let b = vec![("abc", 1.0), ("abe", 1.0)];
        let s = soft_tfidf(&a, &b, 0.8);
        assert!((0.0..=1.0).contains(&s), "{s}");
    }
}
