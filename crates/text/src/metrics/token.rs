//! Token-set similarity coefficients over interned term ids.
//!
//! Jaccard is the machine-side filter of the crowd-based competitors the
//! paper discusses (threshold 0.3 in \[10\], \[12\]) and the first row of
//! Table II. All functions take **sorted, deduplicated** term-id slices as
//! produced by [`crate::Corpus::term_set`].

use crate::corpus::count_intersect_sorted;
use crate::tokenize::TermId;

/// Jaccard coefficient `|A ∩ B| / |A ∪ B|` over sorted term sets.
/// Two empty sets score `1.0` (identical), one empty set scores `0.0`.
pub fn jaccard(a: &[TermId], b: &[TermId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = count_intersect_sorted(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        return 0.0;
    }
    inter as f64 / union as f64
}

/// Dice coefficient `2·|A ∩ B| / (|A| + |B|)` over sorted term sets.
pub fn dice(a: &[TermId], b: &[TermId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let denom = a.len() + b.len();
    if denom == 0 {
        return 0.0;
    }
    2.0 * count_intersect_sorted(a, b) as f64 / denom as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` over sorted term sets.
///
/// Useful when one record is a near-subset of the other, which happens in
/// the Product dataset where the "buy" record is a terse version of the
/// "abt" record.
pub fn overlap_coefficient(a: &[TermId], b: &[TermId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let min = a.len().min(b.len());
    if min == 0 {
        return 0.0;
    }
    count_intersect_sorted(a, b) as f64 / min as f64
}

/// Cosine similarity over **binary** term incidence vectors:
/// `|A ∩ B| / sqrt(|A|·|B|)`.
pub fn cosine_tokens(a: &[TermId], b: &[TermId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    count_intersect_sorted(a, b) as f64 / ((a.len() as f64) * (b.len() as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<TermId> {
        v.iter().map(|&x| TermId(x)).collect()
    }

    #[test]
    fn jaccard_basic() {
        let a = ids(&[1, 2, 3, 4]);
        let b = ids(&[3, 4, 5, 6]);
        assert!((jaccard(&a, &b) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn identical_sets_score_one() {
        let a = ids(&[1, 2, 3]);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(dice(&a, &a), 1.0);
        assert_eq!(overlap_coefficient(&a, &a), 1.0);
        assert_eq!(cosine_tokens(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_sets_score_zero() {
        let a = ids(&[1, 2]);
        let b = ids(&[3, 4]);
        assert_eq!(jaccard(&a, &b), 0.0);
        assert_eq!(dice(&a, &b), 0.0);
        assert_eq!(overlap_coefficient(&a, &b), 0.0);
        assert_eq!(cosine_tokens(&a, &b), 0.0);
    }

    #[test]
    fn empty_handling() {
        let e: Vec<TermId> = vec![];
        let a = ids(&[1]);
        assert_eq!(jaccard(&e, &e), 1.0);
        assert_eq!(jaccard(&e, &a), 0.0);
        assert_eq!(dice(&e, &a), 0.0);
        assert_eq!(overlap_coefficient(&e, &a), 0.0);
        assert_eq!(cosine_tokens(&e, &a), 0.0);
    }

    #[test]
    fn subset_gives_full_overlap_coefficient() {
        let a = ids(&[1, 2]);
        let b = ids(&[1, 2, 3, 4, 5]);
        assert_eq!(overlap_coefficient(&a, &b), 1.0);
        assert!(jaccard(&a, &b) < 1.0);
    }

    #[test]
    fn dice_geq_jaccard() {
        let a = ids(&[1, 2, 3, 4]);
        let b = ids(&[3, 4, 5]);
        assert!(dice(&a, &b) >= jaccard(&a, &b));
    }

    #[test]
    fn cosine_between_jaccard_and_overlap() {
        let a = ids(&[1, 2, 3, 4, 5, 6]);
        let b = ids(&[4, 5, 6, 7]);
        let j = jaccard(&a, &b);
        let c = cosine_tokens(&a, &b);
        let o = overlap_coefficient(&a, &b);
        assert!(j <= c && c <= o, "j={j} c={c} o={o}");
    }
}
