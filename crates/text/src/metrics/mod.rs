//! String and token-set similarity metrics.
//!
//! The paper's string-distance baselines (§II-A, Table II) use Jaccard and
//! TF-IDF cosine similarity; the supervised baselines (`er-ml`) extract
//! feature vectors from a broader family of metrics, matching the
//! hand-crafted features used by the learning-based competitors it cites
//! (edit distance \[1\], token TF-IDF \[2\], the name-matching study \[15\]).
//!
//! All similarities are in `[0, 1]`, symmetric, and return `1.0` for equal
//! non-empty inputs.

mod alignment;
mod jaro;
mod levenshtein;
mod monge_elkan;
mod ngram;
mod phonetic;
mod soft_tfidf;
mod tfidf;
mod token;

pub use alignment::{
    needleman_wunsch, needleman_wunsch_similarity, smith_waterman, smith_waterman_similarity,
    AlignmentScoring,
};
pub use jaro::{jaro, jaro_winkler};
pub use levenshtein::{damerau_levenshtein, levenshtein, levenshtein_similarity};
pub use monge_elkan::monge_elkan;
pub use ngram::{ngram_multiset, ngram_similarity};
pub use phonetic::{soundex, sounds_like};
pub use soft_tfidf::soft_tfidf;
pub use tfidf::TfIdfModel;
pub use token::{cosine_tokens, dice, jaccard, overlap_coefficient};

/// A symmetric string-similarity metric in `[0, 1]`.
///
/// The trait exists so the supervised feature extractor and the threshold
/// sweep harness can treat metrics uniformly.
pub trait StringMetric {
    /// Similarity between `a` and `b`; `1.0` means identical.
    fn similarity(&self, a: &str, b: &str) -> f64;

    /// Human-readable metric name (used in benchmark output).
    fn name(&self) -> &'static str;
}

/// Levenshtein similarity as a [`StringMetric`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LevenshteinMetric;

impl StringMetric for LevenshteinMetric {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        levenshtein_similarity(a, b)
    }
    fn name(&self) -> &'static str {
        "levenshtein"
    }
}

/// Jaro-Winkler as a [`StringMetric`].
#[derive(Debug, Clone, Copy, Default)]
pub struct JaroWinklerMetric;

impl StringMetric for JaroWinklerMetric {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        jaro_winkler(a, b)
    }
    fn name(&self) -> &'static str {
        "jaro_winkler"
    }
}

/// Character n-gram similarity as a [`StringMetric`].
#[derive(Debug, Clone, Copy)]
pub struct NgramMetric {
    /// n-gram length (2 = bigram, 3 = trigram).
    pub n: usize,
}

impl Default for NgramMetric {
    fn default() -> Self {
        Self { n: 2 }
    }
}

impl StringMetric for NgramMetric {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        ngram_similarity(a, b, self.n)
    }
    fn name(&self) -> &'static str {
        "ngram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_work() {
        let metrics: Vec<Box<dyn StringMetric>> = vec![
            Box::new(LevenshteinMetric),
            Box::new(JaroWinklerMetric),
            Box::new(NgramMetric::default()),
        ];
        for m in &metrics {
            assert!(
                (m.similarity("abc", "abc") - 1.0).abs() < 1e-12,
                "{}",
                m.name()
            );
            let s = m.similarity("abc", "xyz");
            assert!((0.0..=1.0).contains(&s), "{}", m.name());
        }
    }
}
