//! Edit-distance metrics (Levenshtein and Damerau-Levenshtein).
//!
//! Edit distance is the character-based metric the paper cites via Monge &
//! Elkan's field-matching work \[1\]; the `er-ml` feature extractor uses the
//! normalized similarity form.

/// Levenshtein (insert/delete/substitute) distance between two strings,
/// computed over Unicode scalar values with a two-row dynamic program:
/// O(|a|·|b|) time, O(min(|a|,|b|)) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Damerau-Levenshtein distance: Levenshtein plus adjacent transposition
/// (the "restricted" optimal-string-alignment variant). Transpositions are
/// the dominant typo class injected by the dataset corrupters, so the
/// supervised features include this variant.
#[allow(clippy::needless_range_loop)]
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Full (n+1)×(m+1) table: record fields are short strings, so the
    // quadratic space is negligible and keeps the transposition case simple.
    let width = m + 1;
    let mut d = vec![0usize; (n + 1) * width];
    for j in 0..=m {
        d[j] = j;
    }
    for i in 1..=n {
        d[i * width] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[(i - 1) * width + j - 1] + cost)
                .min(d[(i - 1) * width + j] + 1)
                .min(d[i * width + j - 1] + 1);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[(i - 2) * width + j - 2] + 1);
            }
            d[i * width + j] = best;
        }
    }
    d[n * width + m]
}

/// Normalized Levenshtein similarity: `1 − dist / max(|a|, |b|)`, with
/// `1.0` for two empty strings.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            levenshtein("sunday", "saturday"),
            levenshtein("saturday", "sunday")
        );
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn damerau_counts_transposition_as_one() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("abcdef", "abcdfe"), 1);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
        assert_eq!(damerau_levenshtein("", "xy"), 2);
    }

    #[test]
    fn damerau_never_exceeds_levenshtein() {
        for (a, b) in [
            ("kitten", "sitting"),
            ("pslx350h", "pslx350"),
            ("rose", "eros"),
        ] {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b), "{a} vs {b}");
        }
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("pslx350h", "pslx350");
        assert!(s > 0.8 && s < 1.0);
    }
}
