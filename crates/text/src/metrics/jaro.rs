//! Jaro and Jaro-Winkler similarity.
//!
//! Cohen et al.'s name-matching comparison \[15\] — which the paper uses to
//! motivate that no single metric wins everywhere — found Jaro-Winkler
//! strong on person/organization names. The supervised feature extractor
//! and the Monge-Elkan inner metric use it.

/// Jaro similarity between two strings, in `[0, 1]`.
///
/// Matches are characters equal within a window of
/// `max(|a|,|b|)/2 − 1`; transpositions are matched characters in a
/// different relative order.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a.len() == 1 && b.len() == 1 {
        return if a[0] == b[0] { 1.0 } else { 0.0 };
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    let b_matches: Vec<char> = b
        .iter()
        .zip(b_taken.iter())
        .filter(|(_, &taken)| taken)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by a common-prefix bonus of up to
/// 4 characters with scaling factor `0.1` (the standard constants).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn textbook_values() {
        close(jaro("martha", "marhta"), 0.944);
        close(jaro("dixon", "dicksonx"), 0.767);
        close(jaro("jellyfish", "smellyfish"), 0.896);
        close(jaro_winkler("martha", "marhta"), 0.961);
        close(jaro_winkler("dixon", "dicksonx"), 0.813);
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "abc"), 1.0);
    }

    #[test]
    fn empty_strings() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("", "a"), 0.0);
    }

    #[test]
    fn single_chars() {
        assert_eq!(jaro("a", "a"), 1.0);
        assert_eq!(jaro("a", "b"), 0.0);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("martha", "marhta"), ("dwayne", "duane"), ("", "x")] {
            close(jaro(a, b), jaro(b, a));
            close(jaro_winkler(a, b), jaro_winkler(b, a));
        }
    }

    #[test]
    fn winkler_at_least_jaro() {
        for (a, b) in [("prefix", "preface"), ("abcd", "abce"), ("xy", "yx")] {
            assert!(jaro_winkler(a, b) >= jaro(a, b) - 1e-12);
            assert!(jaro_winkler(a, b) <= 1.0);
        }
    }
}
