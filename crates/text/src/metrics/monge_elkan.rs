//! Monge-Elkan hybrid token/character similarity.
//!
//! Monge & Elkan's field-matching algorithm \[1\] scores two token sequences
//! by averaging, over the tokens of the first, the best inner-metric match
//! in the second. It tolerates token reordering and per-token typos at the
//! same time, which is exactly the corruption mix in citation data, so the
//! supervised feature set includes it.

/// Monge-Elkan similarity of token slices `a` and `b` under `inner`,
/// symmetrized by averaging both directions (the raw definition is
/// asymmetric).
///
/// `inner` must be a similarity in `[0, 1]`.
pub fn monge_elkan<F>(a: &[&str], b: &[&str], inner: F) -> f64
where
    F: Fn(&str, &str) -> f64,
{
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let dir = |xs: &[&str], ys: &[&str]| -> f64 {
        let total: f64 = xs
            .iter()
            .map(|x| ys.iter().map(|y| inner(x, y)).fold(0.0f64, f64::max))
            .sum();
        total / xs.len() as f64
    };
    0.5 * (dir(a, b) + dir(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::jaro_winkler;

    #[test]
    fn identical_token_lists_score_one() {
        let a = vec!["peter", "norvig"];
        assert!((monge_elkan(&a, &a, jaro_winkler) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn token_reorder_is_free() {
        let a = vec!["norvig", "peter"];
        let b = vec!["peter", "norvig"];
        assert!((monge_elkan(&a, &b, jaro_winkler) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_token_typos_tolerated() {
        let a = vec!["peter", "norvig"];
        let b = vec!["petre", "norvg"];
        let s = monge_elkan(&a, &b, jaro_winkler);
        assert!(s > 0.8, "{s}");
    }

    #[test]
    fn disjoint_tokens_score_low() {
        let a = vec!["aaa"];
        let b = vec!["zzz"];
        assert!(monge_elkan(&a, &b, jaro_winkler) < 0.2);
    }

    #[test]
    fn symmetric_by_construction() {
        let a = vec!["data", "integration", "survey"];
        let b = vec!["survey", "dta"];
        let s1 = monge_elkan(&a, &b, jaro_winkler);
        let s2 = monge_elkan(&b, &a, jaro_winkler);
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn empty_handling() {
        let e: Vec<&str> = vec![];
        let a = vec!["x"];
        assert_eq!(monge_elkan(&e, &e, jaro_winkler), 1.0);
        assert_eq!(monge_elkan(&e, &a, jaro_winkler), 0.0);
    }

    #[test]
    fn bounded_by_one() {
        let a = vec!["ab", "cd", "ef"];
        let b = vec!["ab", "cd"];
        let s = monge_elkan(&a, &b, jaro_winkler);
        assert!((0.0..=1.0).contains(&s));
    }
}
