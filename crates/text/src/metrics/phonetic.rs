//! Phonetic encoding (Soundex) — the oldest tool in record linkage.
//!
//! Soundex maps names that *sound* alike to the same 4-character code
//! ("robert" and "rupert" → `R163`), catching spelling variants that
//! character metrics miss. Used as an optional blocking key and as a
//! binary agreement feature.

/// The classic American Soundex code of `word` (uppercase letter + three
/// digits), or `None` for input with no ASCII letter.
pub fn soundex(word: &str) -> Option<String> {
    let letters: Vec<char> = word
        .chars()
        .filter(char::is_ascii_alphabetic)
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let &first = letters.first()?;
    let code_of = |c: char| -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => b'1',
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => b'2',
            'D' | 'T' => b'3',
            'L' => b'4',
            'M' | 'N' => b'5',
            'R' => b'6',
            // A, E, I, O, U, Y act as separators; H and W are ignored.
            'H' | 'W' => b'*',
            _ => b'0',
        }
    };
    let mut out = String::with_capacity(4);
    out.push(first);
    let mut last_code = code_of(first);
    for &c in &letters[1..] {
        let code = code_of(c);
        match code {
            b'0' => last_code = b'0', // vowel separator resets adjacency
            b'*' => {}                // H/W: transparent, keep last_code
            _ => {
                if code != last_code {
                    out.push(code as char);
                    if out.len() == 4 {
                        break;
                    }
                }
                last_code = code;
            }
        }
    }
    while out.len() < 4 {
        out.push('0');
    }
    Some(out)
}

/// True when two words share a Soundex code (both must encode).
pub fn sounds_like(a: &str, b: &str) -> bool {
    matches!((soundex(a), soundex(b)), (Some(x), Some(y)) if x == y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_codes() {
        assert_eq!(soundex("Robert").as_deref(), Some("R163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
        assert_eq!(soundex("Ashcroft").as_deref(), Some("A261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
        assert_eq!(soundex("Honeyman").as_deref(), Some("H555"));
    }

    #[test]
    fn adjacent_same_codes_collapse() {
        assert_eq!(soundex("Jackson").as_deref(), Some("J250"));
        assert_eq!(soundex("Gutierrez").as_deref(), Some("G362"));
    }

    #[test]
    fn short_names_padded() {
        assert_eq!(soundex("Lee").as_deref(), Some("L000"));
        assert_eq!(soundex("A").as_deref(), Some("A000"));
    }

    #[test]
    fn non_alpha_stripped() {
        assert_eq!(soundex("O'Brien").as_deref(), Some("O165"));
        assert_eq!(soundex("123"), None);
        assert_eq!(soundex(""), None);
    }

    #[test]
    fn sounds_like_pairs() {
        assert!(sounds_like("smith", "smyth"));
        assert!(sounds_like("catherine", "kathryn") || !sounds_like("catherine", "kathryn"));
        assert!(!sounds_like("smith", "jones"));
        assert!(!sounds_like("", "smith"));
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(soundex("ROBERT"), soundex("robert"));
    }
}
