//! Sequence-alignment similarities (Needleman-Wunsch, Smith-Waterman).
//!
//! Alignment scores are the other classic family in the name-matching
//! comparison the paper cites \[15\]: global alignment (Needleman-Wunsch)
//! behaves like a gap-aware edit distance, while local alignment
//! (Smith-Waterman) finds the best matching *substring* — robust when one
//! field is embedded in longer text ("deli" inside "art's delicatessen").

/// Scoring scheme for the alignment algorithms.
#[derive(Debug, Clone, Copy)]
pub struct AlignmentScoring {
    /// Score for a matching character pair (> 0).
    pub match_score: f64,
    /// Score for a mismatching pair (≤ 0).
    pub mismatch: f64,
    /// Score per gap character (≤ 0).
    pub gap: f64,
}

impl Default for AlignmentScoring {
    fn default() -> Self {
        Self {
            match_score: 1.0,
            mismatch: -1.0,
            gap: -0.5,
        }
    }
}

/// Needleman-Wunsch global alignment score of `a` and `b`.
pub fn needleman_wunsch(a: &str, b: &str, scoring: &AlignmentScoring) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<f64> = (0..=m).map(|j| j as f64 * scoring.gap).collect();
    let mut cur = vec![0.0f64; m + 1];
    for i in 1..=n {
        cur[0] = i as f64 * scoring.gap;
        for j in 1..=m {
            let sub = if a[i - 1] == b[j - 1] {
                scoring.match_score
            } else {
                scoring.mismatch
            };
            cur[j] = (prev[j - 1] + sub)
                .max(prev[j] + scoring.gap)
                .max(cur[j - 1] + scoring.gap);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Normalized global-alignment similarity in `[0, 1]`:
/// `max(0, score) / (match_score · max(|a|, |b|))`.
pub fn needleman_wunsch_similarity(a: &str, b: &str) -> f64 {
    let scoring = AlignmentScoring::default();
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    let score = needleman_wunsch(a, b, &scoring);
    (score / (scoring.match_score * max_len as f64)).clamp(0.0, 1.0)
}

/// Smith-Waterman local alignment score: the best-scoring pair of
/// substrings (never negative).
pub fn smith_waterman(a: &str, b: &str, scoring: &AlignmentScoring) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let m = b.len();
    let mut prev = vec![0.0f64; m + 1];
    let mut cur = vec![0.0f64; m + 1];
    let mut best = 0.0f64;
    for i in 1..=a.len() {
        for j in 1..=m {
            let sub = if a[i - 1] == b[j - 1] {
                scoring.match_score
            } else {
                scoring.mismatch
            };
            cur[j] = (prev[j - 1] + sub)
                .max(prev[j] + scoring.gap)
                .max(cur[j - 1] + scoring.gap)
                .max(0.0);
            best = best.max(cur[j]);
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0.0;
    }
    best
}

/// Normalized local-alignment similarity in `[0, 1]`:
/// `score / (match_score · min(|a|, |b|))` — 1.0 when the shorter string
/// aligns perfectly inside the longer.
pub fn smith_waterman_similarity(a: &str, b: &str) -> f64 {
    let scoring = AlignmentScoring::default();
    let min_len = a.chars().count().min(b.chars().count());
    if min_len == 0 {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let score = smith_waterman(a, b, &scoring);
    (score / (scoring.match_score * min_len as f64)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_align_perfectly() {
        assert_eq!(needleman_wunsch_similarity("deli", "deli"), 1.0);
        assert_eq!(smith_waterman_similarity("deli", "deli"), 1.0);
    }

    #[test]
    fn substring_embedding_favors_local_alignment() {
        let nw = needleman_wunsch_similarity("deli", "arts delicatessen");
        let sw = smith_waterman_similarity("deli", "arts delicatessen");
        assert_eq!(sw, 1.0, "\"deli\" embeds perfectly");
        assert!(nw < 0.5, "global alignment pays for the length gap: {nw}");
    }

    #[test]
    fn disjoint_strings_score_low() {
        assert!(needleman_wunsch_similarity("aaaa", "zzzz") == 0.0);
        assert!(smith_waterman_similarity("aaaa", "zzzz") < 0.3);
    }

    #[test]
    fn nw_score_known_value() {
        // "ab" vs "ab": 2 matches = 2.0; "ab" vs "ba": best is one match
        // with gaps (a aligned, b gapped twice: 1 - 0.5*2 = 0) or two
        // mismatches (-2): max = 0.
        let s = AlignmentScoring::default();
        assert_eq!(needleman_wunsch("ab", "ab", &s), 2.0);
        assert_eq!(needleman_wunsch("ab", "ba", &s), 0.0);
    }

    #[test]
    fn sw_never_negative() {
        let s = AlignmentScoring::default();
        assert_eq!(smith_waterman("abc", "xyz", &s), 0.0);
    }

    #[test]
    fn empty_handling() {
        assert_eq!(needleman_wunsch_similarity("", ""), 1.0);
        assert_eq!(smith_waterman_similarity("", ""), 1.0);
        assert_eq!(smith_waterman_similarity("", "x"), 0.0);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("ventura", "ventura blvd"), ("abc", "acb")] {
            assert!(
                (needleman_wunsch_similarity(a, b) - needleman_wunsch_similarity(b, a)).abs()
                    < 1e-12
            );
            assert!(
                (smith_waterman_similarity(a, b) - smith_waterman_similarity(b, a)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn typo_tolerance_beats_disjoint() {
        let typo = smith_waterman_similarity("delicatessen", "delicatesen");
        let unrelated = smith_waterman_similarity("delicatessen", "university");
        assert!(typo > 0.8);
        assert!(typo > unrelated + 0.4);
    }
}
