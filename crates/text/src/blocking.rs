//! Blocking — scalable candidate-pair generation.
//!
//! Enumerating all `n(n−1)/2` record pairs is quadratic; real ER systems
//! *block* records so only pairs inside a block become candidates. The
//! fusion framework's bipartite construction is itself **token
//! blocking** (a pair is a candidate iff it shares a post-filter term);
//! this module makes that explicit and adds the other classic scheme,
//! **sorted-neighborhood**, for corpora too large to token-block. The
//! scalable schemes — banding LSH ([`crate::lsh`]) and meta-blocking
//! over the block graph ([`crate::metablocking`]) — plug in through the
//! same [`BlockingStrategy`] switch.
//!
//! All strategies produce `(a, b)` candidate pairs compatible with
//! `er_graph::BipartiteGraphBuilder::pair_filter`, so they compose with
//! the rest of the pipeline.

use er_pool::WorkerPool;

use crate::corpus::Corpus;
use crate::lsh::{lsh_blocking, lsh_blocking_cached, LshParams, SignatureCache};
use crate::metablocking::{meta_block, BlockCollection, MetaConfig};
use crate::simeng::{BatchScorer, SimKernel};
use crate::tokenize::TermId;

/// The pluggable candidate-generation stage consumed by the pipeline
/// glue (`unsupervised_er::pipeline`) and the baselines' candidate
/// stage: which blocking scheme produces the pair universe.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockingStrategy {
    /// The bipartite token-graph construction: every pair sharing at
    /// least one post-filter term is a candidate (no block-size cap
    /// beyond the frequent-term filter). Exact — the paper-scale
    /// default.
    TokenGraph,
    /// [`token_blocking`] with an explicit per-term block-size cap.
    Token {
        /// Terms with more postings than this are skipped.
        max_block_size: usize,
    },
    /// [`sorted_neighborhood`] over the rarest-first blocking key.
    SortedNeighborhood {
        /// Sliding-window width (≥ 2).
        window: usize,
    },
    /// Banding MinHash LSH ([`lsh_blocking`]).
    Lsh {
        /// Band/row parameters (see [`LshParams::for_threshold`]).
        params: LshParams,
        /// Buckets larger than this are skipped.
        max_block_size: usize,
    },
    /// Meta-blocking over the block graph of token blocks and/or LSH
    /// buckets ([`meta_block`]).
    Meta(MetaBlocking),
}

/// Configuration of [`BlockingStrategy::Meta`]: which block collections
/// feed the block graph, plus the purge/filter/prune parameters applied
/// over it.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaBlocking {
    /// Include the token blocks (one block per post-filter term).
    pub token_blocks: bool,
    /// Include LSH band buckets generated with these parameters.
    pub lsh: Option<LshParams>,
    /// Purge cap, filter ratio, weight scheme and pruning rule.
    pub config: MetaConfig,
}

impl Default for MetaBlocking {
    /// Token blocks ∪ default-LSH buckets under the default
    /// [`MetaConfig`] — the recall-oriented gather stage feeding the
    /// precision-oriented graph pruning.
    fn default() -> Self {
        Self {
            token_blocks: true,
            lsh: Some(LshParams::default()),
            config: MetaConfig::default(),
        }
    }
}

impl BlockingStrategy {
    /// The scalable default: token blocks + LSH buckets under
    /// meta-blocking with CBS pruning.
    pub fn meta_default() -> Self {
        Self::Meta(MetaBlocking::default())
    }

    /// Generates this strategy's sorted, deduplicated `(a, b)` candidate
    /// pairs (`a < b`), bit-identical at any thread count.
    pub fn candidate_pairs(&self, corpus: &Corpus, pool: &WorkerPool) -> Vec<(u32, u32)> {
        let _span = er_obs::span("blocking.candidates");
        match self {
            Self::TokenGraph => token_blocking(corpus, usize::MAX),
            Self::Token { max_block_size } => token_blocking(corpus, *max_block_size),
            Self::SortedNeighborhood { window } => sorted_neighborhood(corpus, *window),
            Self::Lsh {
                params,
                max_block_size,
            } => lsh_blocking(corpus, params, *max_block_size, pool),
            Self::Meta(m) => {
                let mut blocks = if m.token_blocks {
                    BlockCollection::from_token_blocks(corpus)
                } else {
                    BlockCollection::new()
                };
                if let Some(params) = &m.lsh {
                    blocks.extend_from(&BlockCollection::from_lsh(corpus, params, pool));
                }
                meta_block(&blocks, corpus.len(), &m.config, pool)
            }
        }
    }

    /// [`Self::candidate_pairs`] through a [`SignatureCache`]: the LSH
    /// and meta strategies reuse MinHash band keys for records whose
    /// term set is unchanged since the cache last saw them; the other
    /// strategies compute no signatures and ignore the cache. Output is
    /// identical to `candidate_pairs`.
    pub fn candidate_pairs_cached(
        &self,
        corpus: &Corpus,
        pool: &WorkerPool,
        cache: &mut SignatureCache,
    ) -> Vec<(u32, u32)> {
        match self {
            Self::Lsh {
                params,
                max_block_size,
            } => {
                let _span = er_obs::span("blocking.candidates");
                lsh_blocking_cached(corpus, params, *max_block_size, pool, cache)
            }
            Self::Meta(m) => {
                let _span = er_obs::span("blocking.candidates");
                let mut blocks = if m.token_blocks {
                    BlockCollection::from_token_blocks(corpus)
                } else {
                    BlockCollection::new()
                };
                if let Some(params) = &m.lsh {
                    blocks.extend_from(&BlockCollection::from_lsh_cached(
                        corpus, params, pool, cache,
                    ));
                }
                meta_block(&blocks, corpus.len(), &m.config, pool)
            }
            _ => self.candidate_pairs(corpus, pool),
        }
    }

    /// Short scheme name for bench labels and telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            Self::TokenGraph => "token_graph",
            Self::Token { .. } => "token",
            Self::SortedNeighborhood { .. } => "sorted_neighborhood",
            Self::Lsh { .. } => "lsh",
            Self::Meta(_) => "meta",
        }
    }
}

/// Token blocking: candidates are all pairs co-occurring in at least one
/// term's postings, with terms above `max_block_size` skipped (their
/// blocks are quadratic and nearly information-free).
///
/// Uses the repo's canonical sort+dedup construction — per-term pair runs
/// are concatenated in term order, then sorted and deduplicated — which
/// has a deterministic construction order and beats hash-set insertion at
/// paper scale (no rehashing, no probe misses; just one sort over a flat
/// buffer).
///
/// Returns sorted, deduplicated `(a, b)` pairs with `a < b`.
pub fn token_blocking(corpus: &Corpus, max_block_size: usize) -> Vec<(u32, u32)> {
    let _span = er_obs::span("token_blocking");
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for i in 0..corpus.vocab_len() {
        let postings = corpus.postings(TermId(i as u32));
        if postings.len() < 2 || postings.len() > max_block_size {
            continue;
        }
        for (k, &a) in postings.iter().enumerate() {
            for &b in &postings[k + 1..] {
                pairs.push((a, b));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    note_blocking_stats("token", corpus.len(), pairs.len());
    pairs
}

/// Sorted-neighborhood blocking: records are sorted by a blocking key and
/// every pair within a sliding window of `window` records becomes a
/// candidate.
///
/// The key here is the record's rarest-first term sequence (terms sorted
/// by ascending document frequency, then lexicographically), which puts
/// records sharing discriminative terms next to each other — the
/// standard "most distinguishing prefix" key choice.
///
/// Returns sorted, deduplicated `(a, b)` pairs with `a < b`.
pub fn sorted_neighborhood(corpus: &Corpus, window: usize) -> Vec<(u32, u32)> {
    assert!(window >= 2, "window must cover at least two records");
    let _span = er_obs::span("sorted_neighborhood");
    // One key tape for the whole corpus: every record's key is appended
    // to a single `String` and sliced back out by offset — no
    // per-record `String` allocation.
    let mut tape = String::new();
    let mut bounds: Vec<usize> = Vec::with_capacity(corpus.len() + 1);
    let mut terms: Vec<TermId> = Vec::new();
    bounds.push(0);
    for r in 0..corpus.len() {
        blocking_key_into(corpus, r, &mut terms, &mut tape);
        bounds.push(tape.len());
    }
    let key = |r: u32| &tape[bounds[r as usize]..bounds[r as usize + 1]];
    let mut order: Vec<u32> = (0..corpus.len() as u32).collect();
    order.sort_by(|&a, &b| key(a).cmp(key(b)));
    // Canonical sort+dedup: concatenate per-window runs, sort, dedup.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for (i, &a) in order.iter().enumerate() {
        for &b in order.iter().skip(i + 1).take(window - 1) {
            pairs.push(if a < b { (a, b) } else { (b, a) });
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    note_blocking_stats("sorted_neighborhood", corpus.len(), pairs.len());
    pairs
}

/// Scores a candidate list on the batched similarity engine
/// ([`crate::simeng`]): one tape build over the corpus, then one
/// batched sweep over the pairs. `out[i]` is `kernel`'s similarity for
/// `pairs[i]`, bit-identical at any thread count.
pub fn score_candidates(
    corpus: &Corpus,
    pairs: &[(u32, u32)],
    kernel: SimKernel,
    pool: &WorkerPool,
) -> Vec<f64> {
    BatchScorer::new(corpus).score(kernel, pairs, pool)
}

/// Meta-blocking-style candidate pruning: scores every candidate with
/// `kernel` on the batch engine and keeps pairs scoring at least
/// `min_similarity`. The cheap similarity acts as the edge-weight
/// filter of meta-blocking — blocks shrink before the expensive
/// downstream scoring ever runs. Order is preserved.
pub fn prune_candidates(
    corpus: &Corpus,
    pairs: &[(u32, u32)],
    kernel: SimKernel,
    min_similarity: f64,
    pool: &WorkerPool,
) -> Vec<(u32, u32)> {
    let scores = score_candidates(corpus, pairs, kernel, pool);
    let kept: Vec<(u32, u32)> = pairs
        .iter()
        .zip(&scores)
        .filter(|(_, &s)| s >= min_similarity)
        .map(|(&p, _)| p)
        .collect();
    note_blocking_stats("pruned", corpus.len(), kept.len());
    kept
}

/// Publishes the survey-standard blocking telemetry: candidate count and
/// reduction ratio, gauged per scheme.
pub(crate) fn note_blocking_stats(scheme: &str, n_records: usize, n_candidates: usize) {
    if !er_obs::recording() {
        return;
    }
    er_obs::gauge_set(
        &format!("blocking_{scheme}_candidate_pairs"),
        n_candidates as f64,
    );
    er_obs::gauge_set(
        &format!("blocking_{scheme}_reduction_ratio"),
        reduction_ratio(n_records, n_candidates),
    );
}

/// The sorted-neighborhood blocking key of record `r`, **appended** to
/// `out`: its shareable terms (document frequency ≥ 2 — unique terms
/// cannot match anything and would scatter the sort) ordered by
/// ascending document frequency, rarest first, joined by spaces.
///
/// `terms` and `out` are caller-owned reusable buffers — `terms` is
/// cleared and refilled, the key is appended to `out` (a key tape when
/// called in a loop) — so the steady state allocates nothing per
/// record.
// er-lint: zero-alloc
pub fn blocking_key_into(corpus: &Corpus, r: usize, terms: &mut Vec<TermId>, out: &mut String) {
    terms.clear();
    for &t in corpus.term_set(r) {
        if corpus.filtered_doc_freq(t) >= 2 {
            terms.push(t);
        }
    }
    terms.sort_unstable_by_key(|&t| (corpus.filtered_doc_freq(t), corpus.vocab().term(t)));
    for (i, &t) in terms.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(corpus.vocab().term(t));
    }
}

/// [`blocking_key_into`] into a fresh `String` — for tests and one-off
/// callers; hot paths reuse buffers via the `_into` form.
pub fn blocking_key(corpus: &Corpus, r: usize) -> String {
    let mut terms = Vec::new();
    let mut out = String::new();
    blocking_key_into(corpus, r, &mut terms, &mut out);
    out
}

/// Reduction ratio of a candidate set versus the full pair universe:
/// `1 − |candidates| / (n(n−1)/2)`. The standard blocking quality metric
/// (paired with pair completeness, i.e. recall of true pairs).
///
/// The pair universe is computed in `u128`: `n(n−1)` overflows a 32-bit
/// `usize` beyond ~65 k records and a 64-bit one beyond ~4.3 G records,
/// and blocking is exactly the feature aimed at multi-million-record
/// corpora.
pub fn reduction_ratio(n_records: usize, n_candidates: usize) -> f64 {
    let n = n_records as u128;
    let universe = n * n.saturating_sub(1) / 2;
    if universe == 0 {
        return 0.0;
    }
    1.0 - n_candidates as f64 / universe as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    fn corpus() -> Corpus {
        CorpusBuilder::new()
            .push_text("fenix sunset 8358")
            .push_text("fenix sunset 8358 hollywood")
            .push_text("grill dayton 9560")
            .push_text("grill dayton 9560 beverly")
            .push_text("unrelated words only")
            .build()
    }

    #[test]
    fn token_blocking_finds_sharing_pairs() {
        let pairs = token_blocking(&corpus(), 10);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(2, 3)));
        assert!(!pairs.contains(&(0, 2)), "no shared term");
        assert!(!pairs.iter().any(|&(a, b)| a == 4 || b == 4));
    }

    #[test]
    fn block_size_cap_prunes_stop_terms() {
        let c = CorpusBuilder::new()
            .extend_texts(["x a", "x b", "x c", "x d", "x e"])
            .build();
        let capped = token_blocking(&c, 3);
        assert!(capped.is_empty(), "the x-block exceeds the cap: {capped:?}");
        let uncapped = token_blocking(&c, 10);
        assert_eq!(uncapped.len(), 10); // C(5,2)
    }

    #[test]
    fn sorted_neighborhood_pairs_similar_keys() {
        let pairs = sorted_neighborhood(&corpus(), 2);
        // Records 0/1 and 2/3 share their rarest terms, so their keys are
        // adjacent in the sort.
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        assert!(pairs.contains(&(2, 3)), "{pairs:?}");
    }

    #[test]
    fn window_size_controls_candidate_count() {
        let c = corpus();
        let narrow = sorted_neighborhood(&c, 2);
        let wide = sorted_neighborhood(&c, 4);
        assert!(narrow.len() < wide.len());
        // Window w over n records yields at most (w-1)*n pairs.
        assert!(wide.len() <= 3 * c.len());
    }

    #[test]
    fn blocking_key_puts_rarest_shareable_first() {
        let c = CorpusBuilder::new()
            .push_text("common rare extra")
            .push_text("common rare")
            .push_text("common third")
            .push_text("common third")
            .build();
        // "extra" is unique (df 1) and must be excluded; "rare" (df 2) is
        // rarer than "common" (df 4) and leads.
        let key = blocking_key(&c, 0);
        assert_eq!(key, "rare common");
    }

    #[test]
    fn reduction_ratio_bounds() {
        assert_eq!(reduction_ratio(0, 0), 0.0);
        assert_eq!(reduction_ratio(10, 0), 1.0);
        assert!((reduction_ratio(10, 45) - 0.0).abs() < 1e-12);
        assert!((reduction_ratio(10, 9) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn reduction_ratio_survives_huge_corpora() {
        // 5 billion records: n(n−1) overflows u64 multiplication; the
        // u128 universe math must stay finite and near 1 for any sane
        // candidate count.
        let n = 5_000_000_000usize;
        let rr = reduction_ratio(n, 1_000_000_000);
        assert!(rr.is_finite());
        assert!(rr > 0.999_999, "{rr}");
        assert!(rr <= 1.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        sorted_neighborhood(&corpus(), 1);
    }

    #[test]
    fn candidate_scoring_matches_oracle() {
        let c = corpus();
        let pairs = token_blocking(&c, 10);
        let pool = WorkerPool::new(1);
        let scorer = BatchScorer::new(&c);
        for kernel in SimKernel::ALL {
            let got = score_candidates(&c, &pairs, kernel, &pool);
            for (&(a, b), g) in pairs.iter().zip(&got) {
                let want = scorer.score_pair_reference(kernel, a, b);
                assert_eq!(want.to_bits(), g.to_bits(), "{} ({a}, {b})", kernel.name());
            }
        }
    }

    #[test]
    fn pruning_keeps_exactly_the_passing_pairs() {
        let c = corpus();
        let pairs = token_blocking(&c, 10);
        let pool = WorkerPool::new(1);
        let scores = score_candidates(&c, &pairs, SimKernel::JaroWinkler, &pool);
        // A threshold strictly between the min and max score must split
        // the candidate set without emptying it.
        let lo = scores.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = scores.iter().copied().fold(0.0f64, f64::max);
        let cut = (lo + hi) / 2.0;
        let kept = prune_candidates(&c, &pairs, SimKernel::JaroWinkler, cut, &pool);
        assert!(!kept.is_empty() && kept.len() < pairs.len(), "{kept:?}");
        let want: Vec<(u32, u32)> = pairs
            .iter()
            .zip(&scores)
            .filter(|(_, &s)| s >= cut)
            .map(|(&p, _)| p)
            .collect();
        assert_eq!(kept, want);
    }

    #[test]
    fn blocking_key_into_appends_and_matches_allocating_form() {
        let c = corpus();
        let mut terms = Vec::new();
        let mut tape = String::new();
        let mut bounds = vec![0usize];
        for r in 0..c.len() {
            blocking_key_into(&c, r, &mut terms, &mut tape);
            bounds.push(tape.len());
        }
        for r in 0..c.len() {
            assert_eq!(&tape[bounds[r]..bounds[r + 1]], blocking_key(&c, r));
        }
    }

    #[test]
    fn strategy_dispatches_to_named_schemes() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        assert_eq!(
            BlockingStrategy::Token { max_block_size: 10 }.candidate_pairs(&c, &pool),
            token_blocking(&c, 10)
        );
        assert_eq!(
            BlockingStrategy::SortedNeighborhood { window: 2 }.candidate_pairs(&c, &pool),
            sorted_neighborhood(&c, 2)
        );
        assert_eq!(
            BlockingStrategy::TokenGraph.candidate_pairs(&c, &pool),
            token_blocking(&c, usize::MAX)
        );
        assert_eq!(BlockingStrategy::meta_default().name(), "meta");
    }

    #[test]
    fn cached_candidates_match_plain_for_every_strategy() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let strategies = [
            BlockingStrategy::TokenGraph,
            BlockingStrategy::Token { max_block_size: 10 },
            BlockingStrategy::SortedNeighborhood { window: 2 },
            BlockingStrategy::Lsh {
                params: LshParams::default(),
                max_block_size: 64,
            },
            BlockingStrategy::meta_default(),
        ];
        for s in &strategies {
            let mut cache = SignatureCache::new();
            let plain = s.candidate_pairs(&c, &pool);
            // Cold cache, then warm cache: both must match the plain path.
            assert_eq!(
                s.candidate_pairs_cached(&c, &pool, &mut cache),
                plain,
                "{} cold",
                s.name()
            );
            assert_eq!(
                s.candidate_pairs_cached(&c, &pool, &mut cache),
                plain,
                "{} warm",
                s.name()
            );
        }
    }

    #[test]
    fn meta_strategy_keeps_duplicate_pairs() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let pairs = BlockingStrategy::meta_default().candidate_pairs(&c, &pool);
        assert!(pairs.contains(&(0, 1)), "{pairs:?}");
        assert!(pairs.contains(&(2, 3)), "{pairs:?}");
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
    }
}
