//! MinHash signatures and banding LSH — sub-quadratic candidate
//! generation for million-record corpora.
//!
//! Token blocking ([`crate::blocking::token_blocking`]) is exact but its
//! candidate count tracks the square of the posting-list lengths; at
//! 10⁶ records even mid-frequency terms produce quadratic blocks. LSH
//! trades exactness for scale: every record's term set is summarized by
//! a MinHash signature of `bands × rows` hash minima, the signature is
//! cut into `bands` bands of `rows` values each, and two records become
//! candidates iff at least one band hashes identically. A pair with
//! Jaccard similarity `s` collides with probability `1 − (1 − sʳ)ᵇ`
//! (the *banding bound*) — an S-curve whose inflection point
//! `(1/b)^(1/r)` is the scheme's effective similarity threshold, which
//! is how [`LshParams::for_threshold`] derives `(b, r)` from a target
//! threshold.
//!
//! Everything here is deterministic: the hash family is a seeded
//! splitmix64 mixer (no `RandomState`, no per-process salt), parallel
//! signature generation writes disjoint output ranges, and bucketing is
//! a serial sort over the `(band key, record)` entries — so the
//! candidate list is bit-identical at any thread count and across
//! serial/parallel dispatch (pinned by `tests/prop_lsh.rs`).

use std::ops::Range;

use er_pool::{chunk_ranges, ScratchSlot, WorkerPool};

use crate::corpus::Corpus;
use crate::tokenize::TermId;

/// Fixed hash-family seed: stable signatures across runs and platforms.
pub const DEFAULT_LSH_SEED: u64 = 0x5EED_0F1B_ADCA_FE00;

/// 64-bit avalanche mixer (the splitmix64 / MurmurHash3 finalizer).
/// Bijective, so distinct inputs never merge before bucketing.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Odd multiplicative constant (2⁶⁴/φ) separating hash-function indexes.
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// Banding parameters: `bands × rows` MinHash values per record, one
/// bucket key per band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshParams {
    /// Number of bands (each contributes one bucketing attempt).
    pub bands: usize,
    /// MinHash rows per band (all must agree for a band collision).
    pub rows: usize,
    /// Hash-family seed.
    pub seed: u64,
}

impl LshParams {
    /// Parameters with the default seed.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands >= 1 && rows >= 1, "bands and rows must be >= 1");
        Self {
            bands,
            rows,
            seed: DEFAULT_LSH_SEED,
        }
    }

    /// Derives `(bands, rows)` from a target Jaccard threshold: among
    /// all factorizations `b · r = signature_len`, picks the one whose
    /// banding-bound inflection point `(1/b)^(1/r)` is closest to
    /// `threshold` (ties resolve toward fewer rows — the higher-recall
    /// side). Deterministic for fixed inputs.
    pub fn for_threshold(threshold: f64, signature_len: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1], got {threshold}"
        );
        assert!(signature_len >= 1, "signature_len must be >= 1");
        let mut best = (1usize, signature_len); // r = 1, b = n
        let mut best_gap = f64::INFINITY;
        for rows in 1..=signature_len {
            if !signature_len.is_multiple_of(rows) {
                continue;
            }
            let bands = signature_len / rows;
            let t = (1.0 / bands as f64).powf(1.0 / rows as f64);
            let gap = (t - threshold).abs();
            if gap < best_gap {
                best_gap = gap;
                best = (rows, bands);
            }
        }
        Self {
            bands: best.1,
            rows: best.0,
            seed: DEFAULT_LSH_SEED,
        }
    }

    /// Total MinHash values per record (`bands × rows`).
    pub fn signature_len(&self) -> usize {
        self.bands * self.rows
    }

    /// The banding bound's inflection point `(1/b)^(1/r)` — the Jaccard
    /// similarity at which a pair collides with probability ≈ 1 − 1/e.
    pub fn threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }

    /// Probability that a pair with Jaccard similarity `s` shares at
    /// least one band bucket: `1 − (1 − sʳ)ᵇ`.
    pub fn collision_probability(&self, s: f64) -> f64 {
        1.0 - (1.0 - s.powi(self.rows as i32)).powi(self.bands as i32)
    }
}

impl Default for LshParams {
    /// 16 bands × 4 rows (64 hashes): threshold ≈ 0.5, the permissive
    /// regime meta-blocking expects from its recall-oriented source.
    fn default() -> Self {
        Self::new(16, 4)
    }
}

/// Records per parallel signature chunk: each record costs
/// `|term_set| × signature_len` mixes, so chunks this size comfortably
/// exceed the queue-coordination break-even.
const SIG_MIN_CHUNK: usize = 1024;

/// Fills `keys[i * bands + band]` with the band bucket key of record
/// `range.start + i`, using `sig` as the reusable signature row.
fn band_keys_for_range(
    corpus: &Corpus,
    params: &LshParams,
    range: Range<usize>,
    keys: &mut [u64],
    sig: &mut Vec<u64>,
) {
    let sig_len = params.signature_len();
    sig.clear();
    sig.resize(sig_len, u64::MAX);
    for (i, r) in range.enumerate() {
        sig.fill(u64::MAX);
        for &t in corpus.term_set(r) {
            // One base mix per term, then one mix per hash function:
            // h_k(t) = mix(base_t ^ k·φ).
            let base = mix64(params.seed ^ (u64::from(t.0) + 1).wrapping_mul(PHI));
            for (k, slot) in sig.iter_mut().enumerate() {
                let h = mix64(base ^ (k as u64).wrapping_mul(PHI));
                if h < *slot {
                    *slot = h;
                }
            }
        }
        for band in 0..params.bands {
            // Fold the band's rows; mixing the band index in keeps
            // identical row values in different bands apart.
            let mut acc = mix64(params.seed ^ (band as u64 + 1).wrapping_mul(PHI));
            for &v in &sig[band * params.rows..(band + 1) * params.rows] {
                acc = mix64(acc ^ v);
            }
            keys[i * params.bands + band] = acc;
        }
    }
}

/// MinHash band bucket keys for every record, row-major:
/// `keys[r * bands + band]`. Records with empty (post-filter) term sets
/// get the same degenerate all-max signature; [`lsh_bucket_entries`]
/// skips them, since they cannot share a term with anything.
///
/// Parallelized over disjoint record ranges behind the pool's cost
/// model, with the signature row as per-worker scratch
/// ([`ScratchSlot`]) — bit-identical at any thread count.
pub fn minhash_band_keys(corpus: &Corpus, params: &LshParams, pool: &WorkerPool) -> Vec<u64> {
    let _span = er_obs::span("blocking.lsh.signatures");
    let n = corpus.len();
    let mut keys = vec![0u64; n * params.bands];
    let total_terms: usize = (0..n).map(|r| corpus.term_set(r).len()).sum();
    let work = total_terms.saturating_mul(params.signature_len());
    let scratch: ScratchSlot<Vec<u64>> = ScratchSlot::new();
    if pool.dispatch(work).is_parallel() {
        let ranges = chunk_ranges(n, pool.threads(), SIG_MIN_CHUNK);
        let scratch = &scratch;
        pool.scope(|s| {
            let mut rest = keys.as_mut_slice();
            for r in ranges {
                let (chunk, tail) = rest.split_at_mut(r.len() * params.bands);
                rest = tail;
                s.submit(move || {
                    let mut sig = scratch.checkout();
                    band_keys_for_range(corpus, params, r, chunk, &mut sig);
                });
            }
        });
    } else {
        let mut sig = scratch.checkout();
        band_keys_for_range(corpus, params, 0..n, &mut keys, &mut sig);
    }
    keys
}

/// Incremental per-record MinHash maintenance: caches every record's
/// band keys alongside a copy of the (post-filter) term set they were
/// computed from, and recomputes a record's signature only when its
/// term set changed — a record newly ingested, or one whose kept terms
/// flipped because the growing corpus moved the frequent-term cap.
///
/// `band_keys_for_range` is a pure function of the term set, so a
/// reused row is **bit-identical** to a recomputed one; routing blocking
/// through the cache never changes a candidate list (pinned by the
/// tests below and `er-serve`'s incremental ≡ batch property).
#[derive(Debug, Default)]
pub struct SignatureCache {
    /// Parameters the cached keys were computed with; any change resets.
    params: Option<LshParams>,
    /// Band keys, row-major (`keys[r * bands + band]`).
    keys: Vec<u64>,
    /// The exact term set each cached row was computed from. Stored as a
    /// full copy rather than a hash: a fingerprint collision would
    /// silently break the bit-identity contract.
    term_sets: Vec<Vec<TermId>>,
    reused: u64,
    recomputed: u64,
}

impl SignatureCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record signatures served from the cache so far.
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Record signatures (re)computed so far.
    pub fn recomputed(&self) -> u64 {
        self.recomputed
    }

    /// Number of records with cached signatures.
    pub fn len(&self) -> usize {
        self.term_sets.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.term_sets.is_empty()
    }
}

/// [`minhash_band_keys`] through a [`SignatureCache`]: bit-identical
/// output, but only records whose term set changed since the previous
/// call pay the `|term_set| × signature_len` mixing cost. The first
/// call (or a parameter change) fills the whole cache on the pool; the
/// steady state recomputes the dirty rows serially — in a streaming
/// engine those are the handful of records touched by the last ingest.
pub fn minhash_band_keys_cached<'c>(
    corpus: &Corpus,
    params: &LshParams,
    pool: &WorkerPool,
    cache: &'c mut SignatureCache,
) -> &'c [u64] {
    let n = corpus.len();
    if cache.params != Some(*params) {
        cache.params = Some(*params);
        cache.keys = minhash_band_keys(corpus, params, pool);
        cache.term_sets = (0..n).map(|r| corpus.term_set(r).to_vec()).collect();
        cache.recomputed += n as u64;
        er_obs::counter_add("blocking.lsh.signatures_recomputed", n as u64);
        return &cache.keys;
    }
    let _span = er_obs::span("blocking.lsh.signatures_incremental");
    // Rows past the previously cached length must always compute: a new
    // record with an *empty* post-filter term set would otherwise
    // compare equal to the resize-initialized empty cache row and
    // "reuse" a zero key instead of the degenerate all-max signature.
    let cached_rows = cache.term_sets.len().min(n);
    cache.keys.resize(n * params.bands, 0);
    cache.term_sets.resize_with(n, Vec::new);
    let mut sig = Vec::new();
    let (mut reused, mut recomputed) = (0u64, 0u64);
    for r in 0..n {
        if r < cached_rows && cache.term_sets[r].as_slice() == corpus.term_set(r) {
            reused += 1;
            continue;
        }
        let row = &mut cache.keys[r * params.bands..(r + 1) * params.bands];
        band_keys_for_range(corpus, params, r..r + 1, row, &mut sig);
        cache.term_sets[r] = corpus.term_set(r).to_vec();
        recomputed += 1;
    }
    cache.reused += reused;
    cache.recomputed += recomputed;
    er_obs::counter_add("blocking.lsh.signatures_reused", reused);
    er_obs::counter_add("blocking.lsh.signatures_recomputed", recomputed);
    &cache.keys
}

/// Groups row-major band keys into sorted `(bucket key, record)`
/// entries, skipping records with empty (post-filter) term sets.
fn entries_from_keys(corpus: &Corpus, params: &LshParams, keys: &[u64]) -> Vec<(u64, u32)> {
    let _span = er_obs::span("blocking.lsh.bucket_sort");
    let mut entries: Vec<(u64, u32)> = Vec::with_capacity(keys.len());
    for r in 0..corpus.len() {
        if corpus.term_set(r).is_empty() {
            continue;
        }
        for band in 0..params.bands {
            entries.push((keys[r * params.bands + band], r as u32));
        }
    }
    entries.sort_unstable();
    entries.dedup();
    entries
}

/// Sorted `(bucket key, record)` entries — one per (record, band) for
/// records with non-empty term sets. Equal keys form an LSH bucket; the
/// sort makes downstream grouping deterministic.
pub fn lsh_bucket_entries(
    corpus: &Corpus,
    params: &LshParams,
    pool: &WorkerPool,
) -> Vec<(u64, u32)> {
    let keys = minhash_band_keys(corpus, params, pool);
    entries_from_keys(corpus, params, &keys)
}

/// [`lsh_bucket_entries`] with signatures maintained incrementally in a
/// [`SignatureCache`] — identical output.
pub fn lsh_bucket_entries_cached(
    corpus: &Corpus,
    params: &LshParams,
    pool: &WorkerPool,
    cache: &mut SignatureCache,
) -> Vec<(u64, u32)> {
    let keys = minhash_band_keys_cached(corpus, params, pool, cache);
    entries_from_keys(corpus, params, keys)
}

/// Banding LSH blocking: candidates are all record pairs sharing at
/// least one band bucket, with buckets above `max_block_size` skipped
/// (an oversized bucket is the hash-space image of a stop-term block —
/// quadratic and nearly information-free).
///
/// Returns sorted, deduplicated `(a, b)` pairs with `a < b`, identical
/// at every thread count.
pub fn lsh_blocking(
    corpus: &Corpus,
    params: &LshParams,
    max_block_size: usize,
    pool: &WorkerPool,
) -> Vec<(u32, u32)> {
    let _span = er_obs::span("blocking.lsh");
    er_obs::gauge_set("blocking.lsh.bands", params.bands as f64);
    er_obs::gauge_set("blocking.lsh.rows", params.rows as f64);
    let entries = lsh_bucket_entries(corpus, params, pool);
    pairs_from_entries(corpus, &entries, max_block_size)
}

/// [`lsh_blocking`] with signatures maintained incrementally in a
/// [`SignatureCache`] — identical candidate list, but a steady-state
/// call only recomputes signatures for records whose term set changed.
pub fn lsh_blocking_cached(
    corpus: &Corpus,
    params: &LshParams,
    max_block_size: usize,
    pool: &WorkerPool,
    cache: &mut SignatureCache,
) -> Vec<(u32, u32)> {
    let _span = er_obs::span("blocking.lsh");
    er_obs::gauge_set("blocking.lsh.bands", params.bands as f64);
    er_obs::gauge_set("blocking.lsh.rows", params.rows as f64);
    let entries = lsh_bucket_entries_cached(corpus, params, pool, cache);
    pairs_from_entries(corpus, &entries, max_block_size)
}

/// Expands sorted bucket entries into the sorted, deduplicated
/// candidate-pair list, skipping oversized buckets.
fn pairs_from_entries(
    corpus: &Corpus,
    entries: &[(u64, u32)],
    max_block_size: usize,
) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut buckets = 0u64;
    let mut oversized = 0u64;
    let mut start = 0usize;
    while start < entries.len() {
        let key = entries[start].0;
        let mut end = start + 1;
        while end < entries.len() && entries[end].0 == key {
            end += 1;
        }
        let size = end - start;
        if size >= 2 {
            buckets += 1;
            if size > max_block_size {
                oversized += 1;
            } else {
                for i in start..end {
                    for j in i + 1..end {
                        let (a, b) = (entries[i].1, entries[j].1);
                        pairs.push(if a < b { (a, b) } else { (b, a) });
                    }
                }
            }
        }
        start = end;
    }
    pairs.sort_unstable();
    pairs.dedup();
    er_obs::counter_add("blocking.lsh.buckets", buckets);
    er_obs::counter_add("blocking.lsh.oversized_buckets", oversized);
    crate::blocking::note_blocking_stats("lsh", corpus.len(), pairs.len());
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    fn corpus() -> Corpus {
        CorpusBuilder::new()
            .push_text("fenix sunset 8358 hollywood grill")
            .push_text("fenix sunset 8358 hollywood diner")
            .push_text("completely different words here now")
            .push_text("fenix sunset 8358 hollywood grill")
            .build()
    }

    #[test]
    fn for_threshold_picks_closest_factorization() {
        let p = LshParams::for_threshold(0.5, 64);
        assert_eq!(p.bands * p.rows, 64);
        // Every other factorization must be at least as far from 0.5.
        for rows in 1..=64usize {
            if 64 % rows != 0 {
                continue;
            }
            let t = (1.0 / (64 / rows) as f64).powf(1.0 / rows as f64);
            assert!(
                (p.threshold() - 0.5).abs() <= (t - 0.5).abs() + 1e-12,
                "rows={rows} beats the chosen ({}, {})",
                p.bands,
                p.rows
            );
        }
    }

    #[test]
    fn collision_probability_is_monotone() {
        let p = LshParams::default();
        let mut last = -1.0;
        for i in 0..=10 {
            let s = i as f64 / 10.0;
            let c = p.collision_probability(s);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= last, "not monotone at s={s}");
            last = c;
        }
        assert!(p.collision_probability(1.0) > 0.999_999);
    }

    #[test]
    fn identical_records_always_collide() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let pairs = lsh_blocking(&c, &LshParams::default(), usize::MAX, &pool);
        assert!(pairs.contains(&(0, 3)), "{pairs:?}"); // identical texts
        assert!(pairs.contains(&(0, 1)), "{pairs:?}"); // 4/6 Jaccard
    }

    #[test]
    fn dissimilar_records_do_not_collide() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let pairs = lsh_blocking(&c, &LshParams::new(8, 8), usize::MAX, &pool);
        assert!(!pairs.iter().any(|&(a, b)| a == 2 || b == 2), "{pairs:?}");
    }

    #[test]
    fn band_keys_thread_invariant() {
        let c = corpus();
        let p = LshParams::default();
        let serial = minhash_band_keys(&c, &p, &WorkerPool::new(1));
        let pooled = minhash_band_keys(
            &c,
            &p,
            &WorkerPool::with_policy(4, er_pool::DispatchPolicy::always_parallel()),
        );
        assert_eq!(serial, pooled);
    }

    #[test]
    fn cached_blocking_matches_plain_and_reuses_clean_rows() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let p = LshParams::default();
        let mut cache = SignatureCache::new();
        let plain = lsh_blocking(&c, &p, usize::MAX, &pool);
        let cold = lsh_blocking_cached(&c, &p, usize::MAX, &pool, &mut cache);
        assert_eq!(plain, cold);
        assert_eq!(cache.recomputed(), c.len() as u64);
        // Same corpus again: every row reuses.
        let warm = lsh_blocking_cached(&c, &p, usize::MAX, &pool, &mut cache);
        assert_eq!(plain, warm);
        assert_eq!(cache.reused(), c.len() as u64);
        // A grown corpus recomputes only the new record.
        let grown = CorpusBuilder::new()
            .push_text("fenix sunset 8358 hollywood grill")
            .push_text("fenix sunset 8358 hollywood diner")
            .push_text("completely different words here now")
            .push_text("fenix sunset 8358 hollywood grill")
            .push_text("fenix sunset 8358 hollywood tavern")
            .build();
        let incr = lsh_blocking_cached(&grown, &p, usize::MAX, &pool, &mut cache);
        assert_eq!(incr, lsh_blocking(&grown, &p, usize::MAX, &pool));
        assert_eq!(cache.recomputed(), c.len() as u64 + 1);
        assert_eq!(cache.reused(), 2 * c.len() as u64);
    }

    #[test]
    fn cache_resets_on_parameter_change() {
        let c = corpus();
        let pool = WorkerPool::new(1);
        let mut cache = SignatureCache::new();
        let _ = minhash_band_keys_cached(&c, &LshParams::default(), &pool, &mut cache);
        let other = LshParams::new(8, 8);
        let keys = minhash_band_keys_cached(&c, &other, &pool, &mut cache).to_vec();
        assert_eq!(keys, minhash_band_keys(&c, &other, &pool));
        assert_eq!(cache.recomputed(), 2 * c.len() as u64);
    }

    #[test]
    fn cache_detects_term_set_changes_in_place() {
        // Same record count, but record 1's kept term set shrinks (the
        // way a moving frequent-term cap flips terms out of a streaming
        // corpus): only that row recomputes, and the keys must equal a
        // fresh computation.
        let pool = WorkerPool::new(1);
        let p = LshParams::default();
        let a = CorpusBuilder::new()
            .extend_texts(["alpha beta gamma", "delta epsilon zeta"])
            .build();
        let b = CorpusBuilder::new()
            .extend_texts(["alpha beta gamma", "delta epsilon"])
            .build();
        let mut cache = SignatureCache::new();
        let _ = minhash_band_keys_cached(&a, &p, &pool, &mut cache);
        let keys = minhash_band_keys_cached(&b, &p, &pool, &mut cache).to_vec();
        assert_eq!(keys, minhash_band_keys(&b, &p, &pool));
        assert_eq!(cache.reused(), 1);
        assert_eq!(cache.recomputed(), a.len() as u64 + 1);
    }

    #[test]
    fn bucket_cap_drops_oversized_buckets() {
        // Ten identical records form one 10-record bucket per band.
        let mut b = CorpusBuilder::new();
        for _ in 0..10 {
            b = b.push_text("alpha beta gamma delta");
        }
        let c = b.build();
        let pool = WorkerPool::new(1);
        let uncapped = lsh_blocking(&c, &LshParams::default(), usize::MAX, &pool);
        assert_eq!(uncapped.len(), 45); // C(10, 2)
        let capped = lsh_blocking(&c, &LshParams::default(), 4, &pool);
        assert!(capped.is_empty(), "{capped:?}");
    }

    #[test]
    fn empty_records_never_pair() {
        let c = CorpusBuilder::new()
            .extend_texts(["shared words", "shared words", "", ""])
            .build();
        let pool = WorkerPool::new(1);
        let pairs = lsh_blocking(&c, &LshParams::default(), usize::MAX, &pool);
        assert_eq!(pairs, vec![(0, 1)]);
    }
}
