//! Batched string-similarity engine.
//!
//! Every similarity consumer in the pipeline used to score one pair at
//! a time over per-record `String`s: each call re-derived character
//! vectors, re-allocated DP rows, and chased a fresh pointer per
//! record. This module replaces that shape with two pieces:
//!
//! * [`StrTape`] — an arena holding every record text contiguously
//!   (UTF-8 bytes, decoded `char`s, and BMP `u16` code units, each with
//!   one offset table). Built once per dataset; per-pair access is two
//!   offset loads and a slice.
//! * [`BatchScorer`] — scores a slice of `(a, b)` record-index pairs
//!   against the tape in one call. DP scratch is amortized across the
//!   batch through [`er_pool::ScratchSlot`] (one [`SimScratch`] per
//!   worker, reused pair to pair), the pool fan-out is the repo's
//!   deterministic contiguous-chunk contract, and the
//!   [`WorkerPool::dispatch`] cost estimate is derived from the tape
//!   (the sum of actual string-length products — the DP cell count —
//!   instead of a per-pair constant).
//!
//! The kernels are the PR 4 per-pair fast paths lifted out of the
//! feature extractor: block-Myers bit-parallel Levenshtein, the
//! bit-parallel Jaro matcher, the i16 antidiagonal Smith-Waterman, and
//! memoized Monge-Elkan. Each is bit-identical to its reference metric
//! in [`crate::metrics`] (pinned by proptests at 1/2/8 threads), so
//! the per-pair metric functions remain the oracles and every batch
//! result can be checked against them.
//!
//! Like `er-matrix`'s packed GEMM, the kernels adapt to the compiled
//! ISA through `cfg!(target_feature)` constants ([`SW_LANES`],
//! [`MASK_SPARSE_ROWS`]). The constants only pick *between bitwise-
//! equivalent strategies* (antidiagonal vs rolling-row DP, sparse vs
//! dense mask reset), so results never depend on the target.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use er_pool::{ScratchSlot, WorkerPool};

use crate::corpus::Corpus;
use crate::metrics::{
    jaro_winkler, levenshtein_similarity, monge_elkan, smith_waterman_similarity,
};

/// Minimum pairs per pooled scoring chunk — below this, chunk setup
/// (scratch checkout, task dispatch) dominates the DP work.
const BATCH_MIN_CHUNK: usize = 64;

/// i16 lanes per vector register in the antidiagonal Smith-Waterman
/// kernel. Pairs whose shorter string holds fewer characters than one
/// vector of interior cells pay the antidiagonal bookkeeping (three
/// rotating buffers, border cells, a reversed copy of `b`) without ever
/// filling a vector, so they take the scalar rolling-row DP instead —
/// the two kernels produce the identical doubled-integer score, this
/// cutover is purely a speed choice.
pub const SW_LANES: usize = if cfg!(target_feature = "avx512bw") {
    32
} else if cfg!(target_feature = "avx2") {
    16
} else {
    8
};

/// Sparse-reset cutover for the bit-parallel mask table. The Myers and
/// Jaro kernels share a dense 128-row ASCII position-mask table that
/// must be zeroed between pairs; with wide vector stores the full-table
/// memset is nearly free, while on narrow targets it dominates short
/// strings. When the previous string touched at most this many distinct
/// ASCII rows, only those rows are re-zeroed (tracked in a 128-bit
/// seen-set); otherwise the whole table is memset. Either reset leaves
/// the same all-zero table, so this never changes results.
pub const MASK_SPARSE_ROWS: usize = if cfg!(target_feature = "avx512f") {
    16
} else if cfg!(target_feature = "avx") {
    24
} else {
    32
};

/// Multiply-xor hasher for the Monge-Elkan memo keys (packed token-id
/// pairs). The keys are already well-mixed small integers; SipHash's
/// collision resistance buys nothing here and its latency is the whole
/// cost of a memo hit.
#[derive(Debug, Default, Clone)]
struct PairKeyHasher(u64);

impl std::hash::Hasher for PairKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        self.0 = h;
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

/// Small per-term memo: `other id -> value`. Keyed per leading term so
/// each map stays cache-resident instead of one huge DRAM-bound table.
type TermCache = HashMap<u32, f64, BuildHasherDefault<PairKeyHasher>>;

/// Reusable per-worker buffers for batched scoring: bit-parallel state,
/// DP rows, Jaro match buffers, and the two Monge-Elkan memo levels.
/// One per scoring chunk; never shared across threads. All buffers grow
/// to the batch's high-water mark and are reused pair to pair — at
/// steady state over a warm scratch no kernel allocates.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Jaro-Winkler over interned tokens: `jw_by_term[x][y] = jw(x, y)`.
    jw_by_term: Vec<TermCache>,
    /// Monge-Elkan inner maximum: `best_by_term[x][record] = max_y jw`.
    best_by_term: Vec<TermCache>,
    /// Per-character position bitmasks: dense rows for ASCII, stamped
    /// map rows for the rest (see [`CharMasks`]).
    mask_ascii: Vec<u64>,
    mask_other: HashMap<char, (u64, Vec<u64>)>,
    /// ASCII rows the previous [`build_masks`] touched, as a 128-bit
    /// set — drives the sparse reset (see [`MASK_SPARSE_ROWS`]).
    mask_seen: u128,
    /// Generation stamp distinguishing current from stale
    /// `mask_other` rows (cleared lazily, never dropped).
    mask_gen: u64,
    /// Myers-Levenshtein vertical delta words.
    lev_vp: Vec<u64>,
    lev_vn: Vec<u64>,
    /// Jaro matched-position bitmask over `b`.
    taken: Vec<u64>,
    /// Smith-Waterman antidiagonal buffers (current, −1, −2) and the
    /// reversed second string.
    sw_d0: Vec<i16>,
    sw_d1: Vec<i16>,
    sw_d2: Vec<i16>,
    sw_rev: Vec<u16>,
    sw_row: Vec<i32>,
    a_matches: Vec<char>,
    b_matches: Vec<char>,
}

/// The per-character position bitmasks of one string, `words` `u64`s per
/// character — shared input format of the Myers-Levenshtein kernel and
/// the bit-parallel Jaro matcher. Borrows the scratch buffers.
struct CharMasks<'s> {
    ascii: &'s [u64],
    other: &'s HashMap<char, (u64, Vec<u64>)>,
    gen: u64,
    words: usize,
}

impl CharMasks<'_> {
    /// Bitmask row for `c`; `None` when `c` never occurs in the string.
    fn row(&self, c: char) -> Option<&[u64]> {
        if (c as u32) < 128 {
            Some(&self.ascii[c as usize * self.words..(c as usize + 1) * self.words])
        } else {
            self.other
                .get(&c)
                .and_then(|(stamp, row)| (*stamp == self.gen).then_some(row.as_slice()))
        }
    }
}

/// Fills the scratch mask table with the position bitmasks of `chars`.
///
/// Reset strategy: ASCII rows are zeroed sparsely (only the rows the
/// previous string touched) when that set is small, densely otherwise
/// ([`MASK_SPARSE_ROWS`]). Non-ASCII rows are never dropped — each map
/// row carries a generation stamp, and a stale row is re-zeroed in
/// place on first touch — so a warm scratch builds masks without
/// allocating even for non-ASCII text.
// er-lint: zero-alloc
fn build_masks<'s>(
    mask_ascii: &'s mut Vec<u64>,
    mask_other: &'s mut HashMap<char, (u64, Vec<u64>)>,
    mask_seen: &mut u128,
    mask_gen: &mut u64,
    chars: &[char],
    words: usize,
) -> CharMasks<'s> {
    let dense_len = 128 * words;
    let prev = *mask_seen;
    if mask_ascii.len() == dense_len && (prev.count_ones() as usize) <= MASK_SPARSE_ROWS {
        // Invariant: only rows recorded in `mask_seen` are nonzero, so
        // zeroing exactly those restores the all-zero table.
        let mut rest = prev;
        while rest != 0 {
            let c = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            mask_ascii[c * words..(c + 1) * words].fill(0);
        }
    } else {
        mask_ascii.clear();
        mask_ascii.resize(dense_len, 0);
    }
    *mask_gen += 1;
    let gen = *mask_gen;
    let mut seen = 0u128;
    for (i, &c) in chars.iter().enumerate() {
        let bit = 1u64 << (i & 63);
        if (c as u32) < 128 {
            mask_ascii[c as usize * words + (i >> 6)] |= bit;
            seen |= 1u128 << (c as u32);
        } else {
            let (stamp, row) = mask_other
                .entry(c)
                // er-lint: allow(zero_alloc) -- first sight of a non-ASCII char allocates its row; stamped reuse thereafter
                .or_insert_with(|| (0, Vec::new()));
            if *stamp != gen {
                *stamp = gen;
                row.clear();
                row.resize(words, 0);
            }
            row[i >> 6] |= bit;
        }
    }
    *mask_seen = seen;
    CharMasks {
        ascii: mask_ascii,
        other: mask_other,
        gen,
        words,
    }
}

/// Levenshtein distance via Myers' bit-parallel algorithm, block form —
/// the `calculateBlock` update popularized by edlib. Vertical deltas
/// live in `VP`/`VN` words over the pattern; per text character the
/// horizontal delta chains across words through `hp`/`hn` carry bits
/// (the boundary column contributes the constant `+1` carry into word
/// 0). Computes the exact integer distance of the reference DP.
// er-lint: zero-alloc
pub fn myers_distance(pattern: &[char], text: &[char], scratch: &mut SimScratch) -> usize {
    let m = pattern.len();
    let words = m.div_ceil(64);
    let SimScratch {
        mask_ascii,
        mask_other,
        mask_seen,
        mask_gen,
        lev_vp,
        lev_vn,
        ..
    } = scratch;
    let masks = build_masks(mask_ascii, mask_other, mask_seen, mask_gen, pattern, words);
    lev_vp.clear();
    lev_vp.resize(words, !0u64);
    lev_vn.clear();
    lev_vn.resize(words, 0);
    let mut score = m;
    let last = words - 1;
    let last_bit = 1u64 << ((m - 1) & 63);
    for &c in text {
        let eq_row = masks.row(c);
        let mut hp_in = 1u64;
        let mut hn_in = 0u64;
        for j in 0..words {
            let eq = eq_row.map_or(0, |r| r[j]);
            let pv = lev_vp[j];
            let nv = lev_vn[j];
            let xv = eq | nv;
            let eq_h = eq | hn_in;
            let xh = ((eq_h & pv).wrapping_add(pv) ^ pv) | eq_h;
            let hp = nv | !(xh | pv);
            let hn = pv & xh;
            if j == last {
                if hp & last_bit != 0 {
                    score += 1;
                } else if hn & last_bit != 0 {
                    score -= 1;
                }
            }
            let hp_out = hp >> 63;
            let hn_out = hn >> 63;
            let hp = (hp << 1) | hp_in;
            let hn = (hn << 1) | hn_in;
            hp_in = hp_out;
            hn_in = hn_out;
            lev_vp[j] = hn | !(xv | hp);
            lev_vn[j] = hp & xv;
        }
    }
    score
}

/// [`levenshtein_similarity`] via [`myers_distance`], pattern = the
/// shorter string. The distance is the same exact integer the reference
/// DP produces — Levenshtein is symmetric — so the similarity is
/// bit-identical.
// er-lint: zero-alloc
pub fn levenshtein_prepared(a: &[char], b: &[char], scratch: &mut SimScratch) -> f64 {
    let max = a.len().max(b.len());
    if max == 0 {
        return 1.0;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dist = if short.is_empty() {
        long.len()
    } else {
        myers_distance(short, long, scratch)
    };
    1.0 - dist as f64 / max as f64
}

/// `jaro` with the match scan bit-parallelized: `b`'s positions live in
/// per-character bitmasks, matched positions in a `taken` bitmask, so
/// "first unmatched occurrence of `ca` inside the window" is a masked
/// word scan + `trailing_zeros` — the same position the reference's
/// linear scan picks, so the same matches, transpositions, and bits.
// er-lint: zero-alloc
pub fn jaro_prepared(a: &[char], b: &[char], scratch: &mut SimScratch) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a.len() == 1 && b.len() == 1 {
        return if a[0] == b[0] { 1.0 } else { 0.0 };
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let words = b.len().div_ceil(64);
    let SimScratch {
        mask_ascii,
        mask_other,
        mask_seen,
        mask_gen,
        taken,
        a_matches,
        b_matches,
        ..
    } = scratch;
    let masks = build_masks(mask_ascii, mask_other, mask_seen, mask_gen, b, words);
    taken.clear();
    taken.resize(words, 0);
    a_matches.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        if lo >= hi {
            continue;
        }
        let Some(eq) = masks.row(ca) else { continue };
        let w_lo = lo >> 6;
        let w_hi = (hi - 1) >> 6;
        for w in w_lo..=w_hi {
            let mut cand = eq[w] & !taken[w];
            if w == w_lo {
                cand &= !((1u64 << (lo & 63)) - 1);
            }
            if w == w_hi {
                let top = hi - (w << 6);
                if top < 64 {
                    cand &= (1u64 << top) - 1;
                }
            }
            if cand != 0 {
                taken[w] |= cand & cand.wrapping_neg();
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    b_matches.clear();
    for (w, &tw) in taken.iter().enumerate() {
        let mut tw = tw;
        while tw != 0 {
            b_matches.push(b[(w << 6) + tw.trailing_zeros() as usize]);
            tw &= tw - 1;
        }
    }
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// [`jaro_winkler`] on top of [`jaro_prepared`] — same prefix bonus.
// er-lint: zero-alloc
pub fn jaro_winkler_prepared(a: &[char], b: &[char], scratch: &mut SimScratch) -> f64 {
    let j = jaro_prepared(a, b, scratch);
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Doubled-integer Smith-Waterman, rolling-row form — the fallback for
/// non-BMP texts and for pairs too short to fill a vector of
/// antidiagonal cells. `row[j]` holds the previous row's value until
/// overwritten; the diagonal is carried in a local.
// er-lint: zero-alloc
pub fn sw_scalar(a: &[char], b: &[char], scratch: &mut SimScratch) -> i32 {
    let row = &mut scratch.sw_row;
    row.clear();
    row.resize(b.len(), 0);
    let mut best = 0i32;
    for &ac in a {
        let mut diag = 0i32;
        let mut left = 0i32;
        for (&bc, cell) in b.iter().zip(row.iter_mut()) {
            let up = *cell;
            let sub = if ac == bc { 2 } else { -2 };
            let v = (diag + sub).max(up.max(left) - 1).max(0);
            *cell = v;
            diag = up;
            left = v;
            best = best.max(v);
        }
    }
    best
}

/// Doubled-integer Smith-Waterman over antidiagonals. Cells on one
/// antidiagonal depend only on the two previous antidiagonals, so the
/// inner loop carries no dependency and LLVM auto-vectorizes the i16
/// lanes. Same max/add integers as [`sw_scalar`], just reassociated
/// cell order — the result is the identical `best`.
// er-lint: zero-alloc
pub fn sw_antidiag(a: &[u16], b: &[u16], scratch: &mut SimScratch) -> i32 {
    let (n, m) = (a.len(), b.len());
    let SimScratch {
        sw_d0,
        sw_d1,
        sw_d2,
        sw_rev,
        ..
    } = scratch;
    // Reverse `b` so the antidiagonal's `b[d - i]` reads become forward
    // loads: with `br[k] = b[m-1-k]`, `b[d - i] = br[m-1-d+i]`.
    sw_rev.clear();
    sw_rev.extend(b.iter().rev());
    for buf in [&mut *sw_d0, &mut *sw_d1, &mut *sw_d2] {
        buf.clear();
        buf.resize(n, 0);
    }
    let mut best = 0i16;
    for d in 0..n + m - 1 {
        let i_lo = (d + 1).saturating_sub(m);
        let i_hi = d.min(n - 1);
        // Border cells (first row / first column): missing neighbors
        // are the zero boundary.
        if i_lo == 0 {
            let left = if d >= 1 { sw_d1[0] } else { 0 };
            let sub = if a[0] == b[d] { 2 } else { -2 };
            sw_d0[0] = sub.max(left - 1).max(0);
        }
        if i_hi == d && d >= 1 {
            let up = sw_d1[d - 1];
            let sub = if a[d] == b[0] { 2 } else { -2 };
            sw_d0[d] = sub.max(up - 1).max(0);
        }
        // Interior: all three neighbors in-matrix, straight-line zips.
        let lo = i_lo.max(1);
        let hi = i_hi.min(d.wrapping_sub(1));
        if d >= 2 && lo <= hi {
            let len = hi - lo + 1;
            let k0 = (m + lo - 1) - d;
            let (diags, ups, up_lefts) = (
                &sw_d2[lo - 1..lo - 1 + len],
                &sw_d1[lo..lo + len],
                &sw_d1[lo - 1..lo - 1 + len],
            );
            let (acs, bcs) = (&a[lo..lo + len], &sw_rev[k0..k0 + len]);
            let out = &mut sw_d0[lo..lo + len];
            let neighbors = diags.iter().zip(ups).zip(up_lefts);
            let chars = acs.iter().zip(bcs);
            for ((o, ((&dg, &up), &ul)), (&ac, &bc)) in out.iter_mut().zip(neighbors).zip(chars) {
                let sub = if ac == bc { 2i16 } else { -2 };
                *o = (dg + sub).max(up.max(ul) - 1).max(0);
            }
        }
        let mut diag_best = 0i16;
        for &v in &sw_d0[i_lo..=i_hi] {
            diag_best = diag_best.max(v);
        }
        best = best.max(diag_best);
        std::mem::swap(sw_d1, sw_d2);
        std::mem::swap(sw_d0, sw_d1);
    }
    i32::from(best)
}

/// [`smith_waterman_similarity`] with the default scoring (match 1.0,
/// mismatch −1.0, gap −0.5) on a doubled-integer DP. Every cell of the
/// reference float DP is an exact multiple of 0.5, so doubling the
/// increments (+2/−2/−1, floor 0) gives `cell × 2` exactly, and halving
/// the best score reproduces the float result bit for bit. BMP texts
/// long enough to fill a vector ([`SW_LANES`]) take the antidiagonal
/// kernel; the rolling-row char DP covers the rest (identical integers
/// either way). Callers pass the BMP code units when the text has them
/// (`None` forces the scalar path).
// er-lint: zero-alloc
pub fn smith_waterman_prepared(
    a: &[char],
    b: &[char],
    a_units: Option<&[u16]>,
    b_units: Option<&[u16]>,
    scratch: &mut SimScratch,
) -> f64 {
    let min_len = a.len().min(b.len());
    if min_len == 0 {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    // The doubled i16 cells are bounded by 2·min_len; stay far from
    // saturation before trusting the i16 kernel.
    let best = match (a_units, b_units) {
        (Some(wa), Some(wb)) if (SW_LANES..=8000).contains(&min_len) => {
            sw_antidiag(wa, wb, scratch)
        }
        _ => sw_scalar(a, b, scratch),
    };
    let score = f64::from(best) / 2.0;
    (score / min_len as f64).clamp(0.0, 1.0)
}

/// [`monge_elkan`] with two memo levels over interned ids: the inner
/// Jaro-Winkler depends only on the two token ids, and each direction's
/// inner maximum `max_y jw(x, y)` depends only on `(x, partner record)`
/// — both deterministic functions of their key, so caching repeats the
/// exact value the reference recomputes. The outer fold order over `xs`
/// is unchanged.
pub fn monge_elkan_memoized(corpus: &Corpus, a: usize, b: usize, scratch: &mut SimScratch) -> f64 {
    let toks_a = corpus.tokens(a);
    let toks_b = corpus.tokens(b);
    if toks_a.is_empty() && toks_b.is_empty() {
        return 1.0;
    }
    if toks_a.is_empty() || toks_b.is_empty() {
        return 0.0;
    }
    let n_terms = corpus.vocab_len();
    if scratch.jw_by_term.len() < n_terms {
        scratch.jw_by_term.resize_with(n_terms, TermCache::default);
        scratch
            .best_by_term
            .resize_with(n_terms, TermCache::default);
    }
    let SimScratch {
        jw_by_term,
        best_by_term,
        ..
    } = scratch;
    let vocab = corpus.vocab();
    let mut dir = |xs: &[crate::TermId], other: u32, ys: &[crate::TermId]| -> f64 {
        let mut total = 0.0f64;
        for &x in xs {
            let best = if let Some(&v) = best_by_term[x.index()].get(&other) {
                v
            } else {
                let jw_x = &mut jw_by_term[x.index()];
                let mut best = 0.0f64;
                for &y in ys {
                    let jw = if let Some(&v) = jw_x.get(&y.0) {
                        v
                    } else {
                        let v = jaro_winkler(vocab.term(x), vocab.term(y));
                        jw_x.insert(y.0, v);
                        v
                    };
                    best = best.max(jw);
                }
                best_by_term[x.index()].insert(other, best);
                best
            };
            total += best;
        }
        total / xs.len() as f64
    };
    0.5 * (dir(toks_a, b as u32, toks_b) + dir(toks_b, a as u32, toks_a))
}

/// Contiguous string arena over one dataset: every record text lives in
/// three parallel tapes — UTF-8 bytes (for `&str` views), decoded
/// `char`s (the DP/Jaro input), and `u16` code units (the vectorized
/// Smith-Waterman input, valid when the record is BMP-only) — each
/// addressed by one offset table. Built once; per-pair access is two
/// offset loads and a slice, with zero per-pair allocation.
#[derive(Debug, Default)]
pub struct StrTape {
    bytes: Vec<u8>,
    byte_offsets: Vec<u32>,
    chars: Vec<char>,
    char_offsets: Vec<u32>,
    /// Parallel to `chars`; meaningful only where `bmp` is set (a
    /// non-BMP char stores 0 and poisons its record's `bmp` flag).
    units: Vec<u16>,
    bmp: Vec<bool>,
}

impl StrTape {
    /// An empty tape.
    pub fn new() -> Self {
        Self {
            byte_offsets: vec![0],
            char_offsets: vec![0],
            ..Self::default()
        }
    }

    /// Tape over explicit texts, in order.
    pub fn from_texts<S: AsRef<str>>(texts: &[S]) -> Self {
        let mut tape = Self::new();
        for t in texts {
            tape.push(t.as_ref());
        }
        tape
    }

    /// Tape over a corpus: record `r`'s text is its post-filter tokens
    /// joined by single spaces — exactly the reconstruction the metric
    /// oracles and the feature extractor score.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let mut tape = Self::new();
        let mut buf = String::new();
        for r in 0..corpus.len() {
            buf.clear();
            for (i, &t) in corpus.tokens(r).iter().enumerate() {
                if i > 0 {
                    buf.push(' ');
                }
                buf.push_str(corpus.vocab().term(t));
            }
            tape.push(&buf);
        }
        tape
    }

    /// Appends one record text to the tape.
    pub fn push(&mut self, text: &str) {
        self.bytes.extend_from_slice(text.as_bytes());
        let mut bmp = true;
        for c in text.chars() {
            self.chars.push(c);
            match u16::try_from(c as u32) {
                Ok(u) => self.units.push(u),
                Err(_) => {
                    self.units.push(0);
                    bmp = false;
                }
            }
        }
        self.bmp.push(bmp);
        // er-lint: allow(panic) -- 4 GiB tape capacity is a documented limit; overflow is unrecoverable corpus misuse
        let byte_end = u32::try_from(self.bytes.len()).expect("string tape exceeds u32 offsets");
        // er-lint: allow(panic) -- same u32-offset capacity invariant as the byte tape above
        let char_end = u32::try_from(self.chars.len()).expect("string tape exceeds u32 offsets");
        self.byte_offsets.push(byte_end);
        self.char_offsets.push(char_end);
    }

    /// Number of records on the tape.
    pub fn len(&self) -> usize {
        self.bmp.len()
    }

    /// True when the tape holds no records.
    pub fn is_empty(&self) -> bool {
        self.bmp.is_empty()
    }

    /// Record `r`'s text as a `&str` view into the byte tape.
    pub fn text(&self, r: usize) -> &str {
        let lo = self.byte_offsets[r] as usize;
        let hi = self.byte_offsets[r + 1] as usize;
        // Slices always fall on the push boundaries of whole `&str`s,
        // so validation cannot fail; it is re-run (O(len)) because the
        // crate denies `unsafe`. Oracle paths only — the kernels read
        // the char/unit tapes.
        // er-lint: allow(panic) -- offsets are `&str` push boundaries, so the slice is valid UTF-8 by construction
        std::str::from_utf8(&self.bytes[lo..hi]).expect("tape stores whole UTF-8 strings")
    }

    /// Record `r`'s decoded characters.
    pub fn chars(&self, r: usize) -> &[char] {
        &self.chars[self.char_offsets[r] as usize..self.char_offsets[r + 1] as usize]
    }

    /// Record `r`'s UTF-16 code units, when every char fits in the BMP.
    pub fn units(&self, r: usize) -> Option<&[u16]> {
        self.bmp[r]
            .then(|| &self.units[self.char_offsets[r] as usize..self.char_offsets[r + 1] as usize])
    }

    /// Character count of record `r`.
    pub fn char_len(&self, r: usize) -> usize {
        (self.char_offsets[r + 1] - self.char_offsets[r]) as usize
    }

    /// DP cell count of a pair batch — Σ `|a|·|b|` over the actual
    /// tape lengths. This is both the CUPS denominator and the
    /// [`WorkerPool::dispatch`] work estimate for batched scoring
    /// (replacing the old flat per-pair constant).
    // er-lint: zero-alloc
    pub fn batch_cells(&self, pairs: &[(u32, u32)]) -> u64 {
        pairs
            .iter()
            .map(|&(a, b)| self.char_len(a as usize) as u64 * self.char_len(b as usize) as u64)
            .sum()
    }
}

/// The four batched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimKernel {
    /// Block-Myers bit-parallel Levenshtein similarity.
    Levenshtein,
    /// Bit-parallel Jaro matcher with the Winkler prefix bonus.
    JaroWinkler,
    /// Doubled-integer antidiagonal Smith-Waterman (scalar fallback).
    SmithWaterman,
    /// Memoized Monge-Elkan with inner Jaro-Winkler over interned
    /// tokens.
    MongeElkan,
}

impl SimKernel {
    /// All four kernels, in bench/report order.
    pub const ALL: [SimKernel; 4] = [
        SimKernel::Levenshtein,
        SimKernel::JaroWinkler,
        SimKernel::SmithWaterman,
        SimKernel::MongeElkan,
    ];

    /// Stable snake_case identifier (bench labels, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            SimKernel::Levenshtein => "levenshtein",
            SimKernel::JaroWinkler => "jaro_winkler",
            SimKernel::SmithWaterman => "smith_waterman",
            SimKernel::MongeElkan => "monge_elkan",
        }
    }

    /// The kernel's er-obs span name.
    fn span_name(self) -> &'static str {
        match self {
            SimKernel::Levenshtein => "simeng.kernel.levenshtein",
            SimKernel::JaroWinkler => "simeng.kernel.jaro_winkler",
            SimKernel::SmithWaterman => "simeng.kernel.smith_waterman",
            SimKernel::MongeElkan => "simeng.kernel.monge_elkan",
        }
    }
}

/// Batched pair scorer over a [`StrTape`].
///
/// Owns the tape and a [`ScratchSlot`] of per-worker [`SimScratch`]es;
/// [`BatchScorer::score_into`] scores a whole slice of pair indices in
/// one call — serial-inline when the tape-derived cell count is below
/// the pool's dispatch threshold, otherwise fanned out in the repo's
/// deterministic contiguous chunks (disjoint output ranges, serial
/// per-pair work), so results are bit-identical at any thread count.
#[derive(Debug)]
pub struct BatchScorer<'c> {
    corpus: &'c Corpus,
    tape: StrTape,
    scratch: ScratchSlot<SimScratch>,
}

impl<'c> BatchScorer<'c> {
    /// Builds the scorer: one tape pass over the corpus (the only
    /// allocation phase — scoring itself is allocation-free at steady
    /// state).
    pub fn new(corpus: &'c Corpus) -> Self {
        Self {
            corpus,
            tape: StrTape::from_corpus(corpus),
            scratch: ScratchSlot::new(),
        }
    }

    /// The underlying tape.
    pub fn tape(&self) -> &StrTape {
        &self.tape
    }

    /// Work estimate for a batch, in DP cells ([`StrTape::batch_cells`]).
    pub fn cells(&self, pairs: &[(u32, u32)]) -> u64 {
        self.tape.batch_cells(pairs)
    }

    /// Scores `pairs` with `kernel` into a fresh vector.
    pub fn score(&self, kernel: SimKernel, pairs: &[(u32, u32)], pool: &WorkerPool) -> Vec<f64> {
        let mut out = vec![0.0f64; pairs.len()];
        self.score_into(kernel, pairs, &mut out, pool);
        out
    }

    /// Scores `pairs` with `kernel` into `out` (`out.len()` must equal
    /// `pairs.len()`). `out[i]` equals the kernel's per-pair oracle on
    /// `pairs[i]` bit for bit, at any thread count.
    pub fn score_into(
        &self,
        kernel: SimKernel,
        pairs: &[(u32, u32)],
        out: &mut [f64],
        pool: &WorkerPool,
    ) {
        assert_eq!(
            pairs.len(),
            out.len(),
            "output slice must match the pair batch"
        );
        let _span = er_obs::span(kernel.span_name());
        let cells = self.cells(pairs);
        er_obs::counter_add("simeng.batch.pairs_total", pairs.len() as u64);
        er_obs::counter_add("simeng.batch.cells_total", cells);
        // Tape-derived dispatch estimate: actual DP cells, not a flat
        // per-pair constant — small batches of short strings stay
        // serial-inline even when the pair count looks large.
        //
        // Monge-Elkan is priced separately: its memo shares term-pair
        // DPs across the *whole batch*, so the raw cell count
        // overstates its cost by orders of magnitude, and chunking
        // re-derives each unique term pair once per chunk (measured:
        // a 4-way fan-out runs 20× slower than the shared-memo serial
        // sweep at mid corpus scale). The memoized kernel therefore
        // reports zero work and keeps the serial sweep under any
        // size-based policy.
        let work = match kernel {
            SimKernel::MongeElkan => 0,
            _ => usize::try_from(cells).unwrap_or(usize::MAX),
        };
        if !pool.dispatch(work).is_parallel() {
            let mut scratch = self.scratch.checkout();
            self.score_range(kernel, pairs, out, &mut scratch);
            return;
        }
        let ranges = er_pool::chunk_ranges(pairs.len(), pool.threads(), BATCH_MIN_CHUNK);
        pool.scope(|s| {
            let mut rest = out;
            for r in ranges {
                let (chunk, tail) = rest.split_at_mut(r.len());
                rest = tail;
                let ps = &pairs[r];
                s.submit(move || {
                    let mut scratch = self.scratch.checkout();
                    self.score_range(kernel, ps, chunk, &mut scratch);
                });
            }
        });
    }

    /// Serial kernel sweep over one contiguous chunk.
    // er-lint: zero-alloc
    fn score_range(
        &self,
        kernel: SimKernel,
        pairs: &[(u32, u32)],
        out: &mut [f64],
        scratch: &mut SimScratch,
    ) {
        for (o, &(a, b)) in out.iter_mut().zip(pairs) {
            *o = self.score_pair(kernel, a, b, scratch);
        }
    }

    /// Scores one pair on the batch kernels (callers loop this with a
    /// warm scratch; [`BatchScorer::score_into`] does exactly that).
    // er-lint: zero-alloc
    pub fn score_pair(&self, kernel: SimKernel, a: u32, b: u32, scratch: &mut SimScratch) -> f64 {
        let (a, b) = (a as usize, b as usize);
        match kernel {
            SimKernel::Levenshtein => {
                levenshtein_prepared(self.tape.chars(a), self.tape.chars(b), scratch)
            }
            SimKernel::JaroWinkler => {
                jaro_winkler_prepared(self.tape.chars(a), self.tape.chars(b), scratch)
            }
            SimKernel::SmithWaterman => smith_waterman_prepared(
                self.tape.chars(a),
                self.tape.chars(b),
                self.tape.units(a),
                self.tape.units(b),
                scratch,
            ),
            SimKernel::MongeElkan => monge_elkan_memoized(self.corpus, a, b, scratch),
        }
    }

    /// The kernel's per-pair oracle: the original `crate::metrics` call
    /// over freshly materialized strings — per-call allocation, scalar
    /// DP, no memo. This is both the proptest reference and the
    /// "per-pair" side of the CUPS speedup benchmarks.
    pub fn score_pair_reference(&self, kernel: SimKernel, a: u32, b: u32) -> f64 {
        let (a, b) = (a as usize, b as usize);
        match kernel {
            SimKernel::Levenshtein => levenshtein_similarity(self.tape.text(a), self.tape.text(b)),
            SimKernel::JaroWinkler => jaro_winkler(self.tape.text(a), self.tape.text(b)),
            SimKernel::SmithWaterman => {
                smith_waterman_similarity(self.tape.text(a), self.tape.text(b))
            }
            SimKernel::MongeElkan => {
                let vocab = self.corpus.vocab();
                let ta: Vec<&str> = self
                    .corpus
                    .tokens(a)
                    .iter()
                    .map(|&t| vocab.term(t))
                    .collect();
                let tb: Vec<&str> = self
                    .corpus
                    .tokens(b)
                    .iter()
                    .map(|&t| vocab.term(t))
                    .collect();
                monge_elkan(&ta, &tb, jaro_winkler)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    fn corpus() -> Corpus {
        CorpusBuilder::new()
            .push_text("sony turntable pslx350h belt drive")
            .push_text("sony pslx350h turntable")
            .push_text("panasonic microwave oven family size")
            .push_text("grill on the alley dayton")
            .build()
    }

    fn all_pairs(n: u32) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                pairs.push((a, b));
            }
        }
        pairs
    }

    #[test]
    fn tape_round_trips_texts() {
        let texts = ["abc def", "", "héllo 日本", "x"];
        let tape = StrTape::from_texts(&texts);
        assert_eq!(tape.len(), texts.len());
        for (r, t) in texts.iter().enumerate() {
            assert_eq!(tape.text(r), *t);
            let chars: Vec<char> = t.chars().collect();
            assert_eq!(tape.chars(r), chars.as_slice());
            assert_eq!(tape.char_len(r), chars.len());
        }
        // "日本" is BMP; a supplementary-plane char is not.
        assert!(tape.units(2).is_some());
        let supp = StrTape::from_texts(&["a😀b"]);
        assert!(supp.units(0).is_none());
        assert_eq!(supp.chars(0).len(), 3);
    }

    #[test]
    fn tape_matches_corpus_reconstruction() {
        let c = corpus();
        let tape = StrTape::from_corpus(&c);
        for r in 0..c.len() {
            let want: Vec<&str> = c.tokens(r).iter().map(|&t| c.vocab().term(t)).collect();
            assert_eq!(tape.text(r), want.join(" "));
        }
    }

    #[test]
    fn batch_cells_sums_length_products() {
        let tape = StrTape::from_texts(&["abcd", "xy", ""]);
        assert_eq!(tape.batch_cells(&[(0, 1)]), 8);
        assert_eq!(tape.batch_cells(&[(0, 1), (1, 2)]), 8);
        assert_eq!(tape.batch_cells(&[(0, 0), (0, 1), (0, 2)]), 24);
    }

    #[test]
    fn batch_matches_reference_on_all_kernels() {
        let c = corpus();
        let scorer = BatchScorer::new(&c);
        let pairs = all_pairs(c.len() as u32);
        let pool = WorkerPool::new(1);
        for kernel in SimKernel::ALL {
            let got = scorer.score(kernel, &pairs, &pool);
            for (&(a, b), g) in pairs.iter().zip(&got) {
                let want = scorer.score_pair_reference(kernel, a, b);
                assert_eq!(
                    want.to_bits(),
                    g.to_bits(),
                    "{} diverged on ({a}, {b}): {want} vs {g}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn pooled_scoring_is_thread_count_invariant() {
        let c = corpus();
        let scorer = BatchScorer::new(&c);
        let pairs = all_pairs(c.len() as u32);
        for kernel in SimKernel::ALL {
            let serial = scorer.score(kernel, &pairs, &WorkerPool::new(1));
            for threads in [2usize, 8] {
                let pool =
                    WorkerPool::with_policy(threads, er_pool::DispatchPolicy::always_parallel());
                let pooled = scorer.score(kernel, &pairs, &pool);
                assert_eq!(serial, pooled, "{} at {threads} threads", kernel.name());
            }
        }
    }

    #[test]
    fn sparse_mask_reset_is_clean_across_ragged_pairs() {
        // Alternate long and short strings so the sparse reset must
        // clear rows the short string never touches; any stale bit
        // would corrupt the Myers/Jaro words.
        let texts = [
            "abcdefghijklmnopqrstuvwxyz abcdefghijklmnopqrstuvwxyz",
            "zz",
            "ab",
            "ponmlkjihgfedcba",
        ];
        let tape = StrTape::from_texts(&texts);
        let mut scratch = SimScratch::default();
        for _round in 0..3 {
            for a in 0..texts.len() {
                for b in 0..texts.len() {
                    let got = levenshtein_prepared(tape.chars(a), tape.chars(b), &mut scratch);
                    let want = levenshtein_similarity(texts[a], texts[b]);
                    assert_eq!(want.to_bits(), got.to_bits(), "({a}, {b})");
                    let got = jaro_winkler_prepared(tape.chars(a), tape.chars(b), &mut scratch);
                    let want = jaro_winkler(texts[a], texts[b]);
                    assert_eq!(want.to_bits(), got.to_bits(), "jw ({a}, {b})");
                }
            }
        }
    }

    #[test]
    fn stamped_non_ascii_rows_survive_reuse() {
        // The stamped mask_other rows are re-zeroed in place, never
        // dropped: interleave disjoint non-ASCII alphabets so stale
        // rows from the previous pair must be invisible.
        let texts = ["日本語テキスト", "éàçéàç", "日éa", ""];
        let tape = StrTape::from_texts(&texts);
        let mut scratch = SimScratch::default();
        for _round in 0..3 {
            for a in 0..texts.len() {
                for b in 0..texts.len() {
                    let got = levenshtein_prepared(tape.chars(a), tape.chars(b), &mut scratch);
                    let want = levenshtein_similarity(texts[a], texts[b]);
                    assert_eq!(want.to_bits(), got.to_bits(), "({a}, {b})");
                }
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Ragged lengths over a small alphabet (dense matches) plus
        /// non-ASCII characters (the stamped-row fallback), including
        /// empty strings and texts crossing the 64/128-char word
        /// boundaries of the bit-parallel kernels.
        fn text_strategy() -> impl Strategy<Value = String> {
            proptest::collection::vec(
                (0usize..6).prop_map(|i| ['a', 'b', 'c', ' ', 'é', '日'][i]),
                0..200,
            )
            .prop_map(|cs| cs.into_iter().collect())
        }

        fn texts_strategy() -> impl Strategy<Value = Vec<String>> {
            proptest::collection::vec(text_strategy(), 2..12)
        }

        proptest! {
            #[test]
            fn myers_matches_reference_levenshtein(a in text_strategy(), b in text_strategy()) {
                let ca: Vec<char> = a.chars().collect();
                let cb: Vec<char> = b.chars().collect();
                let mut scratch = SimScratch::default();
                let fast = levenshtein_prepared(&ca, &cb, &mut scratch);
                let reference = levenshtein_similarity(&a, &b);
                prop_assert_eq!(fast.to_bits(), reference.to_bits());
            }

            #[test]
            fn antidiagonal_sw_matches_scalar_and_reference(
                a in text_strategy(),
                b in text_strategy(),
            ) {
                let ca: Vec<char> = a.chars().collect();
                let cb: Vec<char> = b.chars().collect();
                let mut scratch = SimScratch::default();
                let min_len = ca.len().min(cb.len());
                let fast = if min_len == 0 {
                    if ca.is_empty() && cb.is_empty() { 1.0 } else { 0.0 }
                } else {
                    let wa: Vec<u16> = ca.iter().map(|&c| c as u16).collect();
                    let wb: Vec<u16> = cb.iter().map(|&c| c as u16).collect();
                    let anti = sw_antidiag(&wa, &wb, &mut scratch);
                    let scalar = sw_scalar(&ca, &cb, &mut scratch);
                    prop_assert_eq!(anti, scalar);
                    (f64::from(anti) / 2.0 / min_len as f64).clamp(0.0, 1.0)
                };
                let reference = smith_waterman_similarity(&a, &b);
                prop_assert_eq!(fast.to_bits(), reference.to_bits());
            }

            #[test]
            fn bit_parallel_jaro_matches_reference(a in text_strategy(), b in text_strategy()) {
                let ca: Vec<char> = a.chars().collect();
                let cb: Vec<char> = b.chars().collect();
                let mut scratch = SimScratch::default();
                let fast = jaro_winkler_prepared(&ca, &cb, &mut scratch);
                let reference = jaro_winkler(&a, &b);
                prop_assert_eq!(fast.to_bits(), reference.to_bits());
            }

            /// Batch-vs-oracle bitwise identity for all four kernels at
            /// 1, 2, and 8 threads over arbitrary corpora.
            #[test]
            fn batch_matches_oracle_at_every_thread_count(texts in texts_strategy()) {
                let mut builder = CorpusBuilder::new();
                for t in &texts {
                    builder = builder.push_text(t.clone());
                }
                let c = builder.build();
                let scorer = BatchScorer::new(&c);
                let pairs = all_pairs(c.len() as u32);
                for kernel in SimKernel::ALL {
                    let want: Vec<f64> = pairs
                        .iter()
                        .map(|&(a, b)| scorer.score_pair_reference(kernel, a, b))
                        .collect();
                    for threads in [1usize, 2, 8] {
                        let pool = WorkerPool::with_policy(
                            threads,
                            er_pool::DispatchPolicy::always_parallel(),
                        );
                        let got = scorer.score(kernel, &pairs, &pool);
                        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                            prop_assert_eq!(
                                w.to_bits(),
                                g.to_bits(),
                                "{} diverged at {} threads on pair {:?}: {} vs {}",
                                kernel.name(), threads, pairs[i], w, g
                            );
                        }
                    }
                }
            }
        }
    }
}
