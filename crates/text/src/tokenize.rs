//! Tokenization and term interning.
//!
//! Downstream graph algorithms (ITER's bipartite graph, SimRank, the term
//! co-occurrence graph) address terms by dense integer id, so tokenization
//! goes through a [`Vocabulary`] that interns each distinct term string to
//! a [`TermId`] and records corpus statistics (document frequency).

use std::collections::HashMap;

use crate::normalize::normalize_into;

/// Dense identifier of an interned term. Term ids are assigned in first-seen
/// order starting from zero, so they can index plain vectors.
///
/// `repr(transparent)`: `&[TermId]` is layout-compatible with `&[u32]`,
/// which index-based consumers (er-graph) rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Splits already-normalized text on whitespace.
///
/// Single-character tokens are kept: in the Restaurant-style data, street
/// direction letters ("s", "w") carry signal, and dropping them is left to
/// the frequent-term filter which is driven by data rather than heuristics.
pub fn tokenize(normalized: &str) -> impl Iterator<Item = &str> {
    normalized.split_whitespace()
}

/// Normalizes `raw` and returns its tokens as owned strings.
///
/// Convenience for tests and one-off callers; bulk ingestion should go
/// through [`Vocabulary::intern_record`] which reuses buffers.
pub fn tokenize_normalized(raw: &str) -> Vec<String> {
    let mut buf = String::new();
    normalize_into(raw, &mut buf);
    tokenize(&buf).map(str::to_owned).collect()
}

/// An interning vocabulary mapping term strings to dense [`TermId`]s.
///
/// Tracks, for every term, its **document frequency** (number of records
/// containing it at least once), which drives both the IDF statistics of
/// the TF-IDF baseline and the frequent-term removal of §VII-A.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    by_term: HashMap<String, TermId>,
    terms: Vec<String>,
    doc_freq: Vec<u32>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns a single term, returning its id. Does **not** touch document
    /// frequency; use [`Vocabulary::intern_record`] for corpus ingestion.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_owned());
        self.by_term.insert(term.to_owned(), id);
        self.doc_freq.push(0);
        id
    }

    /// Looks up a term without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Returns the string for `id`. Panics if `id` is out of range.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Document frequency of `id`: the number of records passed to
    /// [`Vocabulary::intern_record`] that contained the term.
    pub fn doc_freq(&self, id: TermId) -> u32 {
        self.doc_freq[id.index()]
    }

    /// Tokenizes (raw text → normalize → split) and interns one record.
    ///
    /// Returns the record's **token list** (with duplicates, in order) —
    /// term multiplicity is needed by TF-IDF — and increments document
    /// frequency once per distinct term in the record.
    pub fn intern_record(&mut self, raw_text: &str) -> Vec<TermId> {
        let mut buf = String::new();
        normalize_into(raw_text, &mut buf);
        let mut tokens = Vec::new();
        for tok in tokenize(&buf) {
            tokens.push(self.intern(tok));
        }
        // Count each distinct term once for document frequency.
        let mut distinct: Vec<TermId> = tokens.clone();
        distinct.sort_unstable();
        distinct.dedup();
        for id in distinct {
            self.doc_freq[id.index()] += 1;
        }
        tokens
    }

    /// Iterates over `(TermId, term string, document frequency)`.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str, u32)> {
        self.terms
            .iter()
            .zip(self.doc_freq.iter())
            .enumerate()
            .map(|(i, (t, &df))| (TermId(i as u32), t.as_str(), df))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut v = Vocabulary::new();
        let a = v.intern("sunset");
        let b = v.intern("blvd");
        let a2 = v.intern("sunset");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.term(a), "sunset");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn record_interning_counts_doc_freq_once_per_record() {
        let mut v = Vocabulary::new();
        let toks = v.intern_record("la la land");
        assert_eq!(toks.len(), 3);
        let la = v.get("la").unwrap();
        assert_eq!(v.doc_freq(la), 1, "duplicate within one record counts once");
        v.intern_record("la brea bakery");
        assert_eq!(v.doc_freq(la), 2);
    }

    #[test]
    fn tokenize_splits_on_whitespace_runs() {
        let toks: Vec<&str> = tokenize("a  b   c").collect();
        assert_eq!(toks, vec!["a", "b", "c"]);
    }

    #[test]
    fn tokenize_normalized_end_to_end() {
        assert_eq!(
            tokenize_normalized("Art's Deli, 12224 Ventura Blvd."),
            vec!["art", "s", "deli", "12224", "ventura", "blvd"]
        );
    }

    #[test]
    fn lookup_missing_term() {
        let v = Vocabulary::new();
        assert!(v.get("nothing").is_none());
        assert!(v.is_empty());
    }

    #[test]
    fn iter_yields_all_terms() {
        let mut v = Vocabulary::new();
        v.intern_record("alpha beta");
        v.intern_record("beta gamma");
        let entries: Vec<_> = v.iter().map(|(_, t, df)| (t.to_owned(), df)).collect();
        assert_eq!(
            entries,
            vec![
                ("alpha".to_owned(), 1),
                ("beta".to_owned(), 2),
                ("gamma".to_owned(), 1)
            ]
        );
    }
}
