//! Incremental corpus maintenance for the streaming ingest path.
//!
//! [`crate::CorpusBuilder`] is a batch construction: it sees every text
//! up front, computes the frequent-term cap once and emits an immutable
//! [`Corpus`]. A serving engine ingests records one at a time, so this
//! module keeps the *growing* state — the interning vocabulary, the
//! unfiltered token lists and term sets, and the unfiltered posting
//! lists in an [`AppendableCsr`] (append-only per term, staged
//! compaction) — and **materializes** a `Corpus` on demand.
//!
//! The frequent-term cap is `max(⌊f·n⌋, 2)` and therefore moves with
//! the record count `n`: a term can be filtered at one corpus size and
//! admitted at another. Materialization re-derives the keep set from
//! the live document frequencies, which makes the result **identical**
//! to what `CorpusBuilder` would build from the same texts in the same
//! order (pinned by the tests below and `tests/prop_streaming.rs`) —
//! the property the serving engine's incremental ≡ batch bit-identity
//! guarantee rests on. Interning is stable under appends, so term ids
//! never shift; only the keep set does.

use er_graph::AppendableCsr;

use crate::corpus::Corpus;
use crate::tokenize::{TermId, Vocabulary};

/// Default spill-fraction threshold above which posting lists are
/// compacted back into one contiguous arena.
pub const DEFAULT_COMPACTION_THRESHOLD: f64 = 0.25;

/// An append-only corpus accumulator: ingest texts, materialize a
/// filtered [`Corpus`] snapshot whenever a resolve needs one.
#[derive(Debug)]
pub struct StreamingCorpus {
    vocab: Vocabulary,
    /// Unfiltered token list per record (duplicates, original order).
    tokens: Vec<Vec<TermId>>,
    /// Unfiltered sorted + deduplicated term set per record.
    term_sets: Vec<Vec<TermId>>,
    /// Unfiltered postings: term row → ascending record ids. Appends
    /// spill per row; crossing `compaction_threshold` triggers a staged
    /// compaction back into the contiguous base arena.
    postings: AppendableCsr,
    compaction_threshold: f64,
    compactions: u64,
}

impl Default for StreamingCorpus {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingCorpus {
    /// An empty accumulator with the default compaction policy.
    pub fn new() -> Self {
        Self::with_compaction_threshold(DEFAULT_COMPACTION_THRESHOLD)
    }

    /// An empty accumulator compacting postings when at least
    /// `threshold` of their values live in spill vectors.
    pub fn with_compaction_threshold(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "compaction threshold must be in [0, 1], got {threshold}"
        );
        Self {
            vocab: Vocabulary::new(),
            tokens: Vec::new(),
            term_sets: Vec::new(),
            postings: AppendableCsr::new(),
            compaction_threshold: threshold,
            compactions: 0,
        }
    }

    /// Number of ingested records.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The interning vocabulary (term ids are stable under appends).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The record's unfiltered sorted term set.
    pub fn term_set(&self, r: usize) -> &[TermId] {
        &self.term_sets[r]
    }

    /// Fraction of posting values currently living in spill vectors.
    pub fn spill_fraction(&self) -> f64 {
        self.postings.spill_fraction()
    }

    /// Staged compactions run so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Tokenizes, interns and indexes one record, returning its id.
    pub fn push_record(&mut self, text: &str) -> u32 {
        let r = self.tokens.len() as u32;
        let toks = self.vocab.intern_record(text);
        let mut set = toks.clone();
        set.sort_unstable();
        set.dedup();
        self.postings.ensure_rows(self.vocab.len());
        for &t in &set {
            self.postings.append(t.index(), r);
        }
        self.tokens.push(toks);
        self.term_sets.push(set);
        if self.postings.maybe_compact(self.compaction_threshold) {
            self.compactions += 1;
            er_obs::counter_add("streaming.postings_compactions", 1);
        }
        er_obs::gauge_set("streaming.postings_spill_fraction", self.spill_fraction());
        r
    }

    /// The frequent-term cap [`crate::CorpusBuilder::max_df_fraction`]
    /// resolves to at the current corpus size (clamped to ≥ 2, exactly
    /// like the batch builder).
    pub fn df_cap(&self, max_df_fraction: f64) -> u32 {
        ((max_df_fraction * self.len() as f64).floor() as u32).max(2)
    }

    /// Materializes the filtered [`Corpus`] the batch
    /// [`crate::CorpusBuilder`] would produce from the same texts in the
    /// same order with the same `max_df_fraction` — same vocabulary,
    /// token lists, term sets, postings and removed-term list.
    pub fn materialize(&self, max_df_fraction: f64) -> Corpus {
        assert!(
            (0.0..=1.0).contains(&max_df_fraction),
            "max_df_fraction must be in [0, 1], got {max_df_fraction}"
        );
        let _span = er_obs::span("streaming.materialize");
        let cap = self.df_cap(max_df_fraction);
        let mut removed_terms = Vec::new();
        let keep: Vec<bool> = (0..self.vocab.len())
            .map(|i| {
                let id = TermId(i as u32);
                let ok = self.vocab.doc_freq(id) <= cap;
                if !ok {
                    removed_terms.push(id);
                }
                ok
            })
            .collect();
        let filter = |list: &[TermId]| -> Vec<TermId> {
            list.iter().copied().filter(|t| keep[t.index()]).collect()
        };
        let tokens: Vec<Vec<TermId>> = self.tokens.iter().map(|t| filter(t)).collect();
        let term_sets: Vec<Vec<TermId>> = self.term_sets.iter().map(|s| filter(s)).collect();
        // A kept term's postings are exactly its unfiltered posting row:
        // ascending record ids of the records whose term set contains it.
        let inverted: Vec<Vec<u32>> = (0..self.vocab.len())
            .map(|t| {
                if keep[t] {
                    self.postings.row_to_vec(t)
                } else {
                    Vec::new()
                }
            })
            .collect();
        Corpus::from_parts(
            self.vocab.clone(),
            tokens,
            term_sets,
            inverted,
            removed_terms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    /// Field-by-field equality through the public accessors (Corpus has
    /// no `PartialEq` — this is the definition of "identical" we pin).
    fn assert_same(a: &Corpus, b: &Corpus) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.vocab_len(), b.vocab_len());
        for i in 0..a.vocab_len() {
            let t = TermId(i as u32);
            assert_eq!(a.vocab().term(t), b.vocab().term(t), "term {i}");
            assert_eq!(a.vocab().doc_freq(t), b.vocab().doc_freq(t), "df {i}");
            assert_eq!(a.postings(t), b.postings(t), "postings {i}");
        }
        for r in 0..a.len() {
            assert_eq!(a.tokens(r), b.tokens(r), "tokens {r}");
            assert_eq!(a.term_set(r), b.term_set(r), "term set {r}");
        }
        assert_eq!(a.removed_terms(), b.removed_terms());
    }

    fn texts() -> Vec<&'static str> {
        vec![
            "fenix at the argyle 8358 sunset blvd",
            "fenix 8358 sunset blvd west hollywood",
            "grill on the alley 9560 dayton way",
            "the grill alley 9560 dayton",
            "la la land sunset strip",
        ]
    }

    #[test]
    fn materialize_matches_batch_builder_at_every_prefix() {
        let mut s = StreamingCorpus::new();
        for (i, t) in texts().iter().enumerate() {
            assert_eq!(s.push_record(t), i as u32);
            let batch = CorpusBuilder::new()
                .extend_texts(texts()[..=i].iter().copied())
                .max_df_fraction(0.5)
                .build();
            assert_same(&s.materialize(0.5), &batch);
        }
    }

    #[test]
    fn df_cap_flips_terms_across_sizes() {
        // "the" appears in 3 of the first 4 records: kept while the cap
        // is ≥ 3, dropped when a growing corpus lowers... the fractional
        // cap grows with n, so instead pin the flip with a tight
        // fraction: cap(4 records, f=0.5) = 2 < 3 drops it; at f=0.9,
        // cap = 3 keeps it.
        let mut s = StreamingCorpus::new();
        for t in texts().iter().take(4) {
            s.push_record(t);
        }
        let the = s.vocab().get("the").unwrap();
        let strict = s.materialize(0.5);
        assert!(strict.postings(the).is_empty());
        assert!(strict.removed_terms().contains(&the));
        let loose = s.materialize(0.9);
        assert_eq!(loose.postings(the).len(), 3);
    }

    #[test]
    fn compaction_threshold_zero_compacts_every_push() {
        let mut s = StreamingCorpus::with_compaction_threshold(0.0);
        for t in texts() {
            s.push_record(t);
        }
        assert_eq!(s.compactions(), texts().len() as u64);
        assert_eq!(s.spill_fraction(), 0.0);
        let batch = CorpusBuilder::new()
            .extend_texts(texts())
            .max_df_fraction(0.5)
            .build();
        assert_same(&s.materialize(0.5), &batch);
    }

    #[test]
    fn compaction_threshold_one_never_compacts() {
        let mut s = StreamingCorpus::with_compaction_threshold(1.0);
        for t in texts() {
            s.push_record(t);
        }
        assert_eq!(s.compactions(), 0);
        assert!(s.spill_fraction() > 0.99, "{}", s.spill_fraction());
        let batch = CorpusBuilder::new()
            .extend_texts(texts())
            .max_df_fraction(0.5)
            .build();
        assert_same(&s.materialize(0.5), &batch);
    }

    #[test]
    fn empty_streaming_corpus_materializes_empty() {
        let s = StreamingCorpus::new();
        let c = s.materialize(0.5);
        assert!(c.is_empty());
        assert_eq!(c.vocab_len(), 0);
    }

    #[test]
    #[should_panic(expected = "compaction threshold")]
    fn out_of_range_threshold_rejected() {
        StreamingCorpus::with_compaction_threshold(1.5);
    }
}
