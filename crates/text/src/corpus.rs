//! A tokenized record corpus with frequent-term filtering and inverted
//! indexes — the data structure every algorithm in the framework consumes.
//!
//! §VII-A of the paper: *"we first tokenize the textual contents and then
//! remove the terms that are very frequent"*. The [`CorpusBuilder`] applies
//! that filter at build time so the bipartite graph, the baselines and the
//! feature extractors all see the same filtered term universe.

use crate::tokenize::{TermId, Vocabulary};

/// Immutable tokenized corpus.
///
/// Per record it stores both the **token list** (with duplicates, for term
/// frequency) and the **term set** (sorted, deduplicated, for set-based
/// similarity and the bipartite graph). An inverted index maps every term
/// to the sorted list of records containing it.
#[derive(Debug, Clone)]
pub struct Corpus {
    vocab: Vocabulary,
    tokens: Vec<Vec<TermId>>,
    term_sets: Vec<Vec<TermId>>,
    inverted: Vec<Vec<u32>>,
    removed_terms: Vec<TermId>,
}

impl Corpus {
    /// Assembles a corpus from already-filtered parts — the incremental
    /// materialization path ([`crate::streaming::StreamingCorpus`]).
    /// Callers guarantee the [`CorpusBuilder::build`] invariants: term
    /// sets sorted + deduplicated, postings sorted ascending, filtered
    /// terms with empty postings.
    pub(crate) fn from_parts(
        vocab: Vocabulary,
        tokens: Vec<Vec<TermId>>,
        term_sets: Vec<Vec<TermId>>,
        inverted: Vec<Vec<u32>>,
        removed_terms: Vec<TermId>,
    ) -> Self {
        debug_assert_eq!(tokens.len(), term_sets.len());
        debug_assert_eq!(inverted.len(), vocab.len());
        Self {
            vocab,
            tokens,
            term_sets,
            inverted,
            removed_terms,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the corpus holds no records.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of distinct terms in the vocabulary (including filtered ones).
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// The interning vocabulary (term strings and document frequencies).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Token list of record `r` (after frequent-term filtering), with
    /// duplicates and in original order.
    pub fn tokens(&self, r: usize) -> &[TermId] {
        &self.tokens[r]
    }

    /// Sorted, deduplicated term set of record `r`.
    pub fn term_set(&self, r: usize) -> &[TermId] {
        &self.term_sets[r]
    }

    /// Sorted record ids containing term `t` (empty for filtered terms).
    pub fn postings(&self, t: TermId) -> &[u32] {
        &self.inverted[t.index()]
    }

    /// Terms removed by the frequent-term filter at build time.
    pub fn removed_terms(&self) -> &[TermId] {
        &self.removed_terms
    }

    /// Document frequency of `t` **after** filtering (0 if removed).
    pub fn filtered_doc_freq(&self, t: TermId) -> u32 {
        self.inverted[t.index()].len() as u32
    }

    /// Terms shared by records `i` and `j` (sorted merge of the two term
    /// sets — O(|i| + |j|)).
    pub fn shared_terms(&self, i: usize, j: usize) -> Vec<TermId> {
        intersect_sorted(&self.term_sets[i], &self.term_sets[j])
    }

    /// Number of terms shared by records `i` and `j` without allocating.
    pub fn shared_term_count(&self, i: usize, j: usize) -> usize {
        count_intersect_sorted(&self.term_sets[i], &self.term_sets[j])
    }

    /// Iterates `(TermId, postings)` over terms that survived filtering and
    /// occur in at least `min_records` records.
    pub fn terms_with_min_df(&self, min_records: usize) -> impl Iterator<Item = (TermId, &[u32])> {
        self.inverted
            .iter()
            .enumerate()
            .filter(move |(_, recs)| recs.len() >= min_records)
            .map(|(i, recs)| (TermId(i as u32), recs.as_slice()))
    }
}

/// Intersection of two sorted, deduplicated slices.
pub fn intersect_sorted(a: &[TermId], b: &[TermId]) -> Vec<TermId> {
    let mut out = Vec::new();
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        match a[ia].cmp(&b[ib]) {
            std::cmp::Ordering::Less => ia += 1,
            std::cmp::Ordering::Greater => ib += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[ia]);
                ia += 1;
                ib += 1;
            }
        }
    }
    out
}

/// Size of the intersection of two sorted, deduplicated slices.
pub fn count_intersect_sorted(a: &[TermId], b: &[TermId]) -> usize {
    let mut n = 0;
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        match a[ia].cmp(&b[ib]) {
            std::cmp::Ordering::Less => ia += 1,
            std::cmp::Ordering::Greater => ib += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                ia += 1;
                ib += 1;
            }
        }
    }
    n
}

/// Builds a [`Corpus`] from raw record texts.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    texts: Vec<String>,
    max_df_fraction: Option<f64>,
    max_df_absolute: Option<u32>,
}

impl CorpusBuilder {
    /// Creates a builder with no frequent-term filtering.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one record's raw text.
    pub fn push_text(mut self, text: impl Into<String>) -> Self {
        self.texts.push(text.into());
        self
    }

    /// Adds many records' raw texts.
    pub fn extend_texts<I, S>(mut self, texts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.texts.extend(texts.into_iter().map(Into::into));
        self
    }

    /// Removes terms whose document frequency exceeds `fraction` of the
    /// corpus size (§VII-A's "very frequent" filter). A typical value for
    /// the benchmark datasets is `0.1`.
    pub fn max_df_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "max_df_fraction must be in [0, 1], got {fraction}"
        );
        self.max_df_fraction = Some(fraction);
        self
    }

    /// Removes terms occurring in more than `count` records. When both an
    /// absolute and a fractional cap are set, the stricter one wins.
    pub fn max_df_absolute(mut self, count: u32) -> Self {
        self.max_df_absolute = Some(count);
        self
    }

    /// Tokenizes, interns, filters and indexes all records.
    pub fn build(self) -> Corpus {
        let mut vocab = Vocabulary::new();
        let mut tokens: Vec<Vec<TermId>> = Vec::with_capacity(self.texts.len());
        for text in &self.texts {
            tokens.push(vocab.intern_record(text));
        }
        let n = tokens.len();

        let mut cap = u32::MAX;
        if let Some(f) = self.max_df_fraction {
            // Clamp the fraction-derived cap to at least 2: a term must
            // appear in two records to form any candidate pair, so caps
            // below 2 would silently empty tiny corpora.
            cap = cap.min(((f * n as f64).floor() as u32).max(2));
        }
        if let Some(c) = self.max_df_absolute {
            cap = cap.min(c);
        }

        let mut removed_terms = Vec::new();
        let keep: Vec<bool> = (0..vocab.len())
            .map(|i| {
                let id = TermId(i as u32);
                let ok = vocab.doc_freq(id) <= cap;
                if !ok {
                    removed_terms.push(id);
                }
                ok
            })
            .collect();

        let mut term_sets: Vec<Vec<TermId>> = Vec::with_capacity(n);
        let mut inverted: Vec<Vec<u32>> = vec![Vec::new(); vocab.len()];
        for (r, toks) in tokens.iter_mut().enumerate() {
            toks.retain(|t| keep[t.index()]);
            let mut set = toks.clone();
            set.sort_unstable();
            set.dedup();
            for &t in &set {
                inverted[t.index()].push(r as u32);
            }
            term_sets.push(set);
        }

        Corpus {
            vocab,
            tokens,
            term_sets,
            inverted,
            removed_terms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        CorpusBuilder::new()
            .push_text("fenix at the argyle 8358 sunset blvd")
            .push_text("fenix 8358 sunset blvd west hollywood")
            .push_text("grill on the alley 9560 dayton way")
            .build()
    }

    #[test]
    fn shared_terms_are_symmetric_and_correct() {
        let c = small_corpus();
        let s01 = c.shared_terms(0, 1);
        let s10 = c.shared_terms(1, 0);
        assert_eq!(s01, s10);
        let names: Vec<&str> = s01.iter().map(|&t| c.vocab().term(t)).collect();
        assert_eq!(names, vec!["fenix", "8358", "sunset", "blvd"]);
        assert_eq!(c.shared_term_count(0, 1), 4);
    }

    #[test]
    fn postings_are_sorted_record_ids() {
        let c = small_corpus();
        let fenix = c.vocab().get("fenix").unwrap();
        assert_eq!(c.postings(fenix), &[0, 1]);
        let the = c.vocab().get("the").unwrap();
        assert_eq!(c.postings(the), &[0, 2]);
    }

    #[test]
    fn frequent_term_filter_drops_common_terms() {
        let c = CorpusBuilder::new()
            .push_text("common alpha")
            .push_text("common beta")
            .push_text("common gamma")
            .push_text("common delta")
            .max_df_fraction(0.5)
            .build();
        let common = c.vocab().get("common").unwrap();
        assert!(
            c.postings(common).is_empty(),
            "filtered term has no postings"
        );
        assert_eq!(c.removed_terms(), &[common]);
        assert!(c.term_set(0).iter().all(|&t| t != common));
        assert_eq!(c.filtered_doc_freq(common), 0);
    }

    #[test]
    fn absolute_cap_composes_with_fraction() {
        let c = CorpusBuilder::new()
            .extend_texts(["x a", "x b", "x c", "y d", "y e"])
            .max_df_absolute(2)
            .build();
        let x = c.vocab().get("x").unwrap();
        let y = c.vocab().get("y").unwrap();
        assert!(c.postings(x).is_empty());
        assert_eq!(c.postings(y).len(), 2);
    }

    #[test]
    fn duplicate_tokens_kept_in_token_list_not_term_set() {
        let c = CorpusBuilder::new().push_text("la la land").build();
        assert_eq!(c.tokens(0).len(), 3);
        assert_eq!(c.term_set(0).len(), 2);
    }

    #[test]
    fn terms_with_min_df_filters() {
        let c = small_corpus();
        let multi: Vec<&str> = c
            .terms_with_min_df(2)
            .map(|(t, _)| c.vocab().term(t))
            .collect();
        assert!(multi.contains(&"fenix"));
        assert!(multi.contains(&"the"));
        assert!(!multi.contains(&"argyle"));
    }

    #[test]
    fn intersect_helpers_edge_cases() {
        assert!(intersect_sorted(&[], &[TermId(1)]).is_empty());
        assert_eq!(count_intersect_sorted(&[TermId(1)], &[TermId(1)]), 1);
        let a = [TermId(1), TermId(3), TermId(5)];
        let b = [TermId(2), TermId(3), TermId(6)];
        assert_eq!(intersect_sorted(&a, &b), vec![TermId(3)]);
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().build();
        assert!(c.is_empty());
        assert_eq!(c.vocab_len(), 0);
    }
}
