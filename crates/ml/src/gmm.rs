//! Two-component Gaussian mixture fitted by EM — the unsupervised
//! generative baseline ("Gaussian Mixture Model \[5\]" row).
//!
//! Fellegi–Sunter record linkage models the pair-score distribution as a
//! mixture of a "match" and a "non-match" component and assigns each
//! pair to the component with higher responsibility — no labels needed.
//! Here both components are diagonal-covariance Gaussians over the pair
//! feature vector; the component whose mean has the larger feature sum
//! is designated the match component.

use crate::Classifier;

/// Diagonal-covariance two-component Gaussian mixture.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    weight: [f64; 2],
    mean: [Vec<f64>; 2],
    var: [Vec<f64>; 2],
    /// Index (0/1) of the component representing matches.
    match_component: usize,
}

const VAR_FLOOR: f64 = 1e-6;

impl GaussianMixture {
    /// Fits by EM with a deterministic quantile initialization: samples
    /// are sorted by feature sum and the top/bottom halves seed the two
    /// components.
    pub fn fit(samples: &[Vec<f64>], iterations: usize) -> Self {
        assert!(
            samples.len() >= 4,
            "need at least 4 samples to fit a mixture"
        );
        let d = samples[0].len();
        // Deterministic init from the feature-sum ordering.
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let sums: Vec<f64> = samples.iter().map(|s| s.iter().sum()).collect();
        order.sort_by(|&a, &b| sums[a].partial_cmp(&sums[b]).expect("finite features"));
        let half = samples.len() / 2;
        let mut model = Self {
            weight: [0.5, 0.5],
            mean: [
                mean_of(samples, &order[..half]),
                mean_of(samples, &order[half..]),
            ],
            var: [vec![0.05; d], vec![0.05; d]],
            match_component: 1,
        };

        let mut resp = vec![0.0f64; samples.len()]; // responsibility of comp 1
        let ln_2pi = (2.0 * std::f64::consts::PI).ln();
        for _ in 0..iterations {
            // E-step. The weight and variance logs are constant across
            // the sample loop — hoisting them reproduces `log_density`'s
            // exact terms and addition order, just without recomputing
            // `ln` per sample.
            let ln_w = [model.weight[0].ln(), model.weight[1].ln()];
            let ln_var: [Vec<f64>; 2] = [
                model.var[0].iter().map(|v| v.ln()).collect(),
                model.var[1].iter().map(|v| v.ln()).collect(),
            ];
            let log_density_cached = |c: usize, x: &[f64]| -> f64 {
                let mut ll = 0.0;
                let dims = x.iter().zip(&model.mean[c]).zip(&model.var[c]);
                for (((&xi, &m), &v), &lv) in dims.zip(&ln_var[c]) {
                    ll += -0.5 * ((xi - m) * (xi - m) / v + lv + ln_2pi);
                }
                ll
            };
            for (i, x) in samples.iter().enumerate() {
                let l0 = ln_w[0] + log_density_cached(0, x);
                let l1 = ln_w[1] + log_density_cached(1, x);
                let m = l0.max(l1);
                let e0 = (l0 - m).exp();
                let e1 = (l1 - m).exp();
                resp[i] = e1 / (e0 + e1);
            }
            // M-step.
            let n1: f64 = resp.iter().sum();
            let n0 = samples.len() as f64 - n1;
            if n0 < 1e-9 || n1 < 1e-9 {
                break; // degenerate: one component absorbed everything
            }
            model.weight = [n0 / samples.len() as f64, n1 / samples.len() as f64];
            for c in 0..2 {
                let mut mean = vec![0.0; d];
                for (x, &r) in samples.iter().zip(&resp) {
                    let w = if c == 1 { r } else { 1.0 - r };
                    for (m, &xi) in mean.iter_mut().zip(x) {
                        *m += w * xi;
                    }
                }
                let nc = if c == 1 { n1 } else { n0 };
                for m in &mut mean {
                    *m /= nc;
                }
                let mut var = vec![0.0; d];
                for (x, &r) in samples.iter().zip(&resp) {
                    let w = if c == 1 { r } else { 1.0 - r };
                    for ((v, &xi), &m) in var.iter_mut().zip(x).zip(&mean) {
                        *v += w * (xi - m) * (xi - m);
                    }
                }
                for v in &mut var {
                    *v = (*v / nc).max(VAR_FLOOR);
                }
                model.mean[c] = mean;
                model.var[c] = var;
            }
        }
        // The match component is the one whose mean similarity is higher.
        let sum0: f64 = model.mean[0].iter().sum();
        let sum1: f64 = model.mean[1].iter().sum();
        model.match_component = usize::from(sum1 >= sum0);
        model
    }

    fn log_density(&self, c: usize, x: &[f64]) -> f64 {
        let mut ll = 0.0;
        for ((&xi, &m), &v) in x.iter().zip(&self.mean[c]).zip(&self.var[c]) {
            ll += -0.5 * ((xi - m) * (xi - m) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }
}

impl Classifier for GaussianMixture {
    fn predict_proba(&self, features: &[f64]) -> f64 {
        let lm = self.weight[self.match_component].ln()
            + self.log_density(self.match_component, features);
        let other = 1 - self.match_component;
        let ln = self.weight[other].ln() + self.log_density(other, features);
        let m = lm.max(ln);
        let em = (lm - m).exp();
        let en = (ln - m).exp();
        em / (em + en)
    }
}

fn mean_of(samples: &[Vec<f64>], idx: &[usize]) -> Vec<f64> {
    let d = samples[0].len();
    let mut mean = vec![0.0; d];
    for &i in idx {
        for (m, &v) in mean.iter_mut().zip(&samples[i]) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= idx.len().max(1) as f64;
    }
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bimodal 1-D data: non-matches around 0.1, matches around 0.9.
    fn bimodal() -> Vec<Vec<f64>> {
        let mut x = Vec::new();
        for i in 0..50 {
            x.push(vec![0.1 + (i % 10) as f64 * 0.01]);
        }
        for i in 0..10 {
            x.push(vec![0.85 + (i % 5) as f64 * 0.02]);
        }
        x
    }

    #[test]
    fn discovers_the_match_mode_without_labels() {
        let m = GaussianMixture::fit(&bimodal(), 50);
        assert!(m.predict(&[0.9]));
        assert!(!m.predict(&[0.12]));
        assert!(m.predict_proba(&[0.95]) > 0.9);
        assert!(m.predict_proba(&[0.1]) < 0.1);
    }

    #[test]
    fn mixture_weights_reflect_mode_sizes() {
        let m = GaussianMixture::fit(&bimodal(), 50);
        let match_weight = m.weight[m.match_component];
        assert!(
            (0.05..0.4).contains(&match_weight),
            "matches are the minority mode: {match_weight}"
        );
    }

    #[test]
    fn deterministic() {
        let a = GaussianMixture::fit(&bimodal(), 30);
        let b = GaussianMixture::fit(&bimodal(), 30);
        assert_eq!(a.mean, b.mean);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn too_few_samples_rejected() {
        GaussianMixture::fit(&[vec![1.0]], 5);
    }
}
