//! Feature standardization (zero mean, unit variance).

/// Per-feature standardizer fitted on a training matrix.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits on row-major samples. Constant features get `std = 1` so they
    /// pass through as zeros rather than NaN.
    pub fn fit(samples: &[Vec<f64>]) -> Self {
        assert!(!samples.is_empty(), "cannot fit a scaler on no samples");
        let d = samples[0].len();
        let n = samples.len() as f64;
        let mut mean = vec![0.0; d];
        for s in samples {
            assert_eq!(s.len(), d, "ragged feature matrix");
            for (m, v) in mean.iter_mut().zip(s) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for s in samples {
            for ((v, &x), &m) in var.iter_mut().zip(s).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { mean, std }
    }

    /// Standardizes one sample in place.
    pub fn transform_in_place(&self, sample: &mut [f64]) {
        assert_eq!(sample.len(), self.mean.len(), "dimension mismatch");
        for ((x, &m), &s) in sample.iter_mut().zip(&self.mean).zip(&self.std) {
            *x = (*x - m) / s;
        }
    }

    /// Standardizes a sample, returning a new vector.
    pub fn transform(&self, sample: &[f64]) -> Vec<f64> {
        let mut out = sample.to_vec();
        self.transform_in_place(&mut out);
        out
    }

    /// Standardizes a whole matrix.
    pub fn transform_all(&self, samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
        samples.iter().map(|s| self.transform(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let data = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let sc = StandardScaler::fit(&data);
        let t = sc.transform_all(&data);
        for d in 0..2 {
            let mean: f64 = t.iter().map(|r| r[d]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| r[d] * r[d]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let data = vec![vec![5.0], vec![5.0]];
        let sc = StandardScaler::fit(&data);
        assert_eq!(sc.transform(&[5.0]), vec![0.0]);
        assert_eq!(sc.transform(&[7.0]), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_fit_rejected() {
        StandardScaler::fit(&[]);
    }
}
