//! Gaussian naive Bayes.

use crate::Classifier;

/// Gaussian naive Bayes: per-class, per-feature normal densities with a
/// variance floor for numerical stability.
#[derive(Debug, Clone)]
pub struct GaussianNaiveBayes {
    prior_pos: f64,
    mean: [Vec<f64>; 2],
    var: [Vec<f64>; 2],
}

const VAR_FLOOR: f64 = 1e-6;

impl GaussianNaiveBayes {
    /// Fits on row-major samples with boolean labels. Both classes must
    /// be present.
    pub fn fit(samples: &[Vec<f64>], labels: &[bool]) -> Self {
        assert_eq!(
            samples.len(),
            labels.len(),
            "samples and labels must be parallel"
        );
        assert!(!samples.is_empty(), "cannot fit on no samples");
        let d = samples[0].len();
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "need samples of both classes");
        let mut mean = [vec![0.0; d], vec![0.0; d]];
        for (x, &l) in samples.iter().zip(labels) {
            let c = usize::from(l);
            for (m, &v) in mean[c].iter_mut().zip(x) {
                *m += v;
            }
        }
        for (c, count) in [(0usize, n_neg), (1, n_pos)] {
            for m in &mut mean[c] {
                *m /= count as f64;
            }
        }
        let mut var = [vec![0.0; d], vec![0.0; d]];
        for (x, &l) in samples.iter().zip(labels) {
            let c = usize::from(l);
            for ((v, &xi), &m) in var[c].iter_mut().zip(x).zip(&mean[c]) {
                *v += (xi - m) * (xi - m);
            }
        }
        for (c, count) in [(0usize, n_neg), (1, n_pos)] {
            for v in &mut var[c] {
                *v = (*v / count as f64).max(VAR_FLOOR);
            }
        }
        Self {
            prior_pos: n_pos as f64 / labels.len() as f64,
            mean,
            var,
        }
    }

    fn log_likelihood(&self, class: usize, x: &[f64]) -> f64 {
        let mut ll = 0.0;
        for ((&xi, &m), &v) in x.iter().zip(&self.mean[class]).zip(&self.var[class]) {
            ll += -0.5 * ((xi - m) * (xi - m) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }
}

impl Classifier for GaussianNaiveBayes {
    fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.mean[0].len(), "dimension mismatch");
        let lp = self.log_likelihood(1, features) + self.prior_pos.ln();
        let ln = self.log_likelihood(0, features) + (1.0 - self.prior_pos).ln();
        // Stable softmax over two log-scores.
        let m = lp.max(ln);
        let ep = (lp - m).exp();
        let en = (ln - m).exp();
        ep / (ep + en)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blobs() -> (Vec<Vec<f64>>, Vec<bool>) {
        // Two 1-D blobs around 0.2 and 0.8 with a small deterministic jitter.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let jitter = (i % 7) as f64 * 0.01;
            x.push(vec![0.2 + jitter]);
            y.push(false);
            x.push(vec![0.8 - jitter]);
            y.push(true);
        }
        (x, y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = gaussian_blobs();
        let m = GaussianNaiveBayes::fit(&x, &y);
        assert!(m.predict(&[0.85]));
        assert!(!m.predict(&[0.15]));
        assert!(m.predict_proba(&[0.9]) > 0.95);
        assert!(m.predict_proba(&[0.1]) < 0.05);
    }

    #[test]
    fn proba_monotone_between_means() {
        let (x, y) = gaussian_blobs();
        let m = GaussianNaiveBayes::fit(&x, &y);
        let p1 = m.predict_proba(&[0.4]);
        let p2 = m.predict_proba(&[0.6]);
        assert!(p2 > p1);
    }

    #[test]
    fn prior_reflects_imbalance() {
        let x = vec![vec![0.1], vec![0.2], vec![0.3], vec![0.9]];
        let y = vec![false, false, false, true];
        let m = GaussianNaiveBayes::fit(&x, &y);
        assert!((m.prior_pos - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        GaussianNaiveBayes::fit(&[vec![1.0]], &[true]);
    }
}
