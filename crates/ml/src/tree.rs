//! CART-style decision tree classifier.
//!
//! The learning-to-match literature the paper cites (\[18\] "learning
//! object identification rules") uses decision trees over similarity
//! features — the rules are human-readable ("if TF-IDF cosine > 0.4 and
//! Jaccard > 0.2 then match"). This is a small axis-aligned CART with
//! Gini impurity, depth/leaf limits, and probability leaves.

use crate::Classifier;

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_split: 8,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Fraction of positives among the training samples at the leaf.
        probability: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,  // feature < threshold
        right: Box<Node>, // feature >= threshold
    },
}

/// A trained CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on row-major samples with boolean labels.
    pub fn fit(samples: &[Vec<f64>], labels: &[bool], config: &TreeConfig) -> Self {
        assert_eq!(
            samples.len(),
            labels.len(),
            "samples and labels must be parallel"
        );
        assert!(!samples.is_empty(), "cannot fit on no samples");
        let n_features = samples[0].len();
        let idx: Vec<usize> = (0..samples.len()).collect();
        let root = build(samples, labels, &idx, config, 0);
        Self { root, n_features }
    }

    /// Number of leaves (a size/interpretability measure).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

impl Classifier for DecisionTree {
    fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { probability } => return *probability,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] < *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

fn build(
    samples: &[Vec<f64>],
    labels: &[bool],
    idx: &[usize],
    config: &TreeConfig,
    depth: usize,
) -> Node {
    let positives = idx.iter().filter(|&&i| labels[i]).count();
    let probability = positives as f64 / idx.len() as f64;
    if depth >= config.max_depth
        || idx.len() < config.min_samples_split
        || positives == 0
        || positives == idx.len()
    {
        return Node::Leaf { probability };
    }
    match best_split(samples, labels, idx) {
        None => Node::Leaf { probability },
        Some((feature, threshold)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| samples[i][feature] < threshold);
            if left_idx.is_empty() || right_idx.is_empty() {
                return Node::Leaf { probability };
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(samples, labels, &left_idx, config, depth + 1)),
                right: Box::new(build(samples, labels, &right_idx, config, depth + 1)),
            }
        }
    }
}

/// Finds the `(feature, threshold)` minimizing weighted Gini impurity, or
/// `None` when no split improves on the parent.
#[allow(clippy::needless_range_loop)]
fn best_split(samples: &[Vec<f64>], labels: &[bool], idx: &[usize]) -> Option<(usize, f64)> {
    let n = idx.len() as f64;
    let total_pos = idx.iter().filter(|&&i| labels[i]).count() as f64;
    let parent_gini = gini(total_pos, n);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gini)
    let n_features = samples[idx[0]].len();
    for f in 0..n_features {
        // Sort sample indices by this feature.
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| {
            samples[a][f]
                .partial_cmp(&samples[b][f])
                .expect("finite features")
        });
        let mut left_pos = 0.0f64;
        for k in 1..order.len() {
            left_pos += f64::from(labels[order[k - 1]]);
            let (lo, hi) = (samples[order[k - 1]][f], samples[order[k]][f]);
            if lo == hi {
                continue; // cannot split inside a tie group
            }
            let left_n = k as f64;
            let right_n = n - left_n;
            let right_pos = total_pos - left_pos;
            let weighted =
                (left_n / n) * gini(left_pos, left_n) + (right_n / n) * gini(right_pos, right_n);
            if best.as_ref().is_none_or(|&(_, _, g)| weighted < g) {
                best = Some((f, (lo + hi) / 2.0, weighted));
            }
        }
    }
    best.filter(|&(_, _, g)| g + 1e-12 < parent_gini)
        .map(|(f, t, _)| (f, t))
}

fn gini(positives: f64, total: f64) -> f64 {
    if total == 0.0 {
        return 0.0;
    }
    let p = positives / total;
    2.0 * p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-ish data no linear model can fit, trees can.
    fn xor_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let (a, b) = (i as f64 / 10.0, j as f64 / 10.0);
                x.push(vec![a, b]);
                y.push((a > 0.5) != (b > 0.5));
            }
        }
        (x, y)
    }

    #[test]
    fn fits_xor() {
        let (x, y) = xor_data();
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| tree.predict(xi) == yi)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "{correct}/100");
    }

    #[test]
    fn respects_depth_limit() {
        let (x, y) = xor_data();
        let stump = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig {
                max_depth: 1,
                min_samples_split: 2,
            },
        );
        assert!(stump.depth() <= 1);
        assert!(stump.leaf_count() <= 2);
    }

    #[test]
    fn pure_leaves_give_confident_probabilities() {
        let x = vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]];
        let y = vec![false, false, true, true];
        let tree = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig {
                max_depth: 3,
                min_samples_split: 2,
            },
        );
        assert_eq!(tree.predict_proba(&[0.05]), 0.0);
        assert_eq!(tree.predict_proba(&[0.95]), 1.0);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        let y = vec![true, false, true, false];
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn deterministic() {
        let (x, y) = xor_data();
        let a = DecisionTree::fit(&x, &y, &TreeConfig::default());
        let b = DecisionTree::fit(&x, &y, &TreeConfig::default());
        for xi in &x {
            assert_eq!(a.predict_proba(xi), b.predict_proba(xi));
        }
    }
}
