//! Linear SVM trained with Pegasos (primal estimated sub-gradient).
//!
//! Stands in for the "SVM \[6\]" row of Table II. Pegasos optimizes the
//! hinge loss `λ/2 ‖w‖² + mean(max(0, 1 − y·(w·x + b)))` with the step
//! schedule `η_t = 1/(λ t)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Classifier;

/// L2-regularized linear SVM.
#[derive(Debug, Clone)]
pub struct PegasosSvm {
    weights: Vec<f64>,
    bias: f64,
    /// Regularization strength λ.
    pub lambda: f64,
    /// Number of sub-gradient steps.
    pub steps: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl PegasosSvm {
    /// Creates an untrained model with sensible defaults.
    pub fn new() -> Self {
        Self {
            weights: Vec::new(),
            bias: 0.0,
            lambda: 1e-3,
            steps: 20_000,
            seed: 0x5FA,
        }
    }

    /// Fits on row-major samples with boolean labels.
    pub fn fit(&mut self, samples: &[Vec<f64>], labels: &[bool]) {
        assert_eq!(
            samples.len(),
            labels.len(),
            "samples and labels must be parallel"
        );
        assert!(!samples.is_empty(), "cannot fit on no samples");
        let d = samples[0].len();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        for t in 1..=self.steps {
            let idx = rng.random_range(0..samples.len());
            let x = &samples[idx];
            let y = if labels[idx] { 1.0 } else { -1.0 };
            let eta = 1.0 / (self.lambda * t as f64);
            let margin = y * (dot(&self.weights, x) + self.bias);
            // w ← (1 − η λ) w [+ η y x when the margin is violated]
            let shrink = 1.0 - eta * self.lambda;
            for w in &mut self.weights {
                *w *= shrink;
            }
            if margin < 1.0 {
                for (w, &xi) in self.weights.iter_mut().zip(x) {
                    *w += eta * y * xi;
                }
                self.bias += eta * y * 0.1; // unregularized, damped bias
            }
        }
    }

    /// The raw decision margin `w·x + b`.
    pub fn decision(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "dimension mismatch (untrained?)"
        );
        dot(&self.weights, features) + self.bias
    }
}

impl Default for PegasosSvm {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for PegasosSvm {
    fn predict_proba(&self, features: &[f64]) -> f64 {
        // Squash the margin so the trait's 0.5 threshold matches the
        // margin-0 decision boundary.
        1.0 / (1.0 + (-self.decision(features)).exp())
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let v = i as f64 / 60.0;
            x.push(vec![v, v * 0.5]);
            y.push(v > 0.5);
        }
        (x, y)
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = separable();
        let mut m = PegasosSvm::new();
        m.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| m.predict(xi) == yi)
            .count();
        assert!(correct >= 55, "{correct}/60");
    }

    #[test]
    fn margins_are_monotone_in_evidence() {
        let (x, y) = separable();
        let mut m = PegasosSvm::new();
        m.fit(&x, &y);
        assert!(m.decision(&[0.95, 0.45]) > m.decision(&[0.05, 0.02]));
    }

    #[test]
    fn deterministic() {
        let (x, y) = separable();
        let mut a = PegasosSvm::new();
        let mut b = PegasosSvm::new();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.weights, b.weights);
    }
}
