//! Labelled-pair sampling for the supervised baselines.
//!
//! The paper's critique of supervised methods (§I): they need labelled
//! training pairs, and the extreme match/non-match imbalance makes the
//! sampling ratio itself a tuning problem. This module reproduces the
//! standard protocol — a train/test split over candidate pairs with
//! negatives subsampled to a fixed ratio against positives.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A labelled candidate-pair sample.
#[derive(Debug, Clone)]
pub struct LabelledPairs {
    /// Pair indices (into the candidate list) chosen for training.
    pub train: Vec<usize>,
    /// The remaining pair indices, used for evaluation.
    pub test: Vec<usize>,
}

/// Splits candidate pairs into a balanced training sample and a test
/// remainder.
///
/// * `labels[i]` — ground truth for candidate pair `i`.
/// * `train_fraction` — fraction of *positives* used for training
///   (e.g. 0.5).
/// * `negative_ratio` — negatives sampled per training positive
///   (e.g. 3.0).
///
/// Pairs not selected for training (including all unsampled negatives)
/// form the test set, so test-time evaluation still faces the true
/// imbalance.
pub fn balanced_split(
    labels: &[bool],
    train_fraction: f64,
    negative_ratio: f64,
    seed: u64,
) -> LabelledPairs {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train_fraction in [0,1]"
    );
    assert!(negative_ratio >= 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut positives: Vec<usize> = Vec::new();
    let mut negatives: Vec<usize> = Vec::new();
    for (i, &l) in labels.iter().enumerate() {
        if l {
            positives.push(i);
        } else {
            negatives.push(i);
        }
    }
    shuffle(&mut rng, &mut positives);
    shuffle(&mut rng, &mut negatives);
    let n_pos_train = ((positives.len() as f64) * train_fraction).round() as usize;
    let n_neg_train = ((n_pos_train as f64) * negative_ratio).round() as usize;
    let n_neg_train = n_neg_train.min(negatives.len());

    let mut train: Vec<usize> = positives[..n_pos_train].to_vec();
    train.extend_from_slice(&negatives[..n_neg_train]);
    train.sort_unstable();
    let in_train: std::collections::HashSet<usize> = train.iter().copied().collect();
    let test: Vec<usize> = (0..labels.len())
        .filter(|i| !in_train.contains(i))
        .collect();
    LabelledPairs { train, test }
}

fn shuffle(rng: &mut SmallRng, v: &mut [usize]) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<bool> {
        let mut l = vec![false; 100];
        for i in 0..10 {
            l[i * 10] = true;
        }
        l
    }

    #[test]
    fn respects_ratios() {
        let l = labels();
        let split = balanced_split(&l, 0.5, 3.0, 7);
        let pos_train = split.train.iter().filter(|&&i| l[i]).count();
        let neg_train = split.train.len() - pos_train;
        assert_eq!(pos_train, 5);
        assert_eq!(neg_train, 15);
    }

    #[test]
    fn train_and_test_partition_everything() {
        let l = labels();
        let split = balanced_split(&l, 0.5, 3.0, 7);
        let mut all: Vec<usize> = split.train.iter().chain(&split.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn test_set_keeps_imbalance() {
        let l = labels();
        let split = balanced_split(&l, 0.5, 3.0, 7);
        let pos_test = split.test.iter().filter(|&&i| l[i]).count();
        let neg_test = split.test.len() - pos_test;
        assert_eq!(pos_test, 5);
        assert!(neg_test > 10 * pos_test, "test negatives dominate");
    }

    #[test]
    fn negative_ratio_capped_by_supply() {
        let l = vec![true, true, false];
        let split = balanced_split(&l, 1.0, 10.0, 1);
        let neg_train = split.train.iter().filter(|&&i| !l[i]).count();
        assert_eq!(neg_train, 1);
    }

    #[test]
    fn deterministic() {
        let l = labels();
        let a = balanced_split(&l, 0.4, 2.0, 42);
        let b = balanced_split(&l, 0.4, 2.0, 42);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }
}
