//! Logistic regression via mini-batch stochastic gradient descent.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Classifier;

/// L2-regularized logistic regression.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl LogisticRegression {
    /// Creates an untrained model with sensible defaults.
    pub fn new() -> Self {
        Self {
            weights: Vec::new(),
            bias: 0.0,
            learning_rate: 0.1,
            l2: 1e-4,
            epochs: 60,
            seed: 0x109,
        }
    }

    /// Fits on row-major samples with boolean labels.
    pub fn fit(&mut self, samples: &[Vec<f64>], labels: &[bool]) {
        assert_eq!(
            samples.len(),
            labels.len(),
            "samples and labels must be parallel"
        );
        assert!(!samples.is_empty(), "cannot fit on no samples");
        let d = samples[0].len();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        for epoch in 0..self.epochs {
            // Fisher-Yates shuffle per epoch.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let lr = self.learning_rate / (1.0 + epoch as f64 * 0.1);
            for &idx in &order {
                let x = &samples[idx];
                let y = if labels[idx] { 1.0 } else { 0.0 };
                let p = sigmoid(dot(&self.weights, x) + self.bias);
                let err = p - y;
                for (w, &xi) in self.weights.iter_mut().zip(x) {
                    *w -= lr * (err * xi + self.l2 * *w);
                }
                self.bias -= lr * err;
            }
        }
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for LogisticRegression {
    fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "dimension mismatch (untrained?)"
        );
        sigmoid(dot(&self.weights, features) + self.bias)
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = i as f64 / 40.0;
            x.push(vec![v, 1.0 - v]);
            y.push(v > 0.5);
        }
        (x, y)
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = separable();
        let mut m = LogisticRegression::new();
        m.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| m.predict(xi) == yi)
            .count();
        assert!(correct >= 38, "{correct}/40");
    }

    #[test]
    fn probabilities_ordered_with_evidence() {
        let (x, y) = separable();
        let mut m = LogisticRegression::new();
        m.fit(&x, &y);
        assert!(m.predict_proba(&[0.9, 0.1]) > m.predict_proba(&[0.1, 0.9]));
        let p = m.predict_proba(&[0.9, 0.1]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = separable();
        let mut a = LogisticRegression::new();
        let mut b = LogisticRegression::new();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_labels_rejected() {
        LogisticRegression::new().fit(&[vec![1.0]], &[]);
    }
}
