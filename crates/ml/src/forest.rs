//! Random forest — bagged decision trees with feature subsampling.
//!
//! The natural upgrade of the single-tree matcher of \[18\]: each tree is
//! fitted on a bootstrap sample of the training pairs with a random
//! subset of the similarity features per tree, and the forest averages
//! the leaf probabilities. Deterministic under a fixed seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree settings.
    pub tree: TreeConfig,
    /// Features sampled per tree (0 = `sqrt(d)` rounded up).
    pub features_per_tree: usize,
    /// Bagging / feature-sampling seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 25,
            tree: TreeConfig::default(),
            features_per_tree: 0,
            seed: 0xF0123,
        }
    }
}

/// A trained random forest.
#[derive(Debug)]
pub struct RandomForest {
    trees: Vec<(DecisionTree, Vec<usize>)>,
    n_features: usize,
}

impl RandomForest {
    /// Fits the forest on row-major samples with boolean labels.
    pub fn fit(samples: &[Vec<f64>], labels: &[bool], config: &ForestConfig) -> Self {
        assert_eq!(
            samples.len(),
            labels.len(),
            "samples and labels must be parallel"
        );
        assert!(!samples.is_empty(), "cannot fit on no samples");
        assert!(config.n_trees >= 1, "need at least one tree");
        let d = samples[0].len();
        let k = if config.features_per_tree == 0 {
            (d as f64).sqrt().ceil() as usize
        } else {
            config.features_per_tree.min(d)
        };
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            // Bootstrap sample of row indices.
            let rows: Vec<usize> = (0..samples.len())
                .map(|_| rng.random_range(0..samples.len()))
                .collect();
            // Random feature subset (sorted for determinism of projection).
            let mut features: Vec<usize> = (0..d).collect();
            for i in (1..features.len()).rev() {
                let j = rng.random_range(0..=i);
                features.swap(i, j);
            }
            features.truncate(k);
            features.sort_unstable();
            // Project the bootstrap sample onto the feature subset.
            let proj: Vec<Vec<f64>> = rows
                .iter()
                .map(|&r| features.iter().map(|&f| samples[r][f]).collect())
                .collect();
            let proj_labels: Vec<bool> = rows.iter().map(|&r| labels[r]).collect();
            // A bootstrap draw can be single-class; the tree handles it
            // with a constant leaf.
            let tree = DecisionTree::fit(&proj, &proj_labels, &config.tree);
            trees.push((tree, features));
        }
        Self {
            trees,
            n_features: d,
        }
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when the forest has no trees (never after `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Classifier for RandomForest {
    fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "dimension mismatch");
        let mut sum = 0.0;
        let mut buf = Vec::new();
        for (tree, subset) in &self.trees {
            buf.clear();
            buf.extend(subset.iter().map(|&f| features[f]));
            sum += tree.predict_proba(&buf);
        }
        sum / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let (a, b) = (i as f64 / 12.0, j as f64 / 12.0);
                // Two informative features plus two noise features.
                x.push(vec![
                    a,
                    b,
                    (i * 7 % 12) as f64 / 12.0,
                    (j * 5 % 12) as f64 / 12.0,
                ]);
                y.push((a > 0.5) != (b > 0.5));
            }
        }
        (x, y)
    }

    #[test]
    fn forest_fits_nonlinear_data() {
        let (x, y) = xor_data();
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default());
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| forest.predict(xi) == yi)
            .count();
        assert!(
            correct as f64 / x.len() as f64 > 0.85,
            "{correct}/{}",
            x.len()
        );
    }

    #[test]
    fn probabilities_are_averages() {
        let (x, y) = xor_data();
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default());
        let p = forest.predict_proba(&x[0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = xor_data();
        let a = RandomForest::fit(&x, &y, &ForestConfig::default());
        let b = RandomForest::fit(&x, &y, &ForestConfig::default());
        for xi in x.iter().take(20) {
            assert_eq!(a.predict_proba(xi), b.predict_proba(xi));
        }
    }

    #[test]
    fn feature_subsampling_respected() {
        let (x, y) = xor_data();
        let forest = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                features_per_tree: 2,
                ..Default::default()
            },
        );
        assert_eq!(forest.len(), 25);
        for (_, subset) in &forest.trees {
            assert_eq!(subset.len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        RandomForest::fit(
            &[vec![1.0]],
            &[true],
            &ForestConfig {
                n_trees: 0,
                ..Default::default()
            },
        );
    }
}
