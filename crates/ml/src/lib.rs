//! # er-ml
//!
//! Supervised and probabilistic learning baselines standing in for the
//! paper's "machine-learning based approaches" rows of Table II (GMM,
//! HGM+Bootstrap, MLE \[5\] and SVM \[6\]), whose numbers the paper quotes
//! from prior publications. DESIGN.md §4 records the substitution: these
//! are from-scratch implementations trained on the same feature family
//! the cited work hand-crafts — string-similarity scores between the two
//! records of a candidate pair.
//!
//! * [`features`] — per-pair feature vectors (Jaccard, Dice, overlap,
//!   token cosine, TF-IDF cosine, normalized edit distance, Jaro-Winkler,
//!   bigram Dice, Monge-Elkan, length ratio).
//! * [`scaler`] — feature standardization.
//! * [`logreg`] — logistic regression trained with mini-batch SGD.
//! * [`svm`] — linear SVM trained with the Pegasos sub-gradient method
//!   (the "SVM \[6\]" row).
//! * [`naive_bayes`] — Gaussian naive Bayes (the generative classifier
//!   family of \[5\]).
//! * [`gmm`] — a two-component Gaussian mixture fitted by EM *without
//!   labels* (the "Gaussian Mixture Model \[5\]" row: match / non-match
//!   components discovered from the score distribution, Fellegi–Sunter
//!   style).
//! * [`train`] — labelled-pair sampling with class balancing, mirroring
//!   the training-set construction the paper criticizes supervised
//!   methods for needing.

#![deny(unsafe_code)]

pub mod features;
pub mod forest;
pub mod gmm;
pub mod logreg;
pub mod naive_bayes;
pub mod scaler;
pub mod svm;
pub mod train;
pub mod tree;

pub use features::{pair_features, FeatureExtractor, N_FEATURES};
pub use forest::{ForestConfig, RandomForest};
pub use gmm::GaussianMixture;
pub use logreg::LogisticRegression;
pub use naive_bayes::GaussianNaiveBayes;
pub use scaler::StandardScaler;
pub use svm::PegasosSvm;
pub use train::{balanced_split, LabelledPairs};
pub use tree::{DecisionTree, TreeConfig};

/// A trained binary classifier over pair-feature vectors.
pub trait Classifier {
    /// Probability-like score in `[0, 1]` that the pair matches.
    fn predict_proba(&self, features: &[f64]) -> f64;

    /// Hard decision at the 0.5 operating point.
    fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= 0.5
    }
}
