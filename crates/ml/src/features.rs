//! Per-pair feature extraction.
//!
//! The supervised competitors the paper cites hand-craft features from
//! string-similarity metrics; this extractor reproduces that family over
//! the shared corpus representation.
//!
//! Two paths produce identical vectors:
//!
//! * [`FeatureExtractor::features`] — the reference path, calling the
//!   `er-text` metric functions directly per pair. Kept as the oracle.
//! * [`FeatureExtractor::extract_all`] — the batch path the Table II
//!   harness uses. A record participates in hundreds of candidate
//!   pairs, so everything derivable from one record (character vectors,
//!   padded-bigram multisets, per-term Soundex codes) is computed once
//!   at construction; the per-pair leftovers run on reusable scratch
//!   buffers (edit-distance rows, Jaro match flags) and a memo table for
//!   Monge-Elkan's inner Jaro-Winkler over *interned* token pairs. Each
//!   shortcut preserves the reference value bit for bit (the tests
//!   compare both paths over whole corpora), and per-pair work is pure,
//!   so the pooled fan-out is deterministic at any thread count.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use er_pool::WorkerPool;
use er_text::metrics::{smith_waterman_similarity, soundex, sounds_like};
use er_text::{
    cosine_tokens, dice, jaccard, jaro_winkler, levenshtein_similarity, monge_elkan,
    ngram_similarity, overlap_coefficient, Corpus, TfIdfModel,
};

/// Number of features produced per pair.
pub const N_FEATURES: usize = 12;

/// Minimum pairs per pooled extraction chunk.
const EXTRACT_MIN_CHUNK: usize = 64;

/// Multiply-xor hasher for the Monge-Elkan memo keys (packed token-id
/// pairs). The keys are already well-mixed small integers; SipHash's
/// collision resistance buys nothing here and its latency is the whole
/// cost of a memo hit.
#[derive(Debug, Default, Clone)]
struct PairKeyHasher(u64);

impl std::hash::Hasher for PairKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        self.0 = h;
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

/// Small per-term memo: `other id -> value`. Keyed per leading term so
/// each map stays cache-resident instead of one huge DRAM-bound table.
type TermCache = HashMap<u32, f64, BuildHasherDefault<PairKeyHasher>>;

/// Reusable per-worker buffers for the batch path: bit-parallel state,
/// DP rows, Jaro match buffers, and the two Monge-Elkan memo levels.
/// One per extraction chunk; never shared across threads.
#[derive(Debug, Default)]
pub struct FeatureScratch {
    /// Jaro-Winkler over interned tokens: `jw_by_term[x][y] = jw(x, y)`.
    jw_by_term: Vec<TermCache>,
    /// Monge-Elkan inner maximum: `best_by_term[x][record] = max_y jw`.
    best_by_term: Vec<TermCache>,
    /// Per-character position bitmasks: dense rows for ASCII, map
    /// fallback for the rest (see [`CharMasks`]).
    mask_ascii: Vec<u64>,
    mask_other: HashMap<char, Vec<u64>>,
    /// Myers-Levenshtein vertical delta words.
    lev_vp: Vec<u64>,
    lev_vn: Vec<u64>,
    /// Jaro matched-position bitmask over `b`.
    taken: Vec<u64>,
    /// Smith-Waterman antidiagonal buffers (current, −1, −2) and the
    /// reversed second string.
    sw_d0: Vec<i16>,
    sw_d1: Vec<i16>,
    sw_d2: Vec<i16>,
    sw_rev: Vec<u16>,
    sw_row: Vec<i32>,
    a_matches: Vec<char>,
    b_matches: Vec<char>,
}

/// The per-character position bitmasks of one string, `words` `u64`s per
/// character — shared input format of the Myers-Levenshtein kernel and
/// the bit-parallel Jaro matcher. Borrows the scratch buffers.
struct CharMasks<'s> {
    ascii: &'s [u64],
    other: &'s HashMap<char, Vec<u64>>,
    words: usize,
}

impl CharMasks<'_> {
    /// Bitmask row for `c`; `None` when `c` never occurs in the string.
    fn row(&self, c: char) -> Option<&[u64]> {
        if (c as u32) < 128 {
            Some(&self.ascii[c as usize * self.words..(c as usize + 1) * self.words])
        } else {
            self.other.get(&c).map(Vec::as_slice)
        }
    }
}

/// Fills the scratch mask table with the position bitmasks of `chars`.
fn build_masks<'s>(
    mask_ascii: &'s mut Vec<u64>,
    mask_other: &'s mut HashMap<char, Vec<u64>>,
    chars: &[char],
    words: usize,
) -> CharMasks<'s> {
    mask_ascii.clear();
    mask_ascii.resize(128 * words, 0);
    mask_other.clear();
    for (i, &c) in chars.iter().enumerate() {
        let bit = 1u64 << (i & 63);
        if (c as u32) < 128 {
            mask_ascii[c as usize * words + (i >> 6)] |= bit;
        } else {
            mask_other.entry(c).or_insert_with(|| vec![0; words])[i >> 6] |= bit;
        }
    }
    CharMasks {
        ascii: mask_ascii,
        other: mask_other,
        words,
    }
}

/// Caches the per-corpus state (TF-IDF model, reconstructed token texts,
/// and the batch path's per-record/per-term precomputations) so feature
/// extraction over many pairs is cheap.
#[derive(Debug)]
pub struct FeatureExtractor<'a> {
    corpus: &'a Corpus,
    tfidf: TfIdfModel,
    texts: Vec<String>,
    token_strs: Vec<Vec<String>>,
    /// Per record: `texts[r]` as a char vector (the DP/Jaro input).
    text_chars: Vec<Vec<char>>,
    /// Per record: the chars as UTF-16 code units, when they all fit in
    /// the BMP — the vectorized Smith-Waterman input (`None` falls back
    /// to the scalar char DP).
    text_u16: Vec<Option<Vec<u16>>>,
    /// Per record: sorted `(packed bigram, count)` runs of the padded
    /// character-bigram multiset of `texts[r]`, plus the total count.
    bigrams: Vec<Vec<(u64, u32)>>,
    bigram_totals: Vec<u32>,
    /// Per vocab term: its Soundex code, if the term encodes.
    term_soundex: Vec<Option<[u8; 4]>>,
}

impl<'a> FeatureExtractor<'a> {
    /// Builds the extractor (O(corpus)).
    pub fn new(corpus: &'a Corpus) -> Self {
        let tfidf = TfIdfModel::fit(corpus);
        let mut texts = Vec::with_capacity(corpus.len());
        let mut token_strs = Vec::with_capacity(corpus.len());
        for r in 0..corpus.len() {
            let toks: Vec<String> = corpus
                .tokens(r)
                .iter()
                .map(|&t| corpus.vocab().term(t).to_owned())
                .collect();
            texts.push(toks.join(" "));
            token_strs.push(toks);
        }
        let text_chars: Vec<Vec<char>> = texts.iter().map(|t| t.chars().collect()).collect();
        let text_u16: Vec<Option<Vec<u16>>> = text_chars
            .iter()
            .map(|cs| {
                cs.iter()
                    .map(|&c| u16::try_from(c as u32).ok())
                    .collect::<Option<Vec<u16>>>()
            })
            .collect();
        let mut bigrams = Vec::with_capacity(texts.len());
        let mut bigram_totals = Vec::with_capacity(texts.len());
        for chars in &text_chars {
            let (runs, total) = packed_bigram_runs(chars);
            bigrams.push(runs);
            bigram_totals.push(total);
        }
        let term_soundex: Vec<Option<[u8; 4]>> = (0..corpus.vocab_len())
            .map(|i| {
                soundex(corpus.vocab().term(er_text::TermId(i as u32)))
                    .map(|code| code.into_bytes().try_into().expect("soundex is 4 bytes"))
            })
            .collect();
        Self {
            corpus,
            tfidf,
            texts,
            token_strs,
            text_chars,
            text_u16,
            bigrams,
            bigram_totals,
            term_soundex,
        }
    }

    /// Extracts the feature vector for records `(a, b)` — the reference
    /// path, calling each metric directly.
    pub fn features(&self, a: u32, b: u32) -> Vec<f64> {
        let (a, b) = (a as usize, b as usize);
        let sa = self.corpus.term_set(a);
        let sb = self.corpus.term_set(b);
        let ta: Vec<&str> = self.token_strs[a].iter().map(String::as_str).collect();
        let tb: Vec<&str> = self.token_strs[b].iter().map(String::as_str).collect();
        let len_a = ta.len().max(1) as f64;
        let len_b = tb.len().max(1) as f64;
        vec![
            jaccard(sa, sb),
            dice(sa, sb),
            overlap_coefficient(sa, sb),
            cosine_tokens(sa, sb),
            self.tfidf.cosine(a, b),
            levenshtein_similarity(&self.texts[a], &self.texts[b]),
            jaro_winkler(&self.texts[a], &self.texts[b]),
            ngram_similarity(&self.texts[a], &self.texts[b], 2),
            monge_elkan(&ta, &tb, jaro_winkler),
            smith_waterman_similarity(&self.texts[a], &self.texts[b]),
            // Fraction of tokens in the shorter record with a Soundex
            // twin in the other — phonetic agreement.
            phonetic_overlap(&ta, &tb),
            len_a.min(len_b) / len_a.max(len_b),
        ]
    }

    /// Batch feature extraction over a candidate list, fanned out on the
    /// pool in deterministic contiguous chunks (disjoint output ranges,
    /// serial per-pair work — the same contract as
    /// `er_baselines::score_pairs_chunked`). `out[i]` equals
    /// `self.features(pairs[i].0, pairs[i].1)` bit for bit.
    pub fn extract_all(&self, pairs: &[(u32, u32)], pool: &WorkerPool) -> Vec<Vec<f64>> {
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); pairs.len()];
        if pool.is_serial() {
            let mut scratch = FeatureScratch::default();
            for (v, &(a, b)) in out.iter_mut().zip(pairs) {
                *v = self.features_prepared(a, b, &mut scratch);
            }
            return out;
        }
        let ranges = er_pool::chunk_ranges(pairs.len(), pool.threads(), EXTRACT_MIN_CHUNK);
        // er-lint: allow(dispatch) -- serial pools bypass above; sizing the pool is the caller's dispatch decision
        pool.scope(|s| {
            let mut rest = out.as_mut_slice();
            for r in ranges {
                let (chunk, tail) = rest.split_at_mut(r.len());
                rest = tail;
                let ps = &pairs[r];
                s.submit(move || {
                    let mut scratch = FeatureScratch::default();
                    for (v, &(a, b)) in chunk.iter_mut().zip(ps) {
                        *v = self.features_prepared(a, b, &mut scratch);
                    }
                });
            }
        });
        out
    }

    /// The batch path's per-pair kernel: every feature from precomputed
    /// record/term state and reusable scratch, each bit-identical to its
    /// [`FeatureExtractor::features`] counterpart.
    fn features_prepared(&self, a: u32, b: u32, scratch: &mut FeatureScratch) -> Vec<f64> {
        let (a, b) = (a as usize, b as usize);
        let sa = self.corpus.term_set(a);
        let sb = self.corpus.term_set(b);
        let ca = &self.text_chars[a];
        let cb = &self.text_chars[b];
        let toks_a = self.corpus.tokens(a);
        let toks_b = self.corpus.tokens(b);
        let len_a = toks_a.len().max(1) as f64;
        let len_b = toks_b.len().max(1) as f64;
        vec![
            jaccard(sa, sb),
            dice(sa, sb),
            overlap_coefficient(sa, sb),
            cosine_tokens(sa, sb),
            self.tfidf.cosine(a, b),
            self.levenshtein_prepared(ca, cb, scratch),
            jaro_winkler_prepared(ca, cb, scratch),
            self.ngram_prepared(a, b),
            self.monge_elkan_memoized(a, b, scratch),
            self.smith_waterman_prepared(a, b, scratch),
            self.phonetic_prepared(toks_a, toks_b),
            len_a.min(len_b) / len_a.max(len_b),
        ]
    }

    /// `levenshtein_similarity` via Myers' bit-parallel algorithm in its
    /// block form (the edlib `calculateBlock` update), pattern = the
    /// shorter string. The distance is the same exact integer the
    /// reference DP produces — Levenshtein is symmetric — so the
    /// similarity is bit-identical.
    fn levenshtein_prepared(&self, a: &[char], b: &[char], scratch: &mut FeatureScratch) -> f64 {
        let max = a.len().max(b.len());
        if max == 0 {
            return 1.0;
        }
        let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let dist = if short.is_empty() {
            long.len()
        } else {
            myers_distance(short, long, scratch)
        };
        1.0 - dist as f64 / max as f64
    }

    /// `smith_waterman_similarity` with the default scoring (match 1.0,
    /// mismatch −1.0, gap −0.5) on a doubled-integer DP. Every cell of
    /// the reference float DP is an exact multiple of 0.5, so doubling
    /// the increments (+2/−2/−1, floor 0) gives `cell × 2` exactly, and
    /// halving the best score reproduces the float result bit for bit.
    /// BMP-only texts take the vectorizable antidiagonal kernel; the
    /// rolling-row char DP covers the rest (identical integers either
    /// way).
    fn smith_waterman_prepared(
        &self,
        a_rec: usize,
        b_rec: usize,
        scratch: &mut FeatureScratch,
    ) -> f64 {
        let a = &self.text_chars[a_rec];
        let b = &self.text_chars[b_rec];
        let min_len = a.len().min(b.len());
        if min_len == 0 {
            return if a.is_empty() && b.is_empty() {
                1.0
            } else {
                0.0
            };
        }
        // The doubled i16 cells are bounded by 2·min_len; stay far from
        // saturation before trusting the i16 kernel.
        let best = match (&self.text_u16[a_rec], &self.text_u16[b_rec]) {
            (Some(wa), Some(wb)) if min_len <= 8000 => sw_antidiag(wa, wb, scratch),
            _ => sw_scalar(a, b, scratch),
        };
        let score = f64::from(best) / 2.0;
        (score / min_len as f64).clamp(0.0, 1.0)
    }

    /// `ngram_similarity(…, 2)` over the precomputed sorted bigram runs:
    /// the same multiset totals and minimum-count intersection, summed in
    /// integers, so the same quotient.
    fn ngram_prepared(&self, a: usize, b: usize) -> f64 {
        let empty_a = self.text_chars[a].is_empty();
        let empty_b = self.text_chars[b].is_empty();
        if empty_a && empty_b {
            return 1.0;
        }
        if empty_a || empty_b {
            return 0.0;
        }
        let total = self.bigram_totals[a] + self.bigram_totals[b];
        if total == 0 {
            return 0.0;
        }
        let (ga, gb) = (&self.bigrams[a], &self.bigrams[b]);
        let mut inter = 0u32;
        let (mut ia, mut ib) = (0, 0);
        while ia < ga.len() && ib < gb.len() {
            match ga[ia].0.cmp(&gb[ib].0) {
                std::cmp::Ordering::Less => ia += 1,
                std::cmp::Ordering::Greater => ib += 1,
                std::cmp::Ordering::Equal => {
                    inter += ga[ia].1.min(gb[ib].1);
                    ia += 1;
                    ib += 1;
                }
            }
        }
        2.0 * f64::from(inter) / f64::from(total)
    }

    /// `monge_elkan` with two memo levels over interned ids: the inner
    /// Jaro-Winkler depends only on the two token ids, and each
    /// direction's inner maximum `max_y jw(x, y)` depends only on
    /// `(x, partner record)` — both deterministic functions of their
    /// key, so caching repeats the exact value the reference recomputes.
    /// The outer fold order over `xs` is unchanged.
    fn monge_elkan_memoized(&self, a: usize, b: usize, scratch: &mut FeatureScratch) -> f64 {
        let toks_a = self.corpus.tokens(a);
        let toks_b = self.corpus.tokens(b);
        if toks_a.is_empty() && toks_b.is_empty() {
            return 1.0;
        }
        if toks_a.is_empty() || toks_b.is_empty() {
            return 0.0;
        }
        let n_terms = self.corpus.vocab_len();
        if scratch.jw_by_term.len() < n_terms {
            scratch.jw_by_term.resize_with(n_terms, TermCache::default);
            scratch
                .best_by_term
                .resize_with(n_terms, TermCache::default);
        }
        let FeatureScratch {
            jw_by_term,
            best_by_term,
            ..
        } = scratch;
        let vocab = self.corpus.vocab();
        let mut dir = |xs: &[er_text::TermId], other: u32, ys: &[er_text::TermId]| -> f64 {
            let mut total = 0.0f64;
            for &x in xs {
                let best = if let Some(&v) = best_by_term[x.index()].get(&other) {
                    v
                } else {
                    let jw_x = &mut jw_by_term[x.index()];
                    let mut best = 0.0f64;
                    for &y in ys {
                        let jw = if let Some(&v) = jw_x.get(&y.0) {
                            v
                        } else {
                            let v = jaro_winkler(vocab.term(x), vocab.term(y));
                            jw_x.insert(y.0, v);
                            v
                        };
                        best = best.max(jw);
                    }
                    best_by_term[x.index()].insert(other, best);
                    best
                };
                total += best;
            }
            total / xs.len() as f64
        };
        0.5 * (dir(toks_a, b as u32, toks_b) + dir(toks_b, a as u32, toks_a))
    }

    /// `phonetic_overlap` over precomputed per-term Soundex codes.
    fn phonetic_prepared(&self, toks_a: &[er_text::TermId], toks_b: &[er_text::TermId]) -> f64 {
        if toks_a.is_empty() && toks_b.is_empty() {
            return 1.0;
        }
        let (short, long) = if toks_a.len() <= toks_b.len() {
            (toks_a, toks_b)
        } else {
            (toks_b, toks_a)
        };
        if short.is_empty() {
            return 0.0;
        }
        let hits = short
            .iter()
            .filter(|s| {
                self.term_soundex[s.index()].is_some_and(|cs| {
                    long.iter()
                        .any(|l| self.term_soundex[l.index()] == Some(cs))
                })
            })
            .count();
        hits as f64 / short.len() as f64
    }
}

/// Doubled-integer Smith-Waterman, rolling-row form — the fallback for
/// non-BMP texts. `row[j]` holds the previous row's value until
/// overwritten; the diagonal is carried in a local.
fn sw_scalar(a: &[char], b: &[char], scratch: &mut FeatureScratch) -> i32 {
    let row = &mut scratch.sw_row;
    row.clear();
    row.resize(b.len(), 0);
    let mut best = 0i32;
    for &ac in a {
        let mut diag = 0i32;
        let mut left = 0i32;
        for (&bc, cell) in b.iter().zip(row.iter_mut()) {
            let up = *cell;
            let sub = if ac == bc { 2 } else { -2 };
            let v = (diag + sub).max(up.max(left) - 1).max(0);
            *cell = v;
            diag = up;
            left = v;
            best = best.max(v);
        }
    }
    best
}

/// Doubled-integer Smith-Waterman over antidiagonals. Cells on one
/// antidiagonal depend only on the two previous antidiagonals, so the
/// inner loop carries no dependency and LLVM auto-vectorizes the i16
/// lanes. Same max/add integers as [`sw_scalar`], just reassociated
/// cell order — the result is the identical `best`.
fn sw_antidiag(a: &[u16], b: &[u16], scratch: &mut FeatureScratch) -> i32 {
    let (n, m) = (a.len(), b.len());
    let FeatureScratch {
        sw_d0,
        sw_d1,
        sw_d2,
        sw_rev,
        ..
    } = scratch;
    // Reverse `b` so the antidiagonal's `b[d - i]` reads become forward
    // loads: with `br[k] = b[m-1-k]`, `b[d - i] = br[m-1-d+i]`.
    sw_rev.clear();
    sw_rev.extend(b.iter().rev());
    for buf in [&mut *sw_d0, &mut *sw_d1, &mut *sw_d2] {
        buf.clear();
        buf.resize(n, 0);
    }
    let mut best = 0i16;
    for d in 0..n + m - 1 {
        let i_lo = (d + 1).saturating_sub(m);
        let i_hi = d.min(n - 1);
        // Border cells (first row / first column): missing neighbors
        // are the zero boundary.
        if i_lo == 0 {
            let left = if d >= 1 { sw_d1[0] } else { 0 };
            let sub = if a[0] == b[d] { 2 } else { -2 };
            sw_d0[0] = sub.max(left - 1).max(0);
        }
        if i_hi == d && d >= 1 {
            let up = sw_d1[d - 1];
            let sub = if a[d] == b[0] { 2 } else { -2 };
            sw_d0[d] = sub.max(up - 1).max(0);
        }
        // Interior: all three neighbors in-matrix, straight-line zips.
        let lo = i_lo.max(1);
        let hi = i_hi.min(d.wrapping_sub(1));
        if d >= 2 && lo <= hi {
            let len = hi - lo + 1;
            let k0 = (m + lo - 1) - d;
            let (diags, ups, up_lefts) = (
                &sw_d2[lo - 1..lo - 1 + len],
                &sw_d1[lo..lo + len],
                &sw_d1[lo - 1..lo - 1 + len],
            );
            let (acs, bcs) = (&a[lo..lo + len], &sw_rev[k0..k0 + len]);
            let out = &mut sw_d0[lo..lo + len];
            let neighbors = diags.iter().zip(ups).zip(up_lefts);
            let chars = acs.iter().zip(bcs);
            for ((o, ((&dg, &up), &ul)), (&ac, &bc)) in out.iter_mut().zip(neighbors).zip(chars) {
                let sub = if ac == bc { 2i16 } else { -2 };
                *o = (dg + sub).max(up.max(ul) - 1).max(0);
            }
        }
        let mut diag_best = 0i16;
        for &v in &sw_d0[i_lo..=i_hi] {
            diag_best = diag_best.max(v);
        }
        best = best.max(diag_best);
        std::mem::swap(sw_d1, sw_d2);
        std::mem::swap(sw_d0, sw_d1);
    }
    i32::from(best)
}

/// Levenshtein distance via Myers' bit-parallel algorithm, block form —
/// the `calculateBlock` update popularized by edlib. Vertical deltas
/// live in `VP`/`VN` words over the pattern; per text character the
/// horizontal delta chains across words through `hp`/`hn` carry bits
/// (the boundary column contributes the constant `+1` carry into word
/// 0). Computes the exact integer distance of the reference DP.
fn myers_distance(pattern: &[char], text: &[char], scratch: &mut FeatureScratch) -> usize {
    let m = pattern.len();
    let words = m.div_ceil(64);
    let FeatureScratch {
        mask_ascii,
        mask_other,
        lev_vp,
        lev_vn,
        ..
    } = scratch;
    let masks = build_masks(mask_ascii, mask_other, pattern, words);
    lev_vp.clear();
    lev_vp.resize(words, !0u64);
    lev_vn.clear();
    lev_vn.resize(words, 0);
    let mut score = m;
    let last = words - 1;
    let last_bit = 1u64 << ((m - 1) & 63);
    for &c in text {
        let eq_row = masks.row(c);
        let mut hp_in = 1u64;
        let mut hn_in = 0u64;
        for j in 0..words {
            let eq = eq_row.map_or(0, |r| r[j]);
            let pv = lev_vp[j];
            let nv = lev_vn[j];
            let xv = eq | nv;
            let eq_h = eq | hn_in;
            let xh = ((eq_h & pv).wrapping_add(pv) ^ pv) | eq_h;
            let hp = nv | !(xh | pv);
            let hn = pv & xh;
            if j == last {
                if hp & last_bit != 0 {
                    score += 1;
                } else if hn & last_bit != 0 {
                    score -= 1;
                }
            }
            let hp_out = hp >> 63;
            let hn_out = hn >> 63;
            let hp = (hp << 1) | hp_in;
            let hn = (hn << 1) | hn_in;
            hp_in = hp_out;
            hn_in = hn_out;
            lev_vp[j] = hn | !(xv | hp);
            lev_vn[j] = hp & xv;
        }
    }
    score
}

/// `jaro` with the match scan bit-parallelized: `b`'s positions live in
/// per-character bitmasks, matched positions in a `taken` bitmask, so
/// "first unmatched occurrence of `ca` inside the window" is a masked
/// word scan + `trailing_zeros` — the same position the reference's
/// linear scan picks, so the same matches, transpositions, and bits.
fn jaro_prepared(a: &[char], b: &[char], scratch: &mut FeatureScratch) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a.len() == 1 && b.len() == 1 {
        return if a[0] == b[0] { 1.0 } else { 0.0 };
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let words = b.len().div_ceil(64);
    let FeatureScratch {
        mask_ascii,
        mask_other,
        taken,
        a_matches,
        b_matches,
        ..
    } = scratch;
    let masks = build_masks(mask_ascii, mask_other, b, words);
    taken.clear();
    taken.resize(words, 0);
    a_matches.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        if lo >= hi {
            continue;
        }
        let Some(eq) = masks.row(ca) else { continue };
        let w_lo = lo >> 6;
        let w_hi = (hi - 1) >> 6;
        for w in w_lo..=w_hi {
            let mut cand = eq[w] & !taken[w];
            if w == w_lo {
                cand &= !((1u64 << (lo & 63)) - 1);
            }
            if w == w_hi {
                let top = hi - (w << 6);
                if top < 64 {
                    cand &= (1u64 << top) - 1;
                }
            }
            if cand != 0 {
                taken[w] |= cand & cand.wrapping_neg();
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    b_matches.clear();
    for (w, &tw) in taken.iter().enumerate() {
        let mut tw = tw;
        while tw != 0 {
            b_matches.push(b[(w << 6) + tw.trailing_zeros() as usize]);
            tw &= tw - 1;
        }
    }
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// `jaro_winkler` on top of [`jaro_prepared`] — same prefix bonus.
fn jaro_winkler_prepared(a: &[char], b: &[char], scratch: &mut FeatureScratch) -> f64 {
    let j = jaro_prepared(a, b, scratch);
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// The padded character-bigram multiset of a text as sorted
/// `(packed gram, count)` runs plus the total gram count — the batch
/// form of `er_text::ngram_multiset(…, 2)` (chars packed into a `u64`
/// instead of `Vec<char>` keys).
fn packed_bigram_runs(chars: &[char]) -> (Vec<(u64, u32)>, u32) {
    if chars.is_empty() {
        return (Vec::new(), 0);
    }
    let mut grams: Vec<u64> = Vec::with_capacity(chars.len() + 1);
    let mut prev = '#';
    for &c in chars.iter().chain(std::iter::once(&'#')) {
        grams.push((u64::from(prev as u32) << 32) | u64::from(c as u32));
        prev = c;
    }
    grams.sort_unstable();
    let mut runs: Vec<(u64, u32)> = Vec::new();
    let total = grams.len() as u32;
    for g in grams {
        match runs.last_mut() {
            Some((last, count)) if *last == g => *count += 1,
            _ => runs.push((g, 1)),
        }
    }
    (runs, total)
}

/// Fraction of the shorter token list with a Soundex-equivalent token in
/// the other list.
fn phonetic_overlap(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0.0;
    }
    let hits = short
        .iter()
        .filter(|s| long.iter().any(|l| sounds_like(s, l)))
        .count();
    hits as f64 / short.len() as f64
}

/// One-shot convenience for a single pair.
pub fn pair_features(corpus: &Corpus, a: u32, b: u32) -> Vec<f64> {
    FeatureExtractor::new(corpus).features(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_text::CorpusBuilder;

    fn corpus() -> Corpus {
        CorpusBuilder::new()
            .push_text("sony turntable pslx350h belt drive")
            .push_text("sony pslx350h turntable")
            .push_text("panasonic microwave oven family size")
            .build()
    }

    #[test]
    fn feature_count_and_bounds() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        let f = fx.features(0, 1);
        assert_eq!(f.len(), N_FEATURES);
        for (i, v) in f.iter().enumerate() {
            assert!((0.0..=1.0 + 1e-9).contains(v), "feature {i}: {v}");
        }
    }

    #[test]
    fn matching_pair_dominates_nonmatching() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        let fm = fx.features(0, 1);
        let fn_ = fx.features(0, 2);
        // Every set-based feature must favor the matching pair.
        for i in 0..5 {
            assert!(fm[i] > fn_[i], "feature {i}: {} vs {}", fm[i], fn_[i]);
        }
    }

    #[test]
    fn symmetric() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        let ab = fx.features(0, 1);
        let ba = fx.features(1, 0);
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn one_shot_matches_cached() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        assert_eq!(fx.features(0, 2), pair_features(&c, 0, 2));
    }

    /// A mid-size synthetic corpus with the noise channels that exercise
    /// every feature: shared tokens, typo'd variants, reordering,
    /// abbreviations, and empty-ish records.
    fn synthetic_corpus() -> Corpus {
        let vocab = [
            "sony",
            "turntable",
            "pslx350h",
            "belt",
            "drive",
            "panasonic",
            "microwave",
            "oven",
            "family",
            "size",
            "grill",
            "alley",
            "dayton",
            "beverly",
            "hills",
            "deluxe",
            "stereo",
            "sterio",
            "blvd",
            "boulevard",
            "smith",
            "smyth",
            "q7",
            "x200",
        ];
        let mut state = 0x5851_f42d_4c95_7f2du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut builder = CorpusBuilder::new();
        for i in 0..40 {
            // Vary length widely so texts cross the 64- and 128-char
            // word boundaries of the bit-parallel kernels.
            let n_tokens = 2 + next() % (3 + (i % 4) * 9);
            let text: Vec<&str> = (0..n_tokens).map(|_| vocab[next() % vocab.len()]).collect();
            builder = builder.push_text(text.join(" "));
        }
        builder.build()
    }

    #[test]
    fn batch_path_matches_reference_bitwise() {
        let c = synthetic_corpus();
        let fx = FeatureExtractor::new(&c);
        let mut pairs = Vec::new();
        for a in 0..c.len() as u32 {
            for b in (a + 1)..c.len() as u32 {
                pairs.push((a, b));
            }
        }
        let pool = WorkerPool::new(1);
        let batch = fx.extract_all(&pairs, &pool);
        assert_eq!(batch.len(), pairs.len());
        for (&(a, b), got) in pairs.iter().zip(&batch) {
            let want = fx.features(a, b);
            for (i, (w, g)) in want.iter().zip(got).enumerate() {
                assert_eq!(
                    w.to_bits(),
                    g.to_bits(),
                    "feature {i} diverged on pair ({a}, {b}): {w} vs {g}"
                );
            }
        }
    }

    #[test]
    fn pooled_extraction_matches_serial() {
        let c = synthetic_corpus();
        let fx = FeatureExtractor::new(&c);
        let mut pairs = Vec::new();
        for a in 0..c.len() as u32 {
            for b in (a + 1)..c.len() as u32 {
                pairs.push((a, b));
            }
        }
        let serial = fx.extract_all(&pairs, &WorkerPool::new(1));
        for threads in [2usize, 8] {
            let pooled = fx.extract_all(&pairs, &WorkerPool::new(threads));
            assert_eq!(serial, pooled, "diverged at {threads} threads");
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Strings long enough to need multiple 64-bit words, over a
        /// small alphabet (dense matches) plus non-ASCII characters
        /// (the mask-table fallback path).
        fn text_strategy() -> impl Strategy<Value = String> {
            proptest::collection::vec(
                (0usize..5).prop_map(|i| ['a', 'b', 'c', 'é', '日'][i]),
                0..200,
            )
            .prop_map(|cs| cs.into_iter().collect())
        }

        proptest! {
            #[test]
            fn myers_matches_reference_levenshtein(a in text_strategy(), b in text_strategy()) {
                let ca: Vec<char> = a.chars().collect();
                let cb: Vec<char> = b.chars().collect();
                let mut scratch = FeatureScratch::default();
                let max = ca.len().max(cb.len());
                let fast = if max == 0 {
                    1.0
                } else {
                    let (short, long) = if ca.len() <= cb.len() { (&ca, &cb) } else { (&cb, &ca) };
                    let dist = if short.is_empty() {
                        long.len()
                    } else {
                        myers_distance(short, long, &mut scratch)
                    };
                    1.0 - dist as f64 / max as f64
                };
                let reference = levenshtein_similarity(&a, &b);
                prop_assert_eq!(fast.to_bits(), reference.to_bits());
            }

            #[test]
            fn antidiagonal_sw_matches_scalar_and_reference(
                a in text_strategy(),
                b in text_strategy(),
            ) {
                let ca: Vec<char> = a.chars().collect();
                let cb: Vec<char> = b.chars().collect();
                let mut scratch = FeatureScratch::default();
                let min_len = ca.len().min(cb.len());
                let fast = if min_len == 0 {
                    if ca.is_empty() && cb.is_empty() { 1.0 } else { 0.0 }
                } else {
                    let wa: Vec<u16> = ca.iter().map(|&c| c as u16).collect();
                    let wb: Vec<u16> = cb.iter().map(|&c| c as u16).collect();
                    let anti = sw_antidiag(&wa, &wb, &mut scratch);
                    let scalar = sw_scalar(&ca, &cb, &mut scratch);
                    prop_assert_eq!(anti, scalar);
                    (f64::from(anti) / 2.0 / min_len as f64).clamp(0.0, 1.0)
                };
                let reference = smith_waterman_similarity(&a, &b);
                prop_assert_eq!(fast.to_bits(), reference.to_bits());
            }

            #[test]
            fn bit_parallel_jaro_matches_reference(a in text_strategy(), b in text_strategy()) {
                let ca: Vec<char> = a.chars().collect();
                let cb: Vec<char> = b.chars().collect();
                let mut scratch = FeatureScratch::default();
                let fast = jaro_winkler_prepared(&ca, &cb, &mut scratch);
                let reference = jaro_winkler(&a, &b);
                prop_assert_eq!(fast.to_bits(), reference.to_bits());
            }
        }
    }

    #[test]
    fn scratch_reuse_across_pairs_is_clean() {
        // Pairs with very different text lengths back to back: stale
        // scratch contents must never leak into the next pair.
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        let mut scratch = FeatureScratch::default();
        let dirty: Vec<Vec<f64>> = [(0u32, 1u32), (1, 2), (0, 2)]
            .iter()
            .map(|&(a, b)| fx.features_prepared(a, b, &mut scratch))
            .collect();
        for (&(a, b), got) in [(0u32, 1u32), (1, 2), (0, 2)].iter().zip(&dirty) {
            assert_eq!(&fx.features(a, b), got, "pair ({a}, {b})");
        }
    }
}
