//! Per-pair feature extraction.
//!
//! The supervised competitors the paper cites hand-craft features from
//! string-similarity metrics; this extractor reproduces that family over
//! the shared corpus representation.
//!
//! Two paths produce identical vectors:
//!
//! * [`FeatureExtractor::features`] — the reference path, calling the
//!   `er-text` metric functions directly per pair. Kept as the oracle.
//! * [`FeatureExtractor::extract_all`] — the batch path the Table II
//!   harness uses. A record participates in hundreds of candidate
//!   pairs, so everything derivable from one record (the contiguous
//!   string tape, padded-bigram multisets, per-term Soundex codes) is
//!   computed once at construction; the per-pair string kernels are the
//!   shared batch engine's ([`er_text::simeng`] — bit-parallel
//!   Levenshtein/Jaro, antidiagonal Smith-Waterman, memoized
//!   Monge-Elkan on reusable [`SimScratch`] buffers). Each shortcut
//!   preserves the reference value bit for bit (the tests compare both
//!   paths over whole corpora), and per-pair work is pure, so the
//!   pooled fan-out is deterministic at any thread count.

use er_pool::WorkerPool;
use er_text::metrics::{smith_waterman_similarity, soundex, sounds_like};
use er_text::simeng::{
    jaro_winkler_prepared, levenshtein_prepared, monge_elkan_memoized, smith_waterman_prepared,
};
use er_text::{
    cosine_tokens, dice, jaccard, jaro_winkler, levenshtein_similarity, monge_elkan,
    ngram_similarity, overlap_coefficient, Corpus, SimScratch, StrTape, TfIdfModel,
};

/// Number of features produced per pair.
pub const N_FEATURES: usize = 12;

/// Minimum pairs per pooled extraction chunk.
const EXTRACT_MIN_CHUNK: usize = 64;

/// Reusable per-worker buffers for the batch path — the shared batch
/// engine's scratch (bit-parallel state, DP rows, Jaro match buffers,
/// and the two Monge-Elkan memo levels). One per extraction chunk;
/// never shared across threads.
pub type FeatureScratch = SimScratch;

/// Caches the per-corpus state (TF-IDF model, the reconstructed token
/// texts on a contiguous [`StrTape`], and the batch path's
/// per-record/per-term precomputations) so feature extraction over many
/// pairs is cheap.
#[derive(Debug)]
pub struct FeatureExtractor<'a> {
    corpus: &'a Corpus,
    tfidf: TfIdfModel,
    /// Every record text (post-filter tokens joined by spaces) on one
    /// tape: `&str` views for the oracle metrics, char slices for the
    /// DP/Jaro kernels, BMP code units for the vectorized
    /// Smith-Waterman.
    tape: StrTape,
    token_strs: Vec<Vec<String>>,
    /// Per record: sorted `(packed bigram, count)` runs of the padded
    /// character-bigram multiset of the record text, plus the total.
    bigrams: Vec<Vec<(u64, u32)>>,
    bigram_totals: Vec<u32>,
    /// Per vocab term: its Soundex code, if the term encodes.
    term_soundex: Vec<Option<[u8; 4]>>,
}

impl<'a> FeatureExtractor<'a> {
    /// Builds the extractor (O(corpus)).
    pub fn new(corpus: &'a Corpus) -> Self {
        let tfidf = TfIdfModel::fit(corpus);
        let tape = StrTape::from_corpus(corpus);
        let mut token_strs = Vec::with_capacity(corpus.len());
        for r in 0..corpus.len() {
            let toks: Vec<String> = corpus
                .tokens(r)
                .iter()
                .map(|&t| corpus.vocab().term(t).to_owned())
                .collect();
            token_strs.push(toks);
        }
        let mut bigrams = Vec::with_capacity(corpus.len());
        let mut bigram_totals = Vec::with_capacity(corpus.len());
        for r in 0..corpus.len() {
            let (runs, total) = packed_bigram_runs(tape.chars(r));
            bigrams.push(runs);
            bigram_totals.push(total);
        }
        let term_soundex: Vec<Option<[u8; 4]>> = (0..corpus.vocab_len())
            .map(|i| {
                soundex(corpus.vocab().term(er_text::TermId(i as u32)))
                    .map(|code| code.into_bytes().try_into().expect("soundex is 4 bytes"))
            })
            .collect();
        Self {
            corpus,
            tfidf,
            tape,
            token_strs,
            bigrams,
            bigram_totals,
            term_soundex,
        }
    }

    /// Extracts the feature vector for records `(a, b)` — the reference
    /// path, calling each metric directly.
    pub fn features(&self, a: u32, b: u32) -> Vec<f64> {
        let (a, b) = (a as usize, b as usize);
        let sa = self.corpus.term_set(a);
        let sb = self.corpus.term_set(b);
        let ta: Vec<&str> = self.token_strs[a].iter().map(String::as_str).collect();
        let tb: Vec<&str> = self.token_strs[b].iter().map(String::as_str).collect();
        let len_a = ta.len().max(1) as f64;
        let len_b = tb.len().max(1) as f64;
        vec![
            jaccard(sa, sb),
            dice(sa, sb),
            overlap_coefficient(sa, sb),
            cosine_tokens(sa, sb),
            self.tfidf.cosine(a, b),
            levenshtein_similarity(self.tape.text(a), self.tape.text(b)),
            jaro_winkler(self.tape.text(a), self.tape.text(b)),
            ngram_similarity(self.tape.text(a), self.tape.text(b), 2),
            monge_elkan(&ta, &tb, jaro_winkler),
            smith_waterman_similarity(self.tape.text(a), self.tape.text(b)),
            // Fraction of tokens in the shorter record with a Soundex
            // twin in the other — phonetic agreement.
            phonetic_overlap(&ta, &tb),
            len_a.min(len_b) / len_a.max(len_b),
        ]
    }

    /// Batch feature extraction over a candidate list, fanned out on the
    /// pool in deterministic contiguous chunks (disjoint output ranges,
    /// serial per-pair work — the same contract as
    /// `er_baselines::score_pairs_chunked`). `out[i]` equals
    /// `self.features(pairs[i].0, pairs[i].1)` bit for bit.
    pub fn extract_all(&self, pairs: &[(u32, u32)], pool: &WorkerPool) -> Vec<Vec<f64>> {
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); pairs.len()];
        if pool.is_serial() {
            let mut scratch = FeatureScratch::default();
            for (v, &(a, b)) in out.iter_mut().zip(pairs) {
                *v = self.features_prepared(a, b, &mut scratch);
            }
            return out;
        }
        let ranges = er_pool::chunk_ranges(pairs.len(), pool.threads(), EXTRACT_MIN_CHUNK);
        // er-lint: allow(dispatch) -- serial pools bypass above; sizing the pool is the caller's dispatch decision
        pool.scope(|s| {
            let mut rest = out.as_mut_slice();
            for r in ranges {
                let (chunk, tail) = rest.split_at_mut(r.len());
                rest = tail;
                let ps = &pairs[r];
                s.submit(move || {
                    let mut scratch = FeatureScratch::default();
                    for (v, &(a, b)) in chunk.iter_mut().zip(ps) {
                        *v = self.features_prepared(a, b, &mut scratch);
                    }
                });
            }
        });
        out
    }

    /// The batch path's per-pair kernel: every feature from precomputed
    /// record/term state and the shared-engine scratch, each
    /// bit-identical to its [`FeatureExtractor::features`] counterpart.
    fn features_prepared(&self, a: u32, b: u32, scratch: &mut FeatureScratch) -> Vec<f64> {
        let (a, b) = (a as usize, b as usize);
        let sa = self.corpus.term_set(a);
        let sb = self.corpus.term_set(b);
        let ca = self.tape.chars(a);
        let cb = self.tape.chars(b);
        let toks_a = self.corpus.tokens(a);
        let toks_b = self.corpus.tokens(b);
        let len_a = toks_a.len().max(1) as f64;
        let len_b = toks_b.len().max(1) as f64;
        vec![
            jaccard(sa, sb),
            dice(sa, sb),
            overlap_coefficient(sa, sb),
            cosine_tokens(sa, sb),
            self.tfidf.cosine(a, b),
            levenshtein_prepared(ca, cb, scratch),
            jaro_winkler_prepared(ca, cb, scratch),
            self.ngram_prepared(a, b),
            monge_elkan_memoized(self.corpus, a, b, scratch),
            smith_waterman_prepared(ca, cb, self.tape.units(a), self.tape.units(b), scratch),
            self.phonetic_prepared(toks_a, toks_b),
            len_a.min(len_b) / len_a.max(len_b),
        ]
    }

    /// `ngram_similarity(…, 2)` over the precomputed sorted bigram runs:
    /// the same multiset totals and minimum-count intersection, summed in
    /// integers, so the same quotient.
    fn ngram_prepared(&self, a: usize, b: usize) -> f64 {
        let empty_a = self.tape.char_len(a) == 0;
        let empty_b = self.tape.char_len(b) == 0;
        if empty_a && empty_b {
            return 1.0;
        }
        if empty_a || empty_b {
            return 0.0;
        }
        let total = self.bigram_totals[a] + self.bigram_totals[b];
        if total == 0 {
            return 0.0;
        }
        let (ga, gb) = (&self.bigrams[a], &self.bigrams[b]);
        let mut inter = 0u32;
        let (mut ia, mut ib) = (0, 0);
        while ia < ga.len() && ib < gb.len() {
            match ga[ia].0.cmp(&gb[ib].0) {
                std::cmp::Ordering::Less => ia += 1,
                std::cmp::Ordering::Greater => ib += 1,
                std::cmp::Ordering::Equal => {
                    inter += ga[ia].1.min(gb[ib].1);
                    ia += 1;
                    ib += 1;
                }
            }
        }
        2.0 * f64::from(inter) / f64::from(total)
    }

    /// `phonetic_overlap` over precomputed per-term Soundex codes.
    fn phonetic_prepared(&self, toks_a: &[er_text::TermId], toks_b: &[er_text::TermId]) -> f64 {
        if toks_a.is_empty() && toks_b.is_empty() {
            return 1.0;
        }
        let (short, long) = if toks_a.len() <= toks_b.len() {
            (toks_a, toks_b)
        } else {
            (toks_b, toks_a)
        };
        if short.is_empty() {
            return 0.0;
        }
        let hits = short
            .iter()
            .filter(|s| {
                self.term_soundex[s.index()].is_some_and(|cs| {
                    long.iter()
                        .any(|l| self.term_soundex[l.index()] == Some(cs))
                })
            })
            .count();
        hits as f64 / short.len() as f64
    }
}

/// The padded character-bigram multiset of a text as sorted
/// `(packed gram, count)` runs plus the total gram count — the batch
/// form of `er_text::ngram_multiset(…, 2)` (chars packed into a `u64`
/// instead of `Vec<char>` keys).
fn packed_bigram_runs(chars: &[char]) -> (Vec<(u64, u32)>, u32) {
    if chars.is_empty() {
        return (Vec::new(), 0);
    }
    let mut grams: Vec<u64> = Vec::with_capacity(chars.len() + 1);
    let mut prev = '#';
    for &c in chars.iter().chain(std::iter::once(&'#')) {
        grams.push((u64::from(prev as u32) << 32) | u64::from(c as u32));
        prev = c;
    }
    grams.sort_unstable();
    let mut runs: Vec<(u64, u32)> = Vec::new();
    let total = grams.len() as u32;
    for g in grams {
        match runs.last_mut() {
            Some((last, count)) if *last == g => *count += 1,
            _ => runs.push((g, 1)),
        }
    }
    (runs, total)
}

/// Fraction of the shorter token list with a Soundex-equivalent token in
/// the other list.
fn phonetic_overlap(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0.0;
    }
    let hits = short
        .iter()
        .filter(|s| long.iter().any(|l| sounds_like(s, l)))
        .count();
    hits as f64 / short.len() as f64
}

/// One-shot convenience for a single pair.
pub fn pair_features(corpus: &Corpus, a: u32, b: u32) -> Vec<f64> {
    FeatureExtractor::new(corpus).features(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_text::CorpusBuilder;

    fn corpus() -> Corpus {
        CorpusBuilder::new()
            .push_text("sony turntable pslx350h belt drive")
            .push_text("sony pslx350h turntable")
            .push_text("panasonic microwave oven family size")
            .build()
    }

    #[test]
    fn feature_count_and_bounds() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        let f = fx.features(0, 1);
        assert_eq!(f.len(), N_FEATURES);
        for (i, v) in f.iter().enumerate() {
            assert!((0.0..=1.0 + 1e-9).contains(v), "feature {i}: {v}");
        }
    }

    #[test]
    fn matching_pair_dominates_nonmatching() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        let fm = fx.features(0, 1);
        let fn_ = fx.features(0, 2);
        // Every set-based feature must favor the matching pair.
        for i in 0..5 {
            assert!(fm[i] > fn_[i], "feature {i}: {} vs {}", fm[i], fn_[i]);
        }
    }

    #[test]
    fn symmetric() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        let ab = fx.features(0, 1);
        let ba = fx.features(1, 0);
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn one_shot_matches_cached() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        assert_eq!(fx.features(0, 2), pair_features(&c, 0, 2));
    }

    /// A mid-size synthetic corpus with the noise channels that exercise
    /// every feature: shared tokens, typo'd variants, reordering,
    /// abbreviations, and empty-ish records.
    fn synthetic_corpus() -> Corpus {
        let vocab = [
            "sony",
            "turntable",
            "pslx350h",
            "belt",
            "drive",
            "panasonic",
            "microwave",
            "oven",
            "family",
            "size",
            "grill",
            "alley",
            "dayton",
            "beverly",
            "hills",
            "deluxe",
            "stereo",
            "sterio",
            "blvd",
            "boulevard",
            "smith",
            "smyth",
            "q7",
            "x200",
        ];
        let mut state = 0x5851_f42d_4c95_7f2du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut builder = CorpusBuilder::new();
        for i in 0..40 {
            // Vary length widely so texts cross the 64- and 128-char
            // word boundaries of the bit-parallel kernels.
            let n_tokens = 2 + next() % (3 + (i % 4) * 9);
            let text: Vec<&str> = (0..n_tokens).map(|_| vocab[next() % vocab.len()]).collect();
            builder = builder.push_text(text.join(" "));
        }
        builder.build()
    }

    #[test]
    fn batch_path_matches_reference_bitwise() {
        let c = synthetic_corpus();
        let fx = FeatureExtractor::new(&c);
        let mut pairs = Vec::new();
        for a in 0..c.len() as u32 {
            for b in (a + 1)..c.len() as u32 {
                pairs.push((a, b));
            }
        }
        let pool = WorkerPool::new(1);
        let batch = fx.extract_all(&pairs, &pool);
        assert_eq!(batch.len(), pairs.len());
        for (&(a, b), got) in pairs.iter().zip(&batch) {
            let want = fx.features(a, b);
            for (i, (w, g)) in want.iter().zip(got).enumerate() {
                assert_eq!(
                    w.to_bits(),
                    g.to_bits(),
                    "feature {i} diverged on pair ({a}, {b}): {w} vs {g}"
                );
            }
        }
    }

    #[test]
    fn pooled_extraction_matches_serial() {
        let c = synthetic_corpus();
        let fx = FeatureExtractor::new(&c);
        let mut pairs = Vec::new();
        for a in 0..c.len() as u32 {
            for b in (a + 1)..c.len() as u32 {
                pairs.push((a, b));
            }
        }
        let serial = fx.extract_all(&pairs, &WorkerPool::new(1));
        for threads in [2usize, 8] {
            let pooled = fx.extract_all(&pairs, &WorkerPool::new(threads));
            assert_eq!(serial, pooled, "diverged at {threads} threads");
        }
    }

    #[test]
    fn scratch_reuse_across_pairs_is_clean() {
        // Pairs with very different text lengths back to back: stale
        // scratch contents must never leak into the next pair.
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        let mut scratch = FeatureScratch::default();
        let dirty: Vec<Vec<f64>> = [(0u32, 1u32), (1, 2), (0, 2)]
            .iter()
            .map(|&(a, b)| fx.features_prepared(a, b, &mut scratch))
            .collect();
        for (&(a, b), got) in [(0u32, 1u32), (1, 2), (0, 2)].iter().zip(&dirty) {
            assert_eq!(&fx.features(a, b), got, "pair ({a}, {b})");
        }
    }
}
