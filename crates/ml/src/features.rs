//! Per-pair feature extraction.
//!
//! The supervised competitors the paper cites hand-craft features from
//! string-similarity metrics; this extractor reproduces that family over
//! the shared corpus representation.

use er_text::metrics::{smith_waterman_similarity, sounds_like};
use er_text::{
    cosine_tokens, dice, jaccard, jaro_winkler, levenshtein_similarity, monge_elkan,
    ngram_similarity, overlap_coefficient, Corpus, TfIdfModel,
};

/// Number of features produced per pair.
pub const N_FEATURES: usize = 12;

/// Caches the per-corpus state (TF-IDF model, reconstructed token texts)
/// so feature extraction over many pairs is cheap.
#[derive(Debug)]
pub struct FeatureExtractor<'a> {
    corpus: &'a Corpus,
    tfidf: TfIdfModel,
    texts: Vec<String>,
    token_strs: Vec<Vec<String>>,
}

impl<'a> FeatureExtractor<'a> {
    /// Builds the extractor (O(corpus)).
    pub fn new(corpus: &'a Corpus) -> Self {
        let tfidf = TfIdfModel::fit(corpus);
        let mut texts = Vec::with_capacity(corpus.len());
        let mut token_strs = Vec::with_capacity(corpus.len());
        for r in 0..corpus.len() {
            let toks: Vec<String> = corpus
                .tokens(r)
                .iter()
                .map(|&t| corpus.vocab().term(t).to_owned())
                .collect();
            texts.push(toks.join(" "));
            token_strs.push(toks);
        }
        Self {
            corpus,
            tfidf,
            texts,
            token_strs,
        }
    }

    /// Extracts the feature vector for records `(a, b)`.
    pub fn features(&self, a: u32, b: u32) -> Vec<f64> {
        let (a, b) = (a as usize, b as usize);
        let sa = self.corpus.term_set(a);
        let sb = self.corpus.term_set(b);
        let ta: Vec<&str> = self.token_strs[a].iter().map(String::as_str).collect();
        let tb: Vec<&str> = self.token_strs[b].iter().map(String::as_str).collect();
        let len_a = ta.len().max(1) as f64;
        let len_b = tb.len().max(1) as f64;
        vec![
            jaccard(sa, sb),
            dice(sa, sb),
            overlap_coefficient(sa, sb),
            cosine_tokens(sa, sb),
            self.tfidf.cosine(a, b),
            levenshtein_similarity(&self.texts[a], &self.texts[b]),
            jaro_winkler(&self.texts[a], &self.texts[b]),
            ngram_similarity(&self.texts[a], &self.texts[b], 2),
            monge_elkan(&ta, &tb, jaro_winkler),
            smith_waterman_similarity(&self.texts[a], &self.texts[b]),
            // Fraction of tokens in the shorter record with a Soundex
            // twin in the other — phonetic agreement.
            phonetic_overlap(&ta, &tb),
            len_a.min(len_b) / len_a.max(len_b),
        ]
    }
}

/// Fraction of the shorter token list with a Soundex-equivalent token in
/// the other list.
fn phonetic_overlap(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0.0;
    }
    let hits = short
        .iter()
        .filter(|s| long.iter().any(|l| sounds_like(s, l)))
        .count();
    hits as f64 / short.len() as f64
}

/// One-shot convenience for a single pair.
pub fn pair_features(corpus: &Corpus, a: u32, b: u32) -> Vec<f64> {
    FeatureExtractor::new(corpus).features(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_text::CorpusBuilder;

    fn corpus() -> Corpus {
        CorpusBuilder::new()
            .push_text("sony turntable pslx350h belt drive")
            .push_text("sony pslx350h turntable")
            .push_text("panasonic microwave oven family size")
            .build()
    }

    #[test]
    fn feature_count_and_bounds() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        let f = fx.features(0, 1);
        assert_eq!(f.len(), N_FEATURES);
        for (i, v) in f.iter().enumerate() {
            assert!((0.0..=1.0 + 1e-9).contains(v), "feature {i}: {v}");
        }
    }

    #[test]
    fn matching_pair_dominates_nonmatching() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        let fm = fx.features(0, 1);
        let fn_ = fx.features(0, 2);
        // Every set-based feature must favor the matching pair.
        for i in 0..5 {
            assert!(fm[i] > fn_[i], "feature {i}: {} vs {}", fm[i], fn_[i]);
        }
    }

    #[test]
    fn symmetric() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        let ab = fx.features(0, 1);
        let ba = fx.features(1, 0);
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn one_shot_matches_cached() {
        let c = corpus();
        let fx = FeatureExtractor::new(&c);
        assert_eq!(fx.features(0, 2), pair_features(&c, 0, 2));
    }
}
