//! Exporter contract tests: the JSON schema is pinned byte-for-byte by a
//! committed golden file, and the Prometheus text format is linted
//! against the exposition-format rules CI scrapers depend on (unique
//! metric names, a `# TYPE` line per metric, no NaN samples).

use std::collections::BTreeSet;

use er_obs::{BenchFile, BenchRun, CounterStat, GaugeStat, Report, SpanStat, WorkerStat};

/// A fully populated report with every stat family present, so the
/// golden file exercises each branch of the serializer.
fn sample_report() -> Report {
    Report {
        spans: vec![
            SpanStat {
                path: "fusion".to_owned(),
                count: 1,
                total_ns: 2_500_000_000,
                min_ns: 2_500_000_000,
                max_ns: 2_500_000_000,
            },
            SpanStat {
                path: "fusion/iter".to_owned(),
                count: 5,
                total_ns: 900_000_000,
                min_ns: 150_000_000,
                max_ns: 220_000_000,
            },
        ],
        counters: vec![
            CounterStat {
                name: "cliquerank_cache_hits_total".to_owned(),
                value: 7,
            },
            CounterStat {
                name: "pool_jobs_total".to_owned(),
                value: 1974,
            },
        ],
        gauges: vec![GaugeStat {
            name: "blocking_token_reduction_ratio".to_owned(),
            value: 0.985,
        }],
        workers: vec![
            WorkerStat {
                worker: 0,
                busy_ns: 1_200_000_000,
                tasks: 990,
            },
            WorkerStat {
                worker: 1,
                busy_ns: 1_100_000_000,
                tasks: 984,
            },
        ],
    }
}

fn sample_file() -> BenchFile {
    BenchFile {
        runs: vec![BenchRun {
            label: "fusion".to_owned(),
            dataset: "paper".to_owned(),
            mode: "pooled".to_owned(),
            threads: 2,
            scaling_ratio: None,
            dispatch_mode: None,
            reduction_ratio: None,
            pair_completeness: None,
            report: sample_report(),
        }],
    }
}

#[test]
fn json_export_matches_golden_file() {
    let golden = include_str!("golden/bench_file.json");
    let rendered = sample_file().to_json();
    if std::env::var_os("ER_UPDATE_GOLDEN").is_some() {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/bench_file.json");
        std::fs::write(&path, &rendered).expect("rewrite golden file");
        return;
    }
    assert_eq!(
        rendered, golden,
        "BenchFile::to_json drifted from tests/golden/bench_file.json — \
         if the schema change is intentional, update the golden file AND \
         bump the er-obs schema tag"
    );
}

#[test]
fn golden_file_round_trips() {
    let golden = include_str!("golden/bench_file.json");
    let parsed = BenchFile::from_json(golden).expect("golden file parses");
    assert_eq!(
        parsed.to_json(),
        golden,
        "parse → serialize must be identity"
    );
    let run = parsed
        .find("fusion", "paper", "pooled", 2)
        .expect("run identity lookup");
    assert_eq!(run.report.span("fusion/iter").unwrap().count, 5);
    assert_eq!(run.report.counter("pool_jobs_total"), 1974);
}

/// Lints the Prometheus exposition text: every sample belongs to a
/// `# TYPE`-declared metric, metric names are unique and well-formed,
/// and no sample renders as NaN (scrapers treat NaN as absent-but-noisy;
/// the exporter must drop such gauges instead).
#[test]
fn prometheus_text_lints_clean() {
    let mut report = sample_report();
    report.gauges.push(GaugeStat {
        name: "weird name! with spaces".to_owned(),
        value: 1.0,
    });
    report.gauges.push(GaugeStat {
        name: "nan_gauge".to_owned(),
        value: f64::NAN,
    });
    let text = report.to_prometheus();

    let name_ok = |name: &str| {
        !name.is_empty()
            && name
                .chars()
                .enumerate()
                .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
    };
    let mut declared: BTreeSet<String> = BTreeSet::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("# TYPE has a metric name");
            let kind = parts.next().expect("# TYPE has a kind");
            assert!(name_ok(name), "bad metric name {name:?}");
            assert!(
                matches!(kind, "counter" | "gauge"),
                "unexpected TYPE kind {kind:?}"
            );
            assert!(
                declared.insert(name.to_owned()),
                "duplicate # TYPE for {name}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment line {line:?}");
        let name = line
            .split(['{', ' '])
            .next()
            .expect("sample line starts with a metric name");
        assert!(
            declared.contains(name),
            "sample {name} has no preceding # TYPE line"
        );
        let value = line.rsplit(' ').next().unwrap();
        assert_ne!(value, "NaN", "NaN sample leaked into exposition: {line}");
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("unparseable sample value in {line:?}: {e}"));
    }
    assert!(declared.contains("er_span_seconds_total"));
    assert!(declared.contains("er_pool_worker_busy_seconds"));
    assert!(
        !text.contains("nan_gauge"),
        "NaN gauge must be dropped entirely"
    );
}
