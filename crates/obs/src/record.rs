//! The live recording registry (compiled only with `feature = "enabled"`).
//!
//! One global registry holds a span tree plus counter/gauge/worker
//! tables behind a single `Mutex`. Spans are entered and exited at
//! phase granularity (a handful of times per fusion round), so a lock
//! per enter/exit is far below measurement noise; the hot-path cost
//! when recording is *off* is one relaxed atomic load per site.
//!
//! Steady-state recording is allocation-free: node and counter names
//! are interned into `Box<str>` on first visit, and subsequent visits
//! find the existing slot by linear scan (the tables hold dozens of
//! entries, not thousands). Nesting is tracked per thread via a
//! thread-local parent cursor, so spans opened on pool worker threads
//! appear as top-level paths rather than children of the submitting
//! thread's span — documented behaviour, not an accident.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::report::{CounterStat, GaugeStat, Report, SpanStat, WorkerStat};

/// Sentinel parent id for top-level spans.
const NO_PARENT: u32 = u32::MAX;

static RECORDING: AtomicBool = AtomicBool::new(false);

struct SpanNode {
    name: Box<str>,
    parent: u32,
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

#[derive(Default)]
struct State {
    spans: Vec<SpanNode>,
    counters: Vec<(Box<str>, u64)>,
    gauges: Vec<(Box<str>, f64)>,
    workers: Vec<WorkerStat>,
    /// Bumped by [`reset`]; span guards from an older generation
    /// discard their measurement instead of writing into fresh state.
    generation: u64,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

fn lock() -> std::sync::MutexGuard<'static, State> {
    // A poisoned registry only ever means a panic mid-update of plain
    // counters; the data is still coherent enough to report.
    match state().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

thread_local! {
    /// Innermost open span on this thread, or [`NO_PARENT`].
    static CURRENT: Cell<u32> = const { Cell::new(NO_PARENT) };
}

/// Turns recording on or off. Off (the default) makes every
/// instrumentation site a single relaxed atomic load.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Release);
}

/// Whether recording is currently on.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Clears all recorded data and invalidates in-flight span guards.
pub fn reset() {
    let mut s = lock();
    s.spans.clear();
    s.counters.clear();
    s.gauges.clear();
    s.workers.clear();
    s.generation += 1;
    CURRENT.with(|c| c.set(NO_PARENT));
}

/// RAII guard for an open span; records elapsed time on drop.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when recording was off at entry — drop is then a no-op.
    open: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    node: u32,
    prev: u32,
    generation: u64,
    start: Instant,
}

/// Opens a span named `name`, nested under the innermost open span on
/// this thread. Returns an inert guard when recording is off.
#[must_use = "the span measures until the guard is dropped"]
pub fn span(name: &str) -> SpanGuard {
    if !recording() {
        return SpanGuard { open: None };
    }
    let prev = CURRENT.with(Cell::get);
    let (node, generation) = {
        let mut s = lock();
        let generation = s.generation;
        let found = s
            .spans
            .iter()
            .position(|n| n.parent == prev && &*n.name == name);
        let idx = match found {
            Some(idx) => idx,
            None => {
                s.spans.push(SpanNode {
                    name: name.into(),
                    parent: prev,
                    count: 0,
                    total_ns: 0,
                    min_ns: u64::MAX,
                    max_ns: 0,
                });
                s.spans.len() - 1
            }
        };
        (u32::try_from(idx).expect("span table bounded"), generation)
    };
    CURRENT.with(|c| c.set(node));
    SpanGuard {
        open: Some(OpenSpan {
            node,
            prev,
            generation,
            start: Instant::now(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let elapsed_ns = u64::try_from(open.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        CURRENT.with(|c| c.set(open.prev));
        let mut s = lock();
        if s.generation != open.generation {
            return;
        }
        let node = &mut s.spans[open.node as usize];
        node.count += 1;
        node.total_ns += elapsed_ns;
        node.min_ns = node.min_ns.min(elapsed_ns);
        node.max_ns = node.max_ns.max(elapsed_ns);
    }
}

fn slot_add<T>(table: &mut Vec<(Box<str>, T)>, name: &str, update: impl FnOnce(&mut T), init: T) {
    match table.iter_mut().find(|(n, _)| &**n == name) {
        Some((_, value)) => update(value),
        None => {
            let mut value = init;
            update(&mut value);
            table.push((name.into(), value));
        }
    }
}

/// Adds `delta` to the named counter (created at zero on first touch).
pub fn counter_add(name: &str, delta: u64) {
    if !recording() {
        return;
    }
    let mut s = lock();
    slot_add(&mut s.counters, name, |v| *v += delta, 0);
}

/// Sets the named gauge to `value`.
pub fn gauge_set(name: &str, value: f64) {
    if !recording() {
        return;
    }
    let mut s = lock();
    slot_add(&mut s.gauges, name, |v| *v = value, 0.0);
}

/// Publishes one worker's utilization (called by `er-pool` on drop).
pub fn worker_record(worker: u64, busy_ns: u64, tasks: u64) {
    if !recording() {
        return;
    }
    let mut s = lock();
    s.workers.push(WorkerStat {
        worker,
        busy_ns,
        tasks,
    });
}

/// Freezes the current registry contents into a [`Report`]. Span paths
/// are rendered slash-joined from the root; entries keep first-visit
/// order so exports are stable run to run.
pub fn snapshot() -> Report {
    let s = lock();
    let mut paths: Vec<String> = Vec::with_capacity(s.spans.len());
    for node in &s.spans {
        // Parents are always created before children, so a valid parent
        // id is < the child's index. A stale thread-local cursor left
        // over from a reset() fails that test and the node degrades to
        // top-level instead of indexing out of bounds.
        let path = if (node.parent as usize) < paths.len() {
            format!("{}/{}", paths[node.parent as usize], node.name)
        } else {
            node.name.to_string()
        };
        paths.push(path);
    }
    Report {
        spans: s
            .spans
            .iter()
            .zip(&paths)
            .map(|(n, path)| SpanStat {
                path: path.clone(),
                count: n.count,
                total_ns: n.total_ns,
                min_ns: if n.count == 0 { 0 } else { n.min_ns },
                max_ns: n.max_ns,
            })
            .collect(),
        counters: s
            .counters
            .iter()
            .map(|(name, value)| CounterStat {
                name: name.to_string(),
                value: *value,
            })
            .collect(),
        gauges: s
            .gauges
            .iter()
            .map(|(name, value)| GaugeStat {
                name: name.to_string(),
                value: *value,
            })
            .collect(),
        workers: s.workers.clone(),
    }
}
