//! Zero-dependency pipeline observability.
//!
//! `er-obs` gives the workspace one telemetry vocabulary: hierarchical
//! [`span`]s (monotonic phase timers with per-thread parent/child
//! nesting), named [`counter_add`] counters and [`gauge_set`] gauges,
//! per-worker pool utilization ([`worker_record`]), and two exporters —
//! a stable JSON report ([`BenchFile`], schema `er-obs/v1`) and the
//! Prometheus text format ([`Report::to_prometheus`]).
//!
//! # Compile-out and runtime gating
//!
//! Two independent switches keep instrumentation free when unwanted:
//!
//! - **Feature `enabled`** compiles the recording registry in. Without
//!   it every recording entry point here is an inlineable no-op, so
//!   instrumented crates pay literally nothing (pinned by the
//!   `--no-default-features` build gate in `cargo xtask analyze`).
//! - **Runtime flag** [`set_recording`]: even when compiled in,
//!   recording defaults *off* and each site costs one relaxed atomic
//!   load — which is what keeps the steady-state zero-allocation
//!   contracts in `tests/zero_alloc.rs` intact under workspace feature
//!   unification.
//!
//! Instrumentation never perturbs results: spans and counters observe,
//! they do not branch the computation, and the obs-on/obs-off bitwise
//! identity proptests in `er-bench` enforce that at 1/2/8 threads.
//!
//! The report schema and exporters compile unconditionally — they are
//! cold code used by the bench harness and `cargo xtask bench-diff`.

#![deny(unsafe_code)]

pub mod json;
mod report;

pub use report::{
    BenchFile, BenchRun, CounterStat, GaugeStat, Report, SpanStat, WorkerStat, SCHEMA,
};

#[cfg(feature = "enabled")]
mod record;

#[cfg(feature = "enabled")]
pub use record::{
    counter_add, gauge_set, recording, reset, set_recording, snapshot, span, worker_record,
    SpanGuard,
};

#[cfg(not(feature = "enabled"))]
mod stubs {
    use crate::report::Report;

    /// Inert guard; the real one records elapsed time on drop.
    #[derive(Debug)]
    pub struct SpanGuard;

    /// No-op without `feature = "enabled"`.
    #[inline]
    pub fn set_recording(_on: bool) {}

    /// Always `false` without `feature = "enabled"`.
    #[inline]
    #[must_use]
    pub fn recording() -> bool {
        false
    }

    /// No-op without `feature = "enabled"`.
    #[inline]
    pub fn reset() {}

    /// Inert guard without `feature = "enabled"`.
    #[inline]
    #[must_use]
    pub fn span(_name: &str) -> SpanGuard {
        SpanGuard
    }

    /// No-op without `feature = "enabled"`.
    #[inline]
    pub fn counter_add(_name: &str, _delta: u64) {}

    /// No-op without `feature = "enabled"`.
    #[inline]
    pub fn gauge_set(_name: &str, _value: f64) {}

    /// No-op without `feature = "enabled"`.
    #[inline]
    pub fn worker_record(_worker: u64, _busy_ns: u64, _tasks: u64) {}

    /// Empty report without `feature = "enabled"`.
    #[inline]
    #[must_use]
    pub fn snapshot() -> Report {
        Report::default()
    }
}

#[cfg(not(feature = "enabled"))]
pub use stubs::{
    counter_add, gauge_set, recording, reset, set_recording, snapshot, span, worker_record,
    SpanGuard,
};

/// Runs `f` under a span named `name` and also returns its wall time.
///
/// The duration is measured unconditionally (the bench harness needs
/// real timings whether or not recording is on); the span is recorded
/// only when recording is active.
pub fn time<R>(name: &str, f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let _guard = span(name);
    let start = std::time::Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// Environment variable naming the telemetry dump target. Setting it
/// also turns recording on via [`init_from_env`]. A `.prom` suffix
/// selects the Prometheus text format; anything else gets the JSON
/// report.
pub const ER_OBS_OUT: &str = "ER_OBS_OUT";

/// Turns recording on when `ER_OBS_OUT` is set in the environment.
/// Call once near process start (the `er` CLI does).
pub fn init_from_env() {
    if std::env::var_os(ER_OBS_OUT).is_some() {
        set_recording(true);
    }
}

/// Writes the current snapshot to the path named by `ER_OBS_OUT`, if
/// set. Returns the path written to, or `None` when the variable is
/// unset (or recording never produced anything and the feature is off).
pub fn dump_if_requested() -> std::io::Result<Option<std::path::PathBuf>> {
    let Some(path) = std::env::var_os(ER_OBS_OUT) else {
        return Ok(None);
    };
    let path = std::path::PathBuf::from(path);
    let report = snapshot();
    let body = if path.extension().is_some_and(|e| e == "prom") {
        report.to_prometheus()
    } else {
        report.to_value().to_pretty()
    };
    std::fs::write(&path, body)?;
    Ok(Some(path))
}

#[cfg(all(test, feature = "enabled"))]
mod recording_tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The registry is process-global, so tests that record serialize
    /// through this lock to avoid seeing each other's data.
    fn registry_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _serial = registry_lock();
        set_recording(true);
        reset();
        {
            let _outer = span("fusion");
            for _ in 0..3 {
                let _inner = span("iter");
            }
        }
        {
            let _outer = span("fusion");
        }
        let report = snapshot();
        set_recording(false);

        let outer = report.span("fusion").expect("outer span");
        assert_eq!(outer.count, 2);
        let inner = report.span("fusion/iter").expect("nested span");
        assert_eq!(inner.count, 3);
        assert!(inner.min_ns <= inner.max_ns);
        assert!(outer.total_ns >= inner.total_ns);
    }

    #[test]
    fn counters_gauges_and_workers() {
        let _serial = registry_lock();
        set_recording(true);
        reset();
        counter_add("hits", 2);
        counter_add("hits", 3);
        gauge_set("ratio", 0.5);
        gauge_set("ratio", 0.75);
        worker_record(1, 10, 4);
        let report = snapshot();
        set_recording(false);

        assert_eq!(report.counter("hits"), 5);
        assert_eq!(report.gauge("ratio"), Some(0.75));
        assert_eq!(report.workers.len(), 1);
        assert_eq!(report.workers[0].tasks, 4);
    }

    #[test]
    fn recording_off_records_nothing() {
        let _serial = registry_lock();
        set_recording(false);
        reset();
        {
            let _s = span("ghost");
            counter_add("ghost", 1);
            gauge_set("ghost", 1.0);
            worker_record(0, 1, 1);
        }
        let report = snapshot();
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert!(report.workers.is_empty());
    }

    #[test]
    fn reset_mid_span_discards_the_measurement() {
        let _serial = registry_lock();
        set_recording(true);
        reset();
        let guard = span("stale");
        reset();
        drop(guard);
        let report = snapshot();
        set_recording(false);
        assert!(report.span("stale").is_none());
    }

    #[test]
    fn worker_thread_spans_are_top_level() {
        let _serial = registry_lock();
        set_recording(true);
        reset();
        let _outer = span("main_phase");
        std::thread::spawn(|| {
            let _w = span("worker_phase");
        })
        .join()
        .unwrap();
        drop(_outer);
        let report = snapshot();
        set_recording(false);
        assert!(report.span("worker_phase").is_some());
        assert!(report.span("main_phase/worker_phase").is_none());
    }

    #[test]
    fn time_measures_and_records() {
        let _serial = registry_lock();
        set_recording(true);
        reset();
        let (value, elapsed) = time("timed", || 41 + 1);
        let report = snapshot();
        set_recording(false);
        assert_eq!(value, 42);
        let stat = report.span("timed").unwrap();
        assert_eq!(stat.count, 1);
        // The span wraps the closure plus the Instant bookkeeping, so
        // its recorded time can only exceed the returned duration.
        assert!(u128::from(stat.total_ns) >= elapsed.as_nanos() || stat.total_ns == u64::MAX);
    }
}
