//! The stable report schema and its two exporters.
//!
//! A [`Report`] is a frozen snapshot of the recording registry: span
//! aggregates keyed by slash-joined path, monotonically-increasing
//! counters, point-in-time gauges, and per-worker pool utilization.
//! [`BenchFile`] wraps a list of labelled reports into the on-disk
//! `BENCH_*.json` format (schema tag `er-obs/v1`) that the bench
//! harness writes and `cargo xtask bench-diff` reads back.
//!
//! Everything here compiles regardless of the `enabled` feature — the
//! exporters are cold code used by the harness and by xtask, not by
//! the instrumented hot paths.

use crate::json::{self, Value};

/// Schema identifier written into every `BENCH_*.json`.
pub const SCHEMA: &str = "er-obs/v1";

/// Aggregate statistics for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Slash-joined path from the top-level span, e.g. `fusion/iter/sweep`.
    pub path: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Total wall time across all entries, in nanoseconds.
    pub total_ns: u64,
    /// Shortest single entry, in nanoseconds.
    pub min_ns: u64,
    /// Longest single entry, in nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    /// Total time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Whether this is a top-level span (no `/` in the path).
    pub fn is_top_level(&self) -> bool {
        !self.path.contains('/')
    }
}

/// A named monotonically-increasing counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Counter name, e.g. `cliquerank_cache_hits_total`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A named point-in-time gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeStat {
    /// Gauge name, e.g. `blocking_reduction_ratio`.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// Per-worker utilization published by `er-pool` when a pool drops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStat {
    /// Worker index; 0 is the submitting thread (inline + help work).
    pub worker: u64,
    /// Nanoseconds spent executing jobs.
    pub busy_ns: u64,
    /// Number of jobs executed.
    pub tasks: u64,
}

/// A frozen snapshot of everything recorded since the last reset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Span aggregates, in first-visit order.
    pub spans: Vec<SpanStat>,
    /// Counters, in first-visit order.
    pub counters: Vec<CounterStat>,
    /// Gauges, in first-visit order.
    pub gauges: Vec<GaugeStat>,
    /// Pool worker utilization, one entry per worker per pool drop.
    pub workers: Vec<WorkerStat>,
}

impl Report {
    /// Looks up a span aggregate by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Looks up a counter value by name (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Converts to the JSON tree used inside [`BenchFile`].
    pub fn to_value(&self) -> Value {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Value::Obj(vec![
                    ("path".into(), Value::Str(s.path.clone())),
                    ("count".into(), Value::Num(s.count as f64)),
                    ("total_ns".into(), Value::Num(s.total_ns as f64)),
                    ("min_ns".into(), Value::Num(s.min_ns as f64)),
                    ("max_ns".into(), Value::Num(s.max_ns as f64)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("name".into(), Value::Str(c.name.clone())),
                    ("value".into(), Value::Num(c.value as f64)),
                ])
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|g| {
                Value::Obj(vec![
                    ("name".into(), Value::Str(g.name.clone())),
                    ("value".into(), Value::Num(g.value)),
                ])
            })
            .collect();
        let workers = self
            .workers
            .iter()
            .map(|w| {
                Value::Obj(vec![
                    ("worker".into(), Value::Num(w.worker as f64)),
                    ("busy_ns".into(), Value::Num(w.busy_ns as f64)),
                    ("tasks".into(), Value::Num(w.tasks as f64)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("spans".into(), Value::Arr(spans)),
            ("counters".into(), Value::Arr(counters)),
            ("gauges".into(), Value::Arr(gauges)),
            ("workers".into(), Value::Arr(workers)),
        ])
    }

    /// Rebuilds a report from its JSON tree.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let arr = |key: &str| -> Result<&[Value], String> {
            value
                .get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("report missing array field {key:?}"))
        };
        let str_field = |obj: &Value, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let u64_field = |obj: &Value, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };

        let mut report = Report::default();
        for s in arr("spans")? {
            report.spans.push(SpanStat {
                path: str_field(s, "path")?,
                count: u64_field(s, "count")?,
                total_ns: u64_field(s, "total_ns")?,
                min_ns: u64_field(s, "min_ns")?,
                max_ns: u64_field(s, "max_ns")?,
            });
        }
        for c in arr("counters")? {
            report.counters.push(CounterStat {
                name: str_field(c, "name")?,
                value: u64_field(c, "value")?,
            });
        }
        for g in arr("gauges")? {
            report.gauges.push(GaugeStat {
                name: str_field(g, "name")?,
                value: g
                    .get("value")
                    .and_then(Value::as_f64)
                    .ok_or("missing number field \"value\"")?,
            });
        }
        for w in arr("workers")? {
            report.workers.push(WorkerStat {
                worker: u64_field(w, "worker")?,
                busy_ns: u64_field(w, "busy_ns")?,
                tasks: u64_field(w, "tasks")?,
            });
        }
        Ok(report)
    }

    /// Renders the Prometheus text exposition format. Metric names are
    /// prefixed `er_` and sanitized to `[a-zA-Z0-9_]`; every metric
    /// gets a `# TYPE` line; non-finite gauge values are dropped (the
    /// format has no NaN).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("# TYPE er_span_seconds_total counter\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "er_span_seconds_total{{path=\"{}\"}} {}\n",
                    escape_label(&s.path),
                    s.total_seconds()
                ));
            }
            out.push_str("# TYPE er_span_entries_total counter\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "er_span_entries_total{{path=\"{}\"}} {}\n",
                    escape_label(&s.path),
                    s.count
                ));
            }
        }
        for c in &self.counters {
            let name = sanitize_metric(&c.name);
            out.push_str(&format!("# TYPE er_{name} counter\n"));
            out.push_str(&format!("er_{name} {}\n", c.value));
        }
        for g in &self.gauges {
            if !g.value.is_finite() {
                continue;
            }
            let name = sanitize_metric(&g.name);
            out.push_str(&format!("# TYPE er_{name} gauge\n"));
            out.push_str(&format!("er_{name} {}\n", g.value));
        }
        if !self.workers.is_empty() {
            out.push_str("# TYPE er_pool_worker_busy_seconds counter\n");
            for w in &self.workers {
                out.push_str(&format!(
                    "er_pool_worker_busy_seconds{{worker=\"{}\"}} {}\n",
                    w.worker,
                    w.busy_ns as f64 / 1e9
                ));
            }
            out.push_str("# TYPE er_pool_worker_tasks_total counter\n");
            for w in &self.workers {
                out.push_str(&format!(
                    "er_pool_worker_tasks_total{{worker=\"{}\"}} {}\n",
                    w.worker, w.tasks
                ));
            }
        }
        out
    }
}

fn sanitize_metric(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One labelled bench run inside a [`BenchFile`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// What was measured, e.g. `fusion`, `matmul`, `simrank`.
    pub label: String,
    /// Dataset or size tag, e.g. `restaurant`, `n256`.
    pub dataset: String,
    /// Variant tag, e.g. `pooled`, `serial`, `cold`, `warm`.
    pub mode: String,
    /// Thread count the run used (0 when not applicable).
    pub threads: u64,
    /// Wall-time ratio of this run to the matching 1-thread run
    /// (`tN/t1`, top-level span). `None` when the harness did not
    /// compute one (e.g. the t1 run itself, or pre-v1.1 files).
    /// Values above 1.0 mean adding threads made the run *slower* —
    /// the scaling inversion `bench-diff --gate-scaling` rejects.
    pub scaling_ratio: Option<f64>,
    /// How the pool dispatched this run's work: `"serial-inline"` when
    /// every dispatch decision stayed on the caller thread, `"pooled"`
    /// when at least one region fanned out, `None` when unrecorded.
    pub dispatch_mode: Option<String>,
    /// Blocking quality: `1 − |candidates| / (n(n−1)/2)`. `None` for
    /// runs that are not candidate-generation measurements.
    pub reduction_ratio: Option<f64>,
    /// Blocking recall: fraction of ground-truth matching pairs present
    /// in the candidate set. `None` when not measured.
    pub pair_completeness: Option<f64>,
    /// The telemetry snapshot for this run.
    pub report: Report,
}

/// The on-disk `BENCH_*.json` document: a schema tag plus runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchFile {
    /// All runs, in emission order.
    pub runs: Vec<BenchRun>,
}

impl BenchFile {
    /// Serializes to the pretty-printed `er-obs/v1` JSON document.
    pub fn to_json(&self) -> String {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("label".into(), Value::Str(r.label.clone())),
                    ("dataset".into(), Value::Str(r.dataset.clone())),
                    ("mode".into(), Value::Str(r.mode.clone())),
                    ("threads".into(), Value::Num(r.threads as f64)),
                ];
                if let Some(ratio) = r.scaling_ratio {
                    fields.push(("scaling_ratio".into(), Value::Num(ratio)));
                }
                if let Some(mode) = &r.dispatch_mode {
                    fields.push(("dispatch_mode".into(), Value::Str(mode.clone())));
                }
                if let Some(rr) = r.reduction_ratio {
                    fields.push(("reduction_ratio".into(), Value::Num(rr)));
                }
                if let Some(pc) = r.pair_completeness {
                    fields.push(("pair_completeness".into(), Value::Num(pc)));
                }
                fields.push(("report".into(), r.report.to_value()));
                Value::Obj(fields)
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("runs".into(), Value::Arr(runs)),
        ])
        .to_pretty()
    }

    /// Parses an `er-obs/v1` document; rejects other schema tags.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let schema = value
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing \"schema\" field")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?}, expected {SCHEMA:?}"
            ));
        }
        let mut file = BenchFile::default();
        for run in value
            .get("runs")
            .and_then(Value::as_arr)
            .ok_or("missing \"runs\" array")?
        {
            let text_field = |key: &str| -> Result<String, String> {
                run.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("run missing string field {key:?}"))
            };
            file.runs.push(BenchRun {
                label: text_field("label")?,
                dataset: text_field("dataset")?,
                mode: text_field("mode")?,
                threads: run
                    .get("threads")
                    .and_then(Value::as_u64)
                    .ok_or("run missing integer field \"threads\"")?,
                // Both optional: absent in files written before the
                // scaling-gate schema extension.
                scaling_ratio: run.get("scaling_ratio").and_then(Value::as_f64),
                dispatch_mode: run
                    .get("dispatch_mode")
                    .and_then(Value::as_str)
                    .map(str::to_owned),
                reduction_ratio: run.get("reduction_ratio").and_then(Value::as_f64),
                pair_completeness: run.get("pair_completeness").and_then(Value::as_f64),
                report: Report::from_value(
                    run.get("report").ok_or("run missing \"report\" object")?,
                )?,
            });
        }
        Ok(file)
    }

    /// Finds a run by its identity tuple.
    pub fn find(&self, label: &str, dataset: &str, mode: &str, threads: u64) -> Option<&BenchRun> {
        self.runs.iter().find(|r| {
            r.label == label && r.dataset == dataset && r.mode == mode && r.threads == threads
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            spans: vec![
                SpanStat {
                    path: "fusion".into(),
                    count: 1,
                    total_ns: 2_000_000_000,
                    min_ns: 2_000_000_000,
                    max_ns: 2_000_000_000,
                },
                SpanStat {
                    path: "fusion/iter".into(),
                    count: 5,
                    total_ns: 900_000_000,
                    min_ns: 100_000_000,
                    max_ns: 300_000_000,
                },
            ],
            counters: vec![CounterStat {
                name: "cliquerank_cache_hits_total".into(),
                value: 7,
            }],
            gauges: vec![GaugeStat {
                name: "blocking_reduction_ratio".into(),
                value: 0.985,
            }],
            workers: vec![WorkerStat {
                worker: 0,
                busy_ns: 1_500_000_000,
                tasks: 42,
            }],
        }
    }

    #[test]
    fn bench_file_roundtrips() {
        let file = BenchFile {
            runs: vec![BenchRun {
                label: "fusion".into(),
                dataset: "restaurant".into(),
                mode: "pooled".into(),
                threads: 4,
                scaling_ratio: Some(0.93),
                dispatch_mode: Some("pooled".into()),
                reduction_ratio: Some(0.9991),
                pair_completeness: Some(0.97),
                report: sample_report(),
            }],
        };
        let text = file.to_json();
        assert!(text.contains("\"scaling_ratio\""));
        assert!(text.contains("\"dispatch_mode\""));
        assert!(text.contains("\"reduction_ratio\""));
        assert!(text.contains("\"pair_completeness\""));
        let parsed = BenchFile::from_json(&text).unwrap();
        assert_eq!(parsed, file);
        assert!(parsed.find("fusion", "restaurant", "pooled", 4).is_some());
        assert!(parsed.find("fusion", "restaurant", "pooled", 2).is_none());
    }

    #[test]
    fn scaling_fields_are_optional_both_ways() {
        // Files written before the scaling-gate extension parse fine...
        let legacy = BenchFile {
            runs: vec![BenchRun {
                label: "fusion".into(),
                dataset: "restaurant".into(),
                mode: "pooled".into(),
                threads: 1,
                scaling_ratio: None,
                dispatch_mode: None,
                reduction_ratio: None,
                pair_completeness: None,
                report: Report::default(),
            }],
        };
        let text = legacy.to_json();
        // ...and runs without the fields don't emit them.
        assert!(!text.contains("scaling_ratio"));
        assert!(!text.contains("dispatch_mode"));
        assert!(!text.contains("reduction_ratio"));
        assert!(!text.contains("pair_completeness"));
        let parsed = BenchFile::from_json(&text).unwrap();
        assert_eq!(parsed.runs[0].scaling_ratio, None);
        assert_eq!(parsed.runs[0].dispatch_mode, None);
        assert_eq!(parsed.runs[0].reduction_ratio, None);
        assert_eq!(parsed.runs[0].pair_completeness, None);
    }

    #[test]
    fn from_json_rejects_other_schemas() {
        let err = BenchFile::from_json("{\"schema\": \"other/v9\", \"runs\": []}").unwrap_err();
        assert!(err.contains("unsupported schema"));
    }

    #[test]
    fn prometheus_export_has_types_and_no_nan() {
        let mut report = sample_report();
        report.gauges.push(GaugeStat {
            name: "bad".into(),
            value: f64::NAN,
        });
        let text = report.to_prometheus();
        assert!(text.contains("# TYPE er_span_seconds_total counter"));
        assert!(text.contains("er_span_seconds_total{path=\"fusion/iter\"} 0.9"));
        assert!(text.contains("# TYPE er_cliquerank_cache_hits_total counter"));
        assert!(text.contains("er_pool_worker_tasks_total{worker=\"0\"} 42"));
        assert!(!text.contains("NaN"));
        assert!(!text.contains("er_bad"));
    }

    #[test]
    fn report_lookups() {
        let report = sample_report();
        assert_eq!(report.span("fusion/iter").unwrap().count, 5);
        assert_eq!(report.counter("cliquerank_cache_hits_total"), 7);
        assert_eq!(report.counter("missing"), 0);
        assert_eq!(report.gauge("blocking_reduction_ratio"), Some(0.985));
        assert!(report.spans[0].is_top_level());
        assert!(!report.spans[1].is_top_level());
    }
}
