//! Minimal JSON tree, writer and parser.
//!
//! `er-obs` is deliberately dependency-free (it sits below every other
//! crate in the workspace, including `er-pool`), so the report schema
//! carries its own JSON support: a small [`Value`] tree, a pretty
//! writer, and a recursive-descent parser. It covers exactly the JSON
//! the exporters emit — objects, arrays, strings with escapes, finite
//! numbers, booleans and null — which is also all `cargo xtask
//! bench-diff` needs to read a `BENCH_*.json` back.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what non-finite numbers serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Integers up to 2^53 round-trip exactly, which
    /// covers every counter the exporters emit (nanosecond totals
    /// overflow 2^53 only after ~104 days of accumulated span time).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, with insertion order preserved (the writer relies on
    /// it for stable, diffable output).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the stable format every `BENCH_*.json` artifact uses.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) if items.is_empty() => out.push_str("[]"),
            Value::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Value::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 == fields.len() { "\n" } else { ",\n" });
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes a finite number in its shortest round-trip form; integral
/// values print without a fraction, non-finite ones degrade to `null`
/// (JSON has no NaN/∞, and the Prometheus exporter filters them too).
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        write!(out, "{}", n as i64).unwrap();
    } else {
        write!(out, "{n}").unwrap();
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry the byte offset they tripped on.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not produced by our writer;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && !matches!(self.bytes[self.pos], b'"' | b'\\')
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str("er-obs/v1".into())),
            (
                "runs".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("threads".into(), Value::Num(4.0)),
                    ("seconds".into(), Value::Num(0.25)),
                    ("quoted \"name\"".into(), Value::Str("a\nb\t\\".into())),
                    ("empty".into(), Value::Arr(Vec::new())),
                    ("none".into(), Value::Null),
                    ("ok".into(), Value::Bool(true)),
                ])]),
            ),
        ]);
        let text = doc.to_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut out = String::new();
        write_number(&mut out, 123456789.0);
        assert_eq!(out, "123456789");
        out.clear();
        write_number(&mut out, 0.125);
        assert_eq!(out, "0.125");
        out.clear();
        write_number(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors_navigate() {
        let v = parse("{\"a\": [1, \"two\"], \"b\": 3}").unwrap();
        assert_eq!(v.get("b").and_then(Value::as_u64), Some(3));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("two"));
        assert_eq!(v.get("missing"), None);
    }
}
