//! Hybrid baseline (§III-C, Table II "Hybrid" row).

use er_graph::bipartite::PairNode;
use er_pool::WorkerPool;
use er_text::Corpus;

use crate::{PairScorer, SimRankScorer, TwIdfScorer};

/// Linear fusion of topological (SimRank) and textual (TW-IDF)
/// similarity: `sh = β · sb + (1 − β) · su` (Eq. 5, β = 0.5).
///
/// The two score families live on different scales (SimRank in `[0, C1]`,
/// TW-IDF unbounded), so each is max-normalized to `[0, 1]` before the
/// combination — without this the larger-scale family silently dominates
/// regardless of β. The paper leaves the scale handling unstated; this is
/// our resolution (DESIGN.md §4).
#[derive(Debug, Clone, Copy)]
pub struct HybridScorer {
    /// Mixing weight β toward the topological (SimRank) score.
    pub beta: f64,
    /// The SimRank side.
    pub simrank: SimRankScorer,
    /// The TW-IDF side.
    pub twidf: TwIdfScorer,
}

impl Default for HybridScorer {
    fn default() -> Self {
        Self {
            beta: 0.5,
            simrank: SimRankScorer::default(),
            twidf: TwIdfScorer::default(),
        }
    }
}

impl PairScorer for HybridScorer {
    fn name(&self) -> &'static str {
        "Hybrid"
    }

    fn score_pairs(&self, corpus: &Corpus, pairs: &[PairNode]) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&self.beta), "beta must be in [0, 1]");
        let sb = max_normalized(self.simrank.score_pairs(corpus, pairs));
        let su = max_normalized(self.twidf.score_pairs(corpus, pairs));
        sb.iter()
            .zip(&su)
            .map(|(b, u)| self.beta * b + (1.0 - self.beta) * u)
            .collect()
    }

    fn score_pairs_pooled(
        &self,
        corpus: &Corpus,
        pairs: &[PairNode],
        pool: &WorkerPool,
    ) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&self.beta), "beta must be in [0, 1]");
        // Both sides run on the pool; the max-normalization folds and the
        // β-combination stay serial, so the fusion is bit-identical to
        // the serial path.
        let sb = max_normalized(self.simrank.score_pairs_pooled(corpus, pairs, pool)); // er-lint: allow(dispatch) -- delegation; the callee scorer decides
        let su = max_normalized(self.twidf.score_pairs_pooled(corpus, pairs, pool)); // er-lint: allow(dispatch) -- delegation; the callee scorer decides
        sb.iter()
            .zip(&su)
            .map(|(b, u)| self.beta * b + (1.0 - self.beta) * u)
            .collect()
    }
}

fn max_normalized(mut scores: Vec<f64>) -> Vec<f64> {
    let max = scores.iter().fold(0.0f64, |m, &v| m.max(v));
    if max > 0.0 {
        for s in &mut scores {
            *s /= max;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_text::CorpusBuilder;

    fn corpus() -> Corpus {
        CorpusBuilder::new()
            .push_text("alpha beta gamma")
            .push_text("alpha beta delta")
            .push_text("delta epsilon zeta")
            .push_text("eta theta iota")
            .build()
    }

    #[test]
    fn beta_extremes_recover_components() {
        let c = corpus();
        let pairs = crate::candidate_pairs(&c, None);
        let pure_simrank = HybridScorer {
            beta: 1.0,
            ..Default::default()
        }
        .score_pairs(&c, &pairs);
        let pure_twidf = HybridScorer {
            beta: 0.0,
            ..Default::default()
        }
        .score_pairs(&c, &pairs);
        let sr = max_normalized_vec(SimRankScorer::default().score_pairs(&c, &pairs));
        let tw = max_normalized_vec(TwIdfScorer::default().score_pairs(&c, &pairs));
        for (a, b) in pure_simrank.iter().zip(&sr) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in pure_twidf.iter().zip(&tw) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    fn max_normalized_vec(v: Vec<f64>) -> Vec<f64> {
        super::max_normalized(v)
    }

    #[test]
    fn combined_scores_bounded() {
        let c = corpus();
        let pairs = crate::candidate_pairs(&c, None);
        let s = HybridScorer::default().score_pairs(&c, &pairs);
        assert!(s.iter().all(|v| (0.0..=1.0 + 1e-12).contains(v)));
        assert!(s.iter().any(|v| *v > 0.0));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        let c = corpus();
        let pairs = crate::candidate_pairs(&c, None);
        HybridScorer {
            beta: 1.5,
            ..Default::default()
        }
        .score_pairs(&c, &pairs);
    }
}
