//! String-similarity baselines on the batched engine.
//!
//! The classic edit-distance family (the string-distance baselines the
//! paper's §II-A groups with Jaccard) as [`PairScorer`]s: one scorer
//! per [`SimKernel`], scoring the records' reconstructed token texts.
//! The serial path is the per-pair metric oracle
//! ([`BatchScorer::score_pair_reference`] — fresh strings, scalar DP);
//! the pooled path runs the batch engine over the string tape, which
//! the engine's proptests pin bit-identical to the oracle, so the
//! Table II harness's serial-vs-pooled assertion holds here too.

use er_graph::bipartite::PairNode;
use er_pool::WorkerPool;
use er_text::{BatchScorer, Corpus, SimKernel};

use crate::PairScorer;

/// A string-kernel baseline: Levenshtein, Jaro-Winkler, Smith-Waterman
/// or Monge-Elkan over record texts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StringSimScorer {
    kernel: SimKernel,
}

impl StringSimScorer {
    /// Scorer for `kernel`.
    pub fn new(kernel: SimKernel) -> Self {
        Self { kernel }
    }

    /// One scorer per kernel, in report order.
    pub fn all() -> [StringSimScorer; 4] {
        SimKernel::ALL.map(StringSimScorer::new)
    }
}

impl PairScorer for StringSimScorer {
    fn name(&self) -> &'static str {
        match self.kernel {
            SimKernel::Levenshtein => "Levenshtein",
            SimKernel::JaroWinkler => "Jaro-Winkler",
            SimKernel::SmithWaterman => "Smith-Waterman",
            SimKernel::MongeElkan => "Monge-Elkan",
        }
    }

    fn score_pairs(&self, corpus: &Corpus, pairs: &[PairNode]) -> Vec<f64> {
        let scorer = BatchScorer::new(corpus);
        pairs
            .iter()
            .map(|p| scorer.score_pair_reference(self.kernel, p.a, p.b))
            .collect()
    }

    fn score_pairs_pooled(
        &self,
        corpus: &Corpus,
        pairs: &[PairNode],
        pool: &WorkerPool,
    ) -> Vec<f64> {
        let scorer = BatchScorer::new(corpus);
        let idx: Vec<(u32, u32)> = pairs.iter().map(|p| (p.a, p.b)).collect();
        // The engine dispatches on the tape-derived DP cell count and
        // fans out in the repo's deterministic chunks.
        scorer.score(self.kernel, &idx, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_sweep_separates_duplicates() {
        let corpus = er_text::CorpusBuilder::new()
            .push_text("fenix argyle 8358 sunset blvd")
            .push_text("fenix 8358 sunset blvd hollywood")
            .push_text("grill alley 9560 dayton way")
            .push_text("grill on alley 9560 dayton")
            .build();
        let pairs = crate::candidate_pairs(&corpus, None);
        let truth = er_eval::TruthPairs::from_pairs([(0u32, 1u32), (2, 3)]);
        for scorer in StringSimScorer::all() {
            let result = crate::evaluate_scorer(&scorer, &corpus, &pairs, &truth);
            assert!(result.f1 > 0.99, "{}: {result:?}", scorer.name());
        }
    }
}
