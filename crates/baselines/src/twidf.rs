//! TW-IDF / PageRank baseline (§III-B, Table II "PageRank" row).

use er_graph::bipartite::PairNode;
use er_graph::{cooccurrence_graph, pagerank, PageRankConfig};
use er_pool::WorkerPool;
use er_text::Corpus;

use crate::{score_pairs_chunked, PairScorer};

/// TW-IDF textual similarity: term salience `s(t)` from PageRank on the
/// sliding-window co-occurrence graph (Eq. 3), combined per pair as
/// `su(ri, rj) = Σ_{t ∈ ri ∧ t ∈ rj} s(t) · ln((n + 1) / df(t))` (Eq. 4).
#[derive(Debug, Clone, Copy)]
pub struct TwIdfScorer {
    /// Sliding-window size over each record's token sequence.
    pub window: usize,
    /// PageRank parameters (paper: damping φ = 0.85).
    pub pagerank: PageRankConfig,
}

impl Default for TwIdfScorer {
    fn default() -> Self {
        Self {
            window: 3,
            pagerank: PageRankConfig::default(),
        }
    }
}

impl TwIdfScorer {
    /// The PageRank term-salience vector this scorer uses — exposed for
    /// the Table IV Spearman comparison against ITER's weights.
    pub fn term_salience(&self, corpus: &Corpus) -> Vec<f64> {
        // `Corpus::tokens` yields `&[TermId]`; the co-occurrence builder
        // wants `&[u32]`. Copy the ids out once per scoring run — this is
        // a baseline path, not a fusion hot path, and the copy keeps the
        // crate free of `unsafe` (the lint wall forbids the layout-cast
        // shortcut that used to live here).
        let id_lists: Vec<Vec<u32>> = (0..corpus.len())
            .map(|r| corpus.tokens(r).iter().map(|t| t.0).collect())
            .collect();
        let token_lists: Vec<&[u32]> = id_lists.iter().map(Vec::as_slice).collect();
        let graph = cooccurrence_graph(&token_lists, corpus.vocab_len(), self.window);
        pagerank(&graph, &self.pagerank)
    }
}

impl PairScorer for TwIdfScorer {
    fn name(&self) -> &'static str {
        "PageRank (TW-IDF)"
    }

    fn score_pairs(&self, corpus: &Corpus, pairs: &[PairNode]) -> Vec<f64> {
        self.score_pairs_pooled(corpus, pairs, &WorkerPool::new(1)) // er-lint: allow(dispatch) -- serial delegation; WorkerPool::new(1) cannot fan out
    }

    fn score_pairs_pooled(
        &self,
        corpus: &Corpus,
        pairs: &[PairNode],
        pool: &WorkerPool,
    ) -> Vec<f64> {
        // PageRank salience is one fixed-point solve — serial; the
        // per-pair Eq. 4 combination fans out over candidate chunks.
        let salience = self.term_salience(corpus);
        let n = corpus.len() as f64;
        score_pairs_chunked(pairs, crate::term_walk_work(corpus, pairs), pool, |p| {
            corpus
                .shared_terms(p.a as usize, p.b as usize)
                .iter()
                .map(|&t| {
                    let df = corpus.filtered_doc_freq(t) as f64;
                    if df == 0.0 {
                        return 0.0;
                    }
                    salience[t.index()] * ((n + 1.0) / df).ln()
                })
                .sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_text::CorpusBuilder;

    #[test]
    fn more_shared_terms_score_higher() {
        let corpus = CorpusBuilder::new()
            .push_text("alpha beta gamma delta")
            .push_text("alpha beta gamma epsilon")
            .push_text("alpha zeta eta theta")
            .build();
        let pairs = vec![PairNode::new(0, 1), PairNode::new(0, 2)];
        let s = TwIdfScorer::default().score_pairs(&corpus, &pairs);
        assert!(s[0] > s[1], "{s:?}");
    }

    #[test]
    fn salience_vector_covers_vocab() {
        let corpus = CorpusBuilder::new()
            .push_text("a b c")
            .push_text("b c d")
            .build();
        let s = TwIdfScorer::default().term_salience(&corpus);
        assert_eq!(s.len(), corpus.vocab_len());
        assert!(s.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn hub_words_gain_salience_but_idf_punishes_them() {
        // "common" co-occurs with everything (high PageRank) but appears
        // in every record (low IDF): the IDF factor must keep a pair
        // sharing only "common" below a pair sharing a rare term.
        let corpus = CorpusBuilder::new()
            .push_text("common rare1 x1")
            .push_text("common rare1 x2")
            .push_text("common x3 x4")
            .push_text("common x5 x6")
            .build();
        let pairs = vec![PairNode::new(0, 1), PairNode::new(2, 3)];
        let s = TwIdfScorer::default().score_pairs(&corpus, &pairs);
        assert!(s[0] > s[1], "{s:?}");
    }
}
