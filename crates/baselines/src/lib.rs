//! # er-baselines
//!
//! The unsupervised baseline matchers the paper evaluates against
//! (Table II):
//!
//! * [`jaccard`] — Jaccard coefficient over term sets (§II-A; the
//!   machine-side filter of the crowd methods).
//! * [`tfidf`] — TF-IDF cosine (Cohen's word-based representation \[2\]).
//! * [`simrank`] — bipartite SimRank on the record–term graph
//!   (§III-A, Eq. 1–2, C1 = C2 = 0.8).
//! * [`twidf`] — TW-IDF: PageRank term salience on the sliding-window
//!   co-occurrence graph, combined with IDF (§III-B, Eq. 3–4, φ = 0.85).
//! * [`hybrid`] — the linear fusion of SimRank and TW-IDF scores
//!   (§III-C, Eq. 5, β = 0.5).
//!
//! Every matcher implements [`PairScorer`]; decisions use the
//! optimal-threshold sweep of `er_eval::sweep_threshold`, matching the
//! paper's protocol ("an upper bound of manually tuned parameters").

#![deny(unsafe_code)]

pub mod hybrid;
pub mod jaccard;
pub mod simrank;
pub mod strsim;
pub mod tfidf;
pub mod twidf;

use er_eval::{sweep_threshold_iter, SweepResult, TruthPairs};
use er_graph::bipartite::PairNode;
use er_graph::BipartiteGraphBuilder;
use er_pool::WorkerPool;
use er_text::{BlockingStrategy, Corpus, TermId};

pub use hybrid::HybridScorer;
pub use jaccard::JaccardScorer;
pub use simrank::SimRankScorer;
pub use strsim::StringSimScorer;
pub use tfidf::TfIdfScorer;
pub use twidf::TwIdfScorer;

/// A baseline matcher: assigns a similarity score to each candidate pair.
pub trait PairScorer {
    /// Matcher name as it appears in Table II.
    fn name(&self) -> &'static str;

    /// Scores each candidate pair (parallel to `pairs`). Scores need not
    /// be normalized; the threshold sweep handles arbitrary ranges.
    fn score_pairs(&self, corpus: &Corpus, pairs: &[PairNode]) -> Vec<f64>;

    /// Scores each candidate pair on a shared worker pool.
    ///
    /// **Determinism contract:** implementations split the candidate
    /// list into deterministic chunks, write disjoint output ranges, and
    /// keep every per-pair computation serial, so the result is
    /// bit-identical to [`PairScorer::score_pairs`] at any pool size
    /// (asserted by the Table II harness on every run). The default
    /// simply runs the serial path.
    fn score_pairs_pooled(
        &self,
        corpus: &Corpus,
        pairs: &[PairNode],
        pool: &WorkerPool,
    ) -> Vec<f64> {
        let _ = pool;
        self.score_pairs(corpus, pairs)
    }
}

/// Minimum candidate pairs per pooled scoring chunk: per-pair scoring is
/// cheap relative to SimRank slots, so chunks are coarser.
const SCORE_MIN_CHUNK: usize = 256;

/// Dispatch work estimate for scorers that walk the two records' term
/// vectors per pair: the sum of the actual term-set lengths over the
/// batch (the merge-walk op count), not a flat per-pair constant. The
/// string-kernel analogue is `er_text::StrTape::batch_cells` (sum of
/// string-length products).
pub fn term_walk_work(corpus: &Corpus, pairs: &[PairNode]) -> usize {
    pairs
        .iter()
        .map(|p| corpus.term_set(p.a as usize).len() + corpus.term_set(p.b as usize).len())
        .sum()
}

/// Fills `out[i] = score(pairs[i])` by splitting `pairs` into
/// deterministic contiguous chunks on `pool` and concatenating in order
/// (each chunk writes its own disjoint subslice). Since every per-pair
/// score is computed serially, the result is bit-identical to the serial
/// loop at any thread count. The shared chunking helper behind every
/// [`PairScorer::score_pairs_pooled`] implementation.
///
/// `work` is the caller's elementary-op estimate for the whole batch —
/// derived from the data actually scored (e.g. [`term_walk_work`], or
/// `er_text::StrTape::batch_cells` for DP kernels) so small batches of
/// small records stay serial-inline even when the pair count is large.
pub fn score_pairs_chunked<F>(
    pairs: &[PairNode],
    work: usize,
    pool: &WorkerPool,
    score: F,
) -> Vec<f64>
where
    F: Fn(&PairNode) -> f64 + Sync,
{
    let mut out = vec![0.0f64; pairs.len()];
    if !pool.dispatch(work).is_parallel() {
        for (v, p) in out.iter_mut().zip(pairs) {
            *v = score(p);
        }
        return out;
    }
    let ranges = er_pool::chunk_ranges(pairs.len(), pool.threads(), SCORE_MIN_CHUNK);
    let score = &score;
    pool.scope(|s| {
        let mut rest = out.as_mut_slice();
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let ps = &pairs[r];
            s.submit(move || {
                for (v, p) in chunk.iter_mut().zip(ps) {
                    *v = score(p);
                }
            });
        }
    });
    out
}

/// Enumerates the candidate pairs of a corpus: all record pairs sharing
/// at least one (post-filter) term, optionally restricted by a policy
/// (e.g. cross-source only). This is the same candidate universe the
/// fusion framework's bipartite graph uses, so baselines and framework
/// are compared on equal footing.
pub fn candidate_pairs(
    corpus: &Corpus,
    pair_filter: Option<&(dyn Fn(u32, u32) -> bool + Sync)>,
) -> Vec<PairNode> {
    let mut builder = BipartiteGraphBuilder::new(corpus.len(), corpus.vocab_len());
    for i in 0..corpus.vocab_len() {
        let t = TermId(i as u32);
        builder = builder.postings(t.0, corpus.postings(t));
    }
    if let Some(f) = pair_filter {
        builder = builder.pair_filter(f);
    }
    builder.build().pairs().to_vec()
}

/// [`candidate_pairs`] under an explicit [`BlockingStrategy`]: the
/// strategy generates the pair universe (token graph, capped token
/// blocking, sorted-neighborhood, LSH or meta-blocking) and the
/// optional policy filter restricts it. With
/// [`BlockingStrategy::TokenGraph`] this is exactly
/// [`candidate_pairs`].
pub fn candidate_pairs_with(
    corpus: &Corpus,
    strategy: &BlockingStrategy,
    pair_filter: Option<&(dyn Fn(u32, u32) -> bool + Sync)>,
    pool: &WorkerPool,
) -> Vec<PairNode> {
    if matches!(strategy, BlockingStrategy::TokenGraph) {
        return candidate_pairs(corpus, pair_filter);
    }
    strategy
        .candidate_pairs(corpus, pool)
        .into_iter()
        .filter(|&(a, b)| pair_filter.is_none_or(|f| f(a, b)))
        .map(|(a, b)| PairNode::new(a, b))
        .collect()
}

/// Runs a scorer and sweeps the optimal threshold (1 000 quanta, the
/// paper's protocol).
pub fn evaluate_scorer(
    scorer: &dyn PairScorer,
    corpus: &Corpus,
    pairs: &[PairNode],
    truth: &TruthPairs,
) -> SweepResult {
    let scores = scorer.score_pairs(corpus, pairs);
    sweep_scores(pairs, &scores, truth)
}

/// [`evaluate_scorer`] with the scoring stage on a shared worker pool.
/// Bit-identical to the serial evaluation (see
/// [`PairScorer::score_pairs_pooled`]).
pub fn evaluate_scorer_pooled(
    scorer: &dyn PairScorer,
    corpus: &Corpus,
    pairs: &[PairNode],
    truth: &TruthPairs,
    pool: &WorkerPool,
) -> SweepResult {
    let scores = scorer.score_pairs_pooled(corpus, pairs, pool); // er-lint: allow(dispatch) -- delegation; the scorer impl decides
    sweep_scores(pairs, &scores, truth)
}

/// Sweeps parallel `pairs`/`scores` slices without materializing a
/// `ScoredPair` buffer.
pub fn sweep_scores(pairs: &[PairNode], scores: &[f64], truth: &TruthPairs) -> SweepResult {
    assert_eq!(pairs.len(), scores.len(), "one score per candidate pair");
    sweep_threshold_iter(
        pairs.iter().zip(scores).map(|(p, &s)| (p.a, p.b, s)),
        truth,
        1000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_text::CorpusBuilder;

    #[test]
    fn candidate_pairs_match_shared_terms() {
        let corpus = CorpusBuilder::new()
            .push_text("alpha beta")
            .push_text("beta gamma")
            .push_text("delta")
            .build();
        let pairs = candidate_pairs(&corpus, None);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0], PairNode::new(0, 1));
    }

    #[test]
    fn pooled_scoring_matches_serial_for_every_scorer() {
        let corpus = CorpusBuilder::new()
            .push_text("fenix argyle 8358 sunset blvd")
            .push_text("fenix 8358 sunset blvd hollywood")
            .push_text("grill alley 9560 dayton way")
            .push_text("grill on alley 9560 dayton")
            .push_text("unrelated words entirely here")
            .build();
        let pairs = candidate_pairs(&corpus, None);
        assert!(!pairs.is_empty());
        let mut scorers: Vec<Box<dyn PairScorer>> = vec![
            Box::new(JaccardScorer),
            Box::new(TfIdfScorer),
            Box::new(SimRankScorer::default()),
            Box::new(TwIdfScorer::default()),
            Box::new(HybridScorer::default()),
        ];
        for s in StringSimScorer::all() {
            scorers.push(Box::new(s));
        }
        for scorer in &scorers {
            let serial = scorer.score_pairs(&corpus, &pairs);
            for threads in [2, 4] {
                let pool = WorkerPool::new(threads);
                let pooled = scorer.score_pairs_pooled(&corpus, &pairs, &pool);
                let a: Vec<u64> = serial.iter().map(|s| s.to_bits()).collect();
                let b: Vec<u64> = pooled.iter().map(|s| s.to_bits()).collect();
                assert_eq!(a, b, "{} diverged at threads={threads}", scorer.name());
            }
        }
    }

    #[test]
    fn candidate_pairs_respect_filter() {
        let corpus = CorpusBuilder::new()
            .push_text("x common")
            .push_text("x common")
            .push_text("x common")
            .build();
        let sources = [0u8, 0, 1];
        let filter = |a: u32, b: u32| sources[a as usize] != sources[b as usize];
        let pairs = candidate_pairs(&corpus, Some(&filter));
        assert_eq!(pairs.len(), 2); // (0,2), (1,2)
        assert!(pairs.iter().all(|p| p.b == 2));
    }
}
