//! # er-baselines
//!
//! The unsupervised baseline matchers the paper evaluates against
//! (Table II):
//!
//! * [`jaccard`] — Jaccard coefficient over term sets (§II-A; the
//!   machine-side filter of the crowd methods).
//! * [`tfidf`] — TF-IDF cosine (Cohen's word-based representation \[2\]).
//! * [`simrank`] — bipartite SimRank on the record–term graph
//!   (§III-A, Eq. 1–2, C1 = C2 = 0.8).
//! * [`twidf`] — TW-IDF: PageRank term salience on the sliding-window
//!   co-occurrence graph, combined with IDF (§III-B, Eq. 3–4, φ = 0.85).
//! * [`hybrid`] — the linear fusion of SimRank and TW-IDF scores
//!   (§III-C, Eq. 5, β = 0.5).
//!
//! Every matcher implements [`PairScorer`]; decisions use the
//! optimal-threshold sweep of `er_eval::sweep_threshold`, matching the
//! paper's protocol ("an upper bound of manually tuned parameters").

#![deny(unsafe_code)]

pub mod hybrid;
pub mod jaccard;
pub mod simrank;
pub mod tfidf;
pub mod twidf;

use er_eval::{sweep_threshold, ScoredPair, SweepResult, TruthPairs};
use er_graph::bipartite::PairNode;
use er_graph::BipartiteGraphBuilder;
use er_text::{Corpus, TermId};

pub use hybrid::HybridScorer;
pub use jaccard::JaccardScorer;
pub use simrank::SimRankScorer;
pub use tfidf::TfIdfScorer;
pub use twidf::TwIdfScorer;

/// A baseline matcher: assigns a similarity score to each candidate pair.
pub trait PairScorer {
    /// Matcher name as it appears in Table II.
    fn name(&self) -> &'static str;

    /// Scores each candidate pair (parallel to `pairs`). Scores need not
    /// be normalized; the threshold sweep handles arbitrary ranges.
    fn score_pairs(&self, corpus: &Corpus, pairs: &[PairNode]) -> Vec<f64>;
}

/// Enumerates the candidate pairs of a corpus: all record pairs sharing
/// at least one (post-filter) term, optionally restricted by a policy
/// (e.g. cross-source only). This is the same candidate universe the
/// fusion framework's bipartite graph uses, so baselines and framework
/// are compared on equal footing.
pub fn candidate_pairs(
    corpus: &Corpus,
    pair_filter: Option<&(dyn Fn(u32, u32) -> bool + Sync)>,
) -> Vec<PairNode> {
    let mut builder = BipartiteGraphBuilder::new(corpus.len(), corpus.vocab_len());
    for i in 0..corpus.vocab_len() {
        let t = TermId(i as u32);
        builder = builder.postings(t.0, corpus.postings(t));
    }
    if let Some(f) = pair_filter {
        builder = builder.pair_filter(f);
    }
    builder.build().pairs().to_vec()
}

/// Runs a scorer and sweeps the optimal threshold (1 000 quanta, the
/// paper's protocol).
pub fn evaluate_scorer(
    scorer: &dyn PairScorer,
    corpus: &Corpus,
    pairs: &[PairNode],
    truth: &TruthPairs,
) -> SweepResult {
    let scores = scorer.score_pairs(corpus, pairs);
    let scored: Vec<ScoredPair> = pairs
        .iter()
        .zip(&scores)
        .map(|(p, &score)| ScoredPair {
            a: p.a,
            b: p.b,
            score,
        })
        .collect();
    sweep_threshold(&scored, truth, 1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_text::CorpusBuilder;

    #[test]
    fn candidate_pairs_match_shared_terms() {
        let corpus = CorpusBuilder::new()
            .push_text("alpha beta")
            .push_text("beta gamma")
            .push_text("delta")
            .build();
        let pairs = candidate_pairs(&corpus, None);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0], PairNode::new(0, 1));
    }

    #[test]
    fn candidate_pairs_respect_filter() {
        let corpus = CorpusBuilder::new()
            .push_text("x common")
            .push_text("x common")
            .push_text("x common")
            .build();
        let sources = [0u8, 0, 1];
        let filter = |a: u32, b: u32| sources[a as usize] != sources[b as usize];
        let pairs = candidate_pairs(&corpus, Some(&filter));
        assert_eq!(pairs.len(), 2); // (0,2), (1,2)
        assert!(pairs.iter().all(|p| p.b == 2));
    }
}
