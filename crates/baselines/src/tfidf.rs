//! TF-IDF cosine baseline (Table II row 2).

use er_graph::bipartite::PairNode;
use er_pool::WorkerPool;
use er_text::{Corpus, TfIdfModel};

use crate::{score_pairs_chunked, term_walk_work, PairScorer};

/// Cosine similarity of L2-normalized TF-IDF vectors.
///
/// On the Product-style dataset the IDF factor is what rescues this
/// baseline relative to Jaccard: rare model codes dominate the vectors
/// (Table II: 0.658 vs 0.332).
#[derive(Debug, Clone, Copy, Default)]
pub struct TfIdfScorer;

impl PairScorer for TfIdfScorer {
    fn name(&self) -> &'static str {
        "TF-IDF"
    }

    fn score_pairs(&self, corpus: &Corpus, pairs: &[PairNode]) -> Vec<f64> {
        let model = TfIdfModel::fit(corpus);
        pairs
            .iter()
            .map(|p| model.cosine(p.a as usize, p.b as usize))
            .collect()
    }

    fn score_pairs_pooled(
        &self,
        corpus: &Corpus,
        pairs: &[PairNode],
        pool: &WorkerPool,
    ) -> Vec<f64> {
        // Fitting stays serial (one corpus pass); only the per-pair
        // cosines fan out.
        let model = TfIdfModel::fit(corpus);
        // The cosine walks both records' TF-IDF vectors (one entry per
        // distinct term), so the term-walk estimate is the right size.
        score_pairs_chunked(pairs, term_walk_work(corpus, pairs), pool, |p| {
            model.cosine(p.a as usize, p.b as usize)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_text::CorpusBuilder;

    #[test]
    fn rare_shared_terms_outweigh_common_ones() {
        // Pair (0,1) shares a rare model code; pair (2,3) shares only the
        // ubiquitous word "player" (df = 4). TF-IDF must rank (0,1) higher
        // even though both pairs share exactly one term.
        let corpus = CorpusBuilder::new()
            .push_text("pslx350h player alpha")
            .push_text("pslx350h player beta")
            .push_text("gamma delta player")
            .push_text("epsilon zeta player")
            .build();
        let pairs = vec![PairNode::new(0, 1), PairNode::new(2, 3)];
        let s = TfIdfScorer.score_pairs(&corpus, &pairs);
        assert!(s[0] > s[1], "{s:?}");
    }

    #[test]
    fn identical_records_score_near_one() {
        let corpus = CorpusBuilder::new()
            .push_text("exact same words")
            .push_text("exact same words")
            .push_text("other thing")
            .build();
        let s = TfIdfScorer.score_pairs(&corpus, &[PairNode::new(0, 1)]);
        assert!((s[0] - 1.0).abs() < 1e-9);
    }
}
