//! Bipartite SimRank baseline (§III-A, Table II "SimRank" row).

use er_graph::bipartite::PairNode;
use er_graph::simrank::{bipartite_simrank_pooled, SimRankConfig};
use er_pool::WorkerPool;
use er_text::Corpus;

use crate::{score_pairs_chunked, PairScorer};

/// SimRank on the record–term bipartite graph: two records are similar if
/// they contain similar terms (Eq. 1–2). Purely topological — it ignores
/// term identity weighting entirely, which is why it trails the
/// content-aware methods in Table II.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimRankScorer {
    /// SimRank decay/iteration parameters (paper: C1 = C2 = 0.8).
    pub config: SimRankConfig,
}

impl PairScorer for SimRankScorer {
    fn name(&self) -> &'static str {
        "SimRank"
    }

    fn score_pairs(&self, corpus: &Corpus, pairs: &[PairNode]) -> Vec<f64> {
        self.score_pairs_pooled(corpus, pairs, &WorkerPool::new(1)) // er-lint: allow(dispatch) -- serial delegation; WorkerPool::new(1) cannot fan out
    }

    fn score_pairs_pooled(
        &self,
        corpus: &Corpus,
        pairs: &[PairNode],
        pool: &WorkerPool,
    ) -> Vec<f64> {
        let owned: Vec<Vec<u32>> = (0..corpus.len())
            .map(|r| corpus.term_set(r).iter().map(|t| t.0).collect())
            .collect();
        let record_terms: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
        let scores =
            bipartite_simrank_pooled(&record_terms, corpus.vocab_len(), &self.config, None, pool);
        // Post-solve lookups are O(1) per pair — a handful of ops, not
        // a term walk; only huge candidate lists justify the fan-out.
        score_pairs_chunked(pairs, pairs.len().saturating_mul(4), pool, |p| {
            scores.record(p.a, p.b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_text::CorpusBuilder;

    #[test]
    fn near_duplicates_outscore_weak_pairs() {
        let corpus = CorpusBuilder::new()
            .push_text("alpha beta gamma")
            .push_text("alpha beta delta")
            .push_text("delta epsilon zeta")
            .build();
        let pairs = vec![PairNode::new(0, 1), PairNode::new(1, 2)];
        let s = SimRankScorer::default().score_pairs(&corpus, &pairs);
        assert!(s[0] > s[1], "{s:?}");
        assert!(s.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn identical_records_score_highest() {
        let corpus = CorpusBuilder::new()
            .push_text("a b")
            .push_text("a b")
            .push_text("a c")
            .build();
        let pairs = vec![PairNode::new(0, 1), PairNode::new(0, 2)];
        let s = SimRankScorer::default().score_pairs(&corpus, &pairs);
        assert!(s[0] > s[1]);
    }
}
