//! Jaccard baseline (Table II row 1).

use er_graph::bipartite::PairNode;
use er_pool::WorkerPool;
use er_text::{jaccard, Corpus};

use crate::{score_pairs_chunked, term_walk_work, PairScorer};

/// Jaccard coefficient over the records' (post-filter) term sets.
#[derive(Debug, Clone, Copy, Default)]
pub struct JaccardScorer;

impl PairScorer for JaccardScorer {
    fn name(&self) -> &'static str {
        "Jaccard"
    }

    fn score_pairs(&self, corpus: &Corpus, pairs: &[PairNode]) -> Vec<f64> {
        pairs
            .iter()
            .map(|p| jaccard(corpus.term_set(p.a as usize), corpus.term_set(p.b as usize)))
            .collect()
    }

    fn score_pairs_pooled(
        &self,
        corpus: &Corpus,
        pairs: &[PairNode],
        pool: &WorkerPool,
    ) -> Vec<f64> {
        score_pairs_chunked(pairs, term_walk_work(corpus, pairs), pool, |p| {
            jaccard(corpus.term_set(p.a as usize), corpus.term_set(p.b as usize))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_text::CorpusBuilder;

    #[test]
    fn scores_candidate_pairs() {
        let corpus = CorpusBuilder::new()
            .push_text("a b c d")
            .push_text("a b c e")
            .push_text("a z y x")
            .build();
        let pairs = vec![PairNode::new(0, 1), PairNode::new(0, 2)];
        let s = JaccardScorer.score_pairs(&corpus, &pairs);
        assert!((s[0] - 3.0 / 5.0).abs() < 1e-12);
        assert!((s[1] - 1.0 / 7.0).abs() < 1e-12);
        assert!(s[0] > s[1]);
    }

    #[test]
    fn end_to_end_sweep_separates_duplicates() {
        let corpus = CorpusBuilder::new()
            .push_text("fenix argyle 8358 sunset blvd")
            .push_text("fenix 8358 sunset blvd hollywood")
            .push_text("grill alley 9560 dayton way")
            .push_text("grill on alley 9560 dayton")
            .build();
        let pairs = crate::candidate_pairs(&corpus, None);
        let truth = er_eval::TruthPairs::from_pairs([(0u32, 1u32), (2, 3)]);
        let result = crate::evaluate_scorer(&JaccardScorer, &corpus, &pairs, &truth);
        assert!(result.f1 > 0.99, "{result:?}");
    }
}
