//! Property tests for pooled baseline scoring across the dispatch
//! cutover: `score_pairs_pooled` must be bitwise identical to
//! `score_pairs` whichever side of the serial/parallel bar the
//! candidate list lands on, at 1, 2, and 8 threads.

use er_baselines::{
    candidate_pairs, HybridScorer, JaccardScorer, PairScorer, SimRankScorer, TfIdfScorer,
    TwIdfScorer,
};
use er_pool::{DispatchPolicy, WorkerPool};
use er_text::{Corpus, CorpusBuilder};
use proptest::prelude::*;

/// A small random corpus over a 12-word vocabulary; overlapping word
/// choices guarantee shared terms, i.e. a non-empty candidate list.
fn corpus() -> impl Strategy<Value = Corpus> {
    const WORDS: [&str; 12] = [
        "alpha", "beta", "gamma", "delta", "grill", "sunset", "blvd", "8358", "9560", "dayton",
        "cafe", "west",
    ];
    proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..6), 2..8).prop_map(
        |records| {
            let mut builder = CorpusBuilder::new();
            for indices in &records {
                let text: Vec<&str> = indices.iter().map(|&i| WORDS[i]).collect();
                builder = builder.push_text(text.join(" "));
            }
            builder.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pooled_scoring_bit_identical_across_the_cutover(corpus in corpus()) {
        let pairs = candidate_pairs(&corpus, None);
        let scorers: Vec<Box<dyn PairScorer>> = vec![
            Box::new(JaccardScorer),
            Box::new(TfIdfScorer),
            Box::new(SimRankScorer::default()),
            Box::new(TwIdfScorer::default()),
            Box::new(HybridScorer::default()),
        ];
        // The chunked scorer estimates ~64 ops per pair, so these
        // thresholds put the list below, exactly at, and above the
        // cutover (plus both forced modes).
        let work = pairs.len().saturating_mul(64);
        let policies = [
            DispatchPolicy::always_serial(),
            DispatchPolicy::always_parallel(),
            DispatchPolicy::new(work.saturating_add(1)),
            DispatchPolicy::new(work.max(1)),
        ];
        for scorer in &scorers {
            let serial = scorer.score_pairs(&corpus, &pairs);
            for threads in [1usize, 2, 8] {
                for policy in policies {
                    let pool = WorkerPool::with_policy(threads, policy);
                    let pooled = scorer.score_pairs_pooled(&corpus, &pairs, &pool);
                    let a: Vec<u64> = serial.iter().map(|s| s.to_bits()).collect();
                    let b: Vec<u64> = pooled.iter().map(|s| s.to_bits()).collect();
                    prop_assert_eq!(
                        a, b,
                        "{} diverged: threads={} policy={:?}",
                        scorer.name(), threads, policy
                    );
                }
            }
        }
    }
}
