//! CrowdER-style hybrid human–machine resolution.
//!
//! CrowdER \[8\] uses machines for "an initial and coarse filtering based
//! on a simple distance measure to remove pairs unlikely to match"
//! (Jaccard with threshold 0.3 in the follow-up work \[10\], \[12\]) and
//! sends every surviving pair to the crowd for verification.

use crate::oracle::NoisyOracle;

/// CrowdER configuration.
#[derive(Debug, Clone, Copy)]
pub struct CrowdErConfig {
    /// Machine-side similarity threshold below which pairs are discarded
    /// without asking the crowd (paper-cited value: 0.3 on Jaccard).
    pub machine_threshold: f64,
}

impl Default for CrowdErConfig {
    fn default() -> Self {
        Self {
            machine_threshold: 0.3,
        }
    }
}

/// Outcome of a crowd run.
#[derive(Debug, Clone)]
pub struct CrowdOutcome {
    /// Pairs the crowd confirmed as matches.
    pub matches: Vec<(u32, u32)>,
    /// Questions billed to the crowd.
    pub questions: usize,
    /// Pairs the machine filter discarded unasked.
    pub filtered_out: usize,
}

/// Runs CrowdER: filter by machine score, ask the oracle about every
/// survivor.
///
/// `scored_pairs` holds `(a, b, machine_score)` for every candidate.
pub fn crowder_resolve<F: Fn(u32, u32) -> bool>(
    scored_pairs: &[(u32, u32, f64)],
    config: &CrowdErConfig,
    oracle: &mut NoisyOracle<F>,
) -> CrowdOutcome {
    let mut matches = Vec::new();
    let mut filtered_out = 0usize;
    let before = oracle.questions_asked();
    for &(a, b, score) in scored_pairs {
        if score < config.machine_threshold {
            filtered_out += 1;
            continue;
        }
        if oracle.ask(a, b) {
            matches.push((a, b));
        }
    }
    CrowdOutcome {
        matches,
        questions: oracle.questions_asked() - before,
        filtered_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(a: u32, b: u32) -> bool {
        // Entities: {0,1}, {2,3}.
        matches!((a.min(b), a.max(b)), (0, 1) | (2, 3))
    }

    fn scored() -> Vec<(u32, u32, f64)> {
        vec![
            (0, 1, 0.9),
            (2, 3, 0.8),
            (0, 2, 0.4),  // survives the filter, crowd rejects
            (1, 3, 0.05), // filtered out
        ]
    }

    #[test]
    fn perfect_oracle_recovers_truth_above_filter() {
        let mut oracle = NoisyOracle::new(truth, 1.0, 1);
        let out = crowder_resolve(&scored(), &CrowdErConfig::default(), &mut oracle);
        assert_eq!(out.matches, vec![(0, 1), (2, 3)]);
        assert_eq!(out.questions, 3);
        assert_eq!(out.filtered_out, 1);
    }

    #[test]
    fn filter_threshold_trades_questions_for_recall() {
        let mut cheap = NoisyOracle::new(truth, 1.0, 1);
        let strict = crowder_resolve(
            &scored(),
            &CrowdErConfig {
                machine_threshold: 0.85,
            },
            &mut cheap,
        );
        assert_eq!(strict.questions, 1, "only (0,1) survives");
        assert_eq!(strict.matches, vec![(0, 1)]);
        assert_eq!(strict.filtered_out, 3);
    }

    #[test]
    fn noisy_oracle_can_err() {
        // With accuracy 0.5+ε and fixed seed, some answers flip; just
        // assert the outcome stays well-formed.
        let mut oracle = NoisyOracle::new(truth, 0.7, 99);
        let out = crowder_resolve(&scored(), &CrowdErConfig::default(), &mut oracle);
        assert!(out.questions == 3);
        for (a, b) in out.matches {
            assert!(a != b);
        }
    }

    #[test]
    fn empty_candidates() {
        let mut oracle = NoisyOracle::new(truth, 1.0, 1);
        let out = crowder_resolve(&[], &CrowdErConfig::default(), &mut oracle);
        assert!(out.matches.is_empty());
        assert_eq!(out.questions, 0);
    }
}
