//! ACD-style adaptive cluster-based deduplication.
//!
//! ACD \[12\] ("crowd-based deduplication: an adaptive approach") grows
//! entity clusters adaptively: each record is compared against existing
//! clusters rather than against individual records, and a cluster
//! membership question is answered by querying one or more
//! *representatives* of the cluster, which both caps the question count
//! (≈ one question per record–cluster candidate, not per pair) and makes
//! the outcome robust to single worker errors when `votes > 1`.
//!
//! Records are processed in a similarity-aware order (most connected
//! first); for each record, candidate clusters are ranked by the maximum
//! machine score between the record and any cluster member, and only the
//! top [`AcdConfig::max_cluster_probes`] clusters above the filter are
//! queried.

use std::collections::HashMap;

use crate::crowder::CrowdOutcome;
use crate::oracle::NoisyOracle;

/// ACD configuration.
#[derive(Debug, Clone, Copy)]
pub struct AcdConfig {
    /// Candidate pairs below this machine score never suggest a cluster.
    pub machine_threshold: f64,
    /// How many candidate clusters to query per record.
    pub max_cluster_probes: usize,
    /// Crowd votes per membership question (odd; majority decides).
    pub votes: usize,
}

impl Default for AcdConfig {
    fn default() -> Self {
        Self {
            machine_threshold: 0.15,
            max_cluster_probes: 3,
            votes: 1,
        }
    }
}

/// Runs ACD; returns within-cluster pairs as matches and the bill.
pub fn acd_resolve<F: Fn(u32, u32) -> bool>(
    n_records: usize,
    scored_pairs: &[(u32, u32, f64)],
    config: &AcdConfig,
    oracle: &mut NoisyOracle<F>,
) -> CrowdOutcome {
    assert!(config.votes % 2 == 1, "votes must be odd for a majority");
    let max_score = scored_pairs
        .iter()
        .map(|&(_, _, s)| s)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    // Adjacency above the filter.
    let mut neighbors: HashMap<u32, Vec<(u32, f64)>> = HashMap::new();
    let mut filtered_out = 0usize;
    for &(a, b, s) in scored_pairs {
        let norm = s / max_score;
        if norm < config.machine_threshold {
            filtered_out += 1;
            continue;
        }
        neighbors.entry(a).or_default().push((b, norm));
        neighbors.entry(b).or_default().push((a, norm));
    }
    // Process well-connected records first: their clusters form early and
    // attract the right members.
    let mut order: Vec<u32> = (0..n_records as u32).collect();
    order.sort_by_key(|r| std::cmp::Reverse(neighbors.get(r).map_or(0, Vec::len)));

    let before = oracle.questions_asked();
    let mut cluster_of: HashMap<u32, usize> = HashMap::new();
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    for &r in &order {
        // Rank candidate clusters by the best edge into them.
        let mut cluster_scores: HashMap<usize, f64> = HashMap::new();
        for &(nb, s) in neighbors.get(&r).map_or(&[][..], Vec::as_slice) {
            if let Some(&c) = cluster_of.get(&nb) {
                let e = cluster_scores.entry(c).or_insert(0.0);
                if s > *e {
                    *e = s;
                }
            }
        }
        let mut ranked: Vec<(usize, f64)> = cluster_scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));

        let mut placed = false;
        for &(c, _) in ranked.iter().take(config.max_cluster_probes) {
            // Representatives: up to `votes` members, majority decides.
            let members = &clusters[c];
            let mut yes = 0usize;
            let mut no = 0usize;
            for k in 0..config.votes {
                let rep = members[k % members.len()];
                if oracle.ask(r, rep) {
                    yes += 1;
                } else {
                    no += 1;
                }
                if yes > config.votes / 2 || no > config.votes / 2 {
                    break;
                }
            }
            if yes > no {
                clusters[c].push(r);
                cluster_of.insert(r, c);
                placed = true;
                break;
            }
        }
        if !placed {
            cluster_of.insert(r, clusters.len());
            clusters.push(vec![r]);
        }
    }

    let mut matches = Vec::new();
    for cluster in &clusters {
        for (i, &a) in cluster.iter().enumerate() {
            for &b in &cluster[i + 1..] {
                matches.push(if a < b { (a, b) } else { (b, a) });
            }
        }
    }
    matches.sort_unstable();
    CrowdOutcome {
        matches,
        questions: oracle.questions_asked() - before,
        filtered_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(a: u32, b: u32) -> bool {
        // Entities {0,1,2}, {3,4}, {5}.
        let c = |x: u32| match x {
            0..=2 => 0,
            3 | 4 => 1,
            _ => 2,
        };
        c(a) == c(b)
    }

    fn scored() -> Vec<(u32, u32, f64)> {
        vec![
            (0, 1, 0.9),
            (1, 2, 0.85),
            (0, 2, 0.8),
            (3, 4, 0.75),
            (2, 3, 0.3),
            (4, 5, 0.02), // filtered
        ]
    }

    #[test]
    fn perfect_oracle_builds_true_clusters() {
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        let out = acd_resolve(6, &scored(), &AcdConfig::default(), &mut o);
        assert_eq!(out.matches, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
        assert_eq!(out.filtered_out, 1);
        // Cluster-based querying: at most one question per record-cluster
        // candidate, far fewer than the 5 surviving pairs in bigger data.
        assert!(out.questions <= 5, "{}", out.questions);
    }

    #[test]
    fn majority_voting_absorbs_worker_errors() {
        // A noisy oracle with 75% accuracy: single votes misplace records
        // sometimes; 3-vote majority should be more accurate on average.
        let f1 = |votes: usize, seed: u64| {
            let mut o = NoisyOracle::new(truth, 0.75, seed);
            let out = acd_resolve(
                6,
                &scored(),
                &AcdConfig {
                    votes,
                    ..Default::default()
                },
                &mut o,
            );
            let want: std::collections::HashSet<(u32, u32)> =
                [(0, 1), (0, 2), (1, 2), (3, 4)].into_iter().collect();
            let got: std::collections::HashSet<(u32, u32)> = out.matches.iter().copied().collect();
            let tp = got.intersection(&want).count() as f64;
            let p = if got.is_empty() {
                0.0
            } else {
                tp / got.len() as f64
            };
            let r = tp / want.len() as f64;
            if p + r == 0.0 {
                0.0
            } else {
                2.0 * p * r / (p + r)
            }
        };
        let single: f64 = (0..30).map(|s| f1(1, s)).sum::<f64>() / 30.0;
        let triple: f64 = (0..30).map(|s| f1(3, s)).sum::<f64>() / 30.0;
        assert!(
            triple >= single - 0.02,
            "majority voting should not hurt: {single} vs {triple}"
        );
    }

    #[test]
    fn singletons_stay_single() {
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        let out = acd_resolve(6, &scored(), &AcdConfig::default(), &mut o);
        assert!(!out.matches.iter().any(|&(a, b)| a == 5 || b == 5));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_votes_rejected() {
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        acd_resolve(
            2,
            &[],
            &AcdConfig {
                votes: 2,
                ..Default::default()
            },
            &mut o,
        );
    }
}
