//! GCER-style budget-limited question selection.
//!
//! GCER \[9\] ("question selection for crowd entity resolution") assumes a
//! fixed question budget and selects the candidate pairs whose answers
//! are expected to improve the resolution most. This implementation uses
//! the standard greedy strategy on scalar machine scores:
//!
//! 1. normalize machine scores to `[0, 1]` as match-probability proxies;
//! 2. spend the budget on the pairs with the highest *expected benefit* —
//!    probable matches first (they create transitive inferences), skipping
//!    pairs whose answer is already deducible from transitivity;
//! 3. after the budget is exhausted, decide the remaining pairs by the
//!    machine proxy alone (threshold 0.5 of the normalized score).
//!
//! The paper's Table II row shows GCER slightly below CrowdER/ACD — the
//! budget cap costs accuracy, which this implementation reproduces when
//! given fewer questions than candidates above the filter.

use std::collections::HashSet;

use crate::crowder::CrowdOutcome;
use crate::oracle::NoisyOracle;

/// GCER configuration.
#[derive(Debug, Clone, Copy)]
pub struct GcerConfig {
    /// Maximum number of crowd questions.
    pub budget: usize,
    /// Pairs with normalized machine score below this are discarded
    /// without asking or predicting (the coarse filter).
    pub machine_threshold: f64,
}

impl Default for GcerConfig {
    fn default() -> Self {
        Self {
            budget: 1000,
            machine_threshold: 0.15,
        }
    }
}

/// Runs GCER; returns confirmed + machine-inferred matches and the bill.
pub fn gcer_resolve<F: Fn(u32, u32) -> bool>(
    n_records: usize,
    scored_pairs: &[(u32, u32, f64)],
    config: &GcerConfig,
    oracle: &mut NoisyOracle<F>,
) -> CrowdOutcome {
    let max_score = scored_pairs
        .iter()
        .map(|&(_, _, s)| s)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    // Candidates above the filter, most-promising first.
    let mut order: Vec<usize> = (0..scored_pairs.len())
        .filter(|&i| scored_pairs[i].2 / max_score >= config.machine_threshold)
        .collect();
    let filtered_out = scored_pairs.len() - order.len();
    order.sort_by(|&x, &y| {
        scored_pairs[y]
            .2
            .partial_cmp(&scored_pairs[x].2)
            .expect("finite scores")
    });

    let mut parent: Vec<u32> = (0..n_records as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    let mut non_match: HashSet<(u32, u32)> = HashSet::new();
    let key = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };

    let before = oracle.questions_asked();
    let mut matches = Vec::new();
    let mut asked = 0usize;
    let mut undecided = Vec::new();
    for &i in &order {
        let (a, b, _) = scored_pairs[i];
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            matches.push((a, b)); // deduced positive — free
            continue;
        }
        if non_match.contains(&key(ra, rb)) {
            continue; // deduced negative — free
        }
        if asked >= config.budget {
            undecided.push(i);
            continue;
        }
        asked += 1;
        if oracle.ask(a, b) {
            matches.push((a, b));
            parent[rb as usize] = ra;
            // Rewrite constraints onto the surviving root.
            let moved: Vec<(u32, u32)> = non_match
                .iter()
                .filter(|&&(x, y)| x == rb || y == rb)
                .copied()
                .collect();
            for (x, y) in moved {
                non_match.remove(&(x, y));
                let other = if x == rb { y } else { x };
                non_match.insert(key(ra, other));
            }
        } else {
            non_match.insert(key(ra, rb));
        }
    }
    // Budget exhausted: fall back to the machine proxy for the rest.
    for i in undecided {
        let (a, b, s) = scored_pairs[i];
        if s / max_score >= 0.5 {
            matches.push((a, b));
        }
    }
    CrowdOutcome {
        matches,
        questions: oracle.questions_asked() - before,
        filtered_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(a: u32, b: u32) -> bool {
        // Entities {0,1,2}, {3,4}.
        let c = |x: u32| if x <= 2 { 0 } else { 1 };
        c(a) == c(b)
    }

    fn scored() -> Vec<(u32, u32, f64)> {
        vec![
            (0, 1, 0.95),
            (1, 2, 0.9),
            (0, 2, 0.85),
            (3, 4, 0.8),
            (2, 3, 0.4),
            (0, 4, 0.05), // filtered out
        ]
    }

    #[test]
    fn unlimited_budget_recovers_truth() {
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        let out = gcer_resolve(5, &scored(), &GcerConfig::default(), &mut o);
        let mut m = out.matches.clone();
        m.sort_unstable();
        assert_eq!(m, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
        assert_eq!(out.filtered_out, 1);
        // Transitivity: (0,2) deduced after (0,1) and (1,2).
        assert_eq!(out.questions, 4);
    }

    #[test]
    fn budget_respected_with_machine_fallback() {
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        let out = gcer_resolve(
            5,
            &scored(),
            &GcerConfig {
                budget: 2,
                ..Default::default()
            },
            &mut o,
        );
        assert_eq!(out.questions, 2);
        // (0,1) and (1,2) asked; (0,2) deduced; (3,4) and (2,3) fall to
        // the machine proxy: normalized (3,4)=0.84 >= 0.5 predicted match,
        // (2,3)=0.42 < 0.5 predicted non-match.
        let mut m = out.matches.clone();
        m.sort_unstable();
        assert_eq!(m, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
    }

    #[test]
    fn zero_budget_is_pure_machine() {
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        let out = gcer_resolve(
            5,
            &scored(),
            &GcerConfig {
                budget: 0,
                ..Default::default()
            },
            &mut o,
        );
        assert_eq!(out.questions, 0);
        assert!(out.matches.contains(&(0, 1)));
        assert!(!out.matches.contains(&(2, 3)));
    }

    #[test]
    fn empty_input() {
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        let out = gcer_resolve(0, &[], &GcerConfig::default(), &mut o);
        assert!(out.matches.is_empty());
        assert_eq!(out.questions, 0);
    }
}
