//! TransM-style transitivity-aware crowd querying.
//!
//! TransM \[10\] ("leveraging transitive relations for crowdsourced
//! joins") asks the crowd about candidate pairs in descending machine-
//! similarity order and skips any pair whose answer is already deducible:
//!
//! * **positive transitivity**: `a ~ c` and `c ~ b` ⇒ `a ~ b`;
//! * **negative transitivity**: `a ~ c` and `c ≁ b` ⇒ `a ≁ b`.
//!
//! Deduction is tracked with a union-find over confirmed matches plus a
//! set of non-match constraints between match-components.

use std::collections::HashSet;

use crate::oracle::NoisyOracle;

/// TransM configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransMConfig {
    /// Pairs below this machine score are assumed non-matching without
    /// asking (same coarse filter as CrowdER; 0 disables).
    pub machine_threshold: f64,
}

/// Runs TransM; returns the confirmed matches and question count.
pub fn transm_resolve<F: Fn(u32, u32) -> bool>(
    n_records: usize,
    scored_pairs: &[(u32, u32, f64)],
    config: &TransMConfig,
    oracle: &mut NoisyOracle<F>,
) -> crate::crowder::CrowdOutcome {
    let mut order: Vec<usize> = (0..scored_pairs.len()).collect();
    order.sort_by(|&x, &y| {
        scored_pairs[y]
            .2
            .partial_cmp(&scored_pairs[x].2)
            .expect("finite scores")
    });

    let mut parent: Vec<u32> = (0..n_records as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    // Non-match constraints between component roots.
    let mut non_match: HashSet<(u32, u32)> = HashSet::new();
    let key = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };

    let before = oracle.questions_asked();
    let mut matches = Vec::new();
    let mut filtered_out = 0usize;
    for &i in &order {
        let (a, b, score) = scored_pairs[i];
        if score < config.machine_threshold {
            filtered_out += 1;
            continue;
        }
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        let answer = if ra == rb {
            true // positive transitivity
        } else if non_match.contains(&key(ra, rb)) {
            false // negative transitivity
        } else {
            oracle.ask(a, b)
        };
        if answer {
            matches.push((a, b));
            if ra != rb {
                // Merge and rewrite constraints onto the new root.
                parent[rb as usize] = ra;
                let moved: Vec<(u32, u32)> = non_match
                    .iter()
                    .filter(|&&(x, y)| x == rb || y == rb)
                    .copied()
                    .collect();
                for (x, y) in moved {
                    non_match.remove(&(x, y));
                    let other = if x == rb { y } else { x };
                    non_match.insert(key(ra, other));
                }
            }
        } else if ra != rb {
            non_match.insert(key(ra, rb));
        }
    }
    crate::crowder::CrowdOutcome {
        matches,
        questions: oracle.questions_asked() - before,
        filtered_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoisyOracle;

    fn truth(a: u32, b: u32) -> bool {
        // Entities: {0,1,2}, {3,4}.
        let cluster = |x: u32| if x <= 2 { 0 } else { 1 };
        cluster(a) == cluster(b)
    }

    #[test]
    fn transitivity_saves_questions() {
        // A triangle of true matches: after confirming (0,1) and (1,2),
        // (0,2) is deduced for free.
        let pairs = vec![(0, 1, 0.9), (1, 2, 0.8), (0, 2, 0.7)];
        let mut oracle = NoisyOracle::new(truth, 1.0, 1);
        let out = transm_resolve(3, &pairs, &TransMConfig::default(), &mut oracle);
        assert_eq!(out.questions, 2, "third answer deduced");
        assert_eq!(out.matches.len(), 3, "all three pairs resolved as matches");
    }

    #[test]
    fn negative_transitivity_deduces_non_matches() {
        // (0,1) match; (1,3) non-match asked; then (0,3) is deducible as
        // a non-match without asking.
        let pairs = vec![(0, 1, 0.9), (1, 3, 0.8), (0, 3, 0.7)];
        let mut oracle = NoisyOracle::new(truth, 1.0, 1);
        let out = transm_resolve(4, &pairs, &TransMConfig::default(), &mut oracle);
        assert_eq!(out.questions, 2);
        assert_eq!(out.matches, vec![(0, 1)]);
    }

    #[test]
    fn big_cliques_save_most() {
        // A complete clique over k nodes needs only k − 1 questions.
        let k = 8u32;
        let mut pairs = Vec::new();
        for i in 0..k {
            for j in i + 1..k {
                pairs.push((i, j, 1.0 - (i + j) as f64 / 100.0));
            }
        }
        let mut oracle = NoisyOracle::new(|_, _| true, 1.0, 1);
        let out = transm_resolve(k as usize, &pairs, &TransMConfig::default(), &mut oracle);
        assert_eq!(out.questions, (k - 1) as usize);
        assert_eq!(out.matches.len(), pairs.len());
    }

    #[test]
    fn machine_filter_applies() {
        let pairs = vec![(0, 1, 0.9), (3, 4, 0.01)];
        let mut oracle = NoisyOracle::new(truth, 1.0, 1);
        let out = transm_resolve(
            5,
            &pairs,
            &TransMConfig {
                machine_threshold: 0.3,
            },
            &mut oracle,
        );
        assert_eq!(out.filtered_out, 1);
        assert_eq!(out.questions, 1);
        assert_eq!(
            out.matches,
            vec![(0, 1)],
            "true pair (3,4) lost to the filter"
        );
    }

    #[test]
    fn empty_input() {
        let mut oracle = NoisyOracle::new(truth, 1.0, 1);
        let out = transm_resolve(0, &[], &TransMConfig::default(), &mut oracle);
        assert_eq!(out.questions, 0);
        assert!(out.matches.is_empty());
    }
}
