//! Power+-style partial-order question pruning.
//!
//! Power+ \[13\] ("cost-effective crowdsourced entity resolution: a
//! partial-order approach") observes that candidate pairs form a partial
//! order under their similarity evidence: once the crowd answers NO for a
//! pair, every pair *dominated* by it (weaker evidence on every
//! dimension) must also be NO; a YES propagates upward symmetrically.
//! With a scalar machine score the order is total, so the optimal
//! strategy degenerates to a noise-tolerant **boundary search** over the
//! score-sorted pair list: probe pairs, narrow the boundary between the
//! YES-region and the NO-region, and decide everything outside the probed
//! window for free. Transitive closure then adds deduced positives.
//!
//! This captures exactly why the paper reports Power+ matching ACD's
//! accuracy at a fraction of the cost on Restaurant-like data.

use crate::crowder::CrowdOutcome;
use crate::oracle::NoisyOracle;

/// Power+ configuration.
#[derive(Debug, Clone, Copy)]
pub struct PowerConfig {
    /// Pairs below this normalized machine score are discarded unasked.
    pub machine_threshold: f64,
    /// Votes per probe (odd; majority decides) — the boundary probe is
    /// the single point where a worker error is maximally harmful.
    pub votes: usize,
    /// Half-width of the verification band around the boundary: pairs
    /// this close to the boundary are asked individually, since score
    /// noise interleaves YES and NO pairs there (0 = pure boundary
    /// search).
    pub verify_band: usize,
}

impl Default for PowerConfig {
    fn default() -> Self {
        Self {
            machine_threshold: 0.15,
            votes: 3,
            verify_band: 24,
        }
    }
}

/// Runs Power+; returns matches and the bill.
pub fn power_resolve<F: Fn(u32, u32) -> bool>(
    n_records: usize,
    scored_pairs: &[(u32, u32, f64)],
    config: &PowerConfig,
    oracle: &mut NoisyOracle<F>,
) -> CrowdOutcome {
    assert!(config.votes % 2 == 1, "votes must be odd for a majority");
    let max_score = scored_pairs
        .iter()
        .map(|&(_, _, s)| s)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut order: Vec<usize> = (0..scored_pairs.len())
        .filter(|&i| scored_pairs[i].2 / max_score >= config.machine_threshold)
        .collect();
    let filtered_out = scored_pairs.len() - order.len();
    // Descending by score: prefix = strong evidence, suffix = weak.
    order.sort_by(|&x, &y| {
        scored_pairs[y]
            .2
            .partial_cmp(&scored_pairs[x].2)
            .expect("finite scores")
    });

    let before = oracle.questions_asked();
    let mut majority = |i: usize| -> bool {
        let (a, b, _) = scored_pairs[order[i]];
        let mut yes = 0usize;
        let mut no = 0usize;
        for _ in 0..config.votes {
            if oracle.ask(a, b) {
                yes += 1;
            } else {
                no += 1;
            }
            if yes > config.votes / 2 || no > config.votes / 2 {
                break;
            }
        }
        yes > no
    };

    // Binary search for the YES/NO boundary index: the first index whose
    // answer is NO. Invariant: everything before `lo` is YES-region,
    // everything from `hi` on is NO-region.
    let mut boundary = order.len();
    if !order.is_empty() {
        let (mut lo, mut hi) = (0usize, order.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if majority(mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        boundary = lo;
    }
    // Verification band: real score orderings are noisy near the
    // boundary (true and false pairs interleave), so pairs within the
    // band are asked individually; outside it the partial order decides.
    let band_lo = boundary.saturating_sub(config.verify_band);
    let band_hi = (boundary + config.verify_band).min(order.len());
    let mut verified: Vec<(usize, bool)> = Vec::new();
    for idx in band_lo..band_hi {
        let answer = majority(idx);
        verified.push((idx, answer));
    }

    // Decide each candidate: verified answers inside the band, the
    // partial order outside it; then add transitive closure.
    let verdict_of = |idx: usize| -> bool {
        if let Some(&(_, answer)) = verified.iter().find(|&&(i, _)| i == idx) {
            answer
        } else {
            idx < boundary
        }
    };
    let mut parent: Vec<u32> = (0..n_records as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    let mut matches = Vec::new();
    let mut negatives = Vec::new();
    for idx in 0..order.len() {
        let (a, b, _) = scored_pairs[order[idx]];
        if verdict_of(idx) {
            matches.push(if a < b { (a, b) } else { (b, a) });
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[rb as usize] = ra;
            }
        } else {
            negatives.push((a, b));
        }
    }
    // Deduce positives among the negatives connected transitively.
    for (a, b) in negatives {
        if find(&mut parent, a) == find(&mut parent, b) {
            matches.push(if a < b { (a, b) } else { (b, a) });
        }
    }
    matches.sort_unstable();
    matches.dedup();
    CrowdOutcome {
        matches,
        questions: oracle.questions_asked() - before,
        filtered_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(a: u32, b: u32) -> bool {
        let c = |x: u32| if x <= 2 { 0 } else { 1 };
        a != b && c(a) == c(b)
    }

    /// Scores perfectly ordered: all true pairs above all false pairs.
    fn separable() -> Vec<(u32, u32, f64)> {
        vec![
            (0, 1, 0.95),
            (1, 2, 0.9),
            (0, 2, 0.88),
            (3, 4, 0.82),
            (2, 3, 0.45),
            (1, 3, 0.4),
            (0, 4, 0.35),
        ]
    }

    #[test]
    fn boundary_search_is_logarithmic() {
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        let out = power_resolve(5, &separable(), &PowerConfig::default(), &mut o);
        let mut m = out.matches.clone();
        m.sort_unstable();
        assert_eq!(m, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
        // With a small band on 7 candidates everything gets verified; on
        // large inputs the band is a vanishing fraction (see
        // band_is_sublinear below).
        assert!(out.questions <= 7 * 3, "{}", out.questions);
    }

    #[test]
    fn band_is_sublinear_on_large_inputs() {
        // 600 separable candidates: questions must stay near
        // votes * (log2(600) + 2 * band), far below 600.
        let mut pairs = Vec::new();
        for i in 0..300u32 {
            pairs.push((2 * i, 2 * i + 1, 1.0 - i as f64 * 0.001)); // true
        }
        for i in 0..300u32 {
            pairs.push((2 * i, (2 * i + 3) % 600, 0.5 - i as f64 * 0.001)); // false
        }
        let truth = |a: u32, b: u32| a / 2 == b / 2;
        let mut o = NoisyOracle::new(truth, 1.0, 9);
        let out = power_resolve(600, &pairs, &PowerConfig::default(), &mut o);
        assert!(
            out.questions < 200,
            "sublinear bill expected: {}",
            out.questions
        );
        assert_eq!(out.matches.len(), 300, "all true pairs found");
    }

    #[test]
    fn noisy_probes_survive_majority_voting() {
        let mut wins = 0;
        for seed in 0..20 {
            let mut o = NoisyOracle::new(truth, 0.8, seed);
            let out = power_resolve(5, &separable(), &PowerConfig::default(), &mut o);
            let want: std::collections::HashSet<(u32, u32)> =
                [(0, 1), (0, 2), (1, 2), (3, 4)].into_iter().collect();
            let got: std::collections::HashSet<(u32, u32)> = out.matches.iter().copied().collect();
            if got == want {
                wins += 1;
            }
        }
        assert!(wins >= 12, "majority-voted search too fragile: {wins}/20");
    }

    #[test]
    fn all_false_pairs_yield_nothing() {
        let pairs = vec![(0, 3, 0.9), (1, 4, 0.8), (2, 3, 0.7)];
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        let out = power_resolve(5, &pairs, &PowerConfig::default(), &mut o);
        assert!(out.matches.is_empty(), "{:?}", out.matches);
    }

    #[test]
    fn all_true_pairs_all_match() {
        let pairs = vec![(0, 1, 0.9), (1, 2, 0.8), (0, 2, 0.7)];
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        let out = power_resolve(3, &pairs, &PowerConfig::default(), &mut o);
        assert_eq!(out.matches.len(), 3);
    }

    #[test]
    fn empty_input() {
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        let out = power_resolve(0, &[], &PowerConfig::default(), &mut o);
        assert!(out.matches.is_empty());
        assert_eq!(out.questions, 0);
    }
}
