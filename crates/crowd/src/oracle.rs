//! The simulated crowd worker.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A noisy match oracle: returns the ground-truth answer with probability
/// `accuracy`, flips it otherwise, and bills one question per call.
///
/// `accuracy = 1.0` models the idealized crowd most crowd-ER papers
/// assume after majority voting; ~0.95 models single-worker answers.
pub struct NoisyOracle<F: Fn(u32, u32) -> bool> {
    truth: F,
    accuracy: f64,
    rng: SmallRng,
    questions: usize,
}

impl<F: Fn(u32, u32) -> bool> std::fmt::Debug for NoisyOracle<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NoisyOracle")
            .field("accuracy", &self.accuracy)
            .field("questions", &self.questions)
            .finish_non_exhaustive()
    }
}

impl<F: Fn(u32, u32) -> bool> NoisyOracle<F> {
    /// Creates an oracle over a ground-truth predicate.
    pub fn new(truth: F, accuracy: f64, seed: u64) -> Self {
        assert!(
            (0.5..=1.0).contains(&accuracy),
            "a crowd below coin-flip accuracy is not a useful model"
        );
        Self {
            truth,
            accuracy,
            rng: SmallRng::seed_from_u64(seed),
            questions: 0,
        }
    }

    /// Asks whether records `a` and `b` match. Increments the bill.
    pub fn ask(&mut self, a: u32, b: u32) -> bool {
        self.questions += 1;
        let honest = (self.truth)(a, b);
        if self.rng.random_range(0.0..1.0) < self.accuracy {
            honest
        } else {
            !honest
        }
    }

    /// Number of questions asked so far — the budget the paper argues
    /// crowd methods must pay.
    pub fn questions_asked(&self) -> usize {
        self.questions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_oracle_tells_truth_and_bills() {
        let mut o = NoisyOracle::new(|a, b| a + 1 == b, 1.0, 1);
        assert!(o.ask(0, 1));
        assert!(!o.ask(0, 2));
        assert_eq!(o.questions_asked(), 2);
    }

    #[test]
    fn noisy_oracle_errs_at_configured_rate() {
        let mut o = NoisyOracle::new(|_, _| true, 0.9, 42);
        let wrong = (0..2000).filter(|_| !o.ask(0, 1)).count();
        let rate = wrong as f64 / 2000.0;
        assert!((rate - 0.1).abs() < 0.03, "error rate {rate}");
    }

    #[test]
    fn deterministic_under_seed() {
        let answers = |seed| {
            let mut o = NoisyOracle::new(|_, _| true, 0.8, seed);
            (0..50).map(|_| o.ask(1, 2)).collect::<Vec<_>>()
        };
        assert_eq!(answers(7), answers(7));
    }

    #[test]
    #[should_panic(expected = "coin-flip")]
    fn rejects_useless_accuracy() {
        NoisyOracle::new(|_, _| true, 0.3, 0);
    }
}
