//! # er-crowd
//!
//! Simulated crowd-sourcing baselines standing in for the paper's
//! "crowd-sourcing based approaches" rows of Table II (CrowdER \[8\],
//! TransM \[10\], GCER \[9\], ACD \[12\], Power+ \[13\]), whose numbers the
//! paper quotes from prior publications. DESIGN.md §4 records the
//! substitution: real crowd workers are replaced by a **noisy oracle**
//! with configurable accuracy, so the harness can reproduce the paper's
//! cost argument — near-perfect F1 bought with a budget of human
//! questions — without Mechanical Turk.
//!
//! * [`oracle`] — the simulated worker: answers ground truth with
//!   probability `accuracy`, and counts every question asked.
//! * [`crowder`] — CrowdER-style hybrid: a machine-side similarity
//!   filter (the paper's cited threshold, Jaccard ≥ 0.3) prunes the
//!   candidate set, the crowd verifies every survivor.
//! * [`transm`] — TransM-style transitivity-aware querying: candidates
//!   are asked in descending similarity order and answers are propagated
//!   through positive/negative transitive closure so deducible pairs are
//!   never sent to the crowd.
//! * [`gcer`] — GCER-style budget-limited question selection: spend a
//!   fixed budget on the most valuable questions, decide the rest with
//!   the machine proxy.
//! * [`acd`] — ACD-style adaptive cluster-based deduplication with
//!   representative queries and majority voting.
//! * [`power`] — Power+-style partial-order pruning: a noise-tolerant
//!   boundary search over the score-ordered candidates.

#![deny(unsafe_code)]

pub mod acd;
pub mod crowder;
pub mod gcer;
pub mod oracle;
pub mod power;
pub mod transm;

pub use acd::{acd_resolve, AcdConfig};
pub use crowder::{crowder_resolve, CrowdErConfig, CrowdOutcome};
pub use gcer::{gcer_resolve, GcerConfig};
pub use oracle::NoisyOracle;
pub use power::{power_resolve, PowerConfig};
pub use transm::{transm_resolve, TransMConfig};
