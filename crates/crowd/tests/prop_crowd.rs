//! Property tests for the crowd strategies: billing correctness, budget
//! monotonicity, and perfect-oracle consistency on random candidate sets.

use er_crowd::{
    acd_resolve, crowder_resolve, gcer_resolve, power_resolve, transm_resolve, AcdConfig,
    CrowdErConfig, GcerConfig, NoisyOracle, PowerConfig, TransMConfig,
};
use proptest::prelude::*;

/// Random universe: `n` records in `n / 3 + 1` entities, plus scored
/// candidate pairs whose scores loosely correlate with the truth.
fn universe() -> impl Strategy<Value = (usize, Vec<u32>, Vec<(u32, u32, f64)>)> {
    (6usize..24).prop_flat_map(|n| {
        let entities = n / 3 + 1;
        let labels = proptest::collection::vec(0u32..entities as u32, n);
        (Just(n), labels).prop_map(|(n, labels)| {
            let mut pairs = Vec::new();
            for a in 0..n as u32 {
                for b in a + 1..n as u32 {
                    let matching = labels[a as usize] == labels[b as usize];
                    // Correlated but noisy machine scores.
                    let base = if matching { 0.7 } else { 0.3 };
                    let jitter = ((a * 31 + b * 17) % 10) as f64 / 25.0;
                    pairs.push((a, b, base + jitter));
                }
            }
            (n, labels, pairs)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_strategies_bill_what_they_ask((n, labels, pairs) in universe()) {
        let truth = |a: u32, b: u32| labels[a as usize] == labels[b as usize];
        // CrowdER bills exactly the pairs above the filter.
        let mut o = NoisyOracle::new(truth, 1.0, 1);
        let out = crowder_resolve(&pairs, &CrowdErConfig { machine_threshold: 0.4 }, &mut o);
        prop_assert_eq!(out.questions + out.filtered_out, pairs.len());
        prop_assert_eq!(o.questions_asked(), out.questions);

        // TransM never bills more than CrowdER at the same filter.
        let mut o2 = NoisyOracle::new(truth, 1.0, 1);
        let tm = transm_resolve(n, &pairs, &TransMConfig { machine_threshold: 0.4 }, &mut o2);
        prop_assert!(tm.questions <= out.questions);
    }

    #[test]
    fn perfect_oracle_strategies_never_fabricate((n, labels, pairs) in universe()) {
        let truth = |a: u32, b: u32| labels[a as usize] == labels[b as usize];
        // With a perfect oracle, every *directly asked and confirmed* pair
        // is true; only transitive deductions could differ (but entity
        // labels are transitive too, so all emitted matches must be true)
        // — for strategies that never guess from machine scores alone.
        let mut o = NoisyOracle::new(truth, 1.0, 2);
        let crowder = crowder_resolve(&pairs, &CrowdErConfig { machine_threshold: 0.0 }, &mut o);
        for &(a, b) in &crowder.matches {
            prop_assert!(truth(a, b));
        }
        let mut o = NoisyOracle::new(truth, 1.0, 2);
        let tm = transm_resolve(n, &pairs, &TransMConfig { machine_threshold: 0.0 }, &mut o);
        for &(a, b) in &tm.matches {
            prop_assert!(truth(a, b), "transitive deduction fabricated ({}, {})", a, b);
        }
        let mut o = NoisyOracle::new(truth, 1.0, 2);
        let acd = acd_resolve(n, &pairs, &AcdConfig { machine_threshold: 0.0, ..Default::default() }, &mut o);
        for &(a, b) in &acd.matches {
            prop_assert!(truth(a, b));
        }
    }

    #[test]
    fn gcer_questions_respect_budget((n, labels, pairs) in universe(), budget in 0usize..30) {
        let truth = |a: u32, b: u32| labels[a as usize] == labels[b as usize];
        let mut o = NoisyOracle::new(truth, 0.9, 3);
        let out = gcer_resolve(
            n,
            &pairs,
            &GcerConfig { budget, machine_threshold: 0.0 },
            &mut o,
        );
        prop_assert!(out.questions <= budget);
    }

    #[test]
    fn power_output_is_well_formed((n, labels, pairs) in universe()) {
        let truth = |a: u32, b: u32| labels[a as usize] == labels[b as usize];
        let mut o = NoisyOracle::new(truth, 0.9, 4);
        let out = power_resolve(n, &pairs, &PowerConfig::default(), &mut o);
        // Matches are normalized, deduplicated candidate pairs.
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &out.matches {
            prop_assert!(a < b);
            prop_assert!(seen.insert((a, b)));
            prop_assert!(pairs.iter().any(|&(x, y, _)| (x.min(y), x.max(y)) == (a, b)));
        }
    }
}
