//! Published resolution state and the lock-free query path.
//!
//! The engine is a single writer: every [`crate::ServeEngine::resolve`]
//! builds a fresh immutable [`Snapshot`] and publishes it through an
//! epoch/`Arc` handoff. Readers hold a [`QueryHandle`]: in the steady
//! state a query is **one atomic load** (the epoch check) plus reads of
//! the handle's cached `Arc<Snapshot>` — no lock is taken. Only when
//! the epoch moved does the handle briefly lock the publish slot to
//! swap its cached `Arc`; the writer holds that lock only to store an
//! already-built `Arc`, so queries never wait on a resolve in progress
//! and always see a complete, internally consistent resolution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use er_core::FusionOutcome;
use er_graph::BipartiteGraph;
use parking_lot::Mutex;

/// One immutable, internally consistent resolution of everything
/// ingested up to some epoch: the candidate pairs with their matching
/// probabilities, the decided matches, and the entity clusters.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    epoch: u64,
    records: usize,
    /// Candidate pairs, sorted ascending (`a < b`).
    pairs: Vec<(u32, u32)>,
    /// Matching probability per candidate pair, aligned with `pairs`.
    probabilities: Vec<f64>,
    /// Decided matches (`p ≥ η`), sorted ascending.
    matches: Vec<(u32, u32)>,
    /// Record → cluster index (every record belongs to exactly one
    /// cluster; singletons included).
    cluster_of: Vec<u32>,
    /// Cluster index → sorted members, ordered by smallest member.
    clusters: Vec<Vec<u32>>,
}

impl Snapshot {
    /// The empty resolution published before the first resolve.
    pub(crate) fn empty(epoch: u64) -> Self {
        Self {
            epoch,
            ..Self::default()
        }
    }

    /// Assembles a snapshot from a fusion outcome over `graph`.
    pub(crate) fn from_outcome(
        epoch: u64,
        records: usize,
        graph: &BipartiteGraph,
        outcome: FusionOutcome,
    ) -> Self {
        let pairs: Vec<(u32, u32)> = graph.pairs().iter().map(|p| (p.a, p.b)).collect();
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]), "pairs sorted");
        let mut cluster_of = vec![0u32; records];
        for (c, members) in outcome.clusters.iter().enumerate() {
            for &r in members {
                cluster_of[r as usize] = c as u32;
            }
        }
        Self {
            epoch,
            records,
            pairs,
            probabilities: outcome.matching_probabilities,
            matches: outcome.matches,
            cluster_of,
            clusters: outcome.clusters,
        }
    }

    /// The epoch this snapshot was published at (0 = nothing resolved).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of records covered by this resolution.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Candidate pairs, sorted ascending.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Matching probabilities aligned with [`Self::pairs`].
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Decided matches, sorted ascending.
    pub fn matches(&self) -> &[(u32, u32)] {
        &self.matches
    }

    /// Entity clusters (sorted members, ordered by smallest member).
    pub fn clusters(&self) -> &[Vec<u32>] {
        &self.clusters
    }

    /// Whether `(a, b)` was decided a match at this epoch.
    pub fn is_match(&self, a: u32, b: u32) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.matches.binary_search(&key).is_ok()
    }

    /// The matching probability of `(a, b)` — `None` when the pair was
    /// not a candidate (blocked pairs have probability 0 by
    /// construction).
    pub fn match_probability(&self, a: u32, b: u32) -> Option<f64> {
        let key = if a < b { (a, b) } else { (b, a) };
        self.pairs
            .binary_search(&key)
            .ok()
            .map(|i| self.probabilities[i])
    }

    /// The cluster index of record `r` (`None` for records past this
    /// snapshot's coverage — ingested but not yet resolved).
    pub fn cluster_id(&self, r: u32) -> Option<u32> {
        self.cluster_of.get(r as usize).copied()
    }

    /// Members of cluster `c`, sorted ascending.
    pub fn cluster_members(&self, c: u32) -> &[u32] {
        &self.clusters[c as usize]
    }

    /// Records in the same entity cluster as `r` (including `r`), or
    /// `None` when `r` is not covered yet.
    pub fn cluster_of(&self, r: u32) -> Option<&[u32]> {
        self.cluster_id(r).map(|c| self.cluster_members(c))
    }

    /// Bitwise result equality, ignoring the epoch stamp: candidate
    /// pairs, probabilities (`f64::to_bits`), matches and clusters all
    /// identical. This is the incremental ≡ batch contract the serve
    /// tests pin.
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        self.records == other.records
            && self.pairs == other.pairs
            && self.probabilities.len() == other.probabilities.len()
            && self
                .probabilities
                .iter()
                .zip(&other.probabilities)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.matches == other.matches
            && self.clusters == other.clusters
    }
}

/// The single-writer publish slot shared between an engine and its
/// query handles.
#[derive(Debug)]
pub(crate) struct SharedState {
    /// Monotonic publication epoch; readers re-sync when it moves.
    pub(crate) epoch: AtomicU64,
    /// The latest published snapshot.
    pub(crate) slot: Mutex<Arc<Snapshot>>,
}

impl SharedState {
    pub(crate) fn new() -> Self {
        Self {
            epoch: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(Snapshot::empty(0))),
        }
    }

    /// Publishes `snapshot`: slot first, then the epoch store (release)
    /// that readers acquire on. A reader that observes the new epoch is
    /// therefore guaranteed to find a snapshot at least that new in the
    /// slot.
    pub(crate) fn publish(&self, snapshot: Arc<Snapshot>) {
        let epoch = snapshot.epoch();
        *self.slot.lock() = snapshot;
        self.epoch.store(epoch, Ordering::Release);
    }
}

/// A cheaply cloneable, `Send` reader over the engine's published
/// resolutions. Steady-state queries are lock-free: one atomic epoch
/// load, then reads of the cached `Arc<Snapshot>`.
#[derive(Debug, Clone)]
pub struct QueryHandle {
    shared: Arc<SharedState>,
    cached: Arc<Snapshot>,
    seen: u64,
}

impl QueryHandle {
    pub(crate) fn new(shared: Arc<SharedState>) -> Self {
        let cached = shared.slot.lock().clone();
        let seen = cached.epoch();
        Self {
            shared,
            cached,
            seen,
        }
    }

    /// The current snapshot, re-synced if the engine published a newer
    /// epoch since the last call. The returned reference is stable until
    /// the next `&mut self` call; clone the `Arc` to hold it longer.
    pub fn snapshot(&mut self) -> &Arc<Snapshot> {
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        if epoch != self.seen {
            self.cached = self.shared.slot.lock().clone();
            // The slot may already hold something newer than the epoch
            // we loaded; trust the snapshot's own stamp.
            self.seen = self.cached.epoch();
        }
        &self.cached
    }

    /// Whether `(a, b)` is a match in the freshest published resolution.
    pub fn is_match(&mut self, a: u32, b: u32) -> bool {
        let _span = er_obs::span("serve.query");
        self.snapshot().is_match(a, b)
    }

    /// Matching probability of `(a, b)` in the freshest published
    /// resolution (`None` when the pair was not a candidate).
    pub fn match_probability(&mut self, a: u32, b: u32) -> Option<f64> {
        let _span = er_obs::span("serve.query");
        self.snapshot().match_probability(a, b)
    }

    /// The entity cluster containing `r` (`None` when `r` is not
    /// resolved yet), as an owned sorted member list.
    pub fn cluster_of(&mut self, r: u32) -> Option<Vec<u32>> {
        let _span = er_obs::span("serve.query");
        self.snapshot().cluster_of(r).map(<[u32]>::to_vec)
    }

    /// The epoch of the snapshot this handle currently reads from.
    pub fn epoch(&self) -> u64 {
        self.seen
    }
}
