//! The single-writer ingest/resolve engine.
//!
//! [`ServeEngine`] owns the growing state — the [`StreamingCorpus`],
//! the MinHash [`SignatureCache`] behind the blocking strategy, and the
//! exact [`CliqueRankCache`] — and re-resolves on demand. Incrementality
//! lands where the cost is: CliqueRank dominates a resolve, and its
//! cache replays every connected component whose content (members,
//! neighborhoods, similarities, config) is unchanged since the previous
//! epoch, bit-for-bit. Components dirtied by ingested records — and the
//! occasional clean-looking component invalidated by a frequent-term
//! flip — miss the content hash and recompute. The result is **exactly**
//! the batch resolution of the same texts in the same order
//! ([`resolve_batch`]), a property pinned by this crate's tests and the
//! workspace-level `serve_equivalence` proptest.

use std::ops::Range;
use std::sync::Arc;

use er_core::{CliqueRankCache, FusionConfig, FusionOutcome, Resolver};
use er_graph::{BipartiteGraph, BipartiteGraphBuilder};
use er_pool::WorkerPool;
use er_text::lsh::SignatureCache;
use er_text::{
    BatchScorer, BlockingStrategy, Corpus, CorpusBuilder, SimKernel, StreamingCorpus, TermId,
};

use crate::snapshot::{QueryHandle, SharedState, Snapshot};

/// Default frequent-term cap, matching the batch pipeline's
/// `unsupervised_er::pipeline::DEFAULT_MAX_DF_FRACTION`.
pub const DEFAULT_MAX_DF_FRACTION: f64 = 0.05;

/// Seed-similarity kernel, matching the batch pipeline's
/// `unsupervised_er::pipeline::SEED_KERNEL`.
pub const SEED_KERNEL: SimKernel = SimKernel::JaroWinkler;

/// Default [`ServeConfig::cache_max_age`]: cached component solutions
/// untouched for this many resolve epochs are evicted.
pub const DEFAULT_CACHE_MAX_AGE: u64 = 8;

/// Configuration of a [`ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Fusion-loop settings (rounds, η, thread count, dispatch policy —
    /// the engine's worker pool is built from `fusion.threads` and
    /// `fusion.dispatch`).
    pub fusion: FusionConfig,
    /// Candidate-generation strategy. [`BlockingStrategy::TokenGraph`]
    /// is paper-exact; the LSH/meta strategies scale further and keep
    /// their MinHash signatures warm across resolves.
    pub strategy: BlockingStrategy,
    /// Frequent-term cap forwarded to
    /// [`StreamingCorpus::materialize`].
    pub max_df_fraction: f64,
    /// Posting-list spill fraction that triggers staged compaction
    /// ([`StreamingCorpus::with_compaction_threshold`]).
    pub compaction_threshold: f64,
    /// CliqueRank cache entries untouched for more than this many
    /// resolve epochs are evicted ([`CliqueRankCache::evict_stale`]).
    pub cache_max_age: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            fusion: FusionConfig::default(),
            strategy: BlockingStrategy::TokenGraph,
            max_df_fraction: DEFAULT_MAX_DF_FRACTION,
            compaction_threshold: er_text::DEFAULT_COMPACTION_THRESHOLD,
            cache_max_age: DEFAULT_CACHE_MAX_AGE,
        }
    }
}

/// Streaming entity-resolution engine: ingest records one at a time or
/// in micro-batches, [`Self::resolve`] when a fresh view is needed, and
/// answer match/cluster queries concurrently through [`QueryHandle`]s.
#[derive(Debug)]
pub struct ServeEngine {
    config: ServeConfig,
    pool: WorkerPool,
    corpus: StreamingCorpus,
    signatures: SignatureCache,
    cache: CliqueRankCache,
    shared: Arc<SharedState>,
    /// Record count covered by the last published snapshot.
    resolved_records: usize,
    resolves: u64,
}

impl ServeEngine {
    /// An empty engine. The initial published snapshot is epoch 0 with
    /// no records.
    pub fn new(config: ServeConfig) -> Self {
        let pool = WorkerPool::with_policy(config.fusion.threads, config.fusion.dispatch);
        let corpus = StreamingCorpus::with_compaction_threshold(config.compaction_threshold);
        Self {
            config,
            pool,
            corpus,
            signatures: SignatureCache::new(),
            cache: CliqueRankCache::exact(),
            shared: Arc::new(SharedState::new()),
            resolved_records: 0,
            resolves: 0,
        }
    }

    /// Number of ingested records (resolved or not).
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// True when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// Records not yet covered by a published snapshot.
    pub fn pending(&self) -> usize {
        self.corpus.len() - self.resolved_records
    }

    /// Resolves run so far.
    pub fn resolves(&self) -> u64 {
        self.resolves
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The CliqueRank component cache (hit/miss statistics).
    pub fn cache(&self) -> &CliqueRankCache {
        &self.cache
    }

    /// The MinHash signature cache (reuse statistics).
    pub fn signatures(&self) -> &SignatureCache {
        &self.signatures
    }

    /// Ingests one record's raw text, returning its record id.
    pub fn ingest(&mut self, text: &str) -> u32 {
        let _span = er_obs::span("serve.ingest");
        er_obs::counter_add("serve.records_ingested", 1);
        self.corpus.push_record(text)
    }

    /// Ingests a micro-batch, returning the contiguous id range it was
    /// assigned.
    pub fn ingest_batch<I, S>(&mut self, texts: I) -> Range<u32>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let _span = er_obs::span("serve.ingest");
        let start = self.corpus.len() as u32;
        let mut n = 0u64;
        for t in texts {
            self.corpus.push_record(t.as_ref());
            n += 1;
        }
        er_obs::counter_add("serve.records_ingested", n);
        start..self.corpus.len() as u32
    }

    /// Re-resolves everything ingested so far and publishes the result
    /// as a new epoch. Returns the published snapshot.
    ///
    /// The resolution is **bit-identical** to [`resolve_batch`] over the
    /// same texts: the streaming corpus materializes exactly the batch
    /// corpus, the cached blocking paths emit exactly the batch
    /// candidate lists, and the exact CliqueRank cache replays only
    /// component solutions whose full content hash matches — so warm
    /// replays and cold recomputes produce the same bits.
    pub fn resolve(&mut self) -> Arc<Snapshot> {
        let _span = er_obs::span("serve.resolve");
        self.cache.bump_generation();
        let epoch = self.shared.epoch.load(std::sync::atomic::Ordering::Relaxed) + 1;
        let corpus = self.corpus.materialize(self.config.max_df_fraction);
        let snapshot = if corpus.is_empty() {
            Arc::new(Snapshot::empty(epoch))
        } else {
            let graph = candidate_graph_cached(
                &corpus,
                &self.config.strategy,
                &self.pool,
                &mut self.signatures,
            );
            er_obs::gauge_set(
                "serve.dirty_components",
                dirty_components(&graph, corpus.len(), self.resolved_records) as f64,
            );
            let outcome = resolve_graph(
                &corpus,
                &graph,
                &self.config.fusion,
                &self.pool,
                Some(&mut self.cache),
            );
            Arc::new(Snapshot::from_outcome(epoch, corpus.len(), &graph, outcome))
        };
        let evicted = self.cache.evict_stale(self.config.cache_max_age);
        er_obs::counter_add("serve.cache_evictions", evicted as u64);
        er_obs::gauge_set("serve.epoch", epoch as f64);
        self.shared.publish(snapshot.clone());
        self.resolved_records = snapshot.records();
        self.resolves += 1;
        snapshot
    }

    /// The latest published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.slot.lock().clone()
    }

    /// A concurrent reader over the engine's published resolutions.
    /// Handles are `Send` + `Clone`; queries on the steady state take no
    /// lock.
    pub fn query_handle(&self) -> QueryHandle {
        QueryHandle::new(Arc::clone(&self.shared))
    }
}

/// The batch reference resolution: builds the corpus, candidates, seed
/// similarities and fusion outcome from scratch — the from-scratch run
/// [`ServeEngine::resolve`] must equal bit-for-bit.
pub fn resolve_batch<I, S>(texts: I, config: &ServeConfig) -> Snapshot
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let pool = WorkerPool::with_policy(config.fusion.threads, config.fusion.dispatch);
    let corpus = CorpusBuilder::new()
        .extend_texts(texts)
        .max_df_fraction(config.max_df_fraction)
        .build();
    if corpus.is_empty() {
        return Snapshot::empty(0);
    }
    let graph = candidate_graph(&corpus, &config.strategy, &pool);
    let outcome = resolve_graph(&corpus, &graph, &config.fusion, &pool, None);
    Snapshot::from_outcome(0, corpus.len(), &graph, outcome)
}

/// Builds the candidate bipartite graph for `corpus` under `strategy`
/// (mirrors `unsupervised_er::pipeline::prepare_with_strategy` without a
/// source policy — the serving engine deduplicates a single stream).
fn candidate_graph(
    corpus: &Corpus,
    strategy: &BlockingStrategy,
    pool: &WorkerPool,
) -> BipartiteGraph {
    let allowed = match strategy {
        BlockingStrategy::TokenGraph => None,
        _ => Some(strategy.candidate_pairs(corpus, pool)),
    };
    build_graph(corpus, allowed)
}

/// [`candidate_graph`] with MinHash signatures maintained in `cache` —
/// identical output.
fn candidate_graph_cached(
    corpus: &Corpus,
    strategy: &BlockingStrategy,
    pool: &WorkerPool,
    cache: &mut SignatureCache,
) -> BipartiteGraph {
    let allowed = match strategy {
        BlockingStrategy::TokenGraph => None,
        _ => Some(strategy.candidate_pairs_cached(corpus, pool, cache)),
    };
    build_graph(corpus, allowed)
}

fn build_graph(corpus: &Corpus, allowed: Option<Vec<(u32, u32)>>) -> BipartiteGraph {
    let mut builder = BipartiteGraphBuilder::new(corpus.len(), corpus.vocab_len());
    for i in 0..corpus.vocab_len() {
        let t = TermId(i as u32);
        builder = builder.postings(t.0, corpus.postings(t));
    }
    if let Some(allowed) = allowed {
        builder = builder.pair_filter(move |a, b| {
            allowed
                .binary_search(&if a < b { (a, b) } else { (b, a) })
                .is_ok()
        });
    }
    builder.build()
}

/// Seeds ITER with batched [`SEED_KERNEL`] similarities and runs the
/// fusion loop, through the CliqueRank cache when one is supplied.
fn resolve_graph(
    corpus: &Corpus,
    graph: &BipartiteGraph,
    config: &FusionConfig,
    pool: &WorkerPool,
    cache: Option<&mut CliqueRankCache>,
) -> FusionOutcome {
    let idx: Vec<(u32, u32)> = graph.pairs().iter().map(|p| (p.a, p.b)).collect();
    let seed = BatchScorer::new(corpus).score(SEED_KERNEL, &idx, pool);
    let resolver = Resolver::new(config.clone());
    match cache {
        Some(c) => resolver.resolve_cached(graph, Some(&seed), c),
        None => resolver.resolve_seeded(graph, &seed),
    }
}

/// Number of connected components of the candidate graph containing at
/// least one record ingested since the previous resolve (id ≥
/// `resolved_records`) — the components whose CliqueRank solutions
/// *cannot* replay. This gauge is advisory: correctness never depends
/// on it, because the cache's content hash also catches clean-looking
/// components invalidated indirectly (e.g. a frequent-term flip
/// changing similarities in a component no new record touches).
fn dirty_components(graph: &BipartiteGraph, n_records: usize, resolved_records: usize) -> usize {
    let mut parent: Vec<u32> = (0..n_records as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for p in graph.pairs() {
        let (ra, rb) = (find(&mut parent, p.a), find(&mut parent, p.b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi as usize] = lo;
        }
    }
    let mut dirty_root = vec![false; n_records];
    let mut dirty = 0usize;
    for r in resolved_records..n_records {
        let root = find(&mut parent, r as u32) as usize;
        if !dirty_root[root] {
            dirty_root[root] = true;
            dirty += 1;
        }
    }
    dirty
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts() -> Vec<&'static str> {
        vec![
            "fenix at the argyle 8358 sunset blvd",
            "fenix 8358 sunset blvd west hollywood",
            "grill on the alley 9560 dayton way",
            "the grill alley 9560 dayton",
            "la la land sunset strip",
            "art de cuisine 9777 melrose ave",
            "arts delicatessen 12224 ventura blvd",
            "art delicatessen 12224 ventura blvd studio city",
        ]
    }

    fn small_config() -> ServeConfig {
        let mut config = ServeConfig {
            // Tiny corpora need a permissive cap or everything is a
            // "frequent" term.
            max_df_fraction: 0.6,
            ..ServeConfig::default()
        };
        config.fusion.threads = 1;
        config.fusion.rounds = 2;
        config
    }

    #[test]
    fn incremental_resolve_matches_batch_at_every_prefix() {
        let mut engine = ServeEngine::new(small_config());
        for (i, t) in texts().iter().enumerate() {
            assert_eq!(engine.ingest(t), i as u32);
            let snap = engine.resolve();
            let batch = resolve_batch(texts()[..=i].iter().copied(), engine.config());
            assert!(snap.bitwise_eq(&batch), "prefix {i}");
            assert_eq!(snap.epoch(), i as u64 + 1);
        }
        assert!(
            engine.cache().hits() > 0,
            "warm prefixes must replay components"
        );
    }

    #[test]
    fn micro_batch_ingest_assigns_contiguous_ids() {
        let mut engine = ServeEngine::new(small_config());
        let r = engine.ingest_batch(texts().iter().take(3));
        assert_eq!(r, 0..3);
        let r = engine.ingest_batch(texts().iter().skip(3));
        assert_eq!(r, 3..texts().len() as u32);
        assert_eq!(engine.pending(), texts().len());
        engine.resolve();
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn queries_see_published_epochs_only() {
        let mut engine = ServeEngine::new(small_config());
        let mut handle = engine.query_handle();
        assert_eq!(handle.snapshot().epoch(), 0);
        assert!(!handle.is_match(0, 1));
        engine.ingest_batch(texts().iter().take(2));
        // Ingest alone publishes nothing.
        assert_eq!(handle.snapshot().epoch(), 0);
        let snap = engine.resolve();
        assert_eq!(handle.snapshot().epoch(), 1);
        assert_eq!(
            handle.is_match(0, 1),
            snap.is_match(0, 1),
            "handle and snapshot agree"
        );
        let c = handle.cluster_of(0).unwrap();
        assert!(c.contains(&0));
    }

    #[test]
    fn handles_work_across_threads_during_ingest() {
        let mut engine = ServeEngine::new(small_config());
        engine.ingest_batch(texts().iter().take(4));
        engine.resolve();
        let mut handle = engine.query_handle();
        let reader = std::thread::spawn(move || {
            let mut seen = 0u64;
            for _ in 0..100 {
                let s = handle.snapshot();
                assert!(s.epoch() >= seen, "epochs are monotonic");
                seen = s.epoch();
                // Internal consistency: every match's records share a
                // cluster in the same snapshot.
                for &(a, b) in s.matches() {
                    assert_eq!(s.cluster_id(a), s.cluster_id(b));
                }
            }
            seen
        });
        for t in texts().iter().skip(4) {
            engine.ingest(t);
            engine.resolve();
        }
        let seen = reader.join().expect("reader thread");
        assert!(seen >= 1);
    }

    #[test]
    fn meta_strategy_serves_identically_to_batch() {
        let mut config = small_config();
        config.strategy = BlockingStrategy::meta_default();
        let mut engine = ServeEngine::new(config);
        for (i, t) in texts().iter().enumerate() {
            engine.ingest(t);
            let snap = engine.resolve();
            let batch = resolve_batch(texts()[..=i].iter().copied(), engine.config());
            assert!(snap.bitwise_eq(&batch), "prefix {i}");
        }
        assert!(
            engine.signatures().reused() > 0,
            "unchanged records must reuse signatures"
        );
    }

    #[test]
    fn empty_resolve_publishes_empty_snapshot() {
        let mut engine = ServeEngine::new(small_config());
        let snap = engine.resolve();
        assert_eq!(snap.records(), 0);
        assert_eq!(snap.epoch(), 1);
        assert!(engine.is_empty());
    }

    #[test]
    fn dirty_components_counts_components_with_new_records() {
        let corpus = CorpusBuilder::new()
            .extend_texts(["a b", "a c", "d e", "d f", "g h"])
            .build();
        let graph = build_graph(&corpus, None);
        // All records new: {0,1}, {2,3}, {4} → 3 dirty components.
        assert_eq!(dirty_components(&graph, 5, 0), 3);
        // Only record 4 new: its singleton component alone is dirty.
        assert_eq!(dirty_components(&graph, 5, 4), 1);
        assert_eq!(dirty_components(&graph, 5, 5), 0);
    }

    #[test]
    fn stale_cache_entries_are_evicted_over_epochs() {
        let mut config = small_config();
        config.cache_max_age = 1;
        let mut engine = ServeEngine::new(config);
        engine.ingest_batch(texts().iter().take(4));
        engine.resolve();
        let after_first = engine.cache().len();
        assert!(after_first > 0);
        // Many further epochs over a disjoint new component: entries of
        // vanished components age out under max_age = 1.
        engine.ingest("zz yy xx");
        engine.ingest("zz yy xx ww");
        for _ in 0..4 {
            engine.resolve();
        }
        assert!(
            engine.cache().len() <= after_first + 2,
            "cache stays bounded: {}",
            engine.cache().len()
        );
    }
}
