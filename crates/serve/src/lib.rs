//! # er-serve
//!
//! Streaming/incremental serving engine for the graph-theoretic fusion
//! framework: ingest records one at a time or in micro-batches, resolve
//! incrementally, and answer match/cluster queries concurrently from a
//! snapshot-consistent view.
//!
//! Three pieces:
//!
//! * [`ServeEngine`] — the single writer. It maintains the growing
//!   corpus state ([`er_text::StreamingCorpus`]), keeps MinHash
//!   signatures warm across resolves ([`er_text::lsh::SignatureCache`])
//!   and replays unchanged connected components through the exact
//!   [`er_core::CliqueRankCache`], so a [`ServeEngine::resolve`] after a
//!   small ingest recomputes only the dirtied components — while staying
//!   **bit-identical** to a from-scratch batch run ([`resolve_batch`])
//!   over the same record stream.
//! * [`Snapshot`] — one immutable, internally consistent resolution
//!   (candidate pairs + probabilities, matches, entity clusters),
//!   published under a monotonically increasing epoch.
//! * [`QueryHandle`] — a `Send + Clone` reader. Steady-state queries are
//!   lock-free: one atomic epoch load against the handle's cached
//!   `Arc<Snapshot>`; only an epoch change takes a brief lock to swap
//!   the `Arc`. Queries never block on a resolve in progress.
//!
//! ```
//! use er_serve::{ServeConfig, ServeEngine};
//!
//! let mut config = ServeConfig::default();
//! config.fusion.threads = 1;
//! config.fusion.rounds = 2;
//! config.max_df_fraction = 0.6; // tiny demo corpus
//! let mut engine = ServeEngine::new(config);
//! let mut queries = engine.query_handle();
//!
//! engine.ingest("fenix at the argyle 8358 sunset blvd");
//! engine.ingest("fenix 8358 sunset blvd west hollywood");
//! engine.resolve();
//! assert_eq!(queries.snapshot().epoch(), 1);
//! assert_eq!(queries.cluster_of(0).is_some(), true);
//! ```

#![deny(unsafe_code)]

pub mod engine;
pub mod snapshot;

pub use engine::{
    resolve_batch, ServeConfig, ServeEngine, DEFAULT_CACHE_MAX_AGE, DEFAULT_MAX_DF_FRACTION,
    SEED_KERNEL,
};
pub use snapshot::{QueryHandle, Snapshot};
