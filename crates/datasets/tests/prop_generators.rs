//! Property tests for the dataset generators: structural invariants that
//! must hold at any scale and seed.

use er_datasets::generators::{paper, product, restaurant};
use er_datasets::{PaperConfig, ProductConfig, RestaurantConfig, SourcePolicy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn restaurant_counts_hold(records in 20usize..200, dup_fraction in 0.05f64..0.4, seed in 0u64..1_000) {
        let duplicate_pairs = ((records as f64 * dup_fraction) as usize / 2).max(1);
        let cfg = RestaurantConfig { records, duplicate_pairs, seed };
        let d = restaurant::generate(&cfg);
        prop_assert_eq!(d.len(), records);
        prop_assert_eq!(d.matching_pairs().len(), duplicate_pairs);
        prop_assert_eq!(d.policy, SourcePolicy::WithinSingleSource);
        // Ids dense, entities consistent.
        for (i, r) in d.records.iter().enumerate() {
            prop_assert_eq!(r.id as usize, i);
            prop_assert!(!r.text.is_empty());
        }
        // No cluster exceeds 2 records.
        prop_assert!(d.entity_clusters().iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn product_counts_hold(abt in 10usize..120, extra in 0usize..20, seed in 0u64..1_000) {
        let cfg = ProductConfig {
            abt_records: abt,
            buy_records: abt + extra,
            seed,
            ..Default::default()
        };
        let d = product::generate(&cfg);
        prop_assert_eq!(d.len(), 2 * abt + extra);
        prop_assert_eq!(d.matching_pairs().len(), abt + extra);
        // Sources partition correctly and all matches are cross-source.
        let abt_count = d.records.iter().filter(|r| r.source == 0).count();
        prop_assert_eq!(abt_count, abt);
        for (a, b) in d.matching_pairs() {
            prop_assert!(d.records[a as usize].source != d.records[b as usize].source);
            prop_assert_eq!(d.records[a as usize].entity, d.records[b as usize].entity);
        }
    }

    #[test]
    fn paper_counts_hold(scale in 0.08f64..0.6, seed in 0u64..1_000) {
        let cfg = PaperConfig { seed, ..PaperConfig::default().scaled(scale) };
        let d = paper::generate(&cfg);
        prop_assert_eq!(d.len(), cfg.records);
        let clusters = d.entity_clusters();
        let largest = clusters.iter().map(Vec::len).max().unwrap();
        prop_assert!(largest >= cfg.largest_cluster * 9 / 10,
            "largest cluster {} far below configured {}", largest, cfg.largest_cluster);
        // Records of one entity share the entity id transitively.
        let total: usize = clusters.iter().map(Vec::len).sum();
        prop_assert_eq!(total, d.len());
    }

    #[test]
    fn generators_are_deterministic(seed in 0u64..500) {
        let r1 = restaurant::generate(&RestaurantConfig { records: 60, duplicate_pairs: 8, seed });
        let r2 = restaurant::generate(&RestaurantConfig { records: 60, duplicate_pairs: 8, seed });
        prop_assert_eq!(r1.records, r2.records);
        let p1 = paper::generate(&PaperConfig { records: 80, largest_cluster: 12, clusters_of_3_plus: 4, seed });
        let p2 = paper::generate(&PaperConfig { records: 80, largest_cluster: 12, clusters_of_3_plus: 4, seed });
        prop_assert_eq!(p1.records, p2.records);
    }

    #[test]
    fn cluster_sizes_sum(scale in 0.05f64..1.0) {
        let cfg = PaperConfig::default().scaled(scale);
        let sizes = paper::cluster_sizes(&cfg);
        prop_assert_eq!(sizes.iter().sum::<usize>(), cfg.records);
        prop_assert!(sizes.iter().all(|&s| s >= 1));
    }
}
