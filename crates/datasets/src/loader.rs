//! TSV interchange format for datasets.
//!
//! Users with the real benchmark archives (Fodor/Zagat, Abt-Buy, Cora)
//! can convert them to this four-column TSV and run the framework
//! unmodified:
//!
//! ```text
//! # comment lines and blank lines are skipped
//! id <TAB> source <TAB> entity <TAB> text
//! ```

use std::io::{BufRead, Write};
use std::path::Path;

use crate::record::{Dataset, Record, SourcePolicy};

/// Errors from TSV parsing.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and reason.
    Parse { line: usize, reason: String },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses a dataset from TSV text.
pub fn parse_tsv(
    name: &str,
    reader: impl BufRead,
    policy: SourcePolicy,
) -> Result<Dataset, LoadError> {
    let mut records = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = line.splitn(4, '\t');
        let parse_u32 = |s: Option<&str>, what: &str| -> Result<u32, LoadError> {
            s.ok_or_else(|| LoadError::Parse {
                line: lineno + 1,
                reason: format!("missing {what} column"),
            })?
            .trim()
            .parse()
            .map_err(|e| LoadError::Parse {
                line: lineno + 1,
                reason: format!("bad {what}: {e}"),
            })
        };
        let id = parse_u32(fields.next(), "id")?;
        let source_raw = parse_u32(fields.next(), "source")?;
        let source = u8::try_from(source_raw).map_err(|_| LoadError::Parse {
            line: lineno + 1,
            reason: format!("source {source_raw} out of range (max {})", u8::MAX),
        })?;
        let entity = parse_u32(fields.next(), "entity")?;
        let text = fields
            .next()
            .ok_or_else(|| LoadError::Parse {
                line: lineno + 1,
                reason: "missing text column".into(),
            })?
            .to_owned();
        if id as usize != records.len() {
            return Err(LoadError::Parse {
                line: lineno + 1,
                reason: format!(
                    "ids must be dense and ordered; expected {}, got {id}",
                    records.len()
                ),
            });
        }
        records.push(Record {
            id,
            source,
            entity,
            text,
        });
    }
    Ok(Dataset::new(name, records, policy))
}

/// Loads a dataset from a TSV file.
pub fn load_tsv(path: impl AsRef<Path>, policy: SourcePolicy) -> Result<Dataset, LoadError> {
    let file = std::fs::File::open(&path)?;
    let name = path.as_ref().file_stem().map_or_else(
        || "dataset".to_owned(),
        |s| s.to_string_lossy().into_owned(),
    );
    parse_tsv(&name, std::io::BufReader::new(file), policy)
}

/// Writes a dataset as TSV.
///
/// Fails with [`std::io::ErrorKind::InvalidData`] if a record's text
/// contains a line break: the format is line-oriented, so such a record
/// would silently parse back as garbage (or not at all).
pub fn write_tsv(dataset: &Dataset, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(writer, "# id\tsource\tentity\ttext")?;
    for r in &dataset.records {
        if r.text.contains(['\n', '\r']) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("record {}: text contains a line break", r.id),
            ));
        }
        writeln!(writer, "{}\t{}\t{}\t{}", r.id, r.source, r.entity, r.text)?;
    }
    Ok(())
}

/// Saves a dataset to a TSV file.
pub fn save_tsv(dataset: &Dataset, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_tsv(dataset, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::restaurant::{generate, RestaurantConfig};

    #[test]
    fn round_trip_through_tsv() {
        let original = generate(&RestaurantConfig {
            records: 40,
            duplicate_pairs: 6,
            seed: 3,
        });
        let mut buf = Vec::new();
        write_tsv(&original, &mut buf).unwrap();
        let parsed = parse_tsv(
            "restaurant",
            std::io::Cursor::new(buf),
            SourcePolicy::WithinSingleSource,
        )
        .unwrap();
        assert_eq!(parsed.records, original.records);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let tsv = "# header\n\n0\t0\t7\thello world\n1\t1\t7\tbye\n";
        let d = parse_tsv(
            "t",
            std::io::Cursor::new(tsv),
            SourcePolicy::CrossSourceOnly,
        )
        .unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.records[0].text, "hello world");
        assert_eq!(d.records[1].source, 1);
        assert_eq!(d.matching_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn text_may_contain_tabs_beyond_column_four() {
        let tsv = "0\t0\t1\ta\tb\tc\n";
        let d = parse_tsv(
            "t",
            std::io::Cursor::new(tsv),
            SourcePolicy::WithinSingleSource,
        )
        .unwrap();
        assert_eq!(d.records[0].text, "a\tb\tc");
    }

    #[test]
    fn reports_bad_lines() {
        let tsv = "0\t0\t1\tok\nnot-a-number\t0\t1\tbad\n";
        let err = parse_tsv(
            "t",
            std::io::Cursor::new(tsv),
            SourcePolicy::WithinSingleSource,
        )
        .unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_out_of_range_source() {
        let tsv = "0\t0\t1\tok\n1\t256\t1\ttoo big\n";
        let err = parse_tsv(
            "t",
            std::io::Cursor::new(tsv),
            SourcePolicy::WithinSingleSource,
        )
        .unwrap_err();
        match err {
            LoadError::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("out of range"), "reason: {reason}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn write_rejects_embedded_line_breaks() {
        let mut d = generate(&RestaurantConfig {
            records: 3,
            duplicate_pairs: 0,
            seed: 1,
        });
        d.records[1].text = "line one\nline two".into();
        let err = write_tsv(&d, &mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_sparse_ids() {
        let tsv = "0\t0\t1\ta\n5\t0\t1\tb\n";
        assert!(parse_tsv(
            "t",
            std::io::Cursor::new(tsv),
            SourcePolicy::WithinSingleSource
        )
        .is_err());
    }

    #[test]
    fn file_round_trip() {
        let d = generate(&RestaurantConfig {
            records: 10,
            duplicate_pairs: 2,
            seed: 4,
        });
        let path = std::env::temp_dir().join("er_datasets_loader_test.tsv");
        save_tsv(&d, &path).unwrap();
        let loaded = load_tsv(&path, SourcePolicy::WithinSingleSource).unwrap();
        assert_eq!(loaded.records, d.records);
        let _ = std::fs::remove_file(path);
    }
}
