//! The record and dataset model.

use serde::{Deserialize, Serialize};

/// A textual record with its provenance and (hidden) ground-truth entity.
///
/// The entity id is **ground truth** — generators know it, evaluation
/// reads it, and resolution algorithms must never look at it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Dense record id, `0..n`.
    pub id: u32,
    /// Source id (0 for single-source datasets; 0 = "abt", 1 = "buy" for
    /// the Product dataset).
    pub source: u8,
    /// Ground-truth entity id.
    pub entity: u32,
    /// Raw text content (name, address, description, …).
    pub text: String,
}

/// Which record pairs are candidates — mirrors how each benchmark is
/// evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SourcePolicy {
    /// Any pair of distinct records (Restaurant, Paper).
    #[default]
    WithinSingleSource,
    /// Only pairs from different sources (Product: abt × buy).
    CrossSourceOnly,
}

/// A named dataset with ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name.
    pub name: String,
    /// Records, indexed by `Record::id`.
    pub records: Vec<Record>,
    /// Candidate-pair policy.
    pub policy: SourcePolicy,
}

impl Dataset {
    /// Creates a dataset, checking that record ids are dense and in order.
    pub fn new(name: impl Into<String>, records: Vec<Record>, policy: SourcePolicy) -> Self {
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.id as usize, i, "record ids must be dense and ordered");
        }
        Self {
            name: name.into(),
            records,
            policy,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// True when `(a, b)` is an admissible candidate pair under the
    /// dataset's policy.
    pub fn is_candidate(&self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        match self.policy {
            SourcePolicy::WithinSingleSource => true,
            SourcePolicy::CrossSourceOnly => {
                self.records[a as usize].source != self.records[b as usize].source
            }
        }
    }

    /// Ground-truth matching pairs **within the candidate universe**:
    /// same entity and admissible under the policy.
    pub fn matching_pairs(&self) -> Vec<(u32, u32)> {
        let clusters = self.entity_clusters();
        let mut pairs = Vec::new();
        for members in clusters {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    if self.is_candidate(a, b) {
                        pairs.push((a, b));
                    }
                }
            }
        }
        pairs
    }

    /// Records grouped by ground-truth entity (every record appears once;
    /// singleton entities included), ordered by smallest member.
    pub fn entity_clusters(&self) -> Vec<Vec<u32>> {
        use std::collections::HashMap;
        let mut by_entity: HashMap<u32, Vec<u32>> = HashMap::new();
        for r in &self.records {
            by_entity.entry(r.entity).or_default().push(r.id);
        }
        let mut clusters: Vec<Vec<u32>> = by_entity.into_values().collect();
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort_by_key(|c| c[0]);
        clusters
    }

    /// Number of candidate pairs in the whole dataset (the `n(n−1)/2` or
    /// `|abt|·|buy|` figure the paper reports per benchmark).
    pub fn candidate_universe_size(&self) -> usize {
        match self.policy {
            SourcePolicy::WithinSingleSource => self.len() * (self.len().saturating_sub(1)) / 2,
            SourcePolicy::CrossSourceOnly => {
                let a = self.records.iter().filter(|r| r.source == 0).count();
                let b = self.len() - a;
                a * b
            }
        }
    }

    /// Iterates record texts in id order (feed for `CorpusBuilder`).
    pub fn texts(&self) -> impl Iterator<Item = &str> {
        self.records.iter().map(|r| r.text.as_str())
    }

    /// Per-record source ids (for cross-source pair filters).
    pub fn sources(&self) -> Vec<u8> {
        self.records.iter().map(|r| r.source).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, source: u8, entity: u32, text: &str) -> Record {
        Record {
            id,
            source,
            entity,
            text: text.into(),
        }
    }

    fn two_source() -> Dataset {
        Dataset::new(
            "t",
            vec![
                rec(0, 0, 100, "a"),
                rec(1, 0, 101, "b"),
                rec(2, 1, 100, "c"),
                rec(3, 1, 101, "d"),
                rec(4, 1, 102, "e"),
            ],
            SourcePolicy::CrossSourceOnly,
        )
    }

    #[test]
    fn cross_source_candidates() {
        let d = two_source();
        assert!(d.is_candidate(0, 2));
        assert!(!d.is_candidate(0, 1), "same source");
        assert!(!d.is_candidate(2, 3), "same source");
        assert!(!d.is_candidate(1, 1));
        assert_eq!(d.candidate_universe_size(), 2 * 3);
    }

    #[test]
    fn matching_pairs_respect_policy() {
        let d = two_source();
        let mut pairs = d.matching_pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn single_source_counts() {
        let d = Dataset::new(
            "s",
            vec![rec(0, 0, 1, "x"), rec(1, 0, 1, "y"), rec(2, 0, 2, "z")],
            SourcePolicy::WithinSingleSource,
        );
        assert_eq!(d.candidate_universe_size(), 3);
        assert_eq!(d.matching_pairs(), vec![(0, 1)]);
        assert_eq!(d.entity_clusters(), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_ids_rejected() {
        Dataset::new(
            "bad",
            vec![rec(5, 0, 0, "x")],
            SourcePolicy::WithinSingleSource,
        );
    }
}
