//! Paper-style citation dataset (Cora analogue).
//!
//! Paper scale: 1865 non-identical publication records, 96 clusters with
//! at least 3 records, the largest holding 192 — the big clique that
//! motivates RSS's bonus boost (§VI-B). Each record renders a citation
//! (authors, title, venue, year) with the classic citation-noise
//! channels: author initials, venue abbreviations, dropped years, title
//! typos and token reordering.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::corruption::{drop_tokens, initialize_names, swap_adjacent, typo};
use crate::record::{Dataset, Record, SourcePolicy};
use crate::wordpool::{synth_pool, TOPIC_WORDS, VENUES};

/// Configuration for the Paper generator.
#[derive(Debug, Clone, Copy)]
pub struct PaperConfig {
    /// Total records (paper: 1865).
    pub records: usize,
    /// Size of the largest cluster (paper: 192).
    pub largest_cluster: usize,
    /// Clusters with at least 3 records (paper: 96).
    pub clusters_of_3_plus: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PaperConfig {
    fn default() -> Self {
        Self {
            records: 1865,
            largest_cluster: 192,
            clusters_of_3_plus: 96,
            seed: 0xC0DE,
        }
    }
}

impl PaperConfig {
    /// Scales the absolute counts, keeping the skew shape.
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            records: crate::scaled(self.records, factor),
            largest_cluster: crate::scaled(self.largest_cluster, factor).max(3),
            clusters_of_3_plus: crate::scaled(self.clusters_of_3_plus, factor).max(1),
            ..self
        }
    }
}

/// Cora-like skewed cluster sizes: a geometric head starting at
/// `largest`, a mid tier of small (3–15) clusters until `big_clusters`
/// clusters of ≥ 3 exist, then pairs and singletons filling to `records`.
pub fn cluster_sizes(config: &PaperConfig) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut remaining = config.records;
    // Geometric head (ratio ~0.72) down to 16.
    let mut s = config.largest_cluster;
    while s >= 16 && sizes.len() < config.clusters_of_3_plus && remaining >= s {
        sizes.push(s);
        remaining -= s;
        s = (s as f64 * 0.72).round() as usize;
    }
    // Mid tier: sizes cycling 15, 11, 8, 6, 4, 3 until the ≥3 quota.
    let cycle = [15usize, 11, 8, 6, 4, 3];
    let mut i = 0;
    while sizes.len() < config.clusters_of_3_plus && remaining >= 3 {
        let want = cycle[i % cycle.len()].min(remaining);
        if want < 3 {
            break;
        }
        sizes.push(want);
        remaining -= want;
        i += 1;
    }
    // Tail: pairs for ~40% of what is left, singletons for the rest.
    let mut pair_budget = (remaining * 2) / 5 / 2;
    while pair_budget > 0 && remaining >= 2 {
        sizes.push(2);
        remaining -= 2;
        pair_budget -= 1;
    }
    while remaining > 0 {
        sizes.push(1);
        remaining -= 1;
    }
    debug_assert_eq!(sizes.iter().sum::<usize>(), config.records);
    sizes
}

struct Publication {
    authors: Vec<String>, // "first last" pairs flattened
    title: Vec<String>,
    venue_idx: usize,
    year: u32,
    /// Dominant citation style of this entity's cluster: citations of one
    /// paper copy each other, so renderings converge toward a house style
    /// (this is what makes the paper's giant cliques near-uniform —
    /// "edge weights in the same clique are close to each other", §VI-B).
    style_initials: bool,
    style_venue: f64,
}

/// Generates the dataset.
pub fn generate(config: &PaperConfig) -> Dataset {
    assert!(config.records >= 3, "need at least 3 records");
    assert!(config.largest_cluster >= 3);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let sizes = cluster_sizes(config);
    let surnames = synth_pool(&mut rng, 280, 2);
    let firstnames = synth_pool(&mut rng, 120, 2);
    // Entity-specific rare title words — the discriminative tier.
    let rare_words = synth_pool(&mut rng, sizes.len() * 2, 3);
    // Topic vocabulary: the curated research words plus a synthetic
    // extension, so each word's document frequency stays in the
    // mid-frequency tier rather than tripping the frequent-term filter.
    let mut topic_pool: Vec<String> = TOPIC_WORDS.iter().map(|&w| w.to_owned()).collect();
    topic_pool.extend(synth_pool(&mut rng, 270, 2));

    let mut publications: Vec<Publication> = Vec::with_capacity(sizes.len());
    for e in 0..sizes.len() {
        // Sibling papers: the same authors publish a follow-up whose
        // title shares one anchor and most topic words ("… part ii" /
        // journal version). The hardest Cora confusions are exactly
        // these, and they are what forces methods to learn which terms
        // discriminate rather than counting overlap.
        // Only small clusters spawn siblings: a follow-up paper sharing a
        // giant survey's anchor vocabulary would (realistically rarely)
        // dilute the anchor's discrimination power across hundreds of
        // records.
        let sibling_of =
            if e > 0 && sizes[e] <= 8 && sizes[e - 1] <= 8 && rng.random_range(0.0..1.0) < 0.35 {
                Some(e - 1)
            } else {
                None
            };
        if let Some(parent) = sibling_of {
            let p = &publications[parent];
            let mut title = p.title.clone();
            // Swap the second anchor for this entity's own and perturb
            // one topic word.
            let own_anchor = rare_words[2 * e + 1].clone();
            *title.last_mut().expect("titles are non-empty") = own_anchor;
            if title.len() > 2 {
                let i = rng.random_range(0..title.len() - 2);
                title[i] = topic_pool[rng.random_range(0..topic_pool.len())].clone();
            }
            let year = p.year + rng.random_range(0..3u32);
            publications.push(Publication {
                authors: p.authors.clone(),
                title,
                venue_idx: rng.random_range(0..VENUES.len()),
                year,
                style_initials: rng.random_range(0.0..1.0) < 0.5,
                style_venue: rng.random_range(0.0..1.0),
            });
            continue;
        }
        let n_authors = rng.random_range(1..4usize);
        let mut authors = Vec::new();
        for _ in 0..n_authors {
            authors.push(firstnames[rng.random_range(0..firstnames.len())].clone());
            authors.push(surnames[rng.random_range(0..surnames.len())].clone());
        }
        let mut title: Vec<String> = Vec::new();
        let topical = rng.random_range(3..6usize);
        for _ in 0..topical {
            title.push(topic_pool[rng.random_range(0..topic_pool.len())].clone());
        }
        // Two entity-specific rare words anchor the cluster — citations
        // of one paper share its (near-identical) title string.
        title.push(rare_words[2 * e].clone());
        title.push(rare_words[2 * e + 1].clone());
        publications.push(Publication {
            authors,
            title,
            venue_idx: rng.random_range(0..VENUES.len()),
            year: rng.random_range(1985..2001u32),
            style_initials: rng.random_range(0.0..1.0) < 0.5,
            style_venue: rng.random_range(0.0..1.0),
        });
    }

    let mut records: Vec<(u32, String)> = Vec::with_capacity(config.records);
    for (e, (publication, &size)) in publications.iter().zip(&sizes).enumerate() {
        for _ in 0..size {
            records.push((e as u32, render_citation(publication, &surnames, &mut rng)));
        }
    }
    // Shuffle so clusters are interleaved, then assign ids.
    for i in (1..records.len()).rev() {
        let j = rng.random_range(0..=i);
        records.swap(i, j);
    }
    let records = records
        .into_iter()
        .enumerate()
        .map(|(id, (entity, text))| Record {
            id: id as u32,
            source: 0,
            entity,
            text,
        })
        .collect();
    Dataset::new("paper", records, SourcePolicy::WithinSingleSource)
}

fn render_citation(p: &Publication, surnames: &[String], rng: &mut SmallRng) -> String {
    let mut tokens: Vec<String> = Vec::new();
    // Authors: full names or initials; sometimes only the first author
    // ("et al" style truncation).
    let author_refs: Vec<&str> = p.authors.iter().map(String::as_str).collect();
    // 80% of citations follow the cluster's dominant author format.
    let use_initials = if rng.random_range(0.0..1.0) < 0.8 {
        p.style_initials
    } else {
        !p.style_initials
    };
    let mut authors: Vec<String> = if use_initials {
        initialize_names(&author_refs)
    } else {
        p.authors.clone()
    };
    if authors.len() > 2 && rng.random_range(0.0..1.0) < 0.35 {
        authors.truncate(2);
    }
    tokens.extend(authors);
    // Title: occasional typo, drop, swap. Citation titles are copied
    // strings, so corruption is light — intra-cluster similarity stays
    // homogeneous, which is what makes the 192-clique walkable (§VI-B).
    let mut title = p.title.clone();
    if rng.random_range(0.0..1.0) < 0.18 {
        let i = rng.random_range(0..title.len());
        title[i] = typo(rng, &title[i]);
    }
    drop_tokens(rng, &mut title, 0.06);
    if rng.random_range(0.0..1.0) < 0.3 {
        swap_adjacent(rng, &mut title);
    }
    tokens.extend(title);
    // Venue: a spectrum of renderings from terse abbreviation to full
    // proceedings string with publisher imprint. The continuum matters
    // twice over: it smooths intra-cluster similarity (so the clique
    // random walk percolates across format levels) and it creates the
    // overlap zone where unrelated same-venue citations look as similar
    // as cross-format true pairs — the regime where raw Jaccard loses.
    let (full, abbr) = VENUES[p.venue_idx];
    // Venue rendering clusters around the house style too.
    let venue_roll = (p.style_venue + rng.random_range(-0.2..0.2)).clamp(0.0, 1.0);
    if venue_roll < 0.4 {
        tokens.push(abbr.to_owned());
    } else {
        tokens.extend(full.split(' ').map(str::to_owned));
        if venue_roll > 0.65 {
            // Proceedings of one venue come from one publishing house, so
            // same-venue full citations share the imprint tokens too.
            let publisher =
                crate::wordpool::PUBLISHERS[p.venue_idx % crate::wordpool::PUBLISHERS.len()];
            tokens.extend(publisher.split(' ').map(str::to_owned));
        }
    }
    // Year: sometimes dropped.
    if rng.random_range(0.0..1.0) < 0.75 {
        tokens.push(p.year.to_string());
    }
    // Editor names in proceedings renderings: surnames drawn from the
    // same pool as authors, so unrelated records acquire *false shared
    // tokens* — noise for overlap metrics that ITER's P_t dilution
    // absorbs (an editor surname's pairs rarely match).
    if rng.random_range(0.0..1.0) < 0.45 {
        tokens.push("ed".to_owned());
        for _ in 0..rng.random_range(1..3usize) {
            tokens.push(surnames[rng.random_range(0..surnames.len())].clone());
        }
    }
    // Citation junk: page ranges, volume numbers — record-specific tokens
    // that dilute set-overlap metrics but, having document frequency 1,
    // never form bipartite pairs and so are invisible to ITER.
    if rng.random_range(0.0..1.0) < 0.7 {
        let start = rng.random_range(1..800u32);
        tokens.push("pp".to_owned());
        tokens.push(start.to_string());
        tokens.push((start + rng.random_range(2..30u32)).to_string());
    }
    if rng.random_range(0.0..1.0) < 0.4 {
        tokens.push("vol".to_owned());
        tokens.push(rng.random_range(1..40u32).to_string());
    }
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts() {
        let d = generate(&PaperConfig::default());
        assert_eq!(d.len(), 1865);
        let clusters = d.entity_clusters();
        let big = clusters.iter().filter(|c| c.len() >= 3).count();
        assert_eq!(big, 96);
        let largest = clusters.iter().map(Vec::len).max().unwrap();
        assert_eq!(largest, 192);
    }

    #[test]
    fn cluster_sizes_sum_to_records() {
        for factor in [1.0, 0.4, 0.15] {
            let cfg = PaperConfig::default().scaled(factor);
            let sizes = cluster_sizes(&cfg);
            assert_eq!(sizes.iter().sum::<usize>(), cfg.records, "factor {factor}");
        }
    }

    #[test]
    fn many_matching_pairs_from_skew() {
        // 192 choose 2 alone is 18 336; the dataset "generates much more
        // matching pairs" than the other two (paper §VII-A).
        let d = generate(&PaperConfig::default());
        assert!(d.matching_pairs().len() > 15_000);
    }

    #[test]
    fn citations_of_same_entity_share_rare_anchor() {
        let d = generate(&PaperConfig::default());
        let clusters = d.entity_clusters();
        let big = clusters
            .iter()
            .find(|c| c.len() >= 100)
            .expect("giant cluster");
        // Count tokens present in >= 60% of the cluster's records: at
        // least one rare anchor should survive the noise channels.
        use std::collections::HashMap;
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for &r in big {
            let seen: std::collections::HashSet<&str> =
                d.records[r as usize].text.split(' ').collect();
            for t in seen {
                *counts.entry(t).or_default() += 1;
            }
        }
        let anchored = counts
            .values()
            .filter(|&&c| c as f64 >= 0.6 * big.len() as f64)
            .count();
        assert!(anchored >= 2, "cluster lost its anchors: {anchored}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(&PaperConfig::default()).records,
            generate(&PaperConfig::default()).records
        );
    }

    #[test]
    fn scaled_shrinks_consistently() {
        let d = generate(&PaperConfig::default().scaled(0.2));
        assert_eq!(d.len(), 373);
        let clusters = d.entity_clusters();
        assert!(clusters.iter().map(Vec::len).max().unwrap() >= 30);
    }
}
