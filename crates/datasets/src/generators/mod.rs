//! Synthetic benchmark generators mirroring the paper's three datasets.
//!
//! Each generator is fully seeded: the same config always produces the
//! same dataset. Scale knobs let the bench harness run a reduced-size
//! variant on small machines (`ER_SCALE=ci`) or the paper-scale variant
//! (`ER_SCALE=paper`); the generators keep the *relative* statistics
//! (duplicate fraction, cluster-size skew, vocabulary tiering) fixed
//! while scaling absolute counts.

pub mod census;
pub mod paper;
pub mod product;
pub mod restaurant;
