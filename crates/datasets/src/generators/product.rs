//! Product-style dataset (Abt-Buy analogue).
//!
//! Paper scale: 1081 records from the "abt" source, 1092 from "buy",
//! 1092 cross-source matching pairs out of 1 180 452 candidates. Each
//! entity is a consumer-electronics product whose **model code**
//! ("pslx350h") is the discriminative term; the two sources describe the
//! same product with very different marketing prose, which is why plain
//! Jaccard collapses on this benchmark (Table II: 0.332) while IDF-aware
//! and term-weight-learning methods survive.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::corruption::typo;
use crate::record::{Dataset, Record, SourcePolicy};
use crate::wordpool::{model_code, synth_pool, MARKETING, PRODUCT_TYPES};

/// Configuration for the Product generator.
#[derive(Debug, Clone, Copy)]
pub struct ProductConfig {
    /// Records in source 0 / "abt" (paper: 1081). One entity each.
    pub abt_records: usize,
    /// Records in source 1 / "buy" (paper: 1092). Every buy record
    /// matches one abt entity; entities may attract two buy listings, so
    /// `buy_records ≥ abt_records` means every entity is matched at least
    /// once and `buy_records` equals the number of matching pairs.
    pub buy_records: usize,
    /// Probability that a buy record omits the model code — the hard
    /// cases that cap recall on this benchmark.
    pub model_dropout: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProductConfig {
    fn default() -> Self {
        Self {
            abt_records: 1081,
            buy_records: 1092,
            model_dropout: 0.15,
            seed: 0xB0B,
        }
    }
}

impl ProductConfig {
    /// Scales the absolute counts, keeping the source ratio.
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            abt_records: crate::scaled(self.abt_records, factor),
            buy_records: crate::scaled(self.buy_records, factor),
            ..self
        }
    }
}

struct Product {
    brand: String,
    kind: &'static str,
    model: String,
    /// Entity-specific content words both sources may mention.
    features: Vec<String>,
}

/// Generates the dataset. Record ids: `0..abt_records` are the abt
/// source, the rest are buy.
pub fn generate(config: &ProductConfig) -> Dataset {
    assert!(config.abt_records >= 1, "need at least one abt record");
    assert!(
        config.buy_records >= config.abt_records,
        "every abt entity needs at least one buy match (buy {} < abt {})",
        config.buy_records,
        config.abt_records
    );
    assert!((0.0..=1.0).contains(&config.model_dropout));
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let brands = synth_pool(&mut rng, 32, 2);
    let feature_pool = synth_pool(&mut rng, (config.abt_records / 2).max(32), 2);
    // Description vocabulary: large and rarely shared, so abt's long
    // marketing prose dilutes set-overlap metrics the way real Abt
    // descriptions do (paper Table II: Jaccard collapses to 0.332 here).
    let desc_pool = synth_pool(&mut rng, (config.abt_records / 2).max(192), 2);

    let mut entities: Vec<Product> = Vec::with_capacity(config.abt_records);
    for e in 0..config.abt_records {
        // Sibling products: same brand and near-same feature set, only
        // the model code differs (a product line: "pslx350h" next to
        // "pslx300"). These defeat content overlap and force methods to
        // weight the model term specifically.
        let sibling_of = if e > 0 && rng.random_range(0.0..1.0) < 0.12 {
            Some(e - 1)
        } else {
            None
        };
        let (brand, kind, features) = match sibling_of {
            Some(parent) => {
                let p = &entities[parent];
                let mut features = p.features.clone();
                if rng.random_range(0.0..1.0) < 0.5 && !features.is_empty() {
                    let i = rng.random_range(0..features.len());
                    features[i] = feature_pool[rng.random_range(0..feature_pool.len())].clone();
                }
                (p.brand.clone(), p.kind, features)
            }
            None => {
                let n_features = rng.random_range(1..4usize);
                let features = (0..n_features)
                    .map(|_| feature_pool[rng.random_range(0..feature_pool.len())].clone())
                    .collect();
                (
                    brands[rng.random_range(0..brands.len())].clone(),
                    PRODUCT_TYPES[rng.random_range(0..PRODUCT_TYPES.len())],
                    features,
                )
            }
        };
        entities.push(Product {
            brand,
            kind,
            model: model_code(&mut rng),
            features,
        });
    }
    let desc_pool = &desc_pool;

    let mut records: Vec<Record> = Vec::with_capacity(config.abt_records + config.buy_records);
    for (e, p) in entities.iter().enumerate() {
        records.push(Record {
            id: e as u32,
            source: 0,
            entity: e as u32,
            text: render_abt(p, desc_pool, &mut rng),
        });
    }
    // Buy records: one per entity first, extras to random entities.
    let mut assignments: Vec<u32> = (0..config.abt_records as u32).collect();
    for _ in config.abt_records..config.buy_records {
        assignments.push(rng.random_range(0..config.abt_records as u32));
    }
    // Shuffle buy order so matched pairs are not aligned by index.
    for i in (1..assignments.len()).rev() {
        let j = rng.random_range(0..=i);
        assignments.swap(i, j);
    }
    for (k, &entity) in assignments.iter().enumerate() {
        records.push(Record {
            id: (config.abt_records + k) as u32,
            source: 1,
            entity,
            text: render_buy(&entities[entity as usize], desc_pool, config, &mut rng),
        });
    }
    Dataset::new("product", records, SourcePolicy::CrossSourceOnly)
}

fn render_abt(p: &Product, desc_pool: &[String], rng: &mut SmallRng) -> String {
    // Long marketing-heavy description: brand + type + model + features +
    // 6–14 filler words, most of them record-specific prose that the
    // frequent-term filter cannot remove.
    let mut tokens: Vec<String> = vec![p.brand.clone(), p.kind.to_owned(), p.model.clone()];
    tokens.extend(p.features.iter().cloned());
    let filler = rng.random_range(10..20usize);
    for _ in 0..filler {
        if rng.random_range(0.0..1.0) < 0.75 {
            tokens.push(desc_pool[rng.random_range(0..desc_pool.len())].clone());
        } else {
            tokens.push(MARKETING[rng.random_range(0..MARKETING.len())].to_owned());
        }
    }
    tokens.join(" ")
}

fn render_buy(
    p: &Product,
    desc_pool: &[String],
    config: &ProductConfig,
    rng: &mut SmallRng,
) -> String {
    // Terse listing: model-centric title with a couple of filler words.
    let mut tokens: Vec<String> = Vec::new();
    if rng.random_range(0.0..1.0) < 0.8 {
        tokens.push(p.brand.clone());
    }
    if rng.random_range(0.0..1.0) >= config.model_dropout {
        let mut model = p.model.clone();
        let format_roll = rng.random_range(0.0..1.0);
        if format_roll < 0.08 {
            model = typo(rng, &model);
        } else if format_roll < 0.2 {
            // Hyphenated rendering ("ps-lx350h"): after normalization the
            // code splits into two tokens neither of which matches the
            // abt rendering — the hardest real Abt-Buy cases.
            let chars: Vec<char> = model.chars().collect();
            let cut = chars.len() / 2;
            model = format!(
                "{} {}",
                chars[..cut].iter().collect::<String>(),
                chars[cut..].iter().collect::<String>()
            );
        }
        tokens.push(model);
    }
    tokens.push(p.kind.to_owned());
    // A subset of the entity's feature words.
    for f in &p.features {
        if rng.random_range(0.0..1.0) < 0.45 {
            tokens.push(f.clone());
        }
    }
    let filler = rng.random_range(1..5usize);
    for _ in 0..filler {
        if rng.random_range(0.0..1.0) < 0.4 {
            tokens.push(desc_pool[rng.random_range(0..desc_pool.len())].clone());
        } else {
            tokens.push(MARKETING[rng.random_range(0..MARKETING.len())].to_owned());
        }
    }
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts() {
        let d = generate(&ProductConfig::default());
        assert_eq!(d.len(), 1081 + 1092);
        assert_eq!(d.matching_pairs().len(), 1092);
        assert_eq!(d.candidate_universe_size(), 1081 * 1092);
    }

    #[test]
    fn sources_partition_records() {
        let d = generate(&ProductConfig::default());
        let abt = d.records.iter().filter(|r| r.source == 0).count();
        let buy = d.records.iter().filter(|r| r.source == 1).count();
        assert_eq!(abt, 1081);
        assert_eq!(buy, 1092);
    }

    #[test]
    fn matches_are_cross_source() {
        let d = generate(&ProductConfig::default());
        for (a, b) in d.matching_pairs() {
            assert_ne!(
                d.records[a as usize].source, d.records[b as usize].source,
                "pair ({a},{b}) must span sources"
            );
        }
    }

    #[test]
    fn most_matches_share_the_model_code() {
        let d = generate(&ProductConfig::default());
        let mut with_model = 0usize;
        let pairs = d.matching_pairs();
        for &(a, b) in &pairs {
            let ta: std::collections::HashSet<&str> =
                d.records[a as usize].text.split(' ').collect();
            let tb: std::collections::HashSet<&str> =
                d.records[b as usize].text.split(' ').collect();
            let shared_alnum = ta
                .intersection(&tb)
                .filter(|t| t.chars().any(|c| c.is_ascii_digit()))
                .count();
            if shared_alnum > 0 {
                with_model += 1;
            }
        }
        let frac = with_model as f64 / pairs.len() as f64;
        assert!(
            (0.6..0.95).contains(&frac),
            "model-sharing fraction {frac} should reflect the dropout setting"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(&ProductConfig::default()).records,
            generate(&ProductConfig::default()).records
        );
    }

    #[test]
    fn scaled_config() {
        let d = generate(&ProductConfig::default().scaled(0.1));
        assert_eq!(d.len(), 108 + 109);
        assert_eq!(d.matching_pairs().len(), 109);
    }

    #[test]
    #[should_panic(expected = "buy")]
    fn rejects_fewer_buy_than_abt() {
        generate(&ProductConfig {
            abt_records: 10,
            buy_records: 5,
            ..Default::default()
        });
    }
}
