//! Census-style dataset — the million-record blocking benchmark.
//!
//! The paper's three benchmarks top out below 10⁵ records, which never
//! stresses candidate *generation*; this generator produces 10⁵–10⁷
//! person records (name, street address, city, phone) with a controlled
//! duplicate rate, sized so blocking quality is measurable: every
//! word pool grows **proportionally to the record count**, keeping the
//! per-term block-size distribution flat across scales. A blocking
//! scheme with near-linear candidate growth therefore shows a flat
//! candidates-per-record curve here, and a quadratic one does not —
//! which is exactly the acceptance gate `bench_blocking` measures.
//!
//! Duplicates are re-entries of the same person with census-typical
//! noise: a typo in a name, an initialed given name, an abbreviated
//! street suffix, digit noise in the street number or phone, and light
//! token dropping. The phone number is the near-unique anchor term
//! (frequency tier 1), names and streets are mid-frequency, the city is
//! high-frequency.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::corruption::{abbreviate, digit_noise, drop_tokens, typo};
use crate::record::{Dataset, Record, SourcePolicy};
use crate::wordpool::{phone, synth_pool, STREET_SUFFIXES};

/// Configuration for the census generator.
#[derive(Debug, Clone, Copy)]
pub struct CensusConfig {
    /// Total records (default: one million).
    pub records: usize,
    /// Fraction of records that are duplicate re-entries of an earlier
    /// person (each duplicated person appears exactly twice). Must be
    /// at most 0.5.
    pub duplicate_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        Self {
            records: 1_000_000,
            duplicate_rate: 0.2,
            seed: 0xCE_0505,
        }
    }
}

impl CensusConfig {
    /// Scales the record count, keeping the duplicate rate.
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            records: crate::scaled(self.records, factor),
            ..self
        }
    }
}

/// A person entity, stored as pool indices so 10⁷ entities stay cheap.
struct Person {
    given: u32,
    surname: u32,
    street_number: u32,
    street: u32,
    suffix_idx: usize,
    city: u32,
    phone: String,
}

/// Generates the dataset.
pub fn generate(config: &CensusConfig) -> Dataset {
    assert!(
        (0.0..=0.5).contains(&config.duplicate_rate),
        "duplicate_rate must be in [0, 0.5], got {}",
        config.duplicate_rate
    );
    assert!(config.records >= 2, "need at least two records");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let n_dupes = (config.records as f64 * config.duplicate_rate).round() as usize;
    let n_entities = config.records - n_dupes;

    // Pools proportional to the entity count pin each tier's expected
    // document frequency across scales: given names df ≈ 16, surnames
    // df ≈ 8, streets df ≈ 10 (mid-frequency tier), cities df ≈ 400
    // (high-frequency tier — their blocks are purge fodder). Floors
    // keep tiny test datasets from collapsing to one shared value.
    let given_pool = synth_pool(&mut rng, (n_entities / 16).max(48), 2);
    let surname_pool = synth_pool(&mut rng, (n_entities / 8).max(64), 3);
    let street_pool = synth_pool(&mut rng, (n_entities / 10).max(48), 2);
    let city_pool = synth_pool(&mut rng, (n_entities / 400).max(12), 3);

    let mut entities: Vec<Person> = Vec::with_capacity(n_entities);
    for _ in 0..n_entities {
        entities.push(Person {
            given: rng.random_range(0..given_pool.len()) as u32,
            surname: rng.random_range(0..surname_pool.len()) as u32,
            // ~10 households per street number at 10⁵ entities and
            // beyond (mid-frequency identifier).
            street_number: rng.random_range(1..99_999u32),
            street: rng.random_range(0..street_pool.len()) as u32,
            suffix_idx: rng.random_range(0..STREET_SUFFIXES.len()),
            city: rng.random_range(0..city_pool.len()) as u32,
            phone: phone(&mut rng),
        });
    }
    let pools = Pools {
        given: &given_pool,
        surname: &surname_pool,
        street: &street_pool,
        city: &city_pool,
    };

    let mut records: Vec<(u32, String)> = Vec::with_capacity(config.records);
    for (e, p) in entities.iter().enumerate() {
        records.push((e as u32, render_base(p, &pools)));
    }
    // Duplicate re-entries for the first `n_dupes` entities.
    for (e, p) in entities.iter().take(n_dupes).enumerate() {
        records.push((e as u32, render_variant(p, &pools, &mut rng)));
    }
    // Shuffle so duplicates are not adjacent, then assign dense ids.
    for i in (1..records.len()).rev() {
        let j = rng.random_range(0..=i);
        records.swap(i, j);
    }
    let records = records
        .into_iter()
        .enumerate()
        .map(|(id, (entity, text))| Record {
            id: id as u32,
            source: 0,
            entity,
            text,
        })
        .collect();
    Dataset::new("census", records, SourcePolicy::WithinSingleSource)
}

struct Pools<'a> {
    given: &'a [String],
    surname: &'a [String],
    street: &'a [String],
    city: &'a [String],
}

fn render_base(p: &Person, pools: &Pools<'_>) -> String {
    let (suffix, _) = STREET_SUFFIXES[p.suffix_idx];
    format!(
        "{} {} {} {} {} {} {}",
        pools.given[p.given as usize],
        pools.surname[p.surname as usize],
        p.street_number,
        pools.street[p.street as usize],
        suffix,
        pools.city[p.city as usize],
        p.phone
    )
}

fn render_variant(p: &Person, pools: &Pools<'_>, rng: &mut SmallRng) -> String {
    let (full, abbr) = STREET_SUFFIXES[p.suffix_idx];
    let mut tokens: Vec<String> = Vec::with_capacity(8);
    // Given name: initialed (census short form), typo'd, or verbatim.
    let given = &pools.given[p.given as usize];
    let given_roll = rng.random_range(0.0..1.0);
    if given_roll < 0.15 {
        tokens.push(abbreviate(given, 1));
    } else if given_roll < 0.3 {
        tokens.push(typo(rng, given));
    } else {
        tokens.push(given.clone());
    }
    // Surname: occasional typo.
    let surname = &pools.surname[p.surname as usize];
    if rng.random_range(0.0..1.0) < 0.15 {
        tokens.push(typo(rng, surname));
    } else {
        tokens.push(surname.clone());
    }
    // Street number: occasional entry noise.
    let number = p.street_number.to_string();
    if rng.random_range(0.0..1.0) < 0.1 {
        tokens.push(digit_noise(rng, &number));
    } else {
        tokens.push(number);
    }
    tokens.push(pools.street[p.street as usize].clone());
    tokens.push(
        if rng.random_range(0.0..1.0) < 0.6 {
            abbr
        } else {
            full
        }
        .to_owned(),
    );
    // City: sometimes dropped (the census sheet already fixes it).
    if rng.random_range(0.0..1.0) < 0.7 {
        tokens.push(pools.city[p.city as usize].clone());
    }
    // Phone: the strongest anchor; digit noise occasionally.
    if rng.random_range(0.0..1.0) < 0.12 {
        tokens.push(digit_noise(rng, &p.phone));
    } else {
        tokens.push(p.phone.clone());
    }
    drop_tokens(rng, &mut tokens, 0.03);
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CensusConfig {
        CensusConfig {
            records: 2_000,
            duplicate_rate: 0.2,
            seed: 31,
        }
    }

    #[test]
    fn counts_follow_rate() {
        let d = generate(&small());
        assert_eq!(d.len(), 2_000);
        assert_eq!(d.matching_pairs().len(), 400);
        let clusters = d.entity_clusters();
        assert_eq!(clusters.iter().filter(|c| c.len() == 2).count(), 400);
        assert!(clusters.iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.records, b.records);
        let c = generate(&CensusConfig {
            seed: 32,
            ..small()
        });
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn duplicates_share_anchor_tokens() {
        let d = generate(&small());
        let pairs = d.matching_pairs();
        let mut total = 0usize;
        for &(a, b) in &pairs {
            let ta: std::collections::HashSet<&str> =
                d.records[a as usize].text.split(' ').collect();
            let tb: std::collections::HashSet<&str> =
                d.records[b as usize].text.split(' ').collect();
            total += ta.intersection(&tb).count();
        }
        let mean = total as f64 / pairs.len() as f64;
        // The noise channels are light: a re-entry shares most of its
        // tokens, which is what lets blocking reach ≥ 0.95 recall.
        assert!(mean >= 5.0, "duplicates too dissimilar on average: {mean}");
    }

    #[test]
    fn pool_scaling_keeps_term_frequencies_flat() {
        // The mean records-per-surname tier must not drift with scale,
        // otherwise candidates-per-record would not be comparable
        // across the bench's size ladder.
        let freq_at = |records: usize| {
            let d = generate(&CensusConfig {
                records,
                duplicate_rate: 0.2,
                seed: 7,
            });
            let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
            for r in &d.records {
                // Surname is the second token of the base rendering;
                // count every token to stay robust to variants.
                for t in r.text.split(' ') {
                    *counts.entry(t).or_default() += 1;
                }
            }
            let total: usize = counts.values().sum();
            total as f64 / counts.len() as f64
        };
        let small = freq_at(4_000);
        let large = freq_at(16_000);
        let ratio = large / small;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "mean token frequency drifted {small:.2} -> {large:.2}"
        );
    }

    #[test]
    fn scaled_keeps_rate() {
        let cfg = CensusConfig::default().scaled(0.001);
        assert_eq!(cfg.records, 1_000);
        let d = generate(&cfg);
        assert_eq!(d.matching_pairs().len(), 200);
    }

    #[test]
    #[should_panic(expected = "duplicate_rate")]
    fn rejects_majority_duplicates() {
        generate(&CensusConfig {
            records: 100,
            duplicate_rate: 0.9,
            seed: 0,
        });
    }
}
