//! Restaurant-style dataset (Fodor/Zagat analogue).
//!
//! Paper scale: 858 non-identical records, 106 duplicate pairs
//! (367 653 candidate pairs). Each record carries a restaurant name,
//! street address, city, phone number and cuisine. Duplicates come from
//! a second listing of the same restaurant with abbreviation, typo and
//! token-drop noise — phone numbers and street numbers act as the
//! discriminative terms the paper's introduction calls out for this
//! domain.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::corruption::{abbreviate, drop_tokens, typo};
use crate::record::{Dataset, Record, SourcePolicy};
use crate::wordpool::{phone, synth_pool, CITIES, CUISINES, STREET_SUFFIXES};

/// Configuration for the Restaurant generator.
#[derive(Debug, Clone, Copy)]
pub struct RestaurantConfig {
    /// Total records (paper: 858).
    pub records: usize,
    /// Entities listed twice, i.e. ground-truth duplicate pairs
    /// (paper: 106).
    pub duplicate_pairs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RestaurantConfig {
    fn default() -> Self {
        Self {
            records: 858,
            duplicate_pairs: 106,
            seed: 0xF00D,
        }
    }
}

impl RestaurantConfig {
    /// Scales the absolute counts, keeping the duplicate fraction.
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            records: crate::scaled(self.records, factor),
            duplicate_pairs: crate::scaled(self.duplicate_pairs, factor),
            ..self
        }
    }
}

struct Restaurant {
    name: Vec<String>,
    street_number: String,
    street: String,
    suffix_idx: usize,
    city: &'static str,
    phone: String,
    cuisine: &'static str,
}

/// Generates the dataset.
pub fn generate(config: &RestaurantConfig) -> Dataset {
    assert!(
        config.duplicate_pairs * 2 <= config.records,
        "duplicate pairs ({}) need 2 records each within {} records",
        config.duplicate_pairs,
        config.records
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let n_entities = config.records - config.duplicate_pairs;
    // Street-name pool sized so streets are shared by only a handful of
    // restaurants (mid-frequency tier); floors keep small-scale datasets
    // from becoming artificially collision-dense.
    let streets = synth_pool(&mut rng, (n_entities / 3).max(96), 2);
    let name_pool = synth_pool(&mut rng, (n_entities / 2).max(192), 2);
    let nouns = [
        "cafe", "grill", "bistro", "kitchen", "house", "garden", "room", "diner",
    ];

    let mut entities: Vec<Restaurant> = Vec::with_capacity(n_entities);
    for e in 0..n_entities {
        // Chain restaurants: a later branch reuses an earlier entity's
        // name and cuisine at a new address — the classic string-metric
        // false positive in the Fodor/Zagat data (two Ritz-Carltons).
        let chain_of = if e > 0 && rng.random_range(0.0..1.0) < 0.02 {
            Some(rng.random_range(0..e))
        } else {
            None
        };
        let (name, cuisine) = match chain_of {
            Some(parent) => (entities[parent].name.clone(), entities[parent].cuisine),
            None => {
                let mut name = vec![name_pool[rng.random_range(0..name_pool.len())].clone()];
                if rng.random_range(0.0..1.0) < 0.6 {
                    name.push(nouns[rng.random_range(0..nouns.len())].to_owned());
                }
                (name, CUISINES[rng.random_range(0..CUISINES.len())])
            }
        };
        entities.push(Restaurant {
            name,
            street_number: format!("{}", rng.random_range(10..19999u32)),
            street: streets[rng.random_range(0..streets.len())].clone(),
            suffix_idx: rng.random_range(0..STREET_SUFFIXES.len()),
            city: CITIES[rng.random_range(0..CITIES.len())],
            phone: phone(&mut rng),
            cuisine,
        });
    }

    let mut records = Vec::with_capacity(config.records);
    // Base listing for every entity.
    for (e, r) in entities.iter().enumerate() {
        records.push((e as u32, render_base(r)));
    }
    // Second, noisy listing for the first `duplicate_pairs` entities.
    for (e, r) in entities.iter().take(config.duplicate_pairs).enumerate() {
        records.push((e as u32, render_variant(r, &mut rng)));
    }
    // Shuffle record order so duplicates are not adjacent, then assign ids.
    for i in (1..records.len()).rev() {
        let j = rng.random_range(0..=i);
        records.swap(i, j);
    }
    let records = records
        .into_iter()
        .enumerate()
        .map(|(id, (entity, text))| Record {
            id: id as u32,
            source: 0,
            entity,
            text,
        })
        .collect();
    Dataset::new("restaurant", records, SourcePolicy::WithinSingleSource)
}

fn render_base(r: &Restaurant) -> String {
    let (suffix, _) = STREET_SUFFIXES[r.suffix_idx];
    format!(
        "{} {} {} {} {} {} {}",
        r.name.join(" "),
        r.street_number,
        r.street,
        suffix,
        r.city,
        r.phone,
        r.cuisine
    )
}

fn render_variant(r: &Restaurant, rng: &mut SmallRng) -> String {
    let (full, abbr) = STREET_SUFFIXES[r.suffix_idx];
    // Name: occasional typo in one word.
    let mut name: Vec<String> = r.name.clone();
    if rng.random_range(0.0..1.0) < 0.6 {
        let i = rng.random_range(0..name.len());
        name[i] = typo(rng, &name[i]);
    }
    // Address: abbreviation of the suffix most of the time.
    let suffix = if rng.random_range(0.0..1.0) < 0.7 {
        abbr
    } else {
        full
    };
    // City: abbreviated ("la") or dropped sometimes.
    let mut tail: Vec<String> = Vec::new();
    let city_roll = rng.random_range(0.0..1.0);
    if city_roll < 0.4 {
        tail.push(r.city.to_owned());
    } else if city_roll < 0.55 {
        let first = r.city.split(' ').next().unwrap_or(r.city);
        tail.push(abbreviate(first, 3));
    } // else dropped
      // Phone: the second directory sometimes prints it unseparated, so
      // tokenization yields one merged token instead of three groups — the
      // duplicate loses its strongest anchor for set-overlap metrics.
    if rng.random_range(0.0..1.0) < 0.5 {
        tail.push(r.phone.replace(' ', ""));
    } else {
        tail.push(r.phone.clone());
    }
    // Cuisine: frequently differs between the two directories.
    if rng.random_range(0.0..1.0) < 0.25 {
        tail.push(r.cuisine.to_owned());
    }
    let mut tokens: Vec<String> = name;
    // Street number occasionally differs (suite/second entrance) or is
    // omitted in the second directory.
    let number_roll = rng.random_range(0.0..1.0);
    if number_roll < 0.85 {
        tokens.push(r.street_number.clone());
    } else if number_roll < 0.93 {
        tokens.push(crate::corruption::digit_noise(rng, &r.street_number));
    } // else dropped
    tokens.push(r.street.clone());
    tokens.push(suffix.to_owned());
    tokens.extend(tail);
    // Light token dropping on top.
    drop_tokens(rng, &mut tokens, 0.07);
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts() {
        let d = generate(&RestaurantConfig::default());
        assert_eq!(d.len(), 858);
        assert_eq!(d.matching_pairs().len(), 106);
        assert_eq!(d.candidate_universe_size(), 858 * 857 / 2);
    }

    #[test]
    fn deterministic() {
        let a = generate(&RestaurantConfig::default());
        let b = generate(&RestaurantConfig::default());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn different_seed_different_data() {
        let a = generate(&RestaurantConfig::default());
        let b = generate(&RestaurantConfig {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn duplicates_share_discriminative_tokens() {
        // Individual pairs may share as little as one token (the format
        // noise is deliberately heavy — that is what makes the benchmark
        // hard), but on average a duplicate pair must share several.
        let d = generate(&RestaurantConfig::default());
        let mut total = 0usize;
        let pairs = d.matching_pairs();
        for &(a, b) in &pairs {
            let ta: std::collections::HashSet<&str> =
                d.records[a as usize].text.split(' ').collect();
            let tb: std::collections::HashSet<&str> =
                d.records[b as usize].text.split(' ').collect();
            let shared = ta.intersection(&tb).count();
            assert!(
                shared >= 1,
                "duplicate pair ({a},{b}) shares nothing: {:?} vs {:?}",
                d.records[a as usize].text,
                d.records[b as usize].text
            );
            total += shared;
        }
        let mean = total as f64 / pairs.len() as f64;
        assert!(mean >= 3.0, "duplicates too dissimilar on average: {mean}");
    }

    #[test]
    fn scaled_keeps_fraction() {
        let cfg = RestaurantConfig::default().scaled(0.5);
        assert_eq!(cfg.records, 429);
        assert_eq!(cfg.duplicate_pairs, 53);
        let d = generate(&cfg);
        assert_eq!(d.len(), 429);
        assert_eq!(d.matching_pairs().len(), 53);
    }

    #[test]
    fn entity_ids_dense_by_cluster() {
        let d = generate(&RestaurantConfig::default());
        let clusters = d.entity_clusters();
        let twos = clusters.iter().filter(|c| c.len() == 2).count();
        let ones = clusters.iter().filter(|c| c.len() == 1).count();
        assert_eq!(twos, 106);
        assert_eq!(ones, 858 - 212);
    }

    #[test]
    #[should_panic(expected = "duplicate pairs")]
    fn rejects_impossible_config() {
        generate(&RestaurantConfig {
            records: 10,
            duplicate_pairs: 6,
            seed: 0,
        });
    }
}
