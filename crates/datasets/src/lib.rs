//! # er-datasets
//!
//! Benchmark datasets for the entity-resolution framework.
//!
//! The paper evaluates on three public benchmarks — Restaurant
//! (Fodor/Zagat), Product (Abt-Buy) and Paper (Cora) — which cannot be
//! downloaded in this offline reproduction. This crate substitutes
//! **seeded synthetic generators** that mirror each benchmark's schema,
//! scale, cluster-size distribution and noise channels (the substitution
//! table in DESIGN.md §4 records the rationale):
//!
//! * [`generators::restaurant`] — single source, 858 records, 106
//!   duplicate pairs; name + address + city + phone + cuisine; noise from
//!   abbreviations ("st."/"street"), typos and dropped tokens.
//! * [`generators::product`] — two sources (abt/buy), 1081 + 1092
//!   records, 1092 cross-source matches; discriminative alphanumeric
//!   model codes ("pslx350h") buried in per-source descriptive text.
//! * [`generators::paper`] — single source, 1865 citation records with a
//!   Cora-like skewed cluster-size distribution (96 clusters with ≥ 3
//!   records, the largest with 192); author-initial, venue-abbreviation
//!   and token-reorder noise.
//! * [`generators::census`] — the million-record blocking benchmark: a
//!   scalable person-record generator (10⁵–10⁷ records, controlled
//!   duplicate rate) whose word pools grow with the record count so the
//!   block-size distribution stays flat across scales.
//!
//! Plus [`loader`] for a simple TSV interchange format so users can run
//! the framework on the real benchmarks if they have them.

#![deny(unsafe_code)]

pub mod corruption;
pub mod generators;
pub mod loader;
pub mod record;
pub mod wordpool;

pub use generators::{
    census::CensusConfig, paper::PaperConfig, product::ProductConfig, restaurant::RestaurantConfig,
};
pub use record::{Dataset, Record, SourcePolicy};

/// Scales a paper-scale count by `factor`, keeping at least 1.
pub fn scaled(count: usize, factor: f64) -> usize {
    ((count as f64 * factor).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaled_rounds_and_floors() {
        assert_eq!(super::scaled(100, 0.4), 40);
        assert_eq!(super::scaled(3, 0.1), 1);
        assert_eq!(super::scaled(858, 1.0), 858);
    }
}
