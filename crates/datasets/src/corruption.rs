//! Noise channels for synthesizing duplicate records.
//!
//! The real benchmarks' duplicates differ by exactly these channels:
//! character typos and transpositions (Cora author/title fields),
//! abbreviations ("blvd" for "boulevard", "proc" for "proceedings"),
//! dropped or reordered tokens (terse "buy" product descriptions), and
//! digit formatting noise (phone numbers). All corruption is driven by a
//! caller-supplied seeded RNG so datasets are reproducible.

use rand::rngs::SmallRng;
use rand::Rng;

/// Applies one random character edit (substitute / delete / insert /
/// transpose) to `word`. Words shorter than 3 characters are returned
/// unchanged — editing them usually destroys the token entirely, which
/// real typos rarely do.
pub fn typo(rng: &mut SmallRng, word: &str) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return word.to_owned();
    }
    let mut out = chars.clone();
    let pos = rng.random_range(0..out.len());
    match rng.random_range(0..4u8) {
        0 => {
            // substitute with a nearby lowercase letter
            out[pos] = random_letter(rng);
        }
        1 => {
            out.remove(pos);
        }
        2 => {
            let c = random_letter(rng);
            out.insert(pos, c);
        }
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else {
                out.swap(pos - 1, pos);
            }
        }
    }
    out.into_iter().collect()
}

fn random_letter(rng: &mut SmallRng) -> char {
    (b'a' + rng.random_range(0..26u8)) as char
}

/// Truncates `word` to its first `keep` characters (an abbreviation like
/// "proceedings" → "proc"). Returns the word unchanged when it is already
/// that short.
pub fn abbreviate(word: &str, keep: usize) -> String {
    word.chars().take(keep.max(1)).collect()
}

/// Reduces a multi-token name to initials except the last token
/// ("wei wang" → "w wang"), the dominant author-noise channel in
/// citation data.
pub fn initialize_names(tokens: &[&str]) -> Vec<String> {
    if tokens.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(tokens.len());
    for t in &tokens[..tokens.len() - 1] {
        out.push(t.chars().take(1).collect());
    }
    out.push(tokens[tokens.len() - 1].to_owned());
    out
}

/// Drops each token independently with probability `p`, but never drops
/// every token.
pub fn drop_tokens(rng: &mut SmallRng, tokens: &mut Vec<String>, p: f64) {
    if tokens.len() <= 1 {
        return;
    }
    let original = tokens.clone();
    tokens.retain(|_| rng.random_range(0.0..1.0) >= p);
    if tokens.is_empty() {
        let keep = rng.random_range(0..original.len());
        tokens.push(original[keep].clone());
    }
}

/// Swaps two adjacent tokens (word-order noise).
pub fn swap_adjacent(rng: &mut SmallRng, tokens: &mut [String]) {
    if tokens.len() >= 2 {
        let i = rng.random_range(0..tokens.len() - 1);
        tokens.swap(i, i + 1);
    }
}

/// Perturbs one digit of a numeric string (OCR/entry noise in phone
/// numbers and years).
pub fn digit_noise(rng: &mut SmallRng, digits: &str) -> String {
    let mut chars: Vec<char> = digits.chars().collect();
    let positions: Vec<usize> = chars
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_ascii_digit())
        .map(|(i, _)| i)
        .collect();
    if !positions.is_empty() {
        let pos = positions[rng.random_range(0..positions.len())];
        chars[pos] = (b'0' + rng.random_range(0..10u8)) as char;
    }
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn typo_changes_long_words_by_one_edit() {
        let mut r = rng();
        for _ in 0..50 {
            let t = typo(&mut r, "restaurant");
            let len_diff = (t.chars().count() as i64 - 10).abs();
            assert!(len_diff <= 1, "{t}");
        }
    }

    #[test]
    fn typo_leaves_short_words_alone() {
        let mut r = rng();
        assert_eq!(typo(&mut r, "of"), "of");
        assert_eq!(typo(&mut r, "a"), "a");
    }

    #[test]
    fn abbreviate_truncates() {
        assert_eq!(abbreviate("proceedings", 4), "proc");
        assert_eq!(abbreviate("acm", 4), "acm");
        assert_eq!(abbreviate("x", 0), "x", "keep clamped to 1");
    }

    #[test]
    fn initials_keep_surname() {
        assert_eq!(
            initialize_names(&["wei", "wang"]),
            vec!["w".to_owned(), "wang".to_owned()]
        );
        assert_eq!(initialize_names(&["knuth"]), vec!["knuth".to_owned()]);
        assert!(initialize_names(&[]).is_empty());
    }

    #[test]
    fn drop_tokens_never_empties() {
        let mut r = rng();
        for _ in 0..20 {
            let mut toks: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
            drop_tokens(&mut r, &mut toks, 0.99);
            assert!(!toks.is_empty());
        }
    }

    #[test]
    fn drop_tokens_probability_zero_is_noop() {
        let mut r = rng();
        let mut toks: Vec<String> = vec!["a".into(), "b".into()];
        drop_tokens(&mut r, &mut toks, 0.0);
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn swap_adjacent_permutes() {
        let mut r = rng();
        let mut toks: Vec<String> = vec!["x".into(), "y".into()];
        swap_adjacent(&mut r, &mut toks);
        assert_eq!(toks, vec!["y".to_owned(), "x".to_owned()]);
        let mut single: Vec<String> = vec!["x".into()];
        swap_adjacent(&mut r, &mut single);
        assert_eq!(single, vec!["x".to_owned()]);
    }

    #[test]
    fn digit_noise_preserves_length_and_digits() {
        let mut r = rng();
        for _ in 0..20 {
            let d = digit_noise(&mut r, "2138486677");
            assert_eq!(d.len(), 10);
            assert!(d.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = rng();
        let mut b = rng();
        assert_eq!(typo(&mut a, "ventura"), typo(&mut b, "ventura"));
    }
}
