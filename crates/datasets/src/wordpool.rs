//! Word pools and synthetic word generation.
//!
//! The generators need realistic-looking vocabulary at three frequency
//! tiers — exactly the statistics ITER's term-weight learning keys on:
//!
//! 1. **Discriminative identifiers** unique to one entity: model codes,
//!    phone numbers, street numbers ([`model_code`], [`phone`]).
//! 2. **Mid-frequency content words** shared by a handful of entities:
//!    names, streets, title words ([`synth_word`] over a seeded space).
//! 3. **High-frequency domain words** shared by many entities: cuisines,
//!    product types, venue boilerplate (the static pools below).

use rand::rngs::SmallRng;
use rand::Rng;

/// Street suffixes with their common abbreviations (Restaurant noise).
pub const STREET_SUFFIXES: &[(&str, &str)] = &[
    ("street", "st"),
    ("avenue", "ave"),
    ("boulevard", "blvd"),
    ("road", "rd"),
    ("drive", "dr"),
    ("lane", "ln"),
    ("place", "pl"),
    ("court", "ct"),
];

/// Cities (Restaurant).
pub const CITIES: &[&str] = &[
    "los angeles",
    "new york",
    "west hollywood",
    "santa monica",
    "san francisco",
    "atlanta",
    "brooklyn",
    "pasadena",
    "venice",
    "chicago",
    "studio city",
    "beverly hills",
];

/// Cuisines (Restaurant; high-frequency words).
pub const CUISINES: &[&str] = &[
    "american",
    "italian",
    "french",
    "chinese",
    "japanese",
    "mexican",
    "seafood",
    "steakhouse",
    "californian",
    "continental",
    "cajun",
    "delis",
    "pizza",
    "coffee",
    "bbq",
    "asian",
];

/// Product categories (Product; high-frequency words).
pub const PRODUCT_TYPES: &[&str] = &[
    "turntable",
    "speaker",
    "headphones",
    "receiver",
    "camcorder",
    "camera",
    "television",
    "microwave",
    "refrigerator",
    "washer",
    "dryer",
    "vacuum",
    "telephone",
    "keyboard",
    "monitor",
    "printer",
    "subwoofer",
    "amplifier",
];

/// Marketing filler words (Product descriptions; stop-word tier).
pub const MARKETING: &[&str] = &[
    "black",
    "white",
    "silver",
    "digital",
    "portable",
    "wireless",
    "compact",
    "premium",
    "series",
    "system",
    "home",
    "audio",
    "video",
    "remote",
    "control",
    "energy",
    "deluxe",
    "professional",
    "edition",
    "pack",
];

/// Research-topic words (Paper titles; mid-frequency).
pub const TOPIC_WORDS: &[&str] = &[
    "learning",
    "networks",
    "neural",
    "genetic",
    "algorithms",
    "reinforcement",
    "bayesian",
    "inference",
    "markov",
    "models",
    "classification",
    "clustering",
    "decision",
    "trees",
    "knowledge",
    "reasoning",
    "planning",
    "search",
    "optimization",
    "recognition",
    "speech",
    "vision",
    "language",
    "retrieval",
    "database",
    "parallel",
    "distributed",
    "adaptive",
    "evolutionary",
    "probabilistic",
    "temporal",
    "spatial",
    "hierarchical",
    "induction",
];

/// Publication venues with their abbreviations (Paper noise).
pub const VENUES: &[(&str, &str)] = &[
    (
        "proceedings of the international conference on machine learning",
        "icml",
    ),
    ("advances in neural information processing systems", "nips"),
    (
        "proceedings of the national conference on artificial intelligence",
        "aaai",
    ),
    ("machine learning journal", "mlj"),
    ("artificial intelligence journal", "aij"),
    (
        "international joint conference on artificial intelligence",
        "ijcai",
    ),
    ("conference on computational learning theory", "colt"),
    (
        "ieee transactions on pattern analysis and machine intelligence",
        "tpami",
    ),
];

/// Publisher imprints appended to the fullest citation renderings —
/// boilerplate shared across unrelated records, the raw material of the
/// overlap-metric confusion zone in citation data.
pub const PUBLISHERS: &[&str] = &[
    "morgan kaufmann san mateo",
    "mit press cambridge",
    "springer verlag berlin",
    "acm press new york",
    "ieee computer society press",
    "aaai press menlo park",
];

/// Months appearing in proceedings renderings — mid-frequency glue
/// tokens shared by unrelated citations.
pub const MONTHS: &[&str] = &[
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

const CONSONANT_ONSETS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br",
    "ch", "cl", "cr", "dr", "fl", "fr", "gr", "pl", "pr", "sh", "sl", "st", "th", "tr",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ia", "io", "ou"];
const CODAS: &[&str] = &["", "", "n", "r", "s", "t", "l", "m", "ck", "nd", "rt", "ng"];

/// Generates a pronounceable synthetic word of `syllables` syllables —
/// the mid-frequency vocabulary source (restaurant names, street names,
/// author surnames, brand names). Seed the RNG to get stable pools.
pub fn synth_word(rng: &mut SmallRng, syllables: usize) -> String {
    let mut w = String::new();
    for _ in 0..syllables.max(1) {
        w.push_str(CONSONANT_ONSETS[rng.random_range(0..CONSONANT_ONSETS.len())]);
        w.push_str(VOWELS[rng.random_range(0..VOWELS.len())]);
        w.push_str(CODAS[rng.random_range(0..CODAS.len())]);
    }
    w
}

/// Generates a pool of `count` distinct synthetic words.
pub fn synth_pool(rng: &mut SmallRng, count: usize, syllables: usize) -> Vec<String> {
    let mut pool = std::collections::BTreeSet::new();
    let mut guard = 0usize;
    while pool.len() < count {
        pool.insert(synth_word(rng, syllables));
        guard += 1;
        assert!(
            guard < count * 1000 + 1000,
            "synthetic word space exhausted for count={count}"
        );
    }
    pool.into_iter().collect()
}

/// Generates an alphanumeric model code like "pslx350h" — discriminative
/// identifiers that appear only in one entity's records.
pub fn model_code(rng: &mut SmallRng) -> String {
    let letters = rng.random_range(2..5usize);
    let mut code = String::new();
    for _ in 0..letters {
        code.push((b'a' + rng.random_range(0..26u8)) as char);
    }
    let digits = rng.random_range(2..5usize);
    for _ in 0..digits {
        code.push((b'0' + rng.random_range(0..10u8)) as char);
    }
    if rng.random_range(0.0..1.0) < 0.5 {
        code.push((b'a' + rng.random_range(0..26u8)) as char);
    }
    code
}

/// Real metro areas concentrate on a handful of area codes, so the first
/// phone group is high-frequency (and gets removed by the frequent-term
/// filter) while exchange and line groups stay discriminative.
const AREA_CODES: &[&str] = &[
    "213", "310", "212", "718", "404", "415", "312", "818", "626", "323",
];

/// Generates a 10-digit phone number rendered with separators
/// ("213 848 6677" after normalization). The area code comes from a
/// small realistic pool; the remaining seven digits are random.
pub fn phone(rng: &mut SmallRng) -> String {
    let mut digits = AREA_CODES[rng.random_range(0..AREA_CODES.len())].to_owned();
    for group in [3usize, 4] {
        digits.push(' ');
        for _ in 0..group {
            digits.push((b'0' + rng.random_range(0..10u8)) as char);
        }
    }
    digits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn synth_words_are_lowercase_alpha() {
        let mut r = rng();
        for _ in 0..50 {
            let w = synth_word(&mut r, 2);
            assert!(!w.is_empty());
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
        }
    }

    #[test]
    fn pool_is_distinct_and_sized() {
        let mut r = rng();
        let pool = synth_pool(&mut r, 200, 2);
        assert_eq!(pool.len(), 200);
        let set: std::collections::HashSet<&String> = pool.iter().collect();
        assert_eq!(set.len(), 200);
    }

    #[test]
    fn model_codes_mix_letters_and_digits() {
        let mut r = rng();
        for _ in 0..30 {
            let c = model_code(&mut r);
            assert!(c.chars().any(|ch| ch.is_ascii_digit()), "{c}");
            assert!(c.chars().any(|ch| ch.is_ascii_lowercase()), "{c}");
            assert!(c.len() >= 4, "{c}");
        }
    }

    #[test]
    fn phone_shape() {
        let mut r = rng();
        let p = phone(&mut r);
        let groups: Vec<&str> = p.split(' ').collect();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].len(), 3);
        assert_eq!(groups[2].len(), 4);
    }

    #[test]
    fn deterministic_pools() {
        let mut a = rng();
        let mut b = rng();
        assert_eq!(synth_pool(&mut a, 50, 2), synth_pool(&mut b, 50, 2));
    }

    #[test]
    fn static_pools_nonempty_and_lowercase() {
        for (full, abbr) in STREET_SUFFIXES {
            assert!(full.len() > abbr.len());
        }
        for (full, abbr) in VENUES {
            assert!(!full.is_empty() && !abbr.is_empty());
        }
        assert!(CITIES.len() >= 10);
        assert!(TOPIC_WORDS.len() >= 30);
    }
}
