//! The observability layer must never perturb results: a fusion run with
//! er-obs recording ON is bitwise identical to the same run with
//! recording OFF, at every thread count. This is the contract that lets
//! the bench harness record telemetry on the measured runs themselves
//! instead of on a shadow run.
//!
//! `er-bench` pins the `obs` feature on all first-party crates, so this
//! test exercises the *instrumented* code paths with the runtime flag in
//! both positions — the compiled-out stub path is covered by the
//! `--no-default-features` build gate in `cargo xtask analyze`.

use std::sync::Mutex;

use er_bench::fusion_config;
use er_core::Resolver;
use er_graph::{BipartiteGraph, BipartiteGraphBuilder};
use proptest::prelude::*;

/// The recording flag and registry are process-global; the harness runs
/// tests on parallel threads, so every test serializes on this lock
/// (poison is irrelevant — a panicked holder already failed its test).
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// A random bipartite structure: up to 12 terms over up to 16 records.
fn bipartite() -> impl Strategy<Value = BipartiteGraph> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..16, 0..6), 1..12).prop_map(
        |postings| {
            let lists: Vec<Vec<u32>> = postings
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect();
            let mut builder = BipartiteGraphBuilder::new(16, lists.len());
            for (t, p) in lists.iter().enumerate() {
                builder = builder.postings(t as u32, p);
            }
            builder.build()
        },
    )
}

fn resolve_bits(graph: &BipartiteGraph, threads: usize, recording: bool) -> Vec<u64> {
    er_obs::set_recording(recording);
    er_obs::reset();
    let mut cfg = fusion_config();
    cfg.threads = threads;
    let outcome = Resolver::new(cfg).resolve(graph);
    let bits = outcome
        .matching_probabilities
        .iter()
        .map(|p| p.to_bits())
        .collect();
    er_obs::set_recording(false);
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn recording_never_perturbs_fusion(graph in bipartite()) {
        let _guard = REGISTRY_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let baseline = resolve_bits(&graph, 1, false);
        for threads in [1usize, 2, 8] {
            for recording in [false, true] {
                let bits = resolve_bits(&graph, threads, recording);
                prop_assert_eq!(
                    &bits,
                    &baseline,
                    "fusion diverged at threads={} recording={}",
                    threads,
                    recording
                );
            }
        }
    }
}

/// Sanity check that the proptest above is exercising a live registry:
/// with recording on, the instrumented resolve must actually produce a
/// `fusion` span and round counters (otherwise "identical with obs on"
/// would be vacuously true).
#[test]
fn recording_actually_records() {
    let _guard = REGISTRY_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let graph = BipartiteGraphBuilder::new(4, 2)
        .postings(0, &[0, 1, 2])
        .postings(1, &[1, 2, 3])
        .build();
    er_obs::set_recording(true);
    er_obs::reset();
    let _ = Resolver::new(fusion_config()).resolve(&graph);
    let report = er_obs::snapshot();
    er_obs::set_recording(false);
    assert!(report.span("fusion").is_some(), "fusion span missing");
    assert!(
        report.counter("fusion_rounds_total") > 0,
        "round counter missing"
    );
}
