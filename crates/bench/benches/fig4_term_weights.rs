//! **Figure 4** — Effectiveness of the learned term weights.
//!
//! Terms are sorted by descending learned weight `x_t` (x-axis = rank);
//! the y-axis shows the ground-truth discriminativeness `score(t)`.
//! The paper's visual claim: highly discriminative terms
//! (`score(t) = 1`) cluster at the front of the ranking and common terms
//! at the bottom-right. This bench prints the series as a decile summary
//! plus an ASCII density plot.
//!
//! Run: `cargo bench --bench fig4_term_weights`.

use er_bench::{bench_datasets, prepare, scale_factor};
use er_core::{run_iter, IterConfig};
use er_eval::{term_discriminativeness, term_score_series};

fn main() {
    let scale = scale_factor();
    println!("Figure 4 — score(t) vs rank of learned weight (scale factor {scale})");
    for bench in bench_datasets(scale) {
        let prepared = prepare(&bench);
        let graph = &prepared.graph;
        let truth = &prepared.truth;

        let iter_out = run_iter(
            graph,
            &vec![1.0; graph.pair_count()],
            &IterConfig::default(),
        );
        let scores: Vec<Option<f64>> = (0..graph.term_count() as u32)
            .map(|t| {
                let pairs: Vec<(u32, u32)> = graph
                    .pairs_of_term(t)
                    .iter()
                    .map(|&p| {
                        let pair = graph.pair(p);
                        (pair.a, pair.b)
                    })
                    .collect();
                term_discriminativeness(&pairs, |a, b| truth.is_match(a, b))
            })
            .collect();
        let series = term_score_series(&iter_out.term_weights, &scores);
        if series.is_empty() {
            println!("\n[{}] no scored terms", bench.dataset.name);
            continue;
        }

        println!(
            "\n[{}] {} scored terms; mean score(t) by weight-rank decile:",
            bench.dataset.name,
            series.len()
        );
        let deciles = 10.min(series.len());
        let chunk = series.len().div_ceil(deciles);
        let mut decile_means = Vec::new();
        for (d, block) in series.chunks(chunk).enumerate() {
            let mean: f64 = block.iter().map(|&(_, s)| s).sum::<f64>() / block.len() as f64;
            decile_means.push(mean);
            let bar = "#".repeat((mean * 40.0).round() as usize);
            println!("  decile {:>2}: {:>6.3} {}", d + 1, mean, bar);
        }
        // The figure's claim, statistically: the front of the ranking is
        // far more discriminative than the tail.
        let front = decile_means.first().copied().unwrap_or(0.0);
        let back = decile_means.last().copied().unwrap_or(0.0);
        println!(
            "  front decile {:.3} vs back decile {:.3} ({})",
            front,
            back,
            if front > back {
                "discriminative terms cluster at the front — matches Figure 4"
            } else {
                "WARNING: ordering does not match Figure 4"
            }
        );
        let perfect_front = series
            .iter()
            .take(series.len() / 10)
            .filter(|&&(_, s)| s >= 1.0)
            .count();
        println!(
            "  {} of the top-decile terms have score(t) = 1.0",
            perfect_front
        );
    }
}
