//! Criterion microbenchmarks for the framework's hot kernels:
//! dense matmul (CliqueRank's inner loop), one ITER sweep, a CliqueRank
//! component solve, and RSS walks.
//!
//! Each kernel is measured serially (`threads: 1`) and on a shared
//! [`er_pool::WorkerPool`] at 2 and 4 threads, so a single run reports
//! the serial-vs-pool speedup. Because every parallel path is
//! bit-identical to the serial one, the variants compute the same
//! result; only the wall clock differs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use er_core::{
    run_cliquerank, run_cliquerank_pooled, run_iter, run_iter_pooled, run_rss_subset,
    run_rss_subset_pooled, CliqueRankConfig, IterConfig, RssConfig,
};
use er_graph::bipartite::PairNode;
use er_graph::{BipartiteGraphBuilder, RecordGraph};
use er_matrix::{
    matmul_blocked, matmul_naive, matmul_packed, matmul_packed_into, matmul_pooled, Matrix,
    PackScratch,
};
use er_pool::WorkerPool;

/// Pool sizes benchmarked against the serial baseline.
const POOL_SIZES: [usize; 2] = [2, 4];

fn deterministic(n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    Matrix::from_fn(n, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let a = deterministic(n, 1);
        let b = deterministic(n, 2);
        group.bench_function(format!("blocked_{n}"), |bench| {
            bench.iter(|| matmul_blocked(&a, &b));
        });
        group.bench_function(format!("packed_{n}"), |bench| {
            bench.iter(|| matmul_packed(&a, &b));
        });
        // The zero-allocation variant the CliqueRank recurrence runs on:
        // output and pack buffers reused across calls.
        let mut scratch = PackScratch::default();
        let mut out = Matrix::zeros(n, n);
        group.bench_function(format!("packed_into_{n}"), |bench| {
            bench.iter(|| matmul_packed_into(&a, &b, &mut out, &mut scratch));
        });
        if n <= 128 {
            group.bench_function(format!("naive_{n}"), |bench| {
                bench.iter(|| matmul_naive(&a, &b));
            });
        }
        for threads in POOL_SIZES {
            let pool = WorkerPool::new(threads);
            group.bench_function(format!("pooled_{n}_t{threads}"), |bench| {
                bench.iter(|| matmul_pooled(&a, &b, &pool));
            });
        }
    }
    group.finish();
}

/// A synthetic clique-of-cliques record graph for walk kernels.
fn walk_graph(cliques: usize, size: usize) -> RecordGraph {
    let n = cliques * size;
    let mut pairs = Vec::new();
    let mut scores = Vec::new();
    for c in 0..cliques {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in i + 1..size as u32 {
                pairs.push(PairNode::new(base + i, base + j));
                scores.push(1.0 + (i + j) as f64 * 0.01);
            }
        }
        if c > 0 {
            pairs.push(PairNode::new(base - 1, base));
            scores.push(0.05);
        }
    }
    RecordGraph::from_pair_scores(n, &pairs, &scores)
}

fn bench_cliquerank(c: &mut Criterion) {
    let graph = walk_graph(4, 24);
    let config = CliqueRankConfig {
        threads: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("cliquerank");
    group.bench_function("serial_4x24", |b| {
        b.iter(|| run_cliquerank(&graph, &config));
    });
    for threads in POOL_SIZES {
        let pool = WorkerPool::new(threads);
        group.bench_function(format!("pooled_4x24_t{threads}"), |b| {
            b.iter(|| run_cliquerank_pooled(&graph, &config, &pool));
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    use er_core::Kernel;
    // A sparse graph (chain of small cliques) where the edgewise kernel
    // should win, in one connected component.
    let sparse_graph = walk_graph(24, 4);
    let mut group = c.benchmark_group("cliquerank_kernel");
    for (name, kernel) in [("dense", Kernel::Dense), ("sparse", Kernel::Sparse)] {
        let config = CliqueRankConfig {
            threads: 1,
            kernel,
            ..Default::default()
        };
        group.bench_function(format!("{name}_chain24x4"), |b| {
            b.iter(|| run_cliquerank(&sparse_graph, &config));
        });
    }
    group.finish();
}

fn bench_rss(c: &mut Criterion) {
    let graph = walk_graph(4, 24);
    let config = RssConfig {
        walks_per_edge: 10,
        threads: 1,
        ..Default::default()
    };
    let edges: Vec<u32> = (0..100.min(graph.pairs().len() as u32)).collect();
    let mut group = c.benchmark_group("rss");
    group.bench_function("serial_100edges_10walks", |b| {
        b.iter(|| run_rss_subset(&graph, &config, &edges));
    });
    for threads in POOL_SIZES {
        let pool = WorkerPool::new(threads);
        group.bench_function(format!("pooled_100edges_10walks_t{threads}"), |b| {
            b.iter(|| run_rss_subset_pooled(&graph, &config, &edges, &pool));
        });
    }
    group.finish();
}

fn bench_iter(c: &mut Criterion) {
    // Bipartite graph: 200 records, 400 terms, skewed postings.
    let mut postings: Vec<Vec<u32>> = Vec::new();
    let mut state = 12345u64;
    let mut next = |m: u32| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as u32) % m
    };
    for t in 0..400usize {
        let df = 2 + (t % 7) as u32;
        let mut posting: Vec<u32> = (0..df).map(|_| next(200)).collect();
        posting.sort_unstable();
        posting.dedup();
        postings.push(posting);
    }
    let mut builder = BipartiteGraphBuilder::new(200, 400);
    for (t, p) in postings.iter().enumerate() {
        builder = builder.postings(t as u32, p);
    }
    let graph = builder.build();
    let prob = vec![1.0; graph.pair_count()];
    let serial = IterConfig {
        threads: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("iter");
    group.bench_function("serial_200r_400t", |b| {
        b.iter_batched(
            || prob.clone(),
            |p| run_iter(&graph, &p, &serial),
            BatchSize::SmallInput,
        );
    });
    for threads in POOL_SIZES {
        let pool = WorkerPool::new(threads);
        group.bench_function(format!("pooled_200r_400t_t{threads}"), |b| {
            b.iter_batched(
                || prob.clone(),
                |p| run_iter_pooled(&graph, &p, &serial, &pool),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_cliquerank, bench_kernels, bench_rss, bench_iter
}
criterion_main!(benches);
