//! **BENCH_fusion.json** — machine-readable phase timings of the fusion
//! pipeline across thread counts.
//!
//! For each bench dataset and each thread count in {1, 2, 4}, the full
//! 5-round fusion is run once on a shared worker pool and its phase
//! timings are recorded as flat JSON objects:
//!
//! ```json
//! {"phase": "iter", "dataset": "restaurant", "threads": 4, "seconds": 0.021}
//! ```
//!
//! Phases: `fusion` (the whole resolve), `iter` (sum over rounds),
//! `cliquerank` (sum over rounds, including record-graph construction).
//! Every parallel path is bit-identical to the serial one, so the records
//! compare the *same* computation's wall clock — the threads=1 row is the
//! serial baseline. Outcome equality across thread counts is asserted.
//!
//! Run: `cargo bench -p er-bench --bench bench_fusion`. Output goes to
//! `BENCH_fusion.json` in the current directory (override with
//! `ER_BENCH_OUT`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use er_bench::{bench_datasets, fusion_config, prepare, scale_factor};
use er_core::Resolver;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct Record {
    phase: &'static str,
    dataset: String,
    threads: usize,
    seconds: f64,
}

fn json_line(r: &Record) -> String {
    // The dataset names are ASCII identifiers, so plain quoting is a
    // valid JSON string encoding here.
    format!(
        "{{\"phase\": \"{}\", \"dataset\": \"{}\", \"threads\": {}, \"seconds\": {:.6}}}",
        r.phase, r.dataset, r.threads, r.seconds
    )
}

fn main() {
    let scale = scale_factor();
    let out_path = std::env::var("ER_BENCH_OUT").unwrap_or_else(|_| "BENCH_fusion.json".to_owned());
    println!("BENCH_fusion — fusion phase timings at scale factor {scale}");

    let mut records: Vec<Record> = Vec::new();
    for bench in bench_datasets(scale) {
        let prepared = prepare(&bench);
        let name = bench.dataset.name.clone();
        let mut baseline: Option<Vec<f64>> = None;
        for threads in THREAD_COUNTS {
            let mut cfg = fusion_config();
            cfg.threads = threads;
            let t0 = Instant::now();
            let outcome = Resolver::new(cfg).resolve(&prepared.graph);
            let total = t0.elapsed();
            let iter_time: Duration = outcome.rounds.iter().map(|r| r.iter_time).sum();
            let cliquerank_time: Duration = outcome.rounds.iter().map(|r| r.cliquerank_time).sum();
            match &baseline {
                None => baseline = Some(outcome.matching_probabilities.clone()),
                Some(b) => assert_eq!(
                    b, &outcome.matching_probabilities,
                    "fusion outcome changed with threads={threads} on {name}"
                ),
            }
            for (phase, d) in [
                ("fusion", total),
                ("iter", iter_time),
                ("cliquerank", cliquerank_time),
            ] {
                records.push(Record {
                    phase,
                    dataset: name.clone(),
                    threads,
                    seconds: d.as_secs_f64(),
                });
            }
            println!(
                "  {name:<12} threads={threads}  fusion {:.3}s  iter {:.3}s  cliquerank {:.3}s",
                total.as_secs_f64(),
                iter_time.as_secs_f64(),
                cliquerank_time.as_secs_f64()
            );
        }
    }

    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        writeln!(json, "  {}{sep}", json_line(r)).unwrap();
    }
    json.push_str("]\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {} records to {out_path}", records.len());
}
