//! **BENCH_fusion.json** — machine-readable phase timings of the fusion
//! pipeline across thread counts.
//!
//! For each bench dataset and each thread count in {1, 2, 4}, the full
//! 5-round fusion is run once on a shared worker pool and its phase
//! timings are recorded as flat JSON objects:
//!
//! ```json
//! {"phase": "iter", "dataset": "restaurant", "threads": 4, "seconds": 0.021}
//! ```
//!
//! Phases: `fusion` (the whole resolve), `iter` (sum over rounds),
//! `cliquerank` (sum over rounds, including record-graph construction).
//! Every parallel path is bit-identical to the serial one, so the records
//! compare the *same* computation's wall clock — the threads=1 row is the
//! serial baseline. Outcome equality across thread counts is asserted.
//!
//! Three extra record families ride along:
//!
//! * `cliquerank_cache_cold` / `cliquerank_cache_warm` — one cached
//!   CliqueRank pass per dataset with a fresh [`CliqueRankCache`], then a
//!   second pass on the populated cache; each record carries the
//!   cumulative `hits`/`misses` counters.
//! * `cliquerank_steady_allocs` — repeat solve of the dataset's largest
//!   component on warm scratch, with the binary's counting allocator
//!   armed; `allocs` must be 0 (the recurrence's zero-allocation
//!   contract, also pinned by `tests/zero_alloc.rs`).
//! * `matmul_blocked` / `matmul_packed` at n ∈ {256, 512} — the packed
//!   register-tiled kernel against the legacy blocked baseline; the
//!   packed record carries the `speedup` ratio.
//!
//! Run: `cargo bench -p er-bench --bench bench_fusion`. Output goes to
//! `BENCH_fusion.json` in the current directory (override with
//! `ER_BENCH_OUT`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use er_bench::{bench_datasets, fusion_config, prepare, scale_factor};
use er_core::{
    run_cliquerank_cached, run_iter, solve_component_into, CliqueRankCache, CliqueScratch, Resolver,
};
use er_graph::RecordGraph;
use er_matrix::{matmul_blocked, matmul_packed, Matrix};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Counts heap allocations while armed — evidence for the
/// `cliquerank_steady_allocs` records.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure delegation to the system allocator plus atomic counter
// bumps; upholds the `GlobalAlloc` contract exactly as `System` does.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout, delegated verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `alloc` above with this exact layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

struct Record {
    phase: &'static str,
    dataset: String,
    threads: usize,
    seconds: f64,
    /// Extra JSON key-value pairs (pre-rendered, comma-prefixed), e.g.
    /// `, "hits": 3`. Empty for plain timing records.
    extra: String,
}

fn json_line(r: &Record) -> String {
    // The dataset names are ASCII identifiers, so plain quoting is a
    // valid JSON string encoding here.
    format!(
        "{{\"phase\": \"{}\", \"dataset\": \"{}\", \"threads\": {}, \"seconds\": {:.6}{}}}",
        r.phase, r.dataset, r.threads, r.seconds, r.extra
    )
}

fn main() {
    let scale = scale_factor();
    let out_path = std::env::var("ER_BENCH_OUT").unwrap_or_else(|_| "BENCH_fusion.json".to_owned());
    println!("BENCH_fusion — fusion phase timings at scale factor {scale}");

    let mut records: Vec<Record> = Vec::new();
    for bench in bench_datasets(scale) {
        let prepared = prepare(&bench);
        let name = bench.dataset.name.clone();
        let mut baseline: Option<Vec<f64>> = None;
        for threads in THREAD_COUNTS {
            let mut cfg = fusion_config();
            cfg.threads = threads;
            let t0 = Instant::now();
            let outcome = Resolver::new(cfg).resolve(&prepared.graph);
            let total = t0.elapsed();
            let iter_time: Duration = outcome.rounds.iter().map(|r| r.iter_time).sum();
            let cliquerank_time: Duration = outcome.rounds.iter().map(|r| r.cliquerank_time).sum();
            match &baseline {
                None => baseline = Some(outcome.matching_probabilities.clone()),
                Some(b) => assert_eq!(
                    b, &outcome.matching_probabilities,
                    "fusion outcome changed with threads={threads} on {name}"
                ),
            }
            for (phase, d) in [
                ("fusion", total),
                ("iter", iter_time),
                ("cliquerank", cliquerank_time),
            ] {
                records.push(Record {
                    phase,
                    dataset: name.clone(),
                    threads,
                    seconds: d.as_secs_f64(),
                    extra: String::new(),
                });
            }
            println!(
                "  {name:<12} threads={threads}  fusion {:.3}s  iter {:.3}s  cliquerank {:.3}s",
                total.as_secs_f64(),
                iter_time.as_secs_f64(),
                cliquerank_time.as_secs_f64()
            );
        }
        cache_and_alloc_records(&prepared.graph, &name, &mut records);
    }
    matmul_records(&mut records);

    write_json(&records, &out_path);
}

/// Cached-CliqueRank cold/warm timings (with cumulative hit/miss
/// counters) and the steady-state allocation count for one dataset.
fn cache_and_alloc_records(
    graph: &er_graph::BipartiteGraph,
    name: &str,
    records: &mut Vec<Record>,
) {
    let cfg = fusion_config();
    let mut cr = cfg.cliquerank;
    cr.threads = 1;
    // Round-1 similarities give the record graph the fused pipeline
    // would hand to CliqueRank.
    let uniform = vec![1.0f64; graph.pair_count()];
    let iter_out = run_iter(graph, &uniform, &cfg.iter);
    let gr = RecordGraph::from_pair_scores(
        graph.record_count(),
        graph.pairs(),
        &iter_out.pair_similarities,
    );

    let mut cache = CliqueRankCache::new();
    let t0 = Instant::now();
    let cold = run_cliquerank_cached(&gr, &cr, &mut cache);
    let cold_s = t0.elapsed().as_secs_f64();
    records.push(Record {
        phase: "cliquerank_cache_cold",
        dataset: name.to_owned(),
        threads: 1,
        seconds: cold_s,
        extra: format!(
            ", \"hits\": {}, \"misses\": {}",
            cache.hits(),
            cache.misses()
        ),
    });
    let t1 = Instant::now();
    let warm = run_cliquerank_cached(&gr, &cr, &mut cache);
    let warm_s = t1.elapsed().as_secs_f64();
    assert_eq!(cold, warm, "cache replay must be exact on {name}");
    records.push(Record {
        phase: "cliquerank_cache_warm",
        dataset: name.to_owned(),
        threads: 1,
        seconds: warm_s,
        extra: format!(
            ", \"hits\": {}, \"misses\": {}",
            cache.hits(),
            cache.misses()
        ),
    });
    println!(
        "  {name:<12} cache cold {cold_s:.3}s → warm {warm_s:.3}s  ({} hits / {} misses)",
        cache.hits(),
        cache.misses()
    );

    // Steady-state allocation count: repeat solve of the largest
    // component on warm scratch must allocate nothing.
    let comps = gr.components();
    let Some(members) = comps
        .members
        .iter()
        .filter(|m| m.len() >= 2)
        .max_by_key(|m| m.len())
    else {
        return;
    };
    let mut local_of = vec![u32::MAX; gr.node_count()];
    for (li, &g) in members.iter().enumerate() {
        local_of[g as usize] = li as u32;
    }
    let mut out = vec![0.0f64; gr.pairs().len()];
    let mut scratch = CliqueScratch::default();
    solve_component_into(&gr, members, &local_of, &cr, &mut out, &mut scratch);
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let t2 = Instant::now();
    solve_component_into(&gr, members, &local_of, &cr, &mut out, &mut scratch);
    let steady_s = t2.elapsed().as_secs_f64();
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    records.push(Record {
        phase: "cliquerank_steady_allocs",
        dataset: name.to_owned(),
        threads: 1,
        seconds: steady_s,
        extra: format!(
            ", \"allocs\": {allocs}, \"component_size\": {}",
            members.len()
        ),
    });
    println!(
        "  {name:<12} steady-state solve ({} nodes): {allocs} allocations",
        members.len()
    );
}

/// Packed-vs-blocked single-threaded matmul at n ∈ {256, 512}.
fn matmul_records(records: &mut Vec<Record>) {
    for n in [256usize, 512] {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut a = Matrix::zeros(n, n);
        let mut b = Matrix::zeros(n, n);
        for m in [&mut a, &mut b] {
            for v in m.data_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            }
        }
        let time_min = |f: &mut dyn FnMut()| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t = Instant::now();
                f();
                best = best.min(t.elapsed().as_secs_f64());
            }
            best
        };
        let blocked_s = time_min(&mut || {
            std::hint::black_box(matmul_blocked(&a, &b));
        });
        let packed_s = time_min(&mut || {
            std::hint::black_box(matmul_packed(&a, &b));
        });
        let speedup = blocked_s / packed_s;
        records.push(Record {
            phase: "matmul_blocked",
            dataset: format!("n{n}"),
            threads: 1,
            seconds: blocked_s,
            extra: String::new(),
        });
        records.push(Record {
            phase: "matmul_packed",
            dataset: format!("n{n}"),
            threads: 1,
            seconds: packed_s,
            extra: format!(", \"speedup\": {speedup:.2}"),
        });
        println!("  matmul n={n}: blocked {blocked_s:.4}s  packed {packed_s:.4}s  ({speedup:.2}x)");
    }
}

fn write_json(records: &[Record], out_path: &str) {
    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        writeln!(json, "  {}{sep}", json_line(r)).unwrap();
    }
    json.push_str("]\n");
    std::fs::write(out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {} records to {out_path}", records.len());
}
