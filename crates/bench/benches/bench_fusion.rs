//! **BENCH_fusion.json** — fusion pipeline telemetry in the `er-obs/v1`
//! schema.
//!
//! For each bench dataset and each thread count in {1, 2, 4}, the full
//! 5-round fusion is run once with er-obs recording on — seeded by the
//! batch string-similarity engine (`pipeline::seed_similarities`, so
//! the `simeng.batch.*` counters appear next to the phase spans); the
//! resulting
//! [`er_obs::Report`] snapshot — phase span tree (`fusion`,
//! `fusion/iter`, `fusion/cliquerank`, nested sweeps), per-worker pool
//! utilization, and the pipeline's cache/solver counters — becomes one
//! [`BenchRun`] in the output file. Every parallel path is bit-identical
//! to the serial one, so runs across thread counts time the *same*
//! computation; outcome equality is asserted.
//!
//! Three extra run families ride along:
//!
//! * `cliquerank_cache` (modes `cold`/`warm`) — one cached CliqueRank
//!   pass per dataset with a fresh [`CliqueRankCache`], then a second
//!   pass on the populated cache; the registry's
//!   `cliquerank_cache_{hits,misses}_total` counters land in each report.
//! * `steady_alloc` — repeat solve of the dataset's largest component on
//!   warm scratch with the binary's counting allocator armed; the
//!   `cliquerank_steady_allocs` gauge must be 0 (the zero-allocation
//!   contract also pinned by `tests/zero_alloc.rs`). Recording is
//!   suspended during the armed window so telemetry itself cannot
//!   contribute allocations.
//! * `matmul` (modes `blocked`/`packed`, datasets `n256`/`n512`) — the
//!   packed register-tiled kernel against the legacy blocked baseline;
//!   the packed report carries a `matmul_speedup` gauge.
//!
//! Run: `cargo bench -p er-bench --bench bench_fusion`. Output goes to
//! `BENCH_fusion.json` in the current directory (override with
//! `ER_BENCH_OUT`); `cargo xtask bench-diff` consumes it in CI.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use er_bench::{bench_datasets, fusion_config, prepare, scale_factor};
use er_core::{
    run_cliquerank_cached, run_iter, solve_component_into, CliqueRankCache, CliqueScratch, Resolver,
};
use er_graph::RecordGraph;
use er_matrix::{matmul_blocked, matmul_packed, Matrix};
use er_obs::{BenchFile, BenchRun, GaugeStat, Report, SpanStat};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Counts heap allocations while armed — evidence for the
/// `cliquerank_steady_allocs` gauge.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure delegation to the system allocator plus atomic counter
// bumps; upholds the `GlobalAlloc` contract exactly as `System` does.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: `alloc` is unsafe by trait signature; the body only
    // counts and delegates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout, delegated verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: `dealloc` is unsafe by trait signature; delegation only.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `alloc` above with this exact layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Resets the registry, runs `f`, and freezes the snapshot into a run.
/// The run's `dispatch_mode` is derived from the pool's dispatch
/// counters: `pooled` if any region fanned out, `serial-inline` if every
/// decision stayed on the caller thread, unset if nothing dispatched.
fn recorded_run(
    label: &str,
    dataset: &str,
    mode: &str,
    threads: usize,
    f: impl FnOnce(),
) -> BenchRun {
    er_obs::reset();
    f();
    let report = er_obs::snapshot();
    let dispatch_mode = if report.counter("pool.dispatch.parallel") > 0 {
        Some("pooled".to_owned())
    } else if report.counter("pool.dispatch.serial_inline") > 0 {
        Some("serial-inline".to_owned())
    } else {
        None
    };
    BenchRun {
        label: label.to_owned(),
        dataset: dataset.to_owned(),
        mode: mode.to_owned(),
        threads: threads as u64,
        scaling_ratio: None,
        dispatch_mode,
        reduction_ratio: None,
        pair_completeness: None,
        report,
    }
}

fn span_seconds(report: &Report, path: &str) -> f64 {
    report.span(path).map_or(0.0, SpanStat::total_seconds)
}

fn main() {
    let scale = scale_factor();
    let out_path = std::env::var("ER_BENCH_OUT").unwrap_or_else(|_| "BENCH_fusion.json".to_owned());
    println!("BENCH_fusion — fusion phase telemetry at scale factor {scale}");
    er_obs::set_recording(true);

    let mut file = BenchFile::default();
    for bench in bench_datasets(scale) {
        let prepared = prepare(&bench);
        let name = bench.dataset.name.clone();
        let mut baseline: Option<Vec<f64>> = None;
        let mut t1_seconds: Option<f64> = None;
        for threads in THREAD_COUNTS {
            // Sub-second fusions are single-sample noise-dominated — a
            // one-shot inversion on a 0.2 s phase is scheduler jitter,
            // not a regression — so they get best-of-3 (whole report
            // kept from the fastest rep); multi-second runs
            // self-average and stay single-rep.
            let mut best: Option<(f64, er_obs::BenchRun)> = None;
            let mut reps = 1;
            let mut rep = 0;
            while rep < reps {
                let mut cfg = fusion_config();
                cfg.threads = threads;
                let mut outcome = None;
                // The seed step runs inside the recorded window so the
                // engine's simeng.batch.* counters and kernel span land
                // in the fusion report alongside the ITER/CliqueRank
                // phases.
                let run = recorded_run("fusion", &name, "pooled", threads, || {
                    let pool = er_pool::WorkerPool::with_policy(cfg.threads, cfg.dispatch);
                    let seed = unsupervised_er::pipeline::seed_similarities(
                        &prepared.corpus,
                        &prepared.graph,
                        &pool,
                    );
                    outcome = Some(Resolver::new(cfg).resolve_seeded(&prepared.graph, &seed));
                });
                let outcome = outcome.expect("resolve ran");
                match &baseline {
                    None => baseline = Some(outcome.matching_probabilities.clone()),
                    Some(b) => assert_eq!(
                        b, &outcome.matching_probabilities,
                        "fusion outcome changed with threads={threads} on {name}"
                    ),
                }
                let secs = span_seconds(&run.report, "fusion");
                if rep == 0 && secs < 1.0 {
                    reps = 3;
                }
                let better = match &best {
                    None => true,
                    Some((b, _)) => secs < *b,
                };
                if better {
                    best = Some((secs, run));
                }
                rep += 1;
            }
            let (secs, mut run) = best.expect("at least one rep ran");
            // tN/t1 on the top-level fusion span; the t1 run itself
            // carries no ratio. `bench-diff --gate-scaling` fails CI
            // when any committed ratio exceeds 1 + tolerance.
            match t1_seconds {
                None => t1_seconds = Some(secs),
                Some(t1) if t1 > 0.0 => run.scaling_ratio = Some(secs / t1),
                Some(_) => {}
            }
            println!(
                "  {name:<12} threads={threads}  fusion {:.3}s  iter {:.3}s  cliquerank {:.3}s  ({} pool jobs, t/t1 {})",
                secs,
                span_seconds(&run.report, "fusion/iter"),
                span_seconds(&run.report, "fusion/cliquerank"),
                run.report.counter("pool_jobs_total"),
                run.scaling_ratio
                    .map_or_else(|| "-".to_owned(), |r| format!("{r:.2}")),
            );
            file.runs.push(run);
        }
        cache_and_alloc_runs(&prepared.graph, &name, &mut file);
    }
    matmul_runs(&mut file);
    er_obs::set_recording(false);

    let json = file.to_json();
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {} runs to {out_path}", file.runs.len());
}

/// Cached-CliqueRank cold/warm runs (hit/miss counters land in the
/// reports) and the steady-state allocation gauge for one dataset.
fn cache_and_alloc_runs(graph: &er_graph::BipartiteGraph, name: &str, file: &mut BenchFile) {
    let cfg = fusion_config();
    let mut cr = cfg.cliquerank;
    cr.threads = 1;
    // Round-1 similarities give the record graph the fused pipeline
    // would hand to CliqueRank.
    let uniform = vec![1.0f64; graph.pair_count()];
    let iter_out = run_iter(graph, &uniform, &cfg.iter);
    let gr = RecordGraph::from_pair_scores(
        graph.record_count(),
        graph.pairs(),
        &iter_out.pair_similarities,
    );

    let mut cache = CliqueRankCache::new();
    let mut cold = Vec::new();
    let cold_run = recorded_run("cliquerank_cache", name, "cold", 1, || {
        let (out, _) = er_obs::time("cliquerank_cache_solve", || {
            run_cliquerank_cached(&gr, &cr, &mut cache)
        });
        cold = out;
    });
    let mut warm = Vec::new();
    let warm_run = recorded_run("cliquerank_cache", name, "warm", 1, || {
        let (out, _) = er_obs::time("cliquerank_cache_solve", || {
            run_cliquerank_cached(&gr, &cr, &mut cache)
        });
        warm = out;
    });
    assert_eq!(cold, warm, "cache replay must be exact on {name}");
    println!(
        "  {name:<12} cache cold {:.3}s → warm {:.3}s  ({} hits / {} misses cumulative)",
        span_seconds(&cold_run.report, "cliquerank_cache_solve"),
        span_seconds(&warm_run.report, "cliquerank_cache_solve"),
        cache.hits(),
        cache.misses()
    );
    file.runs.push(cold_run);
    file.runs.push(warm_run);

    // Steady-state allocation count: repeat solve of the largest
    // component on warm scratch must allocate nothing. Recording is
    // suspended for the armed window so the telemetry layer itself is
    // excluded (its steady state is also allocation-free, but this
    // gauge pins the *solver* contract, not the registry's).
    let comps = gr.components();
    let Some(members) = comps
        .members
        .iter()
        .filter(|m| m.len() >= 2)
        .max_by_key(|m| m.len())
    else {
        return;
    };
    let mut local_of = vec![u32::MAX; gr.node_count()];
    for (li, &g) in members.iter().enumerate() {
        local_of[g as usize] = li as u32;
    }
    let mut out = vec![0.0f64; gr.pairs().len()];
    let mut scratch = CliqueScratch::default();
    solve_component_into(&gr, members, &local_of, &cr, &mut out, &mut scratch);
    er_obs::set_recording(false);
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let t = Instant::now();
    solve_component_into(&gr, members, &local_of, &cr, &mut out, &mut scratch);
    let steady_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    er_obs::set_recording(true);
    assert_eq!(allocs, 0, "steady-state solve allocated on {name}");

    // The armed window ran with recording off, so this run's report is
    // assembled directly from the measured values.
    let report = Report {
        spans: vec![SpanStat {
            path: "cliquerank_steady_solve".to_owned(),
            count: 1,
            total_ns: steady_ns,
            min_ns: steady_ns,
            max_ns: steady_ns,
        }],
        counters: Vec::new(),
        gauges: vec![
            GaugeStat {
                name: "cliquerank_steady_allocs".to_owned(),
                value: allocs as f64,
            },
            GaugeStat {
                name: "cliquerank_component_size".to_owned(),
                value: members.len() as f64,
            },
        ],
        workers: Vec::new(),
    };
    println!(
        "  {name:<12} steady-state solve ({} nodes): {allocs} allocations",
        members.len()
    );
    file.runs.push(BenchRun {
        label: "steady_alloc".to_owned(),
        dataset: name.to_owned(),
        mode: "warm".to_owned(),
        threads: 1,
        scaling_ratio: None,
        dispatch_mode: None,
        reduction_ratio: None,
        pair_completeness: None,
        report,
    });
}

/// Packed-vs-blocked single-threaded matmul at n ∈ {256, 512}; three
/// reps per kernel, so the span carries count=3 with min/max per rep.
fn matmul_runs(file: &mut BenchFile) {
    for n in [256usize, 512] {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut a = Matrix::zeros(n, n);
        let mut b = Matrix::zeros(n, n);
        for m in [&mut a, &mut b] {
            for v in m.data_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            }
        }
        let dataset = format!("n{n}");
        let blocked_run = recorded_run("matmul", &dataset, "blocked", 1, || {
            for _ in 0..3 {
                let _span = er_obs::span("matmul_kernel");
                std::hint::black_box(matmul_blocked(&a, &b));
            }
        });
        let mut packed_run = recorded_run("matmul", &dataset, "packed", 1, || {
            for _ in 0..3 {
                let _span = er_obs::span("matmul_kernel");
                std::hint::black_box(matmul_packed(&a, &b));
            }
        });
        // Speedup on best-of-3 (min), the least noisy comparison.
        let best = |run: &BenchRun| {
            run.report
                .span("matmul_kernel")
                .map_or(f64::INFINITY, |s| s.min_ns as f64 / 1e9)
        };
        let (blocked_s, packed_s) = (best(&blocked_run), best(&packed_run));
        let speedup = blocked_s / packed_s;
        packed_run.report.gauges.push(GaugeStat {
            name: "matmul_speedup".to_owned(),
            value: speedup,
        });
        println!("  matmul n={n}: blocked {blocked_s:.4}s  packed {packed_s:.4}s  ({speedup:.2}x)");
        file.runs.push(blocked_run);
        file.runs.push(packed_run);
    }
}
