//! **Table II** — F1-scores of all methods on the three benchmark
//! datasets.
//!
//! Reproduces the paper's comparison of 15 methods: two string-distance
//! baselines, four learning-based baselines, two (simulated) crowd
//! strategies, three graph-theoretic baselines, and the proposed
//! ITER+CliqueRank fusion framework. String/graph baselines use the
//! paper's optimal-threshold protocol (1 000 quanta); the fusion
//! framework uses the fixed universal threshold η = 0.98; supervised
//! baselines train on a balanced labelled sample (half the positives,
//! 3 negatives per positive) and are evaluated on the held-out rest;
//! crowd strategies query a 95 %-accurate simulated oracle above the
//! machine filter (Jaccard ≥ 0.3, as in the cited work) and additionally
//! report the number of questions billed.
//!
//! Scorer-based methods run twice — serial (`mode: "flat"`) and on the
//! shared worker pool (`mode: "pooled"`, `ER_THREADS` workers) — and the
//! two score vectors are asserted bit-identical on every run; the F1
//! column comes from the pooled scores. Per-method wall times land in
//! **BENCH_table2.json** (override the path with `ER_BENCH_OUT`) in the
//! `er-obs/v1` [`BenchFile`] schema: one [`BenchRun`] per method×mode,
//! whose report carries the wall time as an `eval` span plus
//! `candidate_pairs` (and, for pooled/kernel rows, `speedup`) gauges —
//! the same schema `bench_fusion` emits and `cargo xtask bench-diff`
//! consumes.
//!
//! A `simrank_kernel_*` run family rides along: per dataset, the
//! retained HashMap reference oracle is timed against the CSR-flattened
//! kernel (serial and pooled, universe build included), their score maps
//! are asserted bit-identical, and the flat/pooled records carry the
//! `speedup` over the oracle. The oracle runs *after* the per-dataset
//! evaluation window, so the "evaluated in" line stays comparable across
//! revisions.
//!
//! Run: `cargo bench --bench table2_f1` (`ER_SCALE=paper` for full scale).

use std::time::{Duration, Instant};

use er_baselines::{
    HybridScorer, JaccardScorer, PairScorer, SimRankScorer, TfIdfScorer, TwIdfScorer,
};
use er_bench::{
    bench_datasets, bench_threads, fmt_duration, fmt_ref, fusion_config, prepare, scale_factor,
};
use er_core::Resolver;
use er_crowd::{
    acd_resolve, crowder_resolve, gcer_resolve, power_resolve, transm_resolve, AcdConfig,
    CrowdErConfig, GcerConfig, NoisyOracle, PowerConfig, TransMConfig,
};
use er_eval::{evaluate_pairs, sweep_threshold, ConfusionCounts, TruthPairs};
use er_graph::bipartite::PairNode;
use er_graph::simrank::{bipartite_simrank_pooled, reference, SimRankConfig};
use er_ml::{
    balanced_split, Classifier, FeatureExtractor, GaussianMixture, GaussianNaiveBayes,
    LogisticRegression, PegasosSvm, StandardScaler,
};
use er_obs::{BenchFile, BenchRun, GaugeStat, Report, SpanStat};
use er_pool::WorkerPool;
use er_text::Corpus;

/// One BENCH_table2.json run: the method's wall time frozen as a single
/// `eval` span, with the candidate-pair count (tracked record pairs for
/// the kernel rows) and an optional `speedup` as gauges. Modes are
/// `"flat"` (serial), `"pooled"`, or `"hashmap"` (the retained SimRank
/// reference oracle).
fn timed_run(
    method: &str,
    dataset: &str,
    mode: &str,
    threads: usize,
    elapsed: Duration,
    candidates: usize,
    speedup: Option<f64>,
) -> BenchRun {
    let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    let mut gauges = vec![GaugeStat {
        name: "candidate_pairs".to_owned(),
        value: candidates as f64,
    }];
    if let Some(s) = speedup {
        gauges.push(GaugeStat {
            name: "speedup".to_owned(),
            value: s,
        });
    }
    BenchRun {
        label: method.to_owned(),
        dataset: dataset.to_owned(),
        mode: mode.to_owned(),
        threads: threads as u64,
        scaling_ratio: None,
        dispatch_mode: None,
        reduction_ratio: None,
        pair_completeness: None,
        report: Report {
            spans: vec![SpanStat {
                path: "eval".to_owned(),
                count: 1,
                total_ns: ns,
                min_ns: ns,
                max_ns: ns,
            }],
            counters: Vec::new(),
            gauges,
            workers: Vec::new(),
        },
    }
}

/// Runs one scorer serially and on the pool, asserts the score vectors
/// bit-identical (the `score_pairs_pooled` determinism contract), records
/// both wall times, and returns the Table II cell from the pooled scores.
fn eval_scorer_timed(
    scorer: &dyn PairScorer,
    corpus: &Corpus,
    pairs: &[PairNode],
    truth: &TruthPairs,
    pool: &WorkerPool,
    dataset: &str,
    runs: &mut Vec<BenchRun>,
) -> (String, f64) {
    let (flat, flat_t) = er_obs::time("table2_score_flat", || scorer.score_pairs(corpus, pairs));
    let (pooled, pooled_t) = er_obs::time("table2_score_pooled", || {
        scorer.score_pairs_pooled(corpus, pairs, pool)
    });
    let fa: Vec<u64> = flat.iter().map(|s| s.to_bits()).collect();
    let fb: Vec<u64> = pooled.iter().map(|s| s.to_bits()).collect();
    assert_eq!(
        fa,
        fb,
        "{} pooled scoring diverged from serial on {dataset}",
        scorer.name()
    );
    runs.push(timed_run(
        scorer.name(),
        dataset,
        "flat",
        1,
        flat_t,
        pairs.len(),
        None,
    ));
    runs.push(timed_run(
        scorer.name(),
        dataset,
        "pooled",
        pool.threads(),
        pooled_t,
        pairs.len(),
        Some(flat_t.as_secs_f64() / pooled_t.as_secs_f64().max(1e-9)),
    ));
    let r = er_baselines::sweep_scores(pairs, &pooled, truth);
    (scorer.name().to_owned(), r.f1)
}

fn main() {
    let scale = scale_factor();
    let pool = WorkerPool::new(bench_threads());
    let out_path = std::env::var("ER_BENCH_OUT").unwrap_or_else(|_| "BENCH_table2.json".to_owned());
    println!(
        "Table II — F1-scores (scale factor {scale}, {} pool threads); paper values in [brackets]",
        pool.threads()
    );
    let mut rows: Vec<(String, [String; 3])> = Vec::new();
    let mut crowd_notes = Vec::new();
    let mut runs: Vec<BenchRun> = Vec::new();

    let benches = bench_datasets(scale);
    let mut measured: Vec<Vec<(String, f64)>> = Vec::new();
    for bench in &benches {
        let t0 = Instant::now();
        let prepared = prepare(bench);
        let corpus = &prepared.corpus;
        let pairs: Vec<PairNode> = prepared.graph.pairs().to_vec();
        let truth = &prepared.truth;
        let name = bench.dataset.name.as_str();
        let mut col: Vec<(String, f64)> = Vec::new();

        // --- String-distance baselines (optimal threshold). ---
        for scorer in [
            Box::new(JaccardScorer) as Box<dyn PairScorer>,
            Box::new(TfIdfScorer),
        ] {
            col.push(eval_scorer_timed(
                scorer.as_ref(),
                corpus,
                &pairs,
                truth,
                &pool,
                name,
                &mut runs,
            ));
        }

        // --- Learning-based baselines. ---
        let ml = ml_baselines(corpus, &pairs, truth, &pool, name, &mut runs);
        col.extend(ml);

        // --- Crowd-based baselines (simulated oracle). ---
        // The machine-side filter of the cited crowd methods is Jaccard
        // over *raw* tokens (threshold 0.3 pre-dates any frequent-term
        // removal). Frequent-term filtering shrinks token sets and
        // deflates Jaccard, so the equivalent operating point on raw
        // tokens here is 0.15 — chosen once, used for all datasets.
        let raw_sets: Vec<Vec<String>> = bench
            .dataset
            .texts()
            .map(|t| {
                let mut v = er_text::tokenize_normalized(t);
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let raw_jaccard = |a: u32, b: u32| -> f64 {
            let (sa, sb) = (&raw_sets[a as usize], &raw_sets[b as usize]);
            let inter = sa.iter().filter(|t| sb.binary_search(t).is_ok()).count();
            let union = sa.len() + sb.len() - inter;
            if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            }
        };
        let scored: Vec<(u32, u32, f64)> = pairs
            .iter()
            .map(|p| (p.a, p.b, raw_jaccard(p.a, p.b)))
            .collect();
        let machine_threshold = 0.15;
        {
            let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), 0.95, 0x0C);
            let (out, t) = er_obs::time("table2_crowd", || {
                crowder_resolve(&scored, &CrowdErConfig { machine_threshold }, &mut oracle)
            });
            let counts = evaluate_pairs(out.matches.iter().copied(), truth);
            runs.push(timed_run(
                "CrowdER (sim)",
                name,
                "flat",
                1,
                t,
                pairs.len(),
                None,
            ));
            col.push(("CrowdER (sim)".to_owned(), counts.f1()));
            crowd_notes.push(format!(
                "{}: CrowdER asked {} questions ({} filtered)",
                name, out.questions, out.filtered_out
            ));
        }
        {
            let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), 0.95, 0x1C);
            let (out, t) = er_obs::time("table2_crowd", || {
                transm_resolve(
                    bench.dataset.len(),
                    &scored,
                    &TransMConfig { machine_threshold },
                    &mut oracle,
                )
            });
            let counts = evaluate_pairs(out.matches.iter().copied(), truth);
            runs.push(timed_run(
                "TransM (sim)",
                name,
                "flat",
                1,
                t,
                pairs.len(),
                None,
            ));
            col.push(("TransM (sim)".to_owned(), counts.f1()));
            crowd_notes.push(format!(
                "{}: TransM asked {} questions ({} filtered)",
                name, out.questions, out.filtered_out
            ));
        }
        {
            // GCER: budget = 2x the true-pair count, the regime where its
            // selection strategy matters.
            let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), 0.95, 0x2C);
            let (out, t) = er_obs::time("table2_crowd", || {
                gcer_resolve(
                    bench.dataset.len(),
                    &scored,
                    &GcerConfig {
                        budget: truth.total() * 2,
                        machine_threshold,
                    },
                    &mut oracle,
                )
            });
            let counts = evaluate_pairs(out.matches.iter().copied(), truth);
            runs.push(timed_run(
                "GCER (sim)",
                name,
                "flat",
                1,
                t,
                pairs.len(),
                None,
            ));
            col.push(("GCER (sim)".to_owned(), counts.f1()));
            crowd_notes.push(format!(
                "{}: GCER asked {} questions (budget {})",
                name,
                out.questions,
                truth.total() * 2
            ));
        }
        {
            let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), 0.95, 0x3C);
            let (out, t) = er_obs::time("table2_crowd", || {
                acd_resolve(
                    bench.dataset.len(),
                    &scored,
                    &AcdConfig {
                        machine_threshold,
                        ..Default::default()
                    },
                    &mut oracle,
                )
            });
            let counts = evaluate_pairs(out.matches.iter().copied(), truth);
            runs.push(timed_run(
                "ACD (sim)",
                name,
                "flat",
                1,
                t,
                pairs.len(),
                None,
            ));
            col.push(("ACD (sim)".to_owned(), counts.f1()));
            crowd_notes.push(format!("{}: ACD asked {} questions", name, out.questions));
        }
        {
            let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), 0.95, 0x4C);
            let (out, t) = er_obs::time("table2_crowd", || {
                power_resolve(
                    bench.dataset.len(),
                    &scored,
                    &PowerConfig {
                        machine_threshold,
                        ..Default::default()
                    },
                    &mut oracle,
                )
            });
            let counts = evaluate_pairs(out.matches.iter().copied(), truth);
            runs.push(timed_run(
                "Power+ (sim)",
                name,
                "flat",
                1,
                t,
                pairs.len(),
                None,
            ));
            col.push(("Power+ (sim)".to_owned(), counts.f1()));
            crowd_notes.push(format!(
                "{}: Power+ asked {} questions",
                name, out.questions
            ));
        }

        // --- Graph-theoretic baselines (optimal threshold). ---
        for scorer in [
            Box::new(SimRankScorer::default()) as Box<dyn PairScorer>,
            Box::new(TwIdfScorer::default()),
            Box::new(HybridScorer::default()),
        ] {
            col.push(eval_scorer_timed(
                scorer.as_ref(),
                corpus,
                &pairs,
                truth,
                &pool,
                name,
                &mut runs,
            ));
        }

        // --- The fusion framework (fixed η = 0.98). ---
        let (outcome, t) = er_obs::time("table2_fusion", || {
            Resolver::new(fusion_config()).resolve(&prepared.graph)
        });
        let counts = evaluate_pairs(outcome.matches.iter().copied(), truth);
        runs.push(timed_run(
            "ITER+CliqueRank",
            name,
            "flat",
            1,
            t,
            pairs.len(),
            None,
        ));
        col.push(("ITER+CliqueRank".to_owned(), counts.f1()));

        eprintln!(
            "[{}] {} candidates, {} true pairs, evaluated in {}",
            name,
            pairs.len(),
            truth.total(),
            fmt_duration(t0.elapsed())
        );
        measured.push(col);

        // Kernel head-to-head *after* the evaluation window: the HashMap
        // oracle is deliberately slow and must not pollute the
        // "evaluated in" number the README timing table tracks.
        simrank_kernel_records(corpus, name, &pool, &mut runs);
    }

    // Assemble rows: measured methods mapped onto the paper's row order.
    let method_names: Vec<String> = measured[0].iter().map(|(n, _)| n.clone()).collect();
    for (i, name) in method_names.iter().enumerate() {
        let cells = [0, 1, 2].map(|d| format!("{:.3}", measured[d][i].1));
        rows.push((name.clone(), cells));
    }

    println!(
        "\n{:<24} {:>18} {:>18} {:>18}",
        "Method", "Restaurant", "Product", "Paper"
    );
    println!("{}", "-".repeat(84));
    // Print measured rows with the closest paper reference beside them.
    let reference = |method: &str, d: usize| -> Option<f64> {
        let key = match method {
            "Jaccard" => "Jaccard",
            "TF-IDF" => "TF-IDF",
            "GMM (unsupervised)" => "Gaussian Mixture Model",
            "Naive Bayes" => "HGM+Bootstrap", // closest generative row
            "Logistic Regression" => "MLE",   // closest likelihood row
            "Linear SVM (Pegasos)" => "SVM",
            "CrowdER (sim)" => "CrowdER",
            "TransM (sim)" => "TransM",
            "GCER (sim)" => "GCER",
            "ACD (sim)" => "ACD",
            "Power+ (sim)" => "Power+",
            "SimRank" => "SimRank",
            "PageRank (TW-IDF)" => "PageRank",
            "Hybrid" => "Hybrid",
            "ITER+CliqueRank" => "ITER+CliqueRank",
            _ => return None,
        };
        er_bench::PAPER_TABLE2
            .iter()
            .find(|r| r.method == key)
            .and_then(|r| r.f1[d])
    };
    for (name, cells) in &rows {
        let refs: Vec<String> = (0..3).map(|d| fmt_ref(reference(name, d))).collect();
        println!(
            "{:<24} {:>7} [{:>5}] {:>7} [{:>5}] {:>7} [{:>5}]",
            name, cells[0], refs[0], cells[1], refs[1], cells[2], refs[2]
        );
    }
    println!("\nCrowd budgets:");
    for note in crowd_notes {
        println!("  {note}");
    }
    println!(
        "\nNotes: paper values in brackets; ML rows map onto the paper's closest\n\
         learning-based rows (our implementations, DESIGN.md §4); crowd rows use a\n\
         95%-accurate simulated oracle instead of Mechanical Turk workers."
    );
    let file = BenchFile { runs };
    std::fs::write(&out_path, file.to_json())
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {} runs to {out_path}", file.runs.len());
}

/// Times the retained HashMap SimRank oracle against the CSR-flattened
/// kernel (serial and pooled, universe build included) on the dataset's
/// record–term graph, asserting all three score maps bit-identical.
fn simrank_kernel_records(
    corpus: &Corpus,
    dataset: &str,
    pool: &WorkerPool,
    runs: &mut Vec<BenchRun>,
) {
    let owned: Vec<Vec<u32>> = (0..corpus.len())
        .map(|r| corpus.term_set(r).iter().map(|t| t.0).collect())
        .collect();
    let record_terms: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
    let cfg = SimRankConfig::default();

    let ((ref_records, _), hashmap_t) = er_obs::time("simrank_hashmap", || {
        reference::bipartite_simrank_reference(&record_terms, corpus.vocab_len(), &cfg, None)
    });

    let serial = WorkerPool::new(1);
    // Untimed warmup: the first build faults in the universe's large
    // allocations; time the steady state, as for the other kernels.
    drop(bipartite_simrank_pooled(
        &record_terms,
        corpus.vocab_len(),
        &cfg,
        None,
        &serial,
    ));
    let (flat, flat_t) = er_obs::time("simrank_flat", || {
        bipartite_simrank_pooled(&record_terms, corpus.vocab_len(), &cfg, None, &serial)
    });

    let (pooled, pooled_t) = er_obs::time("simrank_pooled", || {
        bipartite_simrank_pooled(&record_terms, corpus.vocab_len(), &cfg, None, pool)
    });
    let (hashmap_s, flat_s, pooled_s) = (
        hashmap_t.as_secs_f64(),
        flat_t.as_secs_f64().max(1e-9),
        pooled_t.as_secs_f64().max(1e-9),
    );

    assert_eq!(
        flat.tracked_record_pairs(),
        ref_records.len(),
        "flat kernel tracks a different pair universe than the oracle on {dataset}"
    );
    for (pair, s) in flat.record_entries() {
        assert_eq!(
            s.to_bits(),
            ref_records[&pair].to_bits(),
            "flat kernel diverged from the oracle at {pair:?} on {dataset}"
        );
    }
    for ((pa, sa), (pb, sb)) in flat.record_entries().zip(pooled.record_entries()) {
        assert_eq!(pa, pb);
        assert_eq!(
            sa.to_bits(),
            sb.to_bits(),
            "pooled kernel diverged from serial at {pa:?} on {dataset}"
        );
    }

    let tracked = flat.tracked_record_pairs();
    runs.push(timed_run(
        "simrank_kernel_hashmap",
        dataset,
        "hashmap",
        1,
        hashmap_t,
        tracked,
        None,
    ));
    runs.push(timed_run(
        "simrank_kernel_flat",
        dataset,
        "flat",
        1,
        flat_t,
        tracked,
        Some(hashmap_s / flat_s),
    ));
    runs.push(timed_run(
        "simrank_kernel_pooled",
        dataset,
        "pooled",
        pool.threads(),
        pooled_t,
        tracked,
        Some(hashmap_s / pooled_s),
    ));
    eprintln!(
        "[{dataset}] simrank kernel: hashmap {hashmap_s:.3}s  flat {flat_s:.3}s ({:.1}x)  \
         pooled {pooled_s:.3}s ({:.1}x, {} threads)",
        hashmap_s / flat_s,
        hashmap_s / pooled_s,
        pool.threads()
    );
}

/// Trains and evaluates the four learning-based baselines, recording a
/// wall-time row per model (plus one for shared feature extraction).
fn ml_baselines(
    corpus: &Corpus,
    pairs: &[PairNode],
    truth: &TruthPairs,
    pool: &WorkerPool,
    dataset: &str,
    runs: &mut Vec<BenchRun>,
) -> Vec<(String, f64)> {
    let t_feat = Instant::now();
    let extractor = FeatureExtractor::new(corpus);
    let pair_ids: Vec<(u32, u32)> = pairs.iter().map(|p| (p.a, p.b)).collect();
    let features: Vec<Vec<f64>> = extractor.extract_all(&pair_ids, pool);
    let labels: Vec<bool> = pairs.iter().map(|p| truth.is_match(p.a, p.b)).collect();
    let split = balanced_split(&labels, 0.5, 3.0, 0x711);
    let scaler = StandardScaler::fit(&features);
    let scaled: Vec<Vec<f64>> = scaler.transform_all(&features);
    runs.push(timed_run(
        "ML features",
        dataset,
        "pooled",
        pool.threads(),
        t_feat.elapsed(),
        pairs.len(),
        None,
    ));

    let train_x: Vec<Vec<f64>> = split.train.iter().map(|&i| scaled[i].clone()).collect();
    let train_y: Vec<bool> = split.train.iter().map(|&i| labels[i]).collect();

    // Held-out evaluation: true pairs in the test portion only.
    let test_truth = TruthPairs::from_pairs(
        split
            .test
            .iter()
            .filter(|&&i| labels[i])
            .map(|&i| (pairs[i].a, pairs[i].b)),
    );
    let eval = |predict: &dyn Fn(&[f64]) -> bool| -> ConfusionCounts {
        let predicted = split
            .test
            .iter()
            .filter(|&&i| predict(&scaled[i]))
            .map(|&i| (pairs[i].a, pairs[i].b));
        evaluate_pairs(predicted, &test_truth)
    };

    let mut out = Vec::new();
    let mut push_timed = |name: &str, f1: f64, elapsed: Duration| {
        runs.push(timed_run(
            name,
            dataset,
            "flat",
            1,
            elapsed,
            pairs.len(),
            None,
        ));
        out.push((name.to_owned(), f1));
    };

    // Unsupervised GMM: fitted on ALL pairs without labels, evaluated on
    // the same held-out portion for comparability.
    let (gmm, t) = er_obs::time("table2_ml_fit", || GaussianMixture::fit(&scaled, 60));
    let f1 = eval(&|x| gmm.predict(x)).f1();
    push_timed("GMM (unsupervised)", f1, t);

    let (nb, t) = er_obs::time("table2_ml_fit", || {
        GaussianNaiveBayes::fit(&train_x, &train_y)
    });
    let f1 = eval(&|x| nb.predict(x)).f1();
    push_timed("Naive Bayes", f1, t);

    let (lr, t) = er_obs::time("table2_ml_fit", || {
        let mut lr = LogisticRegression::new();
        lr.fit(&train_x, &train_y);
        lr
    });
    let f1 = eval(&|x| lr.predict(x)).f1();
    push_timed("Logistic Regression", f1, t);

    let (svm, t) = er_obs::time("table2_ml_fit", || {
        let mut svm = PegasosSvm::new();
        svm.fit(&train_x, &train_y);
        svm
    });
    let f1 = eval(&|x| svm.predict(x)).f1();
    push_timed("Linear SVM (Pegasos)", f1, t);

    // Silence unused warnings for the sweep helper used by other benches.
    let _ = sweep_threshold;
    out
}
