//! **Table II** — F1-scores of all methods on the three benchmark
//! datasets.
//!
//! Reproduces the paper's comparison of 15 methods: two string-distance
//! baselines, four learning-based baselines, two (simulated) crowd
//! strategies, three graph-theoretic baselines, and the proposed
//! ITER+CliqueRank fusion framework. String/graph baselines use the
//! paper's optimal-threshold protocol (1 000 quanta); the fusion
//! framework uses the fixed universal threshold η = 0.98; supervised
//! baselines train on a balanced labelled sample (half the positives,
//! 3 negatives per positive) and are evaluated on the held-out rest;
//! crowd strategies query a 95 %-accurate simulated oracle above the
//! machine filter (Jaccard ≥ 0.3, as in the cited work) and additionally
//! report the number of questions billed.
//!
//! Run: `cargo bench --bench table2_f1` (`ER_SCALE=paper` for full scale).

use std::time::Instant;

use er_baselines::{
    HybridScorer, JaccardScorer, PairScorer, SimRankScorer, TfIdfScorer, TwIdfScorer,
};
use er_bench::{bench_datasets, fmt_duration, fmt_ref, fusion_config, prepare, scale_factor};
use er_core::Resolver;
use er_crowd::{
    acd_resolve, crowder_resolve, gcer_resolve, power_resolve, transm_resolve, AcdConfig,
    CrowdErConfig, GcerConfig, NoisyOracle, PowerConfig, TransMConfig,
};
use er_eval::{evaluate_pairs, sweep_threshold, ConfusionCounts, TruthPairs};
use er_graph::bipartite::PairNode;
use er_ml::{
    balanced_split, Classifier, FeatureExtractor, GaussianMixture, GaussianNaiveBayes,
    LogisticRegression, PegasosSvm, StandardScaler,
};
use er_text::Corpus;

fn main() {
    let scale = scale_factor();
    println!("Table II — F1-scores (scale factor {scale}); paper values in [brackets]");
    let mut rows: Vec<(String, [String; 3])> = Vec::new();
    let mut crowd_notes = Vec::new();

    let benches = bench_datasets(scale);
    let mut measured: Vec<Vec<(String, f64)>> = Vec::new();
    for bench in &benches {
        let t0 = Instant::now();
        let prepared = prepare(bench);
        let corpus = &prepared.corpus;
        let pairs: Vec<PairNode> = prepared.graph.pairs().to_vec();
        let truth = &prepared.truth;
        let mut col: Vec<(String, f64)> = Vec::new();

        // --- String-distance baselines (optimal threshold). ---
        for scorer in [
            Box::new(JaccardScorer) as Box<dyn PairScorer>,
            Box::new(TfIdfScorer),
        ] {
            let r = er_baselines::evaluate_scorer(scorer.as_ref(), corpus, &pairs, truth);
            col.push((scorer.name().to_owned(), r.f1));
        }

        // --- Learning-based baselines. ---
        let ml = ml_baselines(corpus, &pairs, truth);
        col.extend(ml);

        // --- Crowd-based baselines (simulated oracle). ---
        // The machine-side filter of the cited crowd methods is Jaccard
        // over *raw* tokens (threshold 0.3 pre-dates any frequent-term
        // removal). Frequent-term filtering shrinks token sets and
        // deflates Jaccard, so the equivalent operating point on raw
        // tokens here is 0.15 — chosen once, used for all datasets.
        let raw_sets: Vec<Vec<String>> = bench
            .dataset
            .texts()
            .map(|t| {
                let mut v = er_text::tokenize_normalized(t);
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let raw_jaccard = |a: u32, b: u32| -> f64 {
            let (sa, sb) = (&raw_sets[a as usize], &raw_sets[b as usize]);
            let inter = sa.iter().filter(|t| sb.binary_search(t).is_ok()).count();
            let union = sa.len() + sb.len() - inter;
            if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            }
        };
        let scored: Vec<(u32, u32, f64)> = pairs
            .iter()
            .map(|p| (p.a, p.b, raw_jaccard(p.a, p.b)))
            .collect();
        let machine_threshold = 0.15;
        {
            let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), 0.95, 0x0C);
            let out = crowder_resolve(&scored, &CrowdErConfig { machine_threshold }, &mut oracle);
            let counts = evaluate_pairs(out.matches.iter().copied(), truth);
            col.push(("CrowdER (sim)".to_owned(), counts.f1()));
            crowd_notes.push(format!(
                "{}: CrowdER asked {} questions ({} filtered)",
                bench.dataset.name, out.questions, out.filtered_out
            ));
        }
        {
            let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), 0.95, 0x1C);
            let out = transm_resolve(
                bench.dataset.len(),
                &scored,
                &TransMConfig { machine_threshold },
                &mut oracle,
            );
            let counts = evaluate_pairs(out.matches.iter().copied(), truth);
            col.push(("TransM (sim)".to_owned(), counts.f1()));
            crowd_notes.push(format!(
                "{}: TransM asked {} questions ({} filtered)",
                bench.dataset.name, out.questions, out.filtered_out
            ));
        }
        {
            // GCER: budget = 2x the true-pair count, the regime where its
            // selection strategy matters.
            let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), 0.95, 0x2C);
            let out = gcer_resolve(
                bench.dataset.len(),
                &scored,
                &GcerConfig {
                    budget: truth.total() * 2,
                    machine_threshold,
                },
                &mut oracle,
            );
            let counts = evaluate_pairs(out.matches.iter().copied(), truth);
            col.push(("GCER (sim)".to_owned(), counts.f1()));
            crowd_notes.push(format!(
                "{}: GCER asked {} questions (budget {})",
                bench.dataset.name,
                out.questions,
                truth.total() * 2
            ));
        }
        {
            let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), 0.95, 0x3C);
            let out = acd_resolve(
                bench.dataset.len(),
                &scored,
                &AcdConfig {
                    machine_threshold,
                    ..Default::default()
                },
                &mut oracle,
            );
            let counts = evaluate_pairs(out.matches.iter().copied(), truth);
            col.push(("ACD (sim)".to_owned(), counts.f1()));
            crowd_notes.push(format!(
                "{}: ACD asked {} questions",
                bench.dataset.name, out.questions
            ));
        }
        {
            let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), 0.95, 0x4C);
            let out = power_resolve(
                bench.dataset.len(),
                &scored,
                &PowerConfig {
                    machine_threshold,
                    ..Default::default()
                },
                &mut oracle,
            );
            let counts = evaluate_pairs(out.matches.iter().copied(), truth);
            col.push(("Power+ (sim)".to_owned(), counts.f1()));
            crowd_notes.push(format!(
                "{}: Power+ asked {} questions",
                bench.dataset.name, out.questions
            ));
        }

        // --- Graph-theoretic baselines (optimal threshold). ---
        for scorer in [
            Box::new(SimRankScorer::default()) as Box<dyn PairScorer>,
            Box::new(TwIdfScorer::default()),
            Box::new(HybridScorer::default()),
        ] {
            let r = er_baselines::evaluate_scorer(scorer.as_ref(), corpus, &pairs, truth);
            col.push((scorer.name().to_owned(), r.f1));
        }

        // --- The fusion framework (fixed η = 0.98). ---
        let outcome = Resolver::new(fusion_config()).resolve(&prepared.graph);
        let counts = evaluate_pairs(outcome.matches.iter().copied(), truth);
        col.push(("ITER+CliqueRank".to_owned(), counts.f1()));

        eprintln!(
            "[{}] {} candidates, {} true pairs, evaluated in {}",
            bench.dataset.name,
            pairs.len(),
            truth.total(),
            fmt_duration(t0.elapsed())
        );
        measured.push(col);
    }

    // Assemble rows: measured methods mapped onto the paper's row order.
    let method_names: Vec<String> = measured[0].iter().map(|(n, _)| n.clone()).collect();
    for (i, name) in method_names.iter().enumerate() {
        let cells = [0, 1, 2].map(|d| format!("{:.3}", measured[d][i].1));
        rows.push((name.clone(), cells));
    }

    println!(
        "\n{:<24} {:>18} {:>18} {:>18}",
        "Method", "Restaurant", "Product", "Paper"
    );
    println!("{}", "-".repeat(84));
    // Print measured rows with the closest paper reference beside them.
    let reference = |method: &str, d: usize| -> Option<f64> {
        let key = match method {
            "Jaccard" => "Jaccard",
            "TF-IDF" => "TF-IDF",
            "GMM (unsupervised)" => "Gaussian Mixture Model",
            "Naive Bayes" => "HGM+Bootstrap", // closest generative row
            "Logistic Regression" => "MLE",   // closest likelihood row
            "Linear SVM (Pegasos)" => "SVM",
            "CrowdER (sim)" => "CrowdER",
            "TransM (sim)" => "TransM",
            "GCER (sim)" => "GCER",
            "ACD (sim)" => "ACD",
            "Power+ (sim)" => "Power+",
            "SimRank" => "SimRank",
            "PageRank (TW-IDF)" => "PageRank",
            "Hybrid" => "Hybrid",
            "ITER+CliqueRank" => "ITER+CliqueRank",
            _ => return None,
        };
        er_bench::PAPER_TABLE2
            .iter()
            .find(|r| r.method == key)
            .and_then(|r| r.f1[d])
    };
    for (name, cells) in &rows {
        let refs: Vec<String> = (0..3).map(|d| fmt_ref(reference(name, d))).collect();
        println!(
            "{:<24} {:>7} [{:>5}] {:>7} [{:>5}] {:>7} [{:>5}]",
            name, cells[0], refs[0], cells[1], refs[1], cells[2], refs[2]
        );
    }
    println!("\nCrowd budgets:");
    for note in crowd_notes {
        println!("  {note}");
    }
    println!(
        "\nNotes: paper values in brackets; ML rows map onto the paper's closest\n\
         learning-based rows (our implementations, DESIGN.md §4); crowd rows use a\n\
         95%-accurate simulated oracle instead of Mechanical Turk workers."
    );
}

/// Trains and evaluates the four learning-based baselines.
fn ml_baselines(corpus: &Corpus, pairs: &[PairNode], truth: &TruthPairs) -> Vec<(String, f64)> {
    let extractor = FeatureExtractor::new(corpus);
    let features: Vec<Vec<f64>> = pairs.iter().map(|p| extractor.features(p.a, p.b)).collect();
    let labels: Vec<bool> = pairs.iter().map(|p| truth.is_match(p.a, p.b)).collect();
    let split = balanced_split(&labels, 0.5, 3.0, 0x711);
    let scaler = StandardScaler::fit(&features);
    let scaled: Vec<Vec<f64>> = scaler.transform_all(&features);

    let train_x: Vec<Vec<f64>> = split.train.iter().map(|&i| scaled[i].clone()).collect();
    let train_y: Vec<bool> = split.train.iter().map(|&i| labels[i]).collect();

    // Held-out evaluation: true pairs in the test portion only.
    let test_truth = TruthPairs::from_pairs(
        split
            .test
            .iter()
            .filter(|&&i| labels[i])
            .map(|&i| (pairs[i].a, pairs[i].b)),
    );
    let eval = |predict: &dyn Fn(&[f64]) -> bool| -> ConfusionCounts {
        let predicted = split
            .test
            .iter()
            .filter(|&&i| predict(&scaled[i]))
            .map(|&i| (pairs[i].a, pairs[i].b));
        evaluate_pairs(predicted, &test_truth)
    };

    let mut out = Vec::new();

    // Unsupervised GMM: fitted on ALL pairs without labels, evaluated on
    // the same held-out portion for comparability.
    let gmm = GaussianMixture::fit(&scaled, 60);
    out.push((
        "GMM (unsupervised)".to_owned(),
        eval(&|x| gmm.predict(x)).f1(),
    ));

    let nb = GaussianNaiveBayes::fit(&train_x, &train_y);
    out.push(("Naive Bayes".to_owned(), eval(&|x| nb.predict(x)).f1()));

    let mut lr = LogisticRegression::new();
    lr.fit(&train_x, &train_y);
    out.push((
        "Logistic Regression".to_owned(),
        eval(&|x| lr.predict(x)).f1(),
    ));

    let mut svm = PegasosSvm::new();
    svm.fit(&train_x, &train_y);
    out.push((
        "Linear SVM (Pegasos)".to_owned(),
        eval(&|x| svm.predict(x)).f1(),
    ));

    // Silence unused warnings for the sweep helper used by other benches.
    let _ = sweep_threshold;
    out
}
