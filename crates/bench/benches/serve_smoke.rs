//! **serve_smoke** — CI gate for the streaming serving engine.
//!
//! Streams a fixed census dataset through `er-serve` in uneven
//! micro-batches with a resolve after each, and fails the build when
//! either invariant breaks:
//!
//! 1. **Incremental ≡ batch** — after every micro-batch, the published
//!    snapshot must be bitwise identical (candidate pairs, matching
//!    probabilities, matches, clusters) to a from-scratch batch
//!    resolution of the same prefix, and the CliqueRank component cache
//!    must actually replay warm components (hits > 0) so the gate
//!    exercises the incremental path rather than silently recomputing
//!    everything.
//! 2. **Ingest throughput floor** — the sustained stream (ingest +
//!    every incremental resolve) must exceed a deliberately
//!    conservative records/s floor; an accidental quadratic in the
//!    streaming corpus, signature cache or snapshot publication shows
//!    up here immediately.
//!
//! Sizes are fixed (no `ER_SCALE`) so the gate is comparable across CI
//! runs. Exits non-zero on failure, like the other `*_smoke` targets.

use std::time::Instant;

use er_bench::{bench_threads, fmt_duration};
use er_datasets::generators::census;
use er_datasets::CensusConfig;
use er_serve::{resolve_batch, ServeConfig, ServeEngine};
use er_text::BlockingStrategy;

const RECORDS: usize = 2_400;
/// Uneven micro-batches (they must sum to `RECORDS`): resolve cadence
/// in a real stream is not uniform, and unequal prefixes catch
/// df-cap-flip bugs a fixed cadence can miss.
const CHUNKS: [usize; 5] = [400, 73, 927, 600, 400];
const MIN_THROUGHPUT: f64 = 100.0;

fn main() {
    let threads = bench_threads();
    let dataset = census::generate(&CensusConfig {
        records: RECORDS,
        duplicate_rate: 0.2,
        seed: 0xCE_0505,
    });
    let texts: Vec<String> = dataset.texts().map(str::to_owned).collect();
    assert_eq!(CHUNKS.iter().sum::<usize>(), RECORDS);

    let mut config = ServeConfig {
        strategy: BlockingStrategy::meta_default(),
        ..ServeConfig::default()
    };
    config.fusion.threads = threads;
    config.fusion.rounds = 2;
    println!("serve_smoke — incremental ≡ batch + ingest throughput gate ({threads} threads)");

    let mut engine = ServeEngine::new(config);
    let mut failed = false;
    let mut offset = 0usize;
    let stream_start = Instant::now();
    let mut stream_time = std::time::Duration::ZERO;
    for &chunk in &CHUNKS {
        let end = offset + chunk;
        let t = Instant::now();
        engine.ingest_batch(texts[offset..end].iter().map(String::as_str));
        let snap = engine.resolve();
        stream_time += t.elapsed();
        let batch = resolve_batch(texts[..end].iter().cloned(), engine.config());
        let ok = snap.bitwise_eq(&batch);
        println!(
            "  records={end:<5} matches={:<5} clusters={:<5} epoch={} {}",
            snap.matches().len(),
            snap.clusters().len(),
            snap.epoch(),
            if ok { "≡ batch" } else { "DIVERGED" },
        );
        if !ok {
            eprintln!(
                "FAIL: incremental resolution diverged from the batch reference at {end} records"
            );
            failed = true;
        }
        offset = end;
    }
    let total = stream_start.elapsed();

    if engine.cache().hits() == 0 {
        eprintln!("FAIL: CliqueRank cache never replayed a component — the gate is not exercising the incremental path");
        failed = true;
    }
    if engine.signatures().reused() == 0 {
        eprintln!("FAIL: MinHash signature cache never reused a signature");
        failed = true;
    }

    let throughput = RECORDS as f64 / stream_time.as_secs_f64();
    println!(
        "  stream: {} ingest+resolve ({} with batch checks), {throughput:.0} rec/s, cache hits={} misses={}, signatures reused={}",
        fmt_duration(stream_time),
        fmt_duration(total),
        engine.cache().hits(),
        engine.cache().misses(),
        engine.signatures().reused(),
    );
    if throughput < MIN_THROUGHPUT {
        eprintln!(
            "FAIL: sustained ingest throughput {throughput:.0} rec/s is below the {MIN_THROUGHPUT} floor"
        );
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!("serve_smoke OK");
}
