//! **packed_smoke** — release-mode regression gate for the packed
//! register-tiled matmul.
//!
//! Times `matmul_packed` against the legacy `matmul_blocked` baseline at
//! n = 256 and exits non-zero if packed is slower — CI runs this so a
//! kernel regression fails the build instead of silently eating the
//! speedup. Also reports the n = 512 ratio (the PR's ≥ 2× target) without
//! gating on it, since shared CI runners are too noisy for a tight
//! threshold.
//!
//! Run: `cargo bench -p er-bench --bench packed_smoke`.

use std::time::Instant;

use er_matrix::{matmul_blocked, matmul_packed, Matrix};

fn deterministic(n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    Matrix::from_fn(n, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    })
}

/// Best-of-`reps` wall time of `f`.
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn ratio_at(n: usize, reps: usize) -> (f64, f64, f64) {
    let a = deterministic(n, 1);
    let b = deterministic(n, 2);
    // Warm-up, and a correctness spot check while we're here: for
    // k = n ≤ KC the two kernels are bit-identical by contract.
    let blocked = matmul_blocked(&a, &b);
    let packed = matmul_packed(&a, &b);
    if n <= er_matrix::KC {
        assert_eq!(
            blocked.data(),
            packed.data(),
            "packed and blocked must be bit-identical at n={n}"
        );
    }
    let blocked_s = time_min(reps, || {
        std::hint::black_box(matmul_blocked(&a, &b));
    });
    let packed_s = time_min(reps, || {
        std::hint::black_box(matmul_packed(&a, &b));
    });
    (blocked_s, packed_s, blocked_s / packed_s)
}

fn main() {
    let (blocked_256, packed_256, ratio_256) = ratio_at(256, 5);
    println!("n=256: blocked {blocked_256:.4}s  packed {packed_256:.4}s  speedup {ratio_256:.2}x");
    let (blocked_512, packed_512, ratio_512) = ratio_at(512, 3);
    println!("n=512: blocked {blocked_512:.4}s  packed {packed_512:.4}s  speedup {ratio_512:.2}x");

    if ratio_256 < 1.0 {
        eprintln!("FAIL: packed kernel slower than blocked at n=256 ({ratio_256:.2}x)");
        std::process::exit(1);
    }
    println!("OK: packed ≥ blocked at n=256");
}
