//! **BENCH_similarity.json** — batch string-similarity engine telemetry
//! in the `er-obs/v1` schema.
//!
//! For each bench dataset, every [`SimKernel`] is timed two ways over
//! the full candidate-pair list:
//!
//! * `per_pair` — the pre-batching path:
//!   [`BatchScorer::score_pair_reference`] in a plain loop (fresh
//!   strings per pair, scalar DP, no memoization). One serial run.
//! * `batch` — the string-tape engine ([`BatchScorer::score_into`])
//!   at threads ∈ {1, 2, 4}, with er-obs recording on so the
//!   `simeng.batch.{pairs,cells}_total` counters and per-kernel spans
//!   land in each run's report.
//!
//! Every run carries a `simeng_cups` gauge — DP cell updates per
//! second, where the cell count is the tape-derived
//! [`BatchScorer::cells`] (Σ |a|·|b| over the batch), the same estimate
//! the engine's dispatch uses. Batch runs add `simeng_batch_speedup`
//! (per-pair seconds / batch seconds) and, past threads = 1 on runs
//! that actually fanned out, the `scaling_ratio` consumed by
//! `cargo xtask bench-diff --gate-scaling`.
//! Batch output is asserted bit-identical to the per-pair oracle at
//! every thread count before any timing is recorded.
//!
//! Run: `cargo bench -p er-bench --bench bench_similarity`. Output goes
//! to `BENCH_similarity.json` in the current directory (override with
//! `ER_BENCH_OUT`); `cargo xtask bench-diff` consumes it in CI.

use std::time::Instant;

use er_bench::{bench_datasets, prepare, scale_factor};
use er_obs::{BenchFile, BenchRun, GaugeStat};
use er_pool::WorkerPool;
use er_text::{BatchScorer, SimKernel};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Best-of-`reps` wall time of `f`.
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Resets the registry, runs `f`, and freezes the snapshot into a run.
fn recorded_run(
    label: &str,
    dataset: &str,
    mode: &str,
    threads: usize,
    f: impl FnOnce(),
) -> BenchRun {
    er_obs::reset();
    f();
    let report = er_obs::snapshot();
    let dispatch_mode = if report.counter("pool.dispatch.parallel") > 0 {
        Some("pooled".to_owned())
    } else if report.counter("pool.dispatch.serial_inline") > 0 {
        Some("serial-inline".to_owned())
    } else {
        None
    };
    BenchRun {
        label: label.to_owned(),
        dataset: dataset.to_owned(),
        mode: mode.to_owned(),
        threads: threads as u64,
        scaling_ratio: None,
        dispatch_mode,
        reduction_ratio: None,
        pair_completeness: None,
        report,
    }
}

fn cups_gauge(cells: u64, secs: f64) -> GaugeStat {
    GaugeStat {
        name: "simeng_cups".to_owned(),
        value: if secs > 0.0 { cells as f64 / secs } else { 0.0 },
    }
}

fn main() {
    let scale = scale_factor();
    let out_path =
        std::env::var("ER_BENCH_OUT").unwrap_or_else(|_| "BENCH_similarity.json".to_owned());
    println!("BENCH_similarity — batch string-similarity engine at scale factor {scale}");
    er_obs::set_recording(true);

    // CI scale finishes a per-pair Smith-Waterman sweep in well under a
    // second, so best-of-3 is affordable; paper scale drops to a single
    // rep for the per-pair side (a 60 s Monge-Elkan sweep self-averages,
    // and tripling it triples the suite). Batch timings are sub-second
    // to a few seconds at every scale and feed the scaling gate, so
    // they always get best-of-3 — a single sample on a 0.8 s sweep can
    // show 30% scheduler jitter that reads as a t2 inversion.
    let per_pair_reps = if scale < 0.7 { 3 } else { 1 };
    let batch_reps = 3;

    let mut file = BenchFile::default();
    for bench in bench_datasets(scale) {
        let prepared = prepare(&bench);
        let name = bench.dataset.name.clone();
        let scorer = BatchScorer::new(&prepared.corpus);
        let idx: Vec<(u32, u32)> = prepared.graph.pairs().iter().map(|p| (p.a, p.b)).collect();
        let cells = scorer.cells(&idx);
        println!(
            "  {name}: {} pairs, {cells} DP cells on the tape",
            idx.len()
        );

        for kernel in SimKernel::ALL {
            // Per-pair oracle: the path every caller used before the
            // batch engine, and the correctness reference below.
            let mut oracle = vec![0.0f64; idx.len()];
            let per_pair_secs = time_min(per_pair_reps, || {
                for (v, &(a, b)) in oracle.iter_mut().zip(&idx) {
                    *v = scorer.score_pair_reference(kernel, a, b);
                }
            });
            let mut run = recorded_run("similarity_perpair", &name, kernel.name(), 1, || {});
            run.report.gauges.push(cups_gauge(cells, per_pair_secs));
            file.runs.push(run);

            let mut out = vec![0.0f64; idx.len()];
            let mut t1_secs: Option<f64> = None;
            for threads in THREAD_COUNTS {
                let pool = WorkerPool::new(threads);
                // Correctness before timing: the batch engine must be
                // bit-identical to the per-pair oracle at every thread
                // count (also pinned by the engine's proptests).
                scorer.score_into(kernel, &idx, &mut out, &pool);
                let ob: Vec<u64> = oracle.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    ob,
                    bb,
                    "{}: batch diverged from per-pair oracle on {name} at threads={threads}",
                    kernel.name()
                );

                let mut batch_secs = f64::INFINITY;
                let mut run =
                    recorded_run("similarity_batch", &name, kernel.name(), threads, || {
                        batch_secs = time_min(batch_reps, || {
                            scorer.score_into(kernel, &idx, &mut out, &pool);
                        });
                    });
                run.report.gauges.push(cups_gauge(cells, batch_secs));
                run.report.gauges.push(GaugeStat {
                    name: "simeng_batch_speedup".to_owned(),
                    value: per_pair_secs / batch_secs,
                });
                // tN/t1 only where the run actually fanned out: the
                // memoized kernel stays serial-inline at every thread
                // count by design, and a ratio of two identical serial
                // sweeps would gate on pure noise.
                let pooled = run.dispatch_mode.as_deref() == Some("pooled");
                match t1_secs {
                    None => t1_secs = Some(batch_secs),
                    Some(t1) if t1 > 0.0 && pooled => {
                        run.scaling_ratio = Some(batch_secs / t1);
                    }
                    Some(_) => {}
                }
                println!(
                    "    {:<15} threads={threads}  per-pair {per_pair_secs:.4}s  batch {batch_secs:.4}s  ({:.1}x, {:.0} MCUPS)",
                    kernel.name(),
                    per_pair_secs / batch_secs,
                    cells as f64 / batch_secs / 1e6,
                );
                file.runs.push(run);
            }
        }
    }
    er_obs::set_recording(false);

    let json = file.to_json();
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {} runs to {out_path}", file.runs.len());
}
