//! **Table V** — Effect of the ITER ⇄ CliqueRank reinforcement.
//!
//! F1-score and cumulative running time after each of the five fusion
//! rounds. The paper's claim: feeding CliqueRank's matching probabilities
//! back into ITER's bipartite edge weights improves accuracy noticeably
//! from round 1 to round 2 and then converges (with possible slight
//! fluctuation, as on Restaurant).
//!
//! Run: `cargo bench --bench table5_reinforcement`.

use std::time::Instant;

use er_bench::{bench_datasets, fusion_config, prepare, scale_factor};
use er_core::{fusion::decide_matches, Resolver};
use er_eval::evaluate_pairs;

/// Paper-reported per-round F1 (Restaurant, Product, Paper).
const PAPER_ROUNDS: [[f64; 5]; 3] = [
    [0.916, 0.935, 0.931, 0.931, 0.927],
    [0.543, 0.712, 0.747, 0.754, 0.764],
    [0.844, 0.888, 0.889, 0.890, 0.890],
];

fn main() {
    let scale = scale_factor();
    println!("Table V — Effect of reinforcement (scale factor {scale})");
    println!(
        "{:<10} {:>26} {:>26} {:>26}",
        "Iteration", "Restaurant F1 (time)", "Product F1 (time)", "Paper F1 (time)"
    );
    println!("{}", "-".repeat(94));

    let benches = bench_datasets(scale);
    let mut columns: Vec<Vec<(f64, f64)>> = Vec::new(); // per dataset: (f1, cum secs) per round
    for bench in &benches {
        let prepared = prepare(bench);
        let mut cfg = fusion_config();
        cfg.record_round_probabilities = true;
        let t0 = Instant::now();
        let outcome = Resolver::new(cfg.clone()).resolve(&prepared.graph);
        let _total = t0.elapsed();

        // Reconstruct cumulative time per round from the recorded stats
        // and evaluate each round's probability snapshot at η.
        let mut cum = 0.0f64;
        let mut col = Vec::new();
        for (stats, probs) in outcome.rounds.iter().zip(&outcome.round_probabilities) {
            cum += stats.iter_time.as_secs_f64() + stats.cliquerank_time.as_secs_f64();
            let (matches, _) = decide_matches(&prepared.graph, probs, cfg.eta);
            let f1 = evaluate_pairs(matches, &prepared.truth).f1();
            col.push((f1, cum));
        }
        columns.push(col);
    }

    let rounds = columns[0].len();
    for r in 0..rounds {
        let cell = |d: usize| {
            let (f1, cum) = columns[d][r];
            format!("{f1:.3} [{:.3}] ({cum:.1}s)", PAPER_ROUNDS[d][r.min(4)])
        };
        println!(
            "{:<10} {:>26} {:>26} {:>26}",
            r + 1,
            cell(0),
            cell(1),
            cell(2)
        );
    }
    println!(
        "\nPaper F1 values in brackets. Times are cumulative ITER+CliqueRank seconds;\n\
         absolute values differ from the paper's 32-core server, but the per-round\n\
         growth is linear in rounds as in Table V."
    );
}
