//! **Ablation** — the non-linear transition exponent α (Eq. 11).
//!
//! The paper argues the conventional linear random walk (α = 1) cannot
//! separate matching from non-matching neighbors, and sets α = 20 "large
//! enough to generate a dominating gap". This bench sweeps α and reports
//! fusion F1 per dataset — the shape to expect is a large jump from
//! α = 1 to moderate α, then a plateau.
//!
//! Run: `cargo bench --bench ablation_alpha`.

use er_bench::{bench_datasets, fusion_config, prepare, scale_factor};
use er_core::Resolver;
use er_eval::evaluate_pairs;

fn main() {
    let scale = scale_factor();
    let alphas = [1.0, 5.0, 10.0, 20.0, 40.0];
    println!("Ablation — transition exponent α (scale factor {scale})");
    println!(
        "{:<12} {}",
        "Dataset",
        alphas
            .iter()
            .map(|a| format!("α={a:<6}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("{}", "-".repeat(60));
    for bench in bench_datasets(scale) {
        let prepared = prepare(&bench);
        let mut cells = Vec::new();
        for &alpha in &alphas {
            let mut cfg = fusion_config();
            cfg.cliquerank.alpha = alpha;
            let outcome = Resolver::new(cfg).resolve(&prepared.graph);
            let f1 = evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth).f1();
            cells.push(format!("{f1:<8.3}"));
        }
        println!("{:<12} {}", bench.dataset.name, cells.join(" "));
    }
    println!("\nExpected shape: α = 1 (conventional walk) clearly below the α ≥ 10 plateau.");
}
