//! **simrank_smoke** — release-mode regression gate for the
//! CSR-flattened SimRank kernel.
//!
//! Builds a deterministic mid-size synthetic record–term graph, times the
//! retained HashMap reference oracle against the flattened kernel
//! (universe construction included — the flattening must pay for its own
//! setup), asserts the two score maps bit-identical, and exits non-zero
//! if the flattened kernel is slower — CI runs this so a kernel
//! regression fails the build instead of silently eating the speedup.
//! The pooled ratio (`ER_THREADS` workers) is reported without gating,
//! since shared CI runners are too noisy for a tight threshold.
//!
//! Run: `cargo bench -p er-bench --bench simrank_smoke`.

use std::time::Instant;

use er_bench::bench_threads;
use er_graph::simrank::{bipartite_simrank_pooled, reference, SimRankConfig};
use er_pool::WorkerPool;

const N_RECORDS: usize = 1500;
const N_TERMS: usize = 600;
const TERMS_PER_RECORD: usize = 6;

/// Deterministic synthetic corpus: each record draws `TERMS_PER_RECORD`
/// term ids from an LCG, skewed toward low ids (min of two draws) so a
/// head of common terms produces realistic co-occurrence blocks while
/// the tail stays discriminative.
fn synthetic_record_terms() -> Vec<Vec<u32>> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..N_RECORDS)
        .map(|_| {
            let mut terms: Vec<u32> = (0..TERMS_PER_RECORD)
                .map(|_| {
                    let a = next() % N_TERMS as u32;
                    let b = next() % N_TERMS as u32;
                    a.min(b)
                })
                .collect();
            terms.sort_unstable();
            terms.dedup();
            terms
        })
        .collect()
}

/// Best-of-`reps` wall time of `f`.
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let owned = synthetic_record_terms();
    let record_terms: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
    let cfg = SimRankConfig::default();

    // Correctness first: one run of each, compared bit-for-bit.
    let (ref_records, ref_terms) =
        reference::bipartite_simrank_reference(&record_terms, N_TERMS, &cfg, None);
    let serial = WorkerPool::new(1);
    let flat = bipartite_simrank_pooled(&record_terms, N_TERMS, &cfg, None, &serial);
    assert_eq!(
        flat.tracked_record_pairs(),
        ref_records.len(),
        "flat kernel tracks a different record-pair universe than the oracle"
    );
    for (pair, s) in flat.record_entries() {
        assert_eq!(
            s.to_bits(),
            ref_records[&pair].to_bits(),
            "record scores diverged at {pair:?}"
        );
    }
    for (pair, s) in flat.term_entries() {
        assert_eq!(
            s.to_bits(),
            ref_terms[&pair].to_bits(),
            "term scores diverged at {pair:?}"
        );
    }
    println!(
        "bit-identity OK over {} record pairs / {} tracked term pairs",
        ref_records.len(),
        ref_terms.len()
    );

    let hashmap_s = time_min(2, || {
        std::hint::black_box(reference::bipartite_simrank_reference(
            &record_terms,
            N_TERMS,
            &cfg,
            None,
        ));
    });
    let flat_s = time_min(3, || {
        std::hint::black_box(bipartite_simrank_pooled(
            &record_terms,
            N_TERMS,
            &cfg,
            None,
            &serial,
        ));
    });
    let pool = WorkerPool::new(bench_threads());
    let pooled_s = time_min(3, || {
        std::hint::black_box(bipartite_simrank_pooled(
            &record_terms,
            N_TERMS,
            &cfg,
            None,
            &pool,
        ));
    });
    let ratio = hashmap_s / flat_s;
    println!(
        "hashmap {hashmap_s:.4}s  flat {flat_s:.4}s  speedup {ratio:.2}x  \
         (pooled {pooled_s:.4}s, {:.2}x at {} threads)",
        hashmap_s / pooled_s,
        pool.threads()
    );

    if ratio < 1.0 {
        eprintln!("FAIL: flattened SimRank slower than the HashMap reference ({ratio:.2}x)");
        std::process::exit(1);
    }
    println!("OK: flattened kernel ≥ HashMap reference");
}
