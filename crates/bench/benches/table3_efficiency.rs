//! **Table III** — Efficiency of ITER + CliqueRank.
//!
//! Per dataset: the record graph's node and edge counts, the total
//! running time of the 5-round fusion, the time spent in ITER, and the
//! speedup of CliqueRank over RSS.
//!
//! RSS's full simulation is `O(M · S · n³)` and impractical on the dense
//! Paper graph (the paper's very argument), so its running time is
//! measured on a sample of up to 2 000 edges and extrapolated linearly —
//! the per-edge cost is independent across edges, so the extrapolation
//! is exact in expectation.
//!
//! The fusion run is timed twice: once serially (`threads = 1`) and once
//! on a 4-thread shared worker pool. Both runs produce bit-identical
//! outcomes (asserted), so the reported pool speedup is a pure wall-clock
//! comparison of the same computation.
//!
//! Run: `cargo bench --bench table3_efficiency`.

use std::time::Instant;

use er_bench::{bench_datasets, fmt_duration, fusion_config, prepare, scale_factor};
use er_core::{run_rss_subset, FusionConfig, Resolver, RssConfig};
use er_graph::RecordGraph;

/// Pool size for the serial-vs-pool fusion comparison.
const POOL_THREADS: usize = 4;

/// The bench fusion configuration pinned to a specific thread count.
fn fusion_config_threads(threads: usize) -> FusionConfig {
    let mut cfg = fusion_config();
    cfg.threads = threads;
    cfg
}

fn main() {
    let scale = scale_factor();
    println!("Table III — Efficiency of ITER+CliqueRank (scale factor {scale})");
    println!(
        "Paper reference (full scale): Restaurant 858n/5,320e 1.1min (ITER 3s, 1.3x vs RSS); \
         Product 2173n/151,939e 21.6min (ITER 20s, 1.5x); \
         Paper 1865n/980,780e 24.2min (ITER 58s, 60x)\n"
    );
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>10} {:>16} {:>12} {:>12} {:>10}",
        "Dataset",
        "nodes",
        "edges",
        "total time",
        "ITER time",
        "RSS est. time",
        "speedup",
        "pool time",
        "pool spd"
    );
    println!("{}", "-".repeat(112));

    for bench in bench_datasets(scale) {
        let prepared = prepare(&bench);

        // Full fusion run, timed serially (threads = 1).
        let t0 = Instant::now();
        let outcome = Resolver::new(fusion_config_threads(1)).resolve(&prepared.graph);
        let total = t0.elapsed();

        // Same fusion on the shared worker pool; the parallel phases are
        // deterministic, so the outcome must match bit for bit.
        let t_pool = Instant::now();
        let pooled = Resolver::new(fusion_config_threads(POOL_THREADS)).resolve(&prepared.graph);
        let pool_total = t_pool.elapsed();
        assert_eq!(
            outcome.matching_probabilities, pooled.matching_probabilities,
            "pooled fusion diverged from serial on {}",
            bench.dataset.name
        );
        let pool_speedup = total.as_secs_f64() / pool_total.as_secs_f64().max(1e-9);
        let iter_time: std::time::Duration = outcome.rounds.iter().map(|r| r.iter_time).sum();
        // The paper's "edges in Gr" is the candidate graph (pairs sharing
        // >= 1 term); the admitted per-round graph is smaller.
        let edges = prepared.graph.pair_count();
        let admitted = outcome.rounds.last().map_or(0, |r| r.record_graph_edges);

        // RSS vs CliqueRank on the same graph the paper compares them
        // on: the full candidate record graph Gr (every pair sharing a
        // term, weighted by the final ITER similarities).
        let gr = RecordGraph::from_pair_scores(
            prepared.graph.record_count(),
            prepared.graph.pairs(),
            &outcome.pair_similarities,
        );
        let t_cr = Instant::now();
        let _ = er_core::run_cliquerank(&gr, &er_bench::fusion_config().cliquerank);
        let cliquerank_full = t_cr.elapsed();

        let n_edges = gr.pairs().len().max(1);
        let sample = 2000.min(n_edges);
        let stride = (n_edges / sample).max(1);
        let sampled: Vec<u32> = (0..n_edges).step_by(stride).map(|i| i as u32).collect();
        let t1 = Instant::now();
        let _ = run_rss_subset(&gr, &RssConfig::default(), &sampled);
        let rss_sample_time = t1.elapsed();
        let rss_full = rss_sample_time.mul_f64(n_edges as f64 / sampled.len() as f64);
        let speedup = rss_full.as_secs_f64() / cliquerank_full.as_secs_f64().max(1e-9);

        println!(
            "{:<12} {:>8} {:>10} {:>12} {:>10} {:>16} {:>11.1}x {:>12} {:>9.2}x   ({} admitted)",
            bench.dataset.name,
            prepared.graph.record_count(),
            edges,
            fmt_duration(total),
            fmt_duration(iter_time),
            fmt_duration(rss_full),
            speedup,
            fmt_duration(pool_total),
            pool_speedup,
            admitted
        );
    }
    println!(
        "\nNotes: speedup compares one CliqueRank pass vs RSS (extrapolated from a\n\
         <=2000-edge sample) on the same full candidate graph, as in the paper.\n\
         Our per-component block decomposition makes CliqueRank much faster than\n\
         the paper's full-matrix implementation, so absolute speedups exceed the\n\
         paper's 1.3x/1.5x/60x; the shape — RSS cost grows with per-edge walk\n\
         work while CliqueRank reuses M^(k-1) — is preserved.\n\
         'pool time'/'pool spd' re-run the same fusion on a {POOL_THREADS}-thread shared\n\
         worker pool; outcomes are asserted bit-identical, so the speedup is\n\
         wall-clock only (expect ~1x on single-core CI hosts)."
    );
}
