//! **Table III** — Efficiency of ITER + CliqueRank.
//!
//! Per dataset: the record graph's node and edge counts, the total
//! running time of the 5-round fusion, the time spent in ITER, and the
//! speedup of CliqueRank over RSS.
//!
//! RSS's full simulation is `O(M · S · n³)` and impractical on the dense
//! Paper graph (the paper's very argument), so its running time is
//! measured on a sample of up to 2 000 edges and extrapolated linearly —
//! the per-edge cost is independent across edges, so the extrapolation
//! is exact in expectation.
//!
//! The fusion run is timed twice: once serially (`threads = 1`) and once
//! on a 4-thread shared worker pool. Both runs produce bit-identical
//! outcomes (asserted), so the reported pool speedup is a pure wall-clock
//! comparison of the same computation.
//!
//! Timings come from er-obs recording snapshots, so every run in
//! **BENCH_table3.json** (override with `ER_BENCH_OUT`) carries the full
//! `er-obs/v1` report — the fusion phase span tree, pipeline counters,
//! and (for the pooled run) per-worker utilization — in the same schema
//! as `BENCH_fusion.json`.
//!
//! Run: `cargo bench --bench table3_efficiency`.

use std::time::Duration;

use er_bench::{bench_datasets, fmt_duration, fusion_config, prepare, scale_factor};
use er_core::{run_rss_subset, FusionConfig, Resolver, RssConfig};
use er_graph::RecordGraph;
use er_obs::{BenchFile, BenchRun, GaugeStat};

/// Pool size for the serial-vs-pool fusion comparison.
const POOL_THREADS: usize = 4;

/// The bench fusion configuration pinned to a specific thread count.
fn fusion_config_threads(threads: usize) -> FusionConfig {
    let mut cfg = fusion_config();
    cfg.threads = threads;
    cfg
}

/// Resets the registry, runs `f`, and freezes the snapshot into a run.
/// `dispatch_mode` reflects the pool's dispatch counters for the run
/// (`pooled` if anything fanned out, `serial-inline` otherwise).
fn recorded_run(
    label: &str,
    dataset: &str,
    mode: &str,
    threads: usize,
    f: impl FnOnce(),
) -> BenchRun {
    er_obs::reset();
    f();
    let report = er_obs::snapshot();
    let dispatch_mode = if report.counter("pool.dispatch.parallel") > 0 {
        Some("pooled".to_owned())
    } else if report.counter("pool.dispatch.serial_inline") > 0 {
        Some("serial-inline".to_owned())
    } else {
        None
    };
    BenchRun {
        label: label.to_owned(),
        dataset: dataset.to_owned(),
        mode: mode.to_owned(),
        threads: threads as u64,
        scaling_ratio: None,
        dispatch_mode,
        reduction_ratio: None,
        pair_completeness: None,
        report,
    }
}

/// Total wall time of the run's top-level `path` span as a `Duration`.
fn span_duration(run: &BenchRun, path: &str) -> Duration {
    Duration::from_nanos(run.report.span(path).map_or(0, |s| s.total_ns))
}

fn main() {
    let scale = scale_factor();
    let out_path = std::env::var("ER_BENCH_OUT").unwrap_or_else(|_| "BENCH_table3.json".to_owned());
    er_obs::set_recording(true);
    println!("Table III — Efficiency of ITER+CliqueRank (scale factor {scale})");
    println!(
        "Paper reference (full scale): Restaurant 858n/5,320e 1.1min (ITER 3s, 1.3x vs RSS); \
         Product 2173n/151,939e 21.6min (ITER 20s, 1.5x); \
         Paper 1865n/980,780e 24.2min (ITER 58s, 60x)\n"
    );
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>10} {:>16} {:>12} {:>12} {:>10}",
        "Dataset",
        "nodes",
        "edges",
        "total time",
        "ITER time",
        "RSS est. time",
        "speedup",
        "pool time",
        "pool spd"
    );
    println!("{}", "-".repeat(112));

    let mut file = BenchFile::default();
    for bench in bench_datasets(scale) {
        let prepared = prepare(&bench);
        let name = bench.dataset.name.as_str();

        // Full fusion run, timed serially (threads = 1).
        let mut outcome = None;
        let serial_run = recorded_run("table3_fusion", name, "serial", 1, || {
            outcome = Some(Resolver::new(fusion_config_threads(1)).resolve(&prepared.graph));
        });
        let outcome = outcome.expect("resolve ran");
        let total = span_duration(&serial_run, "fusion");
        let iter_time = span_duration(&serial_run, "fusion/iter");

        // Same fusion on the shared worker pool; the parallel phases are
        // deterministic, so the outcome must match bit for bit.
        let mut pooled = None;
        let mut pooled_run = recorded_run("table3_fusion", name, "pooled", POOL_THREADS, || {
            pooled =
                Some(Resolver::new(fusion_config_threads(POOL_THREADS)).resolve(&prepared.graph));
        });
        let pooled = pooled.expect("resolve ran");
        assert_eq!(
            outcome.matching_probabilities, pooled.matching_probabilities,
            "pooled fusion diverged from serial on {name}"
        );
        let pool_total = span_duration(&pooled_run, "fusion");
        let pool_speedup = total.as_secs_f64() / pool_total.as_secs_f64().max(1e-9);
        // t4/t1 on the top-level fusion span; > 1.0 means the pool made
        // the run slower (the inversion `--gate-scaling` rejects).
        if total.as_secs_f64() > 0.0 {
            pooled_run.scaling_ratio = Some(pool_total.as_secs_f64() / total.as_secs_f64());
        }
        // The paper's "edges in Gr" is the candidate graph (pairs sharing
        // >= 1 term); the admitted per-round graph is smaller.
        let edges = prepared.graph.pair_count();
        let admitted = outcome.rounds.last().map_or(0, |r| r.record_graph_edges);
        file.runs.push(serial_run);
        file.runs.push(pooled_run);

        // RSS vs CliqueRank on the same graph the paper compares them
        // on: the full candidate record graph Gr (every pair sharing a
        // term, weighted by the final ITER similarities).
        let gr = RecordGraph::from_pair_scores(
            prepared.graph.record_count(),
            prepared.graph.pairs(),
            &outcome.pair_similarities,
        );
        let mut cliquerank_run = recorded_run("table3_cliquerank", name, "full", 1, || {
            let _span = er_obs::span("cliquerank_full");
            let _ = er_core::run_cliquerank(&gr, &er_bench::fusion_config().cliquerank);
        });
        let cliquerank_full = span_duration(&cliquerank_run, "cliquerank_full");

        let n_edges = gr.pairs().len().max(1);
        let sample = 2000.min(n_edges);
        let stride = (n_edges / sample).max(1);
        let sampled: Vec<u32> = (0..n_edges).step_by(stride).map(|i| i as u32).collect();
        let mut rss_run = recorded_run("table3_rss", name, "sample", 1, || {
            let _ = run_rss_subset(&gr, &RssConfig::default(), &sampled);
        });
        let rss_sample_time = span_duration(&rss_run, "rss");
        let rss_full = rss_sample_time.mul_f64(n_edges as f64 / sampled.len() as f64);
        let speedup = rss_full.as_secs_f64() / cliquerank_full.as_secs_f64().max(1e-9);
        rss_run.report.gauges.push(GaugeStat {
            name: "rss_estimated_full_seconds".to_owned(),
            value: rss_full.as_secs_f64(),
        });
        cliquerank_run.report.gauges.push(GaugeStat {
            name: "cliquerank_speedup_vs_rss".to_owned(),
            value: speedup,
        });
        file.runs.push(cliquerank_run);
        file.runs.push(rss_run);

        println!(
            "{:<12} {:>8} {:>10} {:>12} {:>10} {:>16} {:>11.1}x {:>12} {:>9.2}x   ({} admitted)",
            name,
            prepared.graph.record_count(),
            edges,
            fmt_duration(total),
            fmt_duration(iter_time),
            fmt_duration(rss_full),
            speedup,
            fmt_duration(pool_total),
            pool_speedup,
            admitted
        );
    }
    er_obs::set_recording(false);
    println!(
        "\nNotes: speedup compares one CliqueRank pass vs RSS (extrapolated from a\n\
         <=2000-edge sample) on the same full candidate graph, as in the paper.\n\
         Our per-component block decomposition makes CliqueRank much faster than\n\
         the paper's full-matrix implementation, so absolute speedups exceed the\n\
         paper's 1.3x/1.5x/60x; the shape — RSS cost grows with per-edge walk\n\
         work while CliqueRank reuses M^(k-1) — is preserved.\n\
         'pool time'/'pool spd' re-run the same fusion on a {POOL_THREADS}-thread shared\n\
         worker pool; outcomes are asserted bit-identical, so the speedup is\n\
         wall-clock only (expect ~1x on single-core CI hosts)."
    );
    std::fs::write(&out_path, file.to_json())
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {} runs to {out_path}", file.runs.len());
}
