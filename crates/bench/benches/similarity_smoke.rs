//! **similarity_smoke** — release-mode regression gate for the batch
//! string-similarity engine.
//!
//! Times every [`SimKernel`] over one restaurant-style candidate list,
//! batch engine vs the per-pair reference path
//! ([`BatchScorer::score_pair_reference`] — fresh strings, scalar DP,
//! no memoization), on a single thread so the gate measures the
//! engine's storage/kernel wins rather than parallel fan-out. CI runs
//! this so a batching regression fails the build instead of silently
//! eating the speedup. Gates:
//!
//! * the aggregate ratio (Σ per-pair / Σ batch over all four kernels)
//!   must be ≥ 1 — the engine must never be a net loss;
//! * at least two individual kernels must be ≥ 1× — the PR's CUPS
//!   target lives on ≥ 2 kernels, and shared CI runners are too noisy
//!   to hard-gate all four.
//!
//! Batch output is asserted bit-identical to the per-pair reference
//! before any timing. Run:
//! `cargo bench -p er-bench --bench similarity_smoke`.

use std::time::Instant;

use er_datasets::{generators, RestaurantConfig};
use er_pool::WorkerPool;
use er_text::{BatchScorer, SimKernel};
use unsupervised_er::pipeline;

/// Best-of-`reps` wall time of `f`.
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let dataset = generators::restaurant::generate(&RestaurantConfig {
        records: 400,
        duplicate_pairs: 60,
        seed: 17,
    });
    let prepared = pipeline::prepare(&dataset);
    let scorer = BatchScorer::new(&prepared.corpus);
    let idx: Vec<(u32, u32)> = prepared.graph.pairs().iter().map(|p| (p.a, p.b)).collect();
    let cells = scorer.cells(&idx);
    let pool = WorkerPool::new(1);
    println!(
        "similarity_smoke — {} pairs, {cells} DP cells, single thread",
        idx.len()
    );

    let mut total_per_pair = 0.0;
    let mut total_batch = 0.0;
    let mut kernels_ok = 0usize;
    for kernel in SimKernel::ALL {
        let mut oracle = vec![0.0f64; idx.len()];
        for (v, &(a, b)) in oracle.iter_mut().zip(&idx) {
            *v = scorer.score_pair_reference(kernel, a, b);
        }
        let mut out = vec![0.0f64; idx.len()];
        scorer.score_into(kernel, &idx, &mut out, &pool);
        let ob: Vec<u64> = oracle.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            ob,
            bb,
            "{}: batch engine diverged from the per-pair reference",
            kernel.name()
        );

        let per_pair_s = time_min(3, || {
            for (v, &(a, b)) in oracle.iter_mut().zip(&idx) {
                *v = scorer.score_pair_reference(kernel, a, b);
            }
        });
        let batch_s = time_min(3, || {
            scorer.score_into(kernel, &idx, &mut out, &pool);
        });
        let ratio = per_pair_s / batch_s;
        total_per_pair += per_pair_s;
        total_batch += batch_s;
        if ratio >= 1.0 {
            kernels_ok += 1;
        }
        println!(
            "  {:<15} per-pair {per_pair_s:.4}s  batch {batch_s:.4}s  speedup {ratio:.2}x",
            kernel.name()
        );
    }

    let aggregate = total_per_pair / total_batch;
    println!(
        "aggregate: per-pair {total_per_pair:.4}s  batch {total_batch:.4}s  ({aggregate:.2}x)"
    );
    if aggregate < 1.0 {
        eprintln!("FAIL: batch engine slower than per-pair in aggregate ({aggregate:.2}x)");
        std::process::exit(1);
    }
    if kernels_ok < 2 {
        eprintln!("FAIL: only {kernels_ok}/4 kernels at ≥ 1x batch speedup");
        std::process::exit(1);
    }
    println!("OK: batch ≥ per-pair in aggregate and on {kernels_ok}/4 kernels");
}
