//! **Ablation** — the design choices DESIGN.md §6 calls out.
//!
//! For each dataset, fusion F1 with one component changed at a time:
//!
//! * full defaults (Eq. 15 recurrence, boost on, neighbor mask on,
//!   2-shared-term admission, reciprocal normalization);
//! * `no boost` — the bonus of Eq. 12 disabled (the big-clique failure);
//! * `no mask` — the `⊙ Mn` early-stop mask disabled;
//! * `first-passage` — the RSS-faithful recurrence instead of Eq. 15;
//! * `1 shared term` — the paper's raw edge admission;
//! * `L2 norm` — ITER's alternative normalization;
//! * `1 round` — no reinforcement.
//!
//! Run: `cargo bench --bench ablation_components`.

use er_bench::{bench_datasets, fusion_config, scale_factor};
use er_core::config::Recurrence;
use er_core::{BoostMode, FusionConfig, Normalization, Resolver};
use er_eval::evaluate_pairs;

fn main() {
    let scale = scale_factor();
    println!("Ablation — component contributions (scale factor {scale})");

    type Tweak = Box<dyn Fn(&mut FusionConfig)>;
    let variants: Vec<(&str, Tweak)> = vec![
        ("full defaults", Box::new(|_: &mut FusionConfig| {})),
        (
            "no boost",
            Box::new(|c: &mut FusionConfig| c.cliquerank.boost = BoostMode::Off),
        ),
        (
            "no neighbor mask",
            Box::new(|c: &mut FusionConfig| c.cliquerank.neighbor_mask = false),
        ),
        (
            "first-passage",
            Box::new(|c: &mut FusionConfig| c.cliquerank.recurrence = Recurrence::FirstPassage),
        ),
        (
            "1 shared term",
            Box::new(|c: &mut FusionConfig| c.min_shared_terms = 1),
        ),
        (
            "L2 normalization",
            Box::new(|c: &mut FusionConfig| c.iter.normalization = Normalization::L2),
        ),
        ("1 round", Box::new(|c: &mut FusionConfig| c.rounds = 1)),
    ];

    print!("{:<20}", "Variant");
    let benches = bench_datasets(scale);
    for b in &benches {
        print!(" {:>12}", b.dataset.name);
    }
    println!();
    println!("{}", "-".repeat(20 + benches.len() * 13));

    let prepared: Vec<_> = benches.iter().map(er_bench::prepare).collect();
    for (name, tweak) in &variants {
        print!("{name:<20}");
        for p in &prepared {
            let mut cfg = fusion_config();
            tweak(&mut cfg);
            let outcome = Resolver::new(cfg).resolve(&p.graph);
            let f1 = evaluate_pairs(outcome.matches.iter().copied(), &p.truth).f1();
            print!(" {f1:>12.3}");
        }
        println!();
    }
    println!(
        "\nReading guide: 'no boost' must crater the Paper column (big cliques need\n\
         the bonus, §VI-B); '1 shared term' admits weak single-term coincidences;\n\
         'first-passage' is the RSS-exact recurrence (conservative in big cliques);\n\
         '1 round' shows the reinforcement gap of Table V."
    );
}
