//! **bench_blocking** — candidate-generation scaling curves on the
//! census dataset.
//!
//! Runs capped token blocking, banding LSH and the meta-blocking
//! pipeline over a ladder of census sizes (100 k → 1 M records at
//! `ER_SCALE=paper`) and records, per run: wall time, candidate count,
//! candidates-per-record, reduction ratio and pair completeness. The
//! quality metrics land in the BenchFile schema as first-class
//! `reduction_ratio` / `pair_completeness` run fields, so
//! `cargo xtask bench-diff` tracks them release to release
//! (`BENCH_blocking.json`).
//!
//! The acceptance bar of the blocking layer is printed as a summary:
//! the meta strategy's candidates-per-record must stay within 2× across
//! the ladder (near-linear growth) at ≥ 0.95 pair completeness.
//! `blocking_smoke` enforces the same invariant as a CI gate at smoke
//! sizes; this harness measures the full curve.
//!
//! Run: `ER_SCALE=paper cargo bench -p er-bench --bench bench_blocking`.

use std::time::Instant;

use er_bench::{bench_threads, fmt_duration, print_header, scale_factor};
use er_datasets::generators::census;
use er_datasets::CensusConfig;
use er_obs::{BenchFile, BenchRun};
use er_pool::WorkerPool;
use er_text::blocking::{reduction_ratio, BlockingStrategy, MetaBlocking};
use er_text::{CorpusBuilder, LshParams, MetaConfig};
use unsupervised_er::pipeline::DEFAULT_MAX_DF_FRACTION;

/// The size ladder, in records (scaled by `ER_SCALE`).
const SIZES: [usize; 3] = [100_000, 316_000, 1_000_000];

/// The strategies under measurement.
fn strategies() -> Vec<(&'static str, BlockingStrategy)> {
    let lsh = LshParams::for_threshold(0.5, 64);
    vec![
        ("token", BlockingStrategy::Token { max_block_size: 64 }),
        (
            "lsh",
            BlockingStrategy::Lsh {
                params: lsh,
                max_block_size: 128,
            },
        ),
        (
            "meta",
            BlockingStrategy::Meta(MetaBlocking {
                token_blocks: true,
                lsh: Some(lsh),
                config: MetaConfig::default(),
            }),
        ),
    ]
}

/// Fraction of ground-truth pairs present in the sorted candidate list.
fn pair_completeness(candidates: &[(u32, u32)], truth: &[(u32, u32)]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let found = truth
        .iter()
        .filter(|p| candidates.binary_search(p).is_ok())
        .count();
    found as f64 / truth.len() as f64
}

fn main() {
    let scale = scale_factor();
    let threads = bench_threads();
    let out_path =
        std::env::var("ER_BENCH_OUT").unwrap_or_else(|_| "BENCH_blocking.json".to_owned());
    er_obs::set_recording(true);
    let pool = WorkerPool::new(threads);
    println!("BENCH_blocking — candidate generation at scale factor {scale}, {threads} threads");
    print_header(
        "blocking",
        &[
            ("records", 9),
            ("strategy", 10),
            ("time", 9),
            ("candidates", 12),
            ("cand/rec", 9),
            ("red.ratio", 10),
            ("pair-compl", 10),
        ],
    );

    let mut file = BenchFile::default();
    let mut meta_curve: Vec<(usize, f64, f64)> = Vec::new();
    for base in SIZES {
        let n = er_datasets::scaled(base, scale);
        let dataset = census::generate(&CensusConfig {
            records: n,
            duplicate_rate: 0.2,
            seed: 0xCE_0505,
        });
        let corpus = CorpusBuilder::new()
            .extend_texts(dataset.texts())
            .max_df_fraction(DEFAULT_MAX_DF_FRACTION)
            .build();
        let mut truth: Vec<(u32, u32)> = dataset
            .matching_pairs()
            .iter()
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        truth.sort_unstable();

        for (mode, strategy) in strategies() {
            er_obs::reset();
            let t = Instant::now();
            let pairs = strategy.candidate_pairs(&corpus, &pool);
            let elapsed = t.elapsed();
            let report = er_obs::snapshot();
            let dispatch_mode = if report.counter("pool.dispatch.parallel") > 0 {
                Some("pooled".to_owned())
            } else if report.counter("pool.dispatch.serial_inline") > 0 {
                Some("serial-inline".to_owned())
            } else {
                None
            };
            let rr = reduction_ratio(n, pairs.len());
            let pc = pair_completeness(&pairs, &truth);
            let cpr = pairs.len() as f64 / n as f64;
            println!(
                "{:<9} {:<10} {:<9} {:<12} {:<9.2} {:<10.6} {:<10.4}",
                n,
                mode,
                fmt_duration(elapsed),
                pairs.len(),
                cpr,
                rr,
                pc
            );
            if mode == "meta" {
                meta_curve.push((n, cpr, pc));
            }
            file.runs.push(BenchRun {
                label: "blocking".to_owned(),
                dataset: format!("n{base}"),
                mode: mode.to_owned(),
                threads: threads as u64,
                scaling_ratio: None,
                dispatch_mode,
                reduction_ratio: Some(rr),
                pair_completeness: Some(pc),
                report,
            });
        }
    }

    // Acceptance summary for the meta strategy: candidates-per-record
    // within 2× across the ladder, pair completeness ≥ 0.95 everywhere.
    let cpr_min = meta_curve.iter().map(|c| c.1).fold(f64::INFINITY, f64::min);
    let cpr_max = meta_curve.iter().map(|c| c.1).fold(0.0f64, f64::max);
    let pc_min = meta_curve.iter().map(|c| c.2).fold(f64::INFINITY, f64::min);
    let growth = if cpr_min > 0.0 {
        cpr_max / cpr_min
    } else {
        1.0
    };
    println!(
        "meta: candidates-per-record spread {growth:.2}x across {} sizes, min pair-completeness {pc_min:.4}",
        meta_curve.len()
    );
    if growth > 2.0 {
        eprintln!("FAIL: meta candidates-per-record grew {growth:.2}x (> 2x) across the ladder");
        std::process::exit(1);
    }
    if pc_min < 0.95 {
        eprintln!("FAIL: meta pair completeness dropped to {pc_min:.4} (< 0.95)");
        std::process::exit(1);
    }

    std::fs::write(&out_path, file.to_json()).expect("write BENCH_blocking.json");
    println!("wrote {out_path} ({} runs)", file.runs.len());
}
