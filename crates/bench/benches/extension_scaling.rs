//! **Extension** — runtime scaling with dataset size.
//!
//! The paper argues CliqueRank makes the framework "efficient in
//! practice with the potential to resolve datasets with larger scale"
//! (§VII-D). This bench runs the full fusion at a geometric ladder of
//! dataset sizes and reports wall time per phase, so the growth rate is
//! visible directly (ITER is linear in bipartite edges; CliqueRank is
//! cubic in the largest component, tamed by the block decomposition and
//! the sparse kernel).
//!
//! Run: `cargo bench --bench extension_scaling`.

use std::time::Instant;

use er_bench::{fmt_duration, fusion_config, scale_factor};
use er_core::Resolver;
use er_datasets::{generators, PaperConfig, RestaurantConfig};
use er_eval::evaluate_pairs;
use unsupervised_er::pipeline;

fn main() {
    let base = scale_factor();
    println!("Extension — fusion runtime vs dataset scale (base factor {base})");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "dataset", "records", "cand.pairs", "Gr edges", "ITER time", "CR time", "F1"
    );
    println!("{}", "-".repeat(80));
    for rel in [0.25, 0.5, 1.0] {
        let scale = base * rel;
        for which in ["restaurant", "paper"] {
            let (dataset, cap) = match which {
                "restaurant" => (
                    generators::restaurant::generate(&RestaurantConfig::default().scaled(scale)),
                    0.035,
                ),
                _ => (
                    generators::paper::generate(&PaperConfig::default().scaled(scale)),
                    0.15,
                ),
            };
            let prepared = pipeline::prepare_with(&dataset, cap);
            let t0 = Instant::now();
            let outcome = Resolver::new(fusion_config()).resolve(&prepared.graph);
            let _total = t0.elapsed();
            let iter_time: std::time::Duration = outcome.rounds.iter().map(|r| r.iter_time).sum();
            let cr_time: std::time::Duration =
                outcome.rounds.iter().map(|r| r.cliquerank_time).sum();
            let f1 = evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth).f1();
            println!(
                "{:<12} {:>8} {:>10} {:>10} {:>12} {:>12} {:>8.3}",
                format!("{which}@{rel}"),
                dataset.len(),
                prepared.graph.pair_count(),
                outcome.rounds.last().map_or(0, |r| r.record_graph_edges),
                fmt_duration(iter_time),
                fmt_duration(cr_time),
                f1
            );
        }
    }
    println!(
        "\nITER grows linearly with candidate pairs; CliqueRank with the cube of the\n\
         largest admitted component (density-dependent). Accuracy is stable across\n\
         scales — the framework does not rely on corpus size."
    );
}
