//! **bench_serve** — sustained-ingest throughput and concurrent query
//! latency of the streaming serving engine.
//!
//! Drives `er-serve` with the census generator: records are ingested in
//! micro-batches with a resolve after each batch (the serving steady
//! state), while a concurrent reader thread hammers a [`QueryHandle`]
//! with match-probability lookups the whole time. Per corpus size the
//! harness records, into the shared BenchFile schema
//! (`BENCH_serve.json`):
//!
//! * ingest throughput (records/s, wall clock over the whole stream
//!   including every incremental resolve),
//! * query latency percentiles (p50/p95/p99, µs) under ingest load,
//! * the warm incremental resolve time after a single-record ingest
//!   versus the cold from-scratch batch resolve of the same corpus —
//!   the incremental speedup the component cache buys.
//!
//! The serving regime runs 2 reinforcement rounds (latency-oriented;
//! the paper-accuracy regime of 5 rounds is measured by
//! `bench_fusion`).
//!
//! Run: `ER_SCALE=ci cargo bench -p er-bench --bench bench_serve`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use er_bench::{bench_threads, fmt_duration, print_header, scale_factor};
use er_datasets::generators::census;
use er_datasets::CensusConfig;
use er_obs::{BenchFile, BenchRun};
use er_serve::{resolve_batch, ServeConfig, ServeEngine};
use er_text::BlockingStrategy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The size ladder, in records (scaled by `ER_SCALE`).
const SIZES: [usize; 2] = [10_000, 30_000];

/// Micro-batches per stream: one resolve after each.
const BATCHES: usize = 10;

/// Query-latency samples kept per run (the reader keeps querying once
/// the buffer is full; only recording stops).
const MAX_SAMPLES: usize = 1_000_000;

fn serve_config(threads: usize) -> ServeConfig {
    let mut config = ServeConfig {
        strategy: BlockingStrategy::meta_default(),
        ..ServeConfig::default()
    };
    config.fusion.threads = threads;
    config.fusion.rounds = 2;
    config
}

/// The `p`-quantile of sorted nanosecond samples, in microseconds.
fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[i] as f64 / 1_000.0
}

fn main() {
    let scale = scale_factor();
    let threads = bench_threads();
    let out_path = std::env::var("ER_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_owned());
    er_obs::set_recording(true);
    println!("BENCH_serve — sustained ingest + concurrent queries at scale factor {scale}, {threads} threads");
    print_header(
        "serve",
        &[
            ("records", 9),
            ("ingest", 9),
            ("rec/s", 9),
            ("p50", 9),
            ("p95", 9),
            ("p99", 9),
            ("warm", 9),
            ("batch", 9),
            ("speedup", 8),
        ],
    );

    let mut file = BenchFile::default();
    for base in SIZES {
        let n = er_datasets::scaled(base, scale);
        let dataset = census::generate(&CensusConfig {
            records: n,
            duplicate_rate: 0.2,
            seed: 0xCE_0505,
        });
        let texts: Vec<String> = dataset.texts().map(str::to_owned).collect();

        er_obs::reset();
        let mut engine = ServeEngine::new(serve_config(threads));

        // Concurrent reader: random match-probability lookups against
        // the freshest snapshot for the whole lifetime of the stream.
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let mut handle = engine.query_handle();
            let stop = Arc::clone(&stop);
            let n = n as u32;
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x5EED);
                let mut samples: Vec<u64> = Vec::with_capacity(MAX_SAMPLES.min(1 << 20));
                let mut queries = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let a = rng.random_range(0..n);
                    let b = rng.random_range(0..n);
                    let t = Instant::now();
                    let _ = handle.match_probability(a, b);
                    let nanos = t.elapsed().as_nanos() as u64;
                    queries += 1;
                    if samples.len() < MAX_SAMPLES {
                        samples.push(nanos);
                    }
                }
                (samples, queries)
            })
        };

        // Sustained ingest: micro-batches with a resolve after each.
        let batch = n.div_ceil(BATCHES);
        let ingest_start = Instant::now();
        for chunk in texts.chunks(batch) {
            engine.ingest_batch(chunk.iter().map(String::as_str));
            engine.resolve();
        }
        let ingest_elapsed = ingest_start.elapsed();
        stop.store(true, Ordering::Relaxed);
        let (mut samples, queries) = reader.join().expect("reader thread");
        samples.sort_unstable();

        // Warm incremental resolve (one more record) vs cold batch.
        engine.ingest("warm resolve probe record");
        let t = Instant::now();
        engine.resolve();
        let warm = t.elapsed();
        let mut all_texts = texts.clone();
        all_texts.push("warm resolve probe record".to_owned());
        let t = Instant::now();
        let batch_snap = resolve_batch(all_texts.iter().cloned(), engine.config());
        let cold = t.elapsed();
        assert!(
            engine.snapshot().bitwise_eq(&batch_snap),
            "incremental and batch resolution diverged at n={n}"
        );

        let throughput = n as f64 / ingest_elapsed.as_secs_f64();
        let (p50, p95, p99) = (
            percentile_us(&samples, 0.50),
            percentile_us(&samples, 0.95),
            percentile_us(&samples, 0.99),
        );
        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        er_obs::gauge_set("serve.ingest_throughput_rps", throughput);
        er_obs::gauge_set("serve.query_p50_us", p50);
        er_obs::gauge_set("serve.query_p95_us", p95);
        er_obs::gauge_set("serve.query_p99_us", p99);
        er_obs::gauge_set("serve.queries_under_load", queries as f64);
        er_obs::gauge_set("serve.warm_resolve_ms", warm.as_secs_f64() * 1_000.0);
        er_obs::gauge_set("serve.batch_resolve_ms", cold.as_secs_f64() * 1_000.0);
        er_obs::gauge_set("serve.incremental_speedup", speedup);
        let report = er_obs::snapshot();
        let dispatch_mode = if report.counter("pool.dispatch.parallel") > 0 {
            Some("pooled".to_owned())
        } else if report.counter("pool.dispatch.serial_inline") > 0 {
            Some("serial-inline".to_owned())
        } else {
            None
        };
        println!(
            "{:<9} {:<9} {:<9.0} {:<9.1} {:<9.1} {:<9.1} {:<9} {:<9} {:<8.2}",
            n,
            fmt_duration(ingest_elapsed),
            throughput,
            p50,
            p95,
            p99,
            fmt_duration(warm),
            fmt_duration(cold),
            speedup,
        );
        file.runs.push(BenchRun {
            label: "serve".to_owned(),
            dataset: format!("n{base}"),
            mode: "meta".to_owned(),
            threads: threads as u64,
            scaling_ratio: None,
            dispatch_mode,
            reduction_ratio: None,
            pair_completeness: None,
            report,
        });
    }

    std::fs::write(&out_path, file.to_json()).expect("write BENCH_serve.json");
    println!("wrote {out_path} ({} runs)", file.runs.len());
}
