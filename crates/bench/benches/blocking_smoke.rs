//! **blocking_smoke** — CI gate for candidate-generation scaling and
//! recall.
//!
//! Runs the meta-blocking strategy (token blocks + banding LSH →
//! purge/filter/prune) on two fixed census sizes and fails the build
//! when either invariant breaks:
//!
//! 1. **Near-linear growth** — candidates-per-record at 60 k records
//!    must stay within 2× of the 20 k value. A quadratic (or
//!    superlinear) regression in blocking shows up here immediately
//!    because the census generator pins per-term block sizes across
//!    scales.
//! 2. **Recall floor** — pair completeness ≥ 0.95 at both sizes: the
//!    pruning pipeline must not buy its reduction ratio with missed
//!    duplicates.
//!
//! Sizes are fixed (no `ER_SCALE`) so the gate is comparable across CI
//! runs. Exits non-zero on failure, like the other `*_smoke` targets.

use std::time::Instant;

use er_bench::{bench_threads, fmt_duration};
use er_datasets::generators::census;
use er_datasets::CensusConfig;
use er_pool::WorkerPool;
use er_text::blocking::{reduction_ratio, BlockingStrategy};
use er_text::CorpusBuilder;
use unsupervised_er::pipeline::DEFAULT_MAX_DF_FRACTION;

const SIZES: [usize; 2] = [20_000, 60_000];
const MAX_GROWTH: f64 = 2.0;
const MIN_COMPLETENESS: f64 = 0.95;

fn main() {
    let pool = WorkerPool::new(bench_threads());
    let strategy = BlockingStrategy::meta_default();
    println!("blocking_smoke — meta-blocking scaling + recall gate");

    let mut curve: Vec<(usize, f64, f64)> = Vec::new();
    for n in SIZES {
        let dataset = census::generate(&CensusConfig {
            records: n,
            duplicate_rate: 0.2,
            seed: 0xCE_0505,
        });
        let corpus = CorpusBuilder::new()
            .extend_texts(dataset.texts())
            .max_df_fraction(DEFAULT_MAX_DF_FRACTION)
            .build();
        let mut truth = dataset.matching_pairs();
        truth.sort_unstable();

        let t = Instant::now();
        let pairs = strategy.candidate_pairs(&corpus, &pool);
        let elapsed = t.elapsed();
        let found = truth
            .iter()
            .filter(|p| pairs.binary_search(p).is_ok())
            .count();
        let pc = found as f64 / truth.len() as f64;
        let cpr = pairs.len() as f64 / n as f64;
        println!(
            "  n={n:<6} candidates={:<9} cand/rec={cpr:<7.2} red.ratio={:<9.6} pair-compl={pc:.4} ({})",
            pairs.len(),
            reduction_ratio(n, pairs.len()),
            fmt_duration(elapsed)
        );
        curve.push((n, cpr, pc));
    }

    let growth = curve[1].1 / curve[0].1;
    println!(
        "  cand/rec growth {}k -> {}k: {growth:.2}x",
        SIZES[0] / 1000,
        SIZES[1] / 1000
    );
    let mut failed = false;
    if growth > MAX_GROWTH {
        eprintln!(
            "FAIL: candidates-per-record grew {growth:.2}x from {} to {} records (max {MAX_GROWTH}x) — blocking is superlinear",
            SIZES[0], SIZES[1]
        );
        failed = true;
    }
    for &(n, _, pc) in &curve {
        if pc < MIN_COMPLETENESS {
            eprintln!(
                "FAIL: pair completeness {pc:.4} at n={n} is below the {MIN_COMPLETENESS} floor — pruning is dropping duplicates"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("blocking_smoke OK");
}
