//! **Extension** — pairwise vs transitive-closure evaluation.
//!
//! Entity resolution's deliverable is a clustering; this bench scores
//! every unsupervised method under both protocols: the paper's pairwise
//! F1 (optimal threshold for baselines, fixed η for fusion) and the
//! transitive-closure pairwise F1 (closure-aware optimal threshold for
//! baselines, union-find clusters for fusion). Closure rewards methods
//! whose confident edges span true clusters and punishes false bridges
//! quadratically — the comparison shows which methods produce
//! *clusterable* decisions rather than merely well-ranked pairs.
//!
//! Run: `cargo bench --bench extension_closure`.

use er_baselines::{HybridScorer, JaccardScorer, PairScorer, TfIdfScorer, TwIdfScorer};
use er_bench::{bench_datasets, fusion_config, prepare, scale_factor, scored_pairs};
use er_core::Resolver;
use er_eval::{clusters_to_pairs, evaluate_pairs, sweep_threshold, sweep_threshold_closure};
use unsupervised_er::pipeline;

fn main() {
    let scale = scale_factor();
    println!("Extension — pairwise vs transitive-closure F1 (scale factor {scale})");
    for bench in bench_datasets(scale) {
        let prepared = prepare(&bench);
        let labels = pipeline::entity_labels(&bench.dataset);
        let pairs = prepared.graph.pairs().to_vec();
        println!("\n[{}]", bench.dataset.name);
        println!(
            "{:<22} {:>12} {:>12} {:>10}",
            "method", "pairwise F1", "closure F1", "delta"
        );
        println!("{}", "-".repeat(60));

        let scorers: Vec<Box<dyn PairScorer>> = vec![
            Box::new(JaccardScorer),
            Box::new(TfIdfScorer),
            Box::new(TwIdfScorer::default()),
            Box::new(HybridScorer::default()),
        ];
        for scorer in &scorers {
            let scores = scorer.score_pairs(&prepared.corpus, &pairs);
            let scored = scored_pairs(&pairs, &scores);
            let pairwise = sweep_threshold(&scored, &prepared.truth, 1000);
            let closure = sweep_threshold_closure(&scored, &labels, 1000);
            println!(
                "{:<22} {:>12.3} {:>12.3} {:>+10.3}",
                scorer.name(),
                pairwise.f1,
                closure.f1,
                closure.f1 - pairwise.f1
            );
        }

        let outcome = Resolver::new(fusion_config()).resolve(&prepared.graph);
        let pairwise = evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth).f1();
        let closure = evaluate_pairs(clusters_to_pairs(&outcome.clusters), &prepared.truth).f1();
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>+10.3}",
            "ITER+CliqueRank",
            pairwise,
            closure,
            closure - pairwise
        );
    }
    println!(
        "\nNotes: baselines sweep the closure-optimal threshold (an upper bound they\n\
         get and the fixed-η fusion framework does not); fusion's closure column is\n\
         the transitive closure of its η = 0.98 matches."
    );
}
