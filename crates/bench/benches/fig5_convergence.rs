//! **Figure 5** — Convergence of ITER.
//!
//! Plots (as an ASCII chart) the total weight update per ITER iteration
//! for the first fusion round on each dataset: a sharp early peak from
//! the random initialization, then rapid convergence — the paper's
//! Figure 5 pattern.
//!
//! Run: `cargo bench --bench fig5_convergence`.

use er_bench::{bench_datasets, prepare, scale_factor};
use er_core::{run_iter, IterConfig};

fn main() {
    let scale = scale_factor();
    println!("Figure 5 — Convergence of ITER (scale factor {scale})");
    for bench in bench_datasets(scale) {
        let prepared = prepare(&bench);
        let out = run_iter(
            &prepared.graph,
            &vec![1.0; prepared.graph.pair_count()],
            &IterConfig {
                max_iterations: 20,
                tolerance: 0.0, // run all 20 iterations like the figure
                ..Default::default()
            },
        );
        println!(
            "\n[{}] L1 weight update per iteration (first 20):",
            bench.dataset.name
        );
        let max = out
            .deltas
            .iter()
            .copied()
            .fold(f64::MIN, f64::max)
            .max(1e-12);
        for (i, &d) in out.deltas.iter().enumerate() {
            let bar = "#".repeat(((d / max) * 50.0).round() as usize);
            println!("  iter {:>2}: {:>12.4} {}", i + 1, d, bar);
        }
        // The figure's claim: a sharp peak within the first few
        // iterations, then monotone-ish decay to near zero.
        let peak = out
            .deltas
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map_or(0, |(i, _)| i);
        let tail = out.deltas.last().copied().unwrap_or(0.0);
        println!(
            "  peak at iteration {}, final update {:.2e} ({}x below peak)",
            peak + 1,
            tail,
            (max / tail.max(1e-300)) as u64
        );
    }
}
