//! **Table IV** — Spearman's rank correlation between learned term
//! weights and the ground-truth discriminativeness `score(t)` (§VII-E).
//!
//! `score(t)` is the fraction of term `t`'s incident record pairs that
//! truly match. A good term-weighting scheme ranks terms the same way;
//! the paper contrasts PageRank (near-zero correlation — hub salience is
//! not discrimination power) with ITER (0.76–0.96).
//!
//! The per-term ground-truth pass runs on the shared worker pool
//! (`ER_THREADS` workers); each term is independent, so the pooled fill
//! matches the serial loop exactly.
//!
//! Run: `cargo bench --bench table4_spearman`.

use er_baselines::TwIdfScorer;
use er_bench::{bench_datasets, bench_threads, prepare, scale_factor};
use er_core::{run_iter, IterConfig};
use er_eval::{spearman_rho, term_discriminativeness};
use er_pool::WorkerPool;

fn main() {
    let scale = scale_factor();
    let pool = WorkerPool::new(bench_threads());
    println!("Table IV — Spearman's rank correlation coefficient (scale factor {scale})");
    println!("{:<12} {:>16} {:>16}", "Dataset", "PageRank", "ITER");
    println!("{}", "-".repeat(60));
    let paper_ref = [(0.30, 0.96), (0.02, 0.76), (0.08, 0.80)];

    for (bench, (ref_pr, ref_iter)) in bench_datasets(scale).into_iter().zip(paper_ref) {
        let prepared = prepare(&bench);
        let graph = &prepared.graph;
        let truth = &prepared.truth;

        // Ground truth score(t) per term (None when P_t = 0), fanned out
        // over term chunks: each term's score is independent and each
        // chunk writes a disjoint subslice, so the pooled fill is
        // identical to the serial loop at any thread count.
        let score_of = |t: u32| {
            let pairs: Vec<(u32, u32)> = graph
                .pairs_of_term(t)
                .iter()
                .map(|&p| {
                    let pair = graph.pair(p);
                    (pair.a, pair.b)
                })
                .collect();
            term_discriminativeness(&pairs, |a, b| truth.is_match(a, b))
        };
        let mut scores: Vec<Option<f64>> = vec![None; graph.term_count()];
        if pool.is_serial() {
            for (t, s) in scores.iter_mut().enumerate() {
                *s = score_of(t as u32);
            }
        } else {
            let ranges = er_pool::chunk_ranges(scores.len(), pool.threads(), 64);
            pool.scope(|sc| {
                let mut rest = scores.as_mut_slice();
                for r in ranges {
                    let (chunk, tail) = rest.split_at_mut(r.len());
                    rest = tail;
                    let start = r.start;
                    let score_of = &score_of;
                    sc.submit(move || {
                        for (k, s) in chunk.iter_mut().enumerate() {
                            *s = score_of((start + k) as u32);
                        }
                    });
                }
            });
        }

        // ITER weights (first fusion round: uniform p).
        let iter_out = run_iter(
            graph,
            &vec![1.0; graph.pair_count()],
            &IterConfig::default(),
        );
        // PageRank (TW-IDF) term salience on the co-occurrence graph.
        let pagerank = TwIdfScorer::default().term_salience(&prepared.corpus);

        // Restrict the correlation to terms with a defined score(t).
        let mut gt = Vec::new();
        let mut w_iter = Vec::new();
        let mut w_pr = Vec::new();
        for (t, s) in scores.iter().enumerate() {
            if let Some(s) = s {
                gt.push(*s);
                w_iter.push(iter_out.term_weights[t]);
                w_pr.push(pagerank[t]);
            }
        }
        let rho_iter = spearman_rho(&w_iter, &gt);
        let rho_pr = spearman_rho(&w_pr, &gt);
        println!(
            "{:<12} {:>8.3} [{:>4.2}] {:>8.3} [{:>4.2}]   ({} scored terms)",
            bench.dataset.name,
            rho_pr,
            ref_pr,
            rho_iter,
            ref_iter,
            gt.len()
        );
    }
    println!("\nPaper values in brackets. ITER must correlate strongly; PageRank weakly.");
}
