//! # er-bench
//!
//! Shared infrastructure for the benchmark targets that regenerate every
//! table and figure of the paper's evaluation section (see DESIGN.md §5
//! for the experiment index and EXPERIMENTS.md for recorded runs).
//!
//! Every bench target is a `harness = false` binary that prints the
//! paper-reported values next to the measured ones. The workload scale is
//! controlled by the `ER_SCALE` environment variable:
//!
//! * `ER_SCALE=ci` (default) — 40 % of paper scale, sized for a
//!   single-core CI box;
//! * `ER_SCALE=paper` — the full 858 / 2173 / 1865-record datasets;
//! * `ER_SCALE=<float>` — any custom factor.

#![deny(unsafe_code)]

use std::time::Duration;

use er_core::FusionConfig;
use er_datasets::{generators, Dataset, PaperConfig, ProductConfig, RestaurantConfig};
use er_eval::TruthPairs;
use er_graph::bipartite::PairNode;
use er_text::Corpus;
use unsupervised_er::pipeline::{self, Prepared};

/// Worker-thread count for pooled bench paths: `ER_THREADS` if set (the
/// knob CI already uses for the fusion benches), else the machine's
/// available parallelism. Every pooled path is bit-identical to its
/// serial twin, so this only moves wall clock, never results.
pub fn bench_threads() -> usize {
    std::env::var("ER_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or_else(er_core::default_threads, |t| t.max(1))
}

/// Workload scale factor from `ER_SCALE` (see crate docs).
pub fn scale_factor() -> f64 {
    match std::env::var("ER_SCALE").as_deref() {
        Ok("paper") => 1.0,
        Ok("ci") | Err(_) => 0.4,
        Ok(other) => other
            .parse()
            .unwrap_or_else(|_| panic!("ER_SCALE must be 'ci', 'paper' or a float, got {other:?}")),
    }
}

/// One benchmark dataset with its preprocessing cap and paper-reported
/// reference F1 values (Table II).
#[derive(Debug)]
pub struct BenchDataset {
    /// The generated dataset.
    pub dataset: Dataset,
    /// Frequent-term cap used for this benchmark. Mirrors the paper's
    /// per-dataset preprocessing: the Restaurant record graph is very
    /// sparse (aggressive filtering), while the Paper/Cora graph retains
    /// mid-frequency venue terms and the giant cluster's anchors
    /// (df ≈ 0.10 of the corpus), so its cap must exceed that.
    pub max_df_fraction: f64,
    /// Paper-reported F1 of ITER+CliqueRank on the real benchmark.
    pub paper_fusion_f1: f64,
}

/// Builds the three benchmark datasets at the given scale.
pub fn bench_datasets(scale: f64) -> Vec<BenchDataset> {
    vec![
        BenchDataset {
            dataset: generators::restaurant::generate(&RestaurantConfig::default().scaled(scale)),
            max_df_fraction: 0.035,
            paper_fusion_f1: 0.927,
        },
        BenchDataset {
            dataset: generators::product::generate(&ProductConfig::default().scaled(scale)),
            max_df_fraction: 0.05,
            paper_fusion_f1: 0.764,
        },
        BenchDataset {
            dataset: generators::paper::generate(&PaperConfig::default().scaled(scale)),
            max_df_fraction: 0.15,
            paper_fusion_f1: 0.890,
        },
    ]
}

/// Prepares a bench dataset (tokenize + candidate graph + truth).
pub fn prepare(bench: &BenchDataset) -> Prepared {
    pipeline::prepare_with(&bench.dataset, bench.max_df_fraction)
}

/// The fusion configuration used across benches: paper defaults
/// (α = 20, S = 20, η = 0.98, 5 rounds) with the machine's thread count.
pub fn fusion_config() -> FusionConfig {
    FusionConfig::default()
}

/// Formats a `Duration` compactly ("1.2s", "340ms").
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 60.0 {
        format!("{:.1}min", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.1}s")
    } else {
        format!("{:.0}ms", secs * 1000.0)
    }
}

/// Prints a table header and underline.
pub fn print_header(title: &str, columns: &[(&str, usize)]) {
    println!("\n== {title}");
    let mut line = String::new();
    for (name, width) in columns {
        line.push_str(&format!("{name:<width$}  "));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(100)));
}

/// Helper bundling the per-pair scores of a matcher for evaluation.
pub fn scored_pairs(pairs: &[PairNode], scores: &[f64]) -> Vec<er_eval::ScoredPair> {
    pairs
        .iter()
        .zip(scores)
        .map(|(p, &score)| er_eval::ScoredPair {
            a: p.a,
            b: p.b,
            score,
        })
        .collect()
}

/// Runs a baseline scorer through the paper's 1000-quantum optimal
/// threshold sweep.
pub fn sweep_baseline(
    scorer: &dyn er_baselines::PairScorer,
    corpus: &Corpus,
    pairs: &[PairNode],
    truth: &TruthPairs,
) -> er_eval::SweepResult {
    er_baselines::evaluate_scorer(scorer, corpus, pairs, truth)
}

/// Paper-reported Table II reference row.
#[derive(Debug)]
pub struct PaperTable2 {
    /// Method name as printed in Table II.
    pub method: &'static str,
    /// F1 per dataset: `[restaurant, product, paper]`; `None` where the
    /// original publication did not report the value.
    pub f1: [Option<f64>; 3],
}

/// The full Table II reference matrix.
pub const PAPER_TABLE2: &[PaperTable2] = &[
    PaperTable2 {
        method: "Jaccard",
        f1: [Some(0.836), Some(0.332), Some(0.792)],
    },
    PaperTable2 {
        method: "TF-IDF",
        f1: [Some(0.871), Some(0.658), Some(0.821)],
    },
    PaperTable2 {
        method: "Gaussian Mixture Model",
        f1: [Some(0.704), None, None],
    },
    PaperTable2 {
        method: "HGM+Bootstrap",
        f1: [Some(0.844), None, None],
    },
    PaperTable2 {
        method: "MLE",
        f1: [Some(0.904), None, None],
    },
    PaperTable2 {
        method: "SVM",
        f1: [Some(0.922), None, Some(0.824)],
    },
    PaperTable2 {
        method: "CrowdER",
        f1: [Some(0.934), Some(0.800), Some(0.824)],
    },
    PaperTable2 {
        method: "TransM",
        f1: [Some(0.930), Some(0.792), Some(0.740)],
    },
    PaperTable2 {
        method: "GCER",
        f1: [Some(0.930), Some(0.760), Some(0.785)],
    },
    PaperTable2 {
        method: "ACD",
        f1: [Some(0.934), Some(0.805), Some(0.820)],
    },
    PaperTable2 {
        method: "Power+",
        f1: [Some(0.934), None, Some(0.820)],
    },
    PaperTable2 {
        method: "SimRank",
        f1: [Some(0.645), Some(0.376), Some(0.730)],
    },
    PaperTable2 {
        method: "PageRank",
        f1: [Some(0.905), Some(0.564), Some(0.316)],
    },
    PaperTable2 {
        method: "Hybrid",
        f1: [Some(0.946), Some(0.593), Some(0.748)],
    },
    PaperTable2 {
        method: "ITER+CliqueRank",
        f1: [Some(0.927), Some(0.764), Some(0.890)],
    },
];

/// Formats an optional paper reference value.
pub fn fmt_ref(v: Option<f64>) -> String {
    v.map_or_else(|| "  -  ".to_owned(), |x| format!("{x:.3}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_build_at_tiny_scale() {
        let benches = bench_datasets(0.1);
        assert_eq!(benches.len(), 3);
        for b in &benches {
            let p = prepare(b);
            assert!(p.graph.pair_count() > 0, "{}", b.dataset.name);
            assert!(p.truth.total() > 0);
        }
    }

    #[test]
    fn reference_table_has_15_rows() {
        assert_eq!(PAPER_TABLE2.len(), 15);
        let fusion = PAPER_TABLE2.last().unwrap();
        assert_eq!(fusion.f1[2], Some(0.890));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.34)), "2.3s");
        assert_eq!(fmt_duration(Duration::from_secs(90)), "1.5min");
    }
}
