//! Connected components of a [`CsrGraph`].
//!
//! CliqueRank's matrix recurrence is block-diagonal under a component
//! permutation of `Gr` — a random walk can never leave the component it
//! starts in — so the framework decomposes `Gr` into components and runs
//! the dense matrix iteration per block. This is an exact optimization,
//! not an approximation (documented in DESIGN.md §3.3).

use crate::csr::CsrGraph;

/// Component labelling of a graph's nodes.
#[derive(Debug, Clone)]
pub struct ComponentLabels {
    /// `label[u]` is the component id of node `u` (ids are dense, 0-based,
    /// assigned in order of the smallest node in each component).
    pub label: Vec<u32>,
    /// Members of each component, sorted ascending.
    pub members: Vec<Vec<u32>>,
}

impl ComponentLabels {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Computes connected components with an iterative BFS (no recursion, so
/// arbitrarily large components are safe).
pub fn components(graph: &CsrGraph) -> ComponentLabels {
    let n = graph.node_count();
    const UNVISITED: u32 = u32::MAX;
    let mut label = vec![UNVISITED; n];
    let mut members: Vec<Vec<u32>> = Vec::new();
    let mut queue: Vec<u32> = Vec::new();
    for start in 0..n as u32 {
        if label[start as usize] != UNVISITED {
            continue;
        }
        let comp_id = members.len() as u32;
        let mut comp = vec![start];
        label[start as usize] = comp_id;
        queue.clear();
        queue.push(start);
        while let Some(u) = queue.pop() {
            for &v in graph.neighbors(u) {
                if label[v as usize] == UNVISITED {
                    label[v as usize] = comp_id;
                    comp.push(v);
                    queue.push(v);
                }
            }
        }
        comp.sort_unstable();
        members.push(comp);
    }
    ComponentLabels { label, members }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components_and_isolate() {
        // {0,1,2} triangle, {3,4} edge, {5} isolated
        let g = CsrGraph::from_undirected_edges(
            6,
            &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (3, 4, 1.0)],
        );
        let c = components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.members[0], vec![0, 1, 2]);
        assert_eq!(c.members[1], vec![3, 4]);
        assert_eq!(c.members[2], vec![5]);
        assert_eq!(c.label[4], 1);
        assert_eq!(c.largest(), 3);
    }

    #[test]
    fn single_component_chain() {
        let edges: Vec<(u32, u32, f64)> = (0..99).map(|i| (i, i + 1, 1.0)).collect();
        let g = CsrGraph::from_undirected_edges(100, &edges);
        let c = components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.members[0].len(), 100);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_undirected_edges(0, &[]);
        let c = components(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), 0);
    }

    #[test]
    fn all_isolated() {
        let g = CsrGraph::from_undirected_edges(4, &[]);
        let c = components(&g);
        assert_eq!(c.count(), 4);
        assert_eq!(c.largest(), 1);
    }

    #[test]
    fn labels_consistent_with_members() {
        let g = CsrGraph::from_undirected_edges(7, &[(0, 6, 1.0), (2, 4, 1.0), (4, 5, 1.0)]);
        let c = components(&g);
        for (cid, members) in c.members.iter().enumerate() {
            for &u in members {
                assert_eq!(c.label[u as usize], cid as u32);
            }
        }
        let total: usize = c.members.iter().map(Vec::len).sum();
        assert_eq!(total, 7);
    }
}
