//! The term ↔ record-pair bipartite graph of §V-B (Figure 3).
//!
//! One side holds **term nodes**, the other **pair nodes** — each pair
//! node is an unordered pair of records that share at least one term.
//! Term `t` connects to pair `(ri, rj)` iff `t ∈ ri ∧ t ∈ rj`. Pairs
//! sharing no term are excluded entirely (the paper treats them as
//! non-matching by construction).
//!
//! The builder consumes postings lists (term → sorted records) — exactly
//! what `er_text::Corpus` produces — and enumerates, per term, all record
//! pairs in its postings that the candidate policy accepts (e.g. only
//! cross-source pairs for the two-source Product dataset).
//!
//! Construction is sort-based rather than hash-based: terms enumerate
//! `(term, pair)` edges independently (parallelizable over term chunks on
//! a shared [`er_pool::WorkerPool`]), pair ids come from a sort + dedup of
//! the pair keys, and both CSR sides fill in one term-major pass. The
//! result is canonical — byte-identical regardless of thread count or
//! chunking — because edges are concatenated back in term order and ids
//! come from the sorted pair universe.

use er_pool::WorkerPool;

use crate::invariant::{check_offsets, debug_validate, InvariantViolation};

/// A pair node: an unordered record pair with `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairNode {
    /// Smaller record id.
    pub a: u32,
    /// Larger record id.
    pub b: u32,
}

impl PairNode {
    /// Creates a pair node, normalizing the order.
    pub fn new(x: u32, y: u32) -> Self {
        assert!(x != y, "pair node of a record with itself");
        if x < y {
            Self { a: x, b: y }
        } else {
            Self { a: y, b: x }
        }
    }
}

/// Immutable bipartite graph in dual-CSR form.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    n_records: usize,
    n_terms: usize,
    pairs: Vec<PairNode>,
    // pair -> terms
    pair_offsets: Vec<usize>,
    pair_terms: Vec<u32>,
    // term -> pairs
    term_offsets: Vec<usize>,
    term_pairs: Vec<u32>,
    // P_t per term: number of pair nodes incident to the term.
    pt: Vec<u32>,
}

impl BipartiteGraph {
    /// Number of records in the underlying universe.
    pub fn record_count(&self) -> usize {
        self.n_records
    }

    /// Size of the term universe (including terms with no edges).
    pub fn term_count(&self) -> usize {
        self.n_terms
    }

    /// Number of pair nodes.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of term–pair edges.
    pub fn edge_count(&self) -> usize {
        self.pair_terms.len()
    }

    /// The pair node with id `p`.
    pub fn pair(&self, p: u32) -> PairNode {
        self.pairs[p as usize]
    }

    /// All pair nodes, indexed by pair id.
    pub fn pairs(&self) -> &[PairNode] {
        &self.pairs
    }

    /// Term ids incident to pair `p` (the shared terms of the two records).
    pub fn terms_of_pair(&self, p: u32) -> &[u32] {
        &self.pair_terms[self.pair_offsets[p as usize]..self.pair_offsets[p as usize + 1]]
    }

    /// Pair ids incident to term `t`.
    pub fn pairs_of_term(&self, t: u32) -> &[u32] {
        &self.term_pairs[self.term_offsets[t as usize]..self.term_offsets[t as usize + 1]]
    }

    /// `P_t`: the number of pair nodes connected to term `t` (§V-A). In a
    /// single-source dataset with no candidate filtering this equals
    /// `N_t (N_t − 1) / 2`; with a candidate policy (e.g. cross-source
    /// only) it is the filtered pair count, the natural generalization.
    pub fn pt(&self, t: u32) -> u32 {
        self.pt[t as usize]
    }

    /// Looks up the pair id of records `(x, y)` if they form a pair node.
    pub fn pair_id(&self, x: u32, y: u32) -> Option<u32> {
        let key = PairNode::new(x, y);
        self.pairs.binary_search(&key).ok().map(|i| i as u32)
    }

    /// Checks every structural invariant of the dual-CSR form:
    ///
    /// * `pairs` is strictly ascending with `a < b < n_records` — the
    ///   canonical binary-searchable pair universe;
    /// * both offset arrays are monotone from 0 and consistent with one
    ///   shared edge count (each term–pair edge appears once per side);
    /// * adjacency rows are strictly ascending and in bounds on both
    ///   sides (a consequence of the term-major construction);
    /// * the two sides agree edge-for-edge: `p ∈ pairs_of_term(t)` iff
    ///   `t ∈ terms_of_pair(p)`;
    /// * `pt[t]` equals term `t`'s degree.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("BipartiteGraph", detail));
        if let Some(w) = self.pairs.windows(2).find(|w| w[0] >= w[1]) {
            return err(format!(
                "pair universe not strictly ascending: {:?} then {:?}",
                w[0], w[1]
            ));
        }
        if let Some(p) = self
            .pairs
            .iter()
            .find(|p| p.a >= p.b || p.b as usize >= self.n_records)
        {
            return err(format!(
                "malformed pair node {p:?} (want a < b < {})",
                self.n_records
            ));
        }
        let n_edges = self.pair_terms.len();
        if self.term_pairs.len() != n_edges {
            return err(format!(
                "side edge counts disagree: {} pair->term vs {} term->pair",
                n_edges,
                self.term_pairs.len()
            ));
        }
        check_offsets(
            "BipartiteGraph",
            "pair->term",
            &self.pair_offsets,
            self.pairs.len(),
            n_edges,
        )?;
        check_offsets(
            "BipartiteGraph",
            "term->pair",
            &self.term_offsets,
            self.n_terms,
            n_edges,
        )?;
        if self.pt.len() != self.n_terms {
            return err(format!(
                "{} pt entries for {} terms",
                self.pt.len(),
                self.n_terms
            ));
        }
        for p in 0..self.pairs.len() {
            let row = &self.pair_terms[self.pair_offsets[p]..self.pair_offsets[p + 1]];
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return err(format!("terms of pair {p} not strictly ascending"));
            }
            if let Some(&t) = row.last().filter(|&&t| t as usize >= self.n_terms) {
                return err(format!("pair {p} lists out-of-bounds term {t}"));
            }
        }
        for t in 0..self.n_terms {
            let row = &self.term_pairs[self.term_offsets[t]..self.term_offsets[t + 1]];
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return err(format!("pairs of term {t} not strictly ascending"));
            }
            if self.pt[t] as usize != row.len() {
                return err(format!(
                    "pt[{t}] = {} but term degree is {}",
                    self.pt[t],
                    row.len()
                ));
            }
            for &p in row {
                if p as usize >= self.pairs.len() {
                    return err(format!("term {t} lists out-of-bounds pair {p}"));
                }
                // Dual consistency (both rows sorted → binary search).
                let terms = &self.pair_terms
                    [self.pair_offsets[p as usize]..self.pair_offsets[p as usize + 1]];
                if terms.binary_search(&(t as u32)).is_err() {
                    return err(format!(
                        "edge (term {t}, pair {p}) missing from the pair side"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`BipartiteGraph`].
pub struct BipartiteGraphBuilder<'a> {
    n_records: usize,
    n_terms: usize,
    postings: Vec<&'a [u32]>,
    max_postings: Option<usize>,
    pair_filter: Option<Box<dyn Fn(u32, u32) -> bool + Sync + 'a>>,
    pool: Option<&'a WorkerPool>,
}

impl std::fmt::Debug for BipartiteGraphBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BipartiteGraphBuilder")
            .field("n_records", &self.n_records)
            .field("n_terms", &self.n_terms)
            .field("max_postings", &self.max_postings)
            .field("has_pair_filter", &self.pair_filter.is_some())
            .field("pooled", &self.pool.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a> BipartiteGraphBuilder<'a> {
    /// Starts a builder over `n_records` records and `n_terms` terms.
    pub fn new(n_records: usize, n_terms: usize) -> Self {
        Self {
            n_records,
            n_terms,
            postings: vec![&[]; n_terms],
            max_postings: None,
            pair_filter: None,
            pool: None,
        }
    }

    /// Enumerates pair edges on this worker pool (term chunks become
    /// jobs). The built graph is identical with or without a pool.
    pub fn pool(mut self, pool: &'a WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Sets the postings (sorted record ids) of term `t`.
    pub fn postings(mut self, t: u32, records: &'a [u32]) -> Self {
        debug_assert!(
            records.windows(2).all(|w| w[0] < w[1]),
            "postings must be sorted"
        );
        self.postings[t as usize] = records;
        self
    }

    /// Skips terms with more than `cap` postings. This is a safety valve on
    /// top of the corpus-level frequent-term filter: a term with `N_t`
    /// postings creates `O(N_t²)` pair edges.
    pub fn max_postings(mut self, cap: usize) -> Self {
        self.max_postings = Some(cap);
        self
    }

    /// Restricts which record pairs become pair nodes (candidate policy).
    /// For the two-source Product dataset this is "records from different
    /// sources only". `Sync` because the parallel build evaluates the
    /// policy from several workers at once.
    pub fn pair_filter(mut self, f: impl Fn(u32, u32) -> bool + Sync + 'a) -> Self {
        self.pair_filter = Some(Box::new(f));
        self
    }

    /// Enumerates `(term, pair)` edges for the term range `lo..hi`, in
    /// term-major order.
    fn enumerate_terms(&self, lo: usize, hi: usize, cap: usize) -> Vec<(u32, PairNode)> {
        let mut edges = Vec::new();
        for t in lo..hi {
            let recs = self.postings[t];
            if recs.len() < 2 || recs.len() > cap {
                continue;
            }
            for (i, &ra) in recs.iter().enumerate() {
                for &rb in &recs[i + 1..] {
                    if let Some(f) = &self.pair_filter {
                        if !f(ra, rb) {
                            continue;
                        }
                    }
                    edges.push((t as u32, PairNode::new(ra, rb)));
                }
            }
        }
        edges
    }

    /// Enumerates pair nodes and builds the dual-CSR structure.
    pub fn build(self) -> BipartiteGraph {
        let cap = self.max_postings.unwrap_or(usize::MAX);
        // Phase 1: enumerate raw (term, pair) edges, term-major. With a
        // pool, term chunks enumerate independently and concatenate back
        // in term order, so the edge list is the same either way.
        const MIN_TERMS_PER_JOB: usize = 64;
        // Per-term enumeration cost is quadratic in posting length;
        // estimate ~16 ops per term as a flat proxy and let the pool's
        // dispatch policy decide (tiny vocabularies enumerate inline).
        let edges: Vec<(u32, PairNode)> = match self.pool {
            Some(pool)
                if self.n_terms >= 2 * MIN_TERMS_PER_JOB
                    && pool.dispatch(self.n_terms.saturating_mul(16)).is_parallel() =>
            {
                let ranges =
                    er_pool::chunk_ranges(self.n_terms, pool.threads() * 4, MIN_TERMS_PER_JOB);
                let mut parts: Vec<Vec<(u32, PairNode)>> =
                    ranges.iter().map(|_| Vec::new()).collect();
                let this = &self;
                pool.scope(|s| {
                    for (range, part) in ranges.iter().cloned().zip(parts.iter_mut()) {
                        s.submit(move || *part = this.enumerate_terms(range.start, range.end, cap));
                    }
                });
                parts.concat()
            }
            _ => self.enumerate_terms(0, self.n_terms, cap),
        };

        // Phase 2: canonical pair universe — sorted, deduplicated pair
        // keys. Ids are positions in this sorted list, so `pairs` is
        // binary-searchable and iteration order is independent of the
        // postings order (the old hash-discovery + remap gave the same
        // ids at higher cost).
        let mut sorted_pairs: Vec<PairNode> = edges.iter().map(|&(_, p)| p).collect();
        sorted_pairs.sort_unstable();
        sorted_pairs.dedup();

        // Phase 3: resolve each edge's pair id (disjoint output chunks,
        // so this parallelizes too).
        let mut edge_pair_ids = vec![0u32; edges.len()];
        let resolve = |edge_chunk: &[(u32, PairNode)], out: &mut [u32]| {
            for (&(_, p), slot) in edge_chunk.iter().zip(out) {
                // er-lint: allow(panic) -- sorted_pairs was built from these same edges
                *slot = sorted_pairs.binary_search(&p).expect("id from universe") as u32;
            }
        };
        // Each edge resolves by binary search (~log₂ |pairs| ≈ 16 ops).
        match self.pool {
            Some(pool)
                if edges.len() >= 2 * 1024
                    && pool.dispatch(edges.len().saturating_mul(16)).is_parallel() =>
            {
                let ranges = er_pool::chunk_ranges(edges.len(), pool.threads() * 4, 1024);
                pool.scope(|s| {
                    let mut rest: &mut [u32] = &mut edge_pair_ids;
                    for range in ranges {
                        let (chunk, tail) = rest.split_at_mut(range.len());
                        rest = tail;
                        let edge_chunk = &edges[range];
                        let resolve = &resolve;
                        s.submit(move || resolve(edge_chunk, chunk));
                    }
                });
            }
            _ => resolve(&edges, &mut edge_pair_ids),
        }
        let edges: Vec<(u32, u32)> = edges
            .iter()
            .zip(&edge_pair_ids)
            .map(|(&(t, _), &p)| (t, p))
            .collect();

        // CSR for term -> pairs.
        let mut term_deg = vec![0usize; self.n_terms];
        let mut pair_deg = vec![0usize; sorted_pairs.len()];
        for &(t, p) in &edges {
            term_deg[t as usize] += 1;
            pair_deg[p as usize] += 1;
        }
        let prefix = |deg: &[usize]| {
            let mut off = Vec::with_capacity(deg.len() + 1);
            let mut total = 0usize;
            off.push(0usize);
            for &d in deg {
                total += d;
                off.push(total);
            }
            off
        };
        let term_offsets = prefix(&term_deg);
        let pair_offsets = prefix(&pair_deg);
        let mut term_pairs = vec![0u32; edges.len()];
        let mut pair_terms = vec![0u32; edges.len()];
        let mut tcur = term_offsets.clone();
        let mut pcur = pair_offsets.clone();
        for &(t, p) in &edges {
            term_pairs[tcur[t as usize]] = p;
            tcur[t as usize] += 1;
            pair_terms[pcur[p as usize]] = t;
            pcur[p as usize] += 1;
        }
        let pt = term_deg.iter().map(|&d| d as u32).collect();
        let graph = BipartiteGraph {
            n_records: self.n_records,
            n_terms: self.n_terms,
            pairs: sorted_pairs,
            pair_offsets,
            pair_terms,
            term_offsets,
            term_pairs,
            pt,
        };
        debug_validate("BipartiteGraphBuilder::build", || graph.validate());
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records: 0 = {a, b}, 1 = {a, b, c}, 2 = {c, d}, 3 = {e}.
    /// Postings: a→{0,1}, b→{0,1}, c→{1,2}, d→{2}, e→{3}.
    fn sample() -> BipartiteGraph {
        BipartiteGraphBuilder::new(4, 5)
            .postings(0, &[0, 1])
            .postings(1, &[0, 1])
            .postings(2, &[1, 2])
            .postings(3, &[2])
            .postings(4, &[3])
            .build()
    }

    #[test]
    fn pair_nodes_are_pairs_sharing_terms() {
        let g = sample();
        assert_eq!(g.pair_count(), 2);
        assert_eq!(g.pair(0), PairNode::new(0, 1));
        assert_eq!(g.pair(1), PairNode::new(1, 2));
        assert!(g.pair_id(0, 2).is_none(), "no shared term → no pair node");
        assert!(g.pair_id(0, 3).is_none());
    }

    #[test]
    fn edges_follow_shared_terms() {
        let g = sample();
        let p01 = g.pair_id(0, 1).unwrap();
        let mut terms: Vec<u32> = g.terms_of_pair(p01).to_vec();
        terms.sort_unstable();
        assert_eq!(terms, vec![0, 1], "records 0,1 share terms a and b");
        let p12 = g.pair_id(1, 2).unwrap();
        assert_eq!(g.terms_of_pair(p12), &[2]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn pt_counts_incident_pairs() {
        let g = sample();
        assert_eq!(g.pt(0), 1);
        assert_eq!(g.pt(2), 1);
        assert_eq!(g.pt(3), 0, "singleton postings create no pairs");
        assert_eq!(g.pt(4), 0);
    }

    #[test]
    fn pt_is_nt_choose_2_without_filter() {
        let g = BipartiteGraphBuilder::new(4, 1)
            .postings(0, &[0, 1, 2, 3])
            .build();
        assert_eq!(g.pt(0), 6); // 4*3/2
        assert_eq!(g.pair_count(), 6);
    }

    #[test]
    fn pair_filter_restricts_candidates() {
        // Cross-source policy: records 0,1 in source A; 2,3 in source B.
        let source = [0u8, 0, 1, 1];
        let g = BipartiteGraphBuilder::new(4, 1)
            .postings(0, &[0, 1, 2, 3])
            .pair_filter(move |a, b| source[a as usize] != source[b as usize])
            .build();
        assert_eq!(g.pair_count(), 4); // 0-2, 0-3, 1-2, 1-3
        assert!(g.pair_id(0, 1).is_none());
        assert!(g.pair_id(2, 3).is_none());
        assert!(g.pair_id(0, 2).is_some());
        assert_eq!(g.pt(0), 4);
    }

    #[test]
    fn max_postings_skips_heavy_terms() {
        let g = BipartiteGraphBuilder::new(5, 2)
            .postings(0, &[0, 1, 2, 3, 4])
            .postings(1, &[0, 1])
            .max_postings(3)
            .build();
        assert_eq!(g.pt(0), 0, "term 0 skipped: 5 postings > cap 3");
        assert_eq!(g.pair_count(), 1);
    }

    #[test]
    fn pairs_sorted_and_binary_searchable() {
        let g = sample();
        let ps = g.pairs();
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(g.pair_id(p.a, p.b), Some(i as u32));
            assert_eq!(
                g.pair_id(p.b, p.a),
                Some(i as u32),
                "order-insensitive lookup"
            );
        }
    }

    #[test]
    fn pooled_build_is_identical() {
        // Enough terms to cross the parallel enumeration threshold.
        let n_terms = 200usize;
        let n_records = 30u32;
        let mut state = 0xb19a_u64;
        let posting_store: Vec<Vec<u32>> = (0..n_terms)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((state >> 33) % n_records as u64) as u32;
                let b = (a + 1 + ((state >> 13) % (n_records as u64 - 1)) as u32) % n_records;
                let c = (a + 2 + ((state >> 3) % (n_records as u64 - 2)) as u32) % n_records;
                let mut v = vec![a, b, c];
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let build = |pool: Option<&WorkerPool>| {
            let mut b = BipartiteGraphBuilder::new(n_records as usize, n_terms);
            for (t, post) in posting_store.iter().enumerate() {
                b = b.postings(t as u32, post);
            }
            if let Some(p) = pool {
                b = b.pool(p);
            }
            b.build()
        };
        let serial = build(None);
        for threads in [2, 4] {
            let pool = WorkerPool::new(threads);
            let pooled = build(Some(&pool));
            assert_eq!(serial.pairs(), pooled.pairs(), "threads={threads}");
            assert_eq!(serial.edge_count(), pooled.edge_count());
            for t in 0..n_terms as u32 {
                assert_eq!(serial.pairs_of_term(t), pooled.pairs_of_term(t));
            }
            for p in 0..serial.pair_count() as u32 {
                assert_eq!(serial.terms_of_pair(p), pooled.terms_of_pair(p));
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraphBuilder::new(0, 0).build();
        assert_eq!(g.pair_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "record with itself")]
    fn pair_node_rejects_self() {
        PairNode::new(3, 3);
    }
}
