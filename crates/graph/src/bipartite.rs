//! The term ↔ record-pair bipartite graph of §V-B (Figure 3).
//!
//! One side holds **term nodes**, the other **pair nodes** — each pair
//! node is an unordered pair of records that share at least one term.
//! Term `t` connects to pair `(ri, rj)` iff `t ∈ ri ∧ t ∈ rj`. Pairs
//! sharing no term are excluded entirely (the paper treats them as
//! non-matching by construction).
//!
//! The builder consumes postings lists (term → sorted records) — exactly
//! what `er_text::Corpus` produces — and enumerates, per term, all record
//! pairs in its postings that the candidate policy accepts (e.g. only
//! cross-source pairs for the two-source Product dataset).

use std::collections::HashMap;

/// A pair node: an unordered record pair with `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PairNode {
    /// Smaller record id.
    pub a: u32,
    /// Larger record id.
    pub b: u32,
}

impl PairNode {
    /// Creates a pair node, normalizing the order.
    pub fn new(x: u32, y: u32) -> Self {
        assert!(x != y, "pair node of a record with itself");
        if x < y {
            Self { a: x, b: y }
        } else {
            Self { a: y, b: x }
        }
    }
}

/// Immutable bipartite graph in dual-CSR form.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    n_records: usize,
    n_terms: usize,
    pairs: Vec<PairNode>,
    // pair -> terms
    pair_offsets: Vec<usize>,
    pair_terms: Vec<u32>,
    // term -> pairs
    term_offsets: Vec<usize>,
    term_pairs: Vec<u32>,
    // P_t per term: number of pair nodes incident to the term.
    pt: Vec<u32>,
}

impl BipartiteGraph {
    /// Number of records in the underlying universe.
    pub fn record_count(&self) -> usize {
        self.n_records
    }

    /// Size of the term universe (including terms with no edges).
    pub fn term_count(&self) -> usize {
        self.n_terms
    }

    /// Number of pair nodes.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of term–pair edges.
    pub fn edge_count(&self) -> usize {
        self.pair_terms.len()
    }

    /// The pair node with id `p`.
    pub fn pair(&self, p: u32) -> PairNode {
        self.pairs[p as usize]
    }

    /// All pair nodes, indexed by pair id.
    pub fn pairs(&self) -> &[PairNode] {
        &self.pairs
    }

    /// Term ids incident to pair `p` (the shared terms of the two records).
    pub fn terms_of_pair(&self, p: u32) -> &[u32] {
        &self.pair_terms[self.pair_offsets[p as usize]..self.pair_offsets[p as usize + 1]]
    }

    /// Pair ids incident to term `t`.
    pub fn pairs_of_term(&self, t: u32) -> &[u32] {
        &self.term_pairs[self.term_offsets[t as usize]..self.term_offsets[t as usize + 1]]
    }

    /// `P_t`: the number of pair nodes connected to term `t` (§V-A). In a
    /// single-source dataset with no candidate filtering this equals
    /// `N_t (N_t − 1) / 2`; with a candidate policy (e.g. cross-source
    /// only) it is the filtered pair count, the natural generalization.
    pub fn pt(&self, t: u32) -> u32 {
        self.pt[t as usize]
    }

    /// Looks up the pair id of records `(x, y)` if they form a pair node.
    pub fn pair_id(&self, x: u32, y: u32) -> Option<u32> {
        let key = PairNode::new(x, y);
        self.pairs.binary_search(&key).ok().map(|i| i as u32)
    }
}

/// Builder for [`BipartiteGraph`].
pub struct BipartiteGraphBuilder<'a> {
    n_records: usize,
    n_terms: usize,
    postings: Vec<&'a [u32]>,
    max_postings: Option<usize>,
    pair_filter: Option<Box<dyn Fn(u32, u32) -> bool + 'a>>,
}

impl<'a> BipartiteGraphBuilder<'a> {
    /// Starts a builder over `n_records` records and `n_terms` terms.
    pub fn new(n_records: usize, n_terms: usize) -> Self {
        Self {
            n_records,
            n_terms,
            postings: vec![&[]; n_terms],
            max_postings: None,
            pair_filter: None,
        }
    }

    /// Sets the postings (sorted record ids) of term `t`.
    pub fn postings(mut self, t: u32, records: &'a [u32]) -> Self {
        debug_assert!(records.windows(2).all(|w| w[0] < w[1]), "postings must be sorted");
        self.postings[t as usize] = records;
        self
    }

    /// Skips terms with more than `cap` postings. This is a safety valve on
    /// top of the corpus-level frequent-term filter: a term with `N_t`
    /// postings creates `O(N_t²)` pair edges.
    pub fn max_postings(mut self, cap: usize) -> Self {
        self.max_postings = Some(cap);
        self
    }

    /// Restricts which record pairs become pair nodes (candidate policy).
    /// For the two-source Product dataset this is "records from different
    /// sources only".
    pub fn pair_filter(mut self, f: impl Fn(u32, u32) -> bool + 'a) -> Self {
        self.pair_filter = Some(Box::new(f));
        self
    }

    /// Enumerates pair nodes and builds the dual-CSR structure.
    pub fn build(self) -> BipartiteGraph {
        let cap = self.max_postings.unwrap_or(usize::MAX);
        // First pass: discover pair nodes and count edges per side.
        let mut pair_ids: HashMap<PairNode, u32> = HashMap::new();
        let mut edges: Vec<(u32, u32)> = Vec::new(); // (term, pair id)
        let mut pairs: Vec<PairNode> = Vec::new();
        for (t, recs) in self.postings.iter().enumerate() {
            if recs.len() < 2 || recs.len() > cap {
                continue;
            }
            for (i, &ra) in recs.iter().enumerate() {
                for &rb in &recs[i + 1..] {
                    if let Some(f) = &self.pair_filter {
                        if !f(ra, rb) {
                            continue;
                        }
                    }
                    let node = PairNode::new(ra, rb);
                    let next_id = pairs.len() as u32;
                    let id = *pair_ids.entry(node).or_insert_with(|| {
                        pairs.push(node);
                        next_id
                    });
                    edges.push((t as u32, id));
                }
            }
        }
        // Canonicalize pair ids so `pairs` is sorted — enables binary-search
        // lookup and deterministic iteration independent of postings order.
        let mut order: Vec<u32> = (0..pairs.len() as u32).collect();
        order.sort_unstable_by_key(|&i| pairs[i as usize]);
        let mut remap = vec![0u32; pairs.len()];
        for (new_id, &old_id) in order.iter().enumerate() {
            remap[old_id as usize] = new_id as u32;
        }
        let mut sorted_pairs = vec![PairNode { a: 0, b: 0 }; pairs.len()];
        for (old_id, &new_id) in remap.iter().enumerate() {
            sorted_pairs[new_id as usize] = pairs[old_id];
        }
        for (_, p) in &mut edges {
            *p = remap[*p as usize];
        }

        // CSR for term -> pairs.
        let mut term_deg = vec![0usize; self.n_terms];
        let mut pair_deg = vec![0usize; sorted_pairs.len()];
        for &(t, p) in &edges {
            term_deg[t as usize] += 1;
            pair_deg[p as usize] += 1;
        }
        let prefix = |deg: &[usize]| {
            let mut off = Vec::with_capacity(deg.len() + 1);
            off.push(0usize);
            for &d in deg {
                off.push(off.last().unwrap() + d);
            }
            off
        };
        let term_offsets = prefix(&term_deg);
        let pair_offsets = prefix(&pair_deg);
        let mut term_pairs = vec![0u32; edges.len()];
        let mut pair_terms = vec![0u32; edges.len()];
        let mut tcur = term_offsets.clone();
        let mut pcur = pair_offsets.clone();
        for &(t, p) in &edges {
            term_pairs[tcur[t as usize]] = p;
            tcur[t as usize] += 1;
            pair_terms[pcur[p as usize]] = t;
            pcur[p as usize] += 1;
        }
        let pt = term_deg.iter().map(|&d| d as u32).collect();
        BipartiteGraph {
            n_records: self.n_records,
            n_terms: self.n_terms,
            pairs: sorted_pairs,
            pair_offsets,
            pair_terms,
            term_offsets,
            term_pairs,
            pt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records: 0 = {a, b}, 1 = {a, b, c}, 2 = {c, d}, 3 = {e}.
    /// Postings: a→{0,1}, b→{0,1}, c→{1,2}, d→{2}, e→{3}.
    fn sample() -> BipartiteGraph {
        BipartiteGraphBuilder::new(4, 5)
            .postings(0, &[0, 1])
            .postings(1, &[0, 1])
            .postings(2, &[1, 2])
            .postings(3, &[2])
            .postings(4, &[3])
            .build()
    }

    #[test]
    fn pair_nodes_are_pairs_sharing_terms() {
        let g = sample();
        assert_eq!(g.pair_count(), 2);
        assert_eq!(g.pair(0), PairNode::new(0, 1));
        assert_eq!(g.pair(1), PairNode::new(1, 2));
        assert!(g.pair_id(0, 2).is_none(), "no shared term → no pair node");
        assert!(g.pair_id(0, 3).is_none());
    }

    #[test]
    fn edges_follow_shared_terms() {
        let g = sample();
        let p01 = g.pair_id(0, 1).unwrap();
        let mut terms: Vec<u32> = g.terms_of_pair(p01).to_vec();
        terms.sort_unstable();
        assert_eq!(terms, vec![0, 1], "records 0,1 share terms a and b");
        let p12 = g.pair_id(1, 2).unwrap();
        assert_eq!(g.terms_of_pair(p12), &[2]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn pt_counts_incident_pairs() {
        let g = sample();
        assert_eq!(g.pt(0), 1);
        assert_eq!(g.pt(2), 1);
        assert_eq!(g.pt(3), 0, "singleton postings create no pairs");
        assert_eq!(g.pt(4), 0);
    }

    #[test]
    fn pt_is_nt_choose_2_without_filter() {
        let g = BipartiteGraphBuilder::new(4, 1)
            .postings(0, &[0, 1, 2, 3])
            .build();
        assert_eq!(g.pt(0), 6); // 4*3/2
        assert_eq!(g.pair_count(), 6);
    }

    #[test]
    fn pair_filter_restricts_candidates() {
        // Cross-source policy: records 0,1 in source A; 2,3 in source B.
        let source = [0u8, 0, 1, 1];
        let g = BipartiteGraphBuilder::new(4, 1)
            .postings(0, &[0, 1, 2, 3])
            .pair_filter(move |a, b| source[a as usize] != source[b as usize])
            .build();
        assert_eq!(g.pair_count(), 4); // 0-2, 0-3, 1-2, 1-3
        assert!(g.pair_id(0, 1).is_none());
        assert!(g.pair_id(2, 3).is_none());
        assert!(g.pair_id(0, 2).is_some());
        assert_eq!(g.pt(0), 4);
    }

    #[test]
    fn max_postings_skips_heavy_terms() {
        let g = BipartiteGraphBuilder::new(5, 2)
            .postings(0, &[0, 1, 2, 3, 4])
            .postings(1, &[0, 1])
            .max_postings(3)
            .build();
        assert_eq!(g.pt(0), 0, "term 0 skipped: 5 postings > cap 3");
        assert_eq!(g.pair_count(), 1);
    }

    #[test]
    fn pairs_sorted_and_binary_searchable() {
        let g = sample();
        let ps = g.pairs();
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(g.pair_id(p.a, p.b), Some(i as u32));
            assert_eq!(g.pair_id(p.b, p.a), Some(i as u32), "order-insensitive lookup");
        }
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraphBuilder::new(0, 0).build();
        assert_eq!(g.pair_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "record with itself")]
    fn pair_node_rejects_self() {
        PairNode::new(3, 3);
    }
}
