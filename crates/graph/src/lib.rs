//! # er-graph
//!
//! Graph substrates for the unsupervised entity-resolution framework:
//!
//! * [`csr`] — compressed sparse row adjacency for weighted undirected
//!   graphs; the backbone of every other structure here.
//! * [`union_find`] — disjoint sets, used for clustering matched pairs and
//!   by the component decomposition.
//! * [`mod@components`] — connected components of a [`CsrGraph`]; CliqueRank
//!   runs per component because random walks cannot cross components.
//! * [`bipartite`] — the term ↔ record-pair bipartite graph of §V-B
//!   (Figure 3) that ITER iterates on.
//! * [`appendable`] — append-friendly CSR rows with staged compaction,
//!   the posting-list substrate of the streaming ingest path.
//! * [`record_graph`] — the weighted record graph `Gr` of §VI-A that
//!   CliqueRank and RSS walk on.
//! * [`mod@pagerank`] — damped PageRank (Eq. 3) for the TW-IDF baseline and
//!   the Table IV comparison.
//! * [`simrank`] — pruned bipartite SimRank (Eq. 1–2) for the
//!   graph-theoretic baseline of §III-A, on CSR-flattened pair universes
//!   with pooled, bit-deterministic iterations.
//! * [`cooccur`] — sliding-window term co-occurrence graph (§III-B).
//!
//! The crate is index-based: records and terms are dense `u32`/`usize`
//! ids, so it has no dependency on the text layer.

#![deny(unsafe_code)]

pub mod appendable;
pub mod bipartite;
pub mod components;
pub mod cooccur;
pub mod csr;
pub mod invariant;
pub mod pagerank;
pub mod record_graph;
pub mod simrank;
pub mod union_find;

pub use appendable::AppendableCsr;
pub use bipartite::{BipartiteGraph, BipartiteGraphBuilder, PairNode};
pub use components::{components, ComponentLabels};
pub use cooccur::cooccurrence_graph;
pub use csr::CsrGraph;
pub use invariant::InvariantViolation;
pub use pagerank::{pagerank, PageRankConfig};
pub use record_graph::RecordGraph;
pub use simrank::{
    bipartite_simrank, bipartite_simrank_pooled, simrank_flat, PairUniverse, SimRankConfig,
    SimRankScores, SimRankScratch, SimRankUniverse,
};
pub use union_find::UnionFind;
