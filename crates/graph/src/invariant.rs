//! Debug-gated structural invariant validation for the graph layer.
//!
//! Mirrors `er_matrix::invariant` (the crates are deliberately
//! decoupled): each structure exposes `validate()` returning the first
//! violated invariant, and construction boundaries call it through
//! [`debug_validate`], which compiles to nothing in release builds.

use std::fmt;

/// A violated structural invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The structure (and usually the node/row) that failed.
    pub structure: &'static str,
    /// What was violated, with the offending values.
    pub detail: String,
}

impl InvariantViolation {
    pub(crate) fn new(structure: &'static str, detail: impl Into<String>) -> Self {
        Self {
            structure,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.structure, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

/// Runs `validate` in debug builds, panicking with the violation and
/// `context`. Compiles to nothing with `debug_assertions` off, so
/// validators may be `O(E log E)` without touching release performance.
#[inline]
pub fn debug_validate<E: fmt::Display>(context: &str, validate: impl FnOnce() -> Result<(), E>) {
    #[cfg(debug_assertions)]
    if let Err(e) = validate() {
        panic!("invariant violation at {context}: {e}");
    }
    #[cfg(not(debug_assertions))]
    let _ = (context, validate);
}

/// Checks one CSR side: `offsets` monotone from 0 over `n` rows, ending
/// at `n_entries`. Shared by the adjacency and bipartite validators.
pub(crate) fn check_offsets(
    structure: &'static str,
    what: &str,
    offsets: &[usize],
    n: usize,
    n_entries: usize,
) -> Result<(), InvariantViolation> {
    let err = |detail: String| Err(InvariantViolation::new(structure, detail));
    if offsets.len() != n + 1 {
        return err(format!(
            "{what} offsets has {} entries for {n} rows (want n + 1)",
            offsets.len()
        ));
    }
    if offsets[0] != 0 {
        return err(format!("{what} offsets[0] = {} (want 0)", offsets[0]));
    }
    if let Some(r) = (0..n).find(|&r| offsets[r] > offsets[r + 1]) {
        return err(format!(
            "{what} offsets decrease at row {r}: {} > {}",
            offsets[r],
            offsets[r + 1]
        ));
    }
    if offsets[n] != n_entries {
        return err(format!(
            "{what} offsets end at {} but {n_entries} entries are stored",
            offsets[n]
        ));
    }
    Ok(())
}
