//! Bipartite SimRank (§III-A, Eq. 1–2) — the first graph-theoretic
//! baseline.
//!
//! Two records are similar if they contain similar terms; two terms are
//! similar if they are contained in similar records — Jeh & Widom's
//! bipartite SimRank \[23\] applied to the record–term graph.
//!
//! # Pruned evaluation
//!
//! Dense SimRank needs `n² + m²` scores. The baseline only ever
//! thresholds record pairs that could possibly match — pairs sharing at
//! least one term — so we maintain sparse score sets restricted to
//! (a) record pairs with a common term and (b) term pairs co-occurring in
//! at least one record. Scores that would flow through pairs outside
//! these sets are treated as zero; for entity-resolution graphs this
//! prunes exactly the negligible long-range mass (documented deviation
//! from the dense definition, standard in SimRank practice).
//!
//! # CSR-flattened pair universes
//!
//! The recursion used to live in `HashMap<(u32, u32), f64>`s; at paper
//! scale (428 744 candidate pairs) the hash probes in the inner double
//! loop dominated the whole Table II harness. The kernel now builds each
//! pair universe **once** as a sorted slot array with a CSR index
//! ([`PairUniverse`]): first elements index a row-offset table, second
//! elements are binary-searchable within their row, and a symmetric
//! neighbor → pair-slot adjacency lets the inner recursion walk two
//! sorted `u32` slices with a moving cursor instead of hashing every
//! `(i, j)` key. Scores live in flat `f64` arrays double-buffered across
//! iterations inside a reusable [`SimRankScratch`] — the iteration loop
//! performs **zero** heap allocations at steady state (pinned by
//! `tests/zero_alloc_simrank.rs`).
//!
//! Every pair slot's score depends only on the previous buffer
//! (Jacobi-style, like the original), and its neighbor sum runs in the
//! same ascending order the HashMap version used, so the flattened kernel
//! is **bit-identical** to the retained [`mod@reference`] oracle and
//! invariant across worker-pool sizes (pruned contributions are exact
//! `+0.0`s, which cannot perturb a non-negative sum). The
//! `prop_simrank.rs` property tests pin both claims.

use er_pool::WorkerPool;

/// SimRank parameters. The paper sets `C1 = C2 = 0.8` (§VII-C).
#[derive(Debug, Clone, Copy)]
pub struct SimRankConfig {
    /// Decay on the record side (Eq. 1).
    pub c1: f64,
    /// Decay on the term side (Eq. 2).
    pub c2: f64,
    /// Number of iterations of the mutual recursion.
    pub iterations: usize,
}

impl Default for SimRankConfig {
    fn default() -> Self {
        Self {
            c1: 0.8,
            c2: 0.8,
            iterations: 5,
        }
    }
}

/// Minimum pair slots per worker chunk: SimRank slots are heavy (each
/// sums over a neighborhood product), so small chunks are still worth
/// shipping to a worker.
const MIN_CHUNK: usize = 128;

/// A sorted universe of unordered node pairs with a CSR index and a
/// symmetric neighbor → slot adjacency.
///
/// *Slot `s`* holds the pair `(firsts[s], seconds[s])` with
/// `firsts[s] < seconds[s]`; slots are sorted lexicographically, so all
/// pairs with first element `a` form the contiguous row
/// `row_offsets[a]..row_offsets[a + 1]` whose second elements are
/// ascending — [`PairUniverse::slot`] is one offset lookup plus a binary
/// search. The adjacency view stores, for every node, its partners in
/// ascending order together with the slot of each `{node, partner}`
/// pair, which is what lets the SimRank inner loops resolve scores by
/// index arithmetic over contiguous slices.
#[derive(Debug, Clone, Default)]
pub struct PairUniverse {
    n_nodes: usize,
    /// Row offsets by first element; length `n_nodes + 1`.
    row_offsets: Vec<usize>,
    /// Per-slot smaller endpoint (redundant with `row_offsets`, kept so
    /// kernels can address a slot without a row walk).
    firsts: Vec<u32>,
    /// Per-slot larger endpoint; ascending within each row.
    seconds: Vec<u32>,
    /// Symmetric adjacency offsets; length `n_nodes + 1`.
    adj_offsets: Vec<usize>,
    /// Adjacency partners, ascending per node.
    adj_partner: Vec<u32>,
    /// Slot of `{node, partner}` parallel to `adj_partner`.
    adj_slot: Vec<u32>,
}

impl PairUniverse {
    /// Builds the universe from candidate pairs (any order, duplicates
    /// allowed; every pair must satisfy `a < b < n_nodes`).
    pub fn from_pairs(n_nodes: usize, mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        assert!(
            (pairs.len() as u64) < u64::from(u32::MAX),
            "pair universe exceeds u32 slot space (u32::MAX is the diagonal sentinel)"
        );
        let mut row_offsets = vec![0usize; n_nodes + 1];
        let mut adj_counts = vec![0usize; n_nodes + 1];
        for &(a, b) in &pairs {
            debug_assert!(
                a < b && (b as usize) < n_nodes,
                "pair ({a}, {b}) out of range"
            );
            row_offsets[a as usize + 1] += 1;
            adj_counts[a as usize + 1] += 1;
            adj_counts[b as usize + 1] += 1;
        }
        for i in 0..n_nodes {
            row_offsets[i + 1] += row_offsets[i];
            adj_counts[i + 1] += adj_counts[i];
        }
        let adj_offsets = adj_counts;
        let mut cursor = adj_offsets.clone();
        let mut adj_partner = vec![0u32; 2 * pairs.len()];
        let mut adj_slot = vec![0u32; 2 * pairs.len()];
        let mut firsts = Vec::with_capacity(pairs.len());
        let mut seconds = Vec::with_capacity(pairs.len());
        // Slots are visited in ascending (first, second) order, so each
        // node's partner list fills ascending: partners below the node
        // arrive while their (smaller) first element's row is scanned,
        // partners above it while its own row is.
        for (slot, &(a, b)) in pairs.iter().enumerate() {
            firsts.push(a);
            seconds.push(b);
            for (node, partner) in [(a, b), (b, a)] {
                let at = cursor[node as usize];
                adj_partner[at] = partner;
                adj_slot[at] = slot as u32;
                cursor[node as usize] += 1;
            }
        }
        Self {
            n_nodes,
            row_offsets,
            firsts,
            seconds,
            adj_offsets,
            adj_partner,
            adj_slot,
        }
    }

    /// Number of pair slots.
    pub fn len(&self) -> usize {
        self.firsts.len()
    }

    /// True when the universe tracks no pairs.
    pub fn is_empty(&self) -> bool {
        self.firsts.is_empty()
    }

    /// Size of the node universe.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// The pair stored at `slot`.
    pub fn pair(&self, slot: usize) -> (u32, u32) {
        (self.firsts[slot], self.seconds[slot])
    }

    /// Slot of the unordered pair `{i, j}`, if tracked. The diagonal is
    /// never tracked.
    pub fn slot(&self, i: u32, j: u32) -> Option<usize> {
        if i == j || i as usize >= self.n_nodes || j as usize >= self.n_nodes {
            return None;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let start = self.row_offsets[a as usize];
        let end = self.row_offsets[a as usize + 1];
        self.seconds[start..end]
            .binary_search(&b)
            .ok()
            .map(|k| start + k)
    }

    /// Ascending partners of `node` across all tracked pairs.
    pub fn partners(&self, node: u32) -> &[u32] {
        &self.adj_partner[self.adj_offsets[node as usize]..self.adj_offsets[node as usize + 1]]
    }

    /// Slots of `{node, partner}` parallel to [`PairUniverse::partners`].
    pub fn partner_slots(&self, node: u32) -> &[u32] {
        &self.adj_slot[self.adj_offsets[node as usize]..self.adj_offsets[node as usize + 1]]
    }

    /// Iterates `(a, b)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.firsts
            .iter()
            .copied()
            .zip(self.seconds.iter().copied())
    }
}

/// Marks a diagonal hit (`y == x`, similarity exactly 1) in a
/// `ReplayIndex` source list. Never a valid slot:
/// [`PairUniverse::from_pairs`] rejects universes of `u32::MAX` slots.
const DIAGONAL: u32 = u32::MAX;

/// The frozen per-slot contribution sequence of one side's update rule.
///
/// The pair universes never change across iterations, so the set of
/// neighbor pairs contributing to a slot — and the *order* the reference
/// sums them in — is identical every iteration. This index records that
/// sequence once (`sources[offsets[s]..offsets[s + 1]]` lists, for slot
/// `s`, each contributing slot of the opposite universe in reference
/// order, with [`DIAGONAL`] marking `+1.0` self-similarity hits). The
/// iteration loop then replays it as a straight gather — no searching,
/// no branching on sortedness, just one indexed load per contribution —
/// which is where the kernel's speedup over the `HashMap` oracle comes
/// from: the oracle re-probes every `(x, y)` combination (hits *and*
/// misses) every iteration, the replay touches only the hits.
#[derive(Debug, Clone, Default)]
struct ReplayIndex {
    offsets: Vec<usize>,
    sources: Vec<u32>,
}

impl ReplayIndex {
    fn sources(&self, slot: usize) -> &[u32] {
        &self.sources[self.offsets[slot]..self.offsets[slot + 1]]
    }
}

/// Appends to `sources` the contribution sequence of one slot whose
/// endpoints have neighborhoods `xs` and `ys`: walking `xs` ascending
/// and, per `x`, the ascending `ys` against `x`'s ascending partner list
/// with a two-pointer cursor — exactly the reference oracle's summation
/// order. Untracked `(x, y)` pairs contribute an exact `+0.0` in the
/// oracle and are simply omitted here; `y == x` becomes a [`DIAGONAL`]
/// marker in place.
fn push_sources(pairs: &PairUniverse, xs: &[u32], ys: &[u32], sources: &mut Vec<u32>) {
    for &x in xs {
        let partners = pairs.partners(x);
        let slots = pairs.partner_slots(x);
        let mut k = 0usize;
        for &y in ys {
            if y == x {
                sources.push(DIAGONAL);
                continue;
            }
            while k < partners.len() && partners[k] < y {
                k += 1;
            }
            if k < partners.len() && partners[k] == y {
                sources.push(slots[k]);
            }
        }
    }
}

/// Transient dedup bitset over an `n × n` pair id space, used while
/// collecting candidate pairs (each pair recurs once per shared term).
/// Oversized universes get no bitmap; `insert` then always reports
/// fresh and `PairUniverse::from_pairs`' sort+dedup folds duplicates.
struct SeenPairs {
    n: usize,
    words: Vec<u64>,
}

impl SeenPairs {
    /// Bitmap memory cap, matching [`AdjBits::MAX_WORDS_BYTES`].
    const MAX_BYTES: usize = 256 << 20;

    fn new(n: usize) -> Self {
        let words = n
            .checked_mul(n)
            .map(|sq| sq.div_ceil(64))
            .filter(|&w| w.saturating_mul(8) <= Self::MAX_BYTES)
            .map(|w| vec![0u64; w])
            .unwrap_or_default();
        Self { n, words }
    }

    /// Marks `(a, b)` seen; true exactly on first sight (always true in
    /// the no-bitmap fallback).
    fn insert(&mut self, a: u32, b: u32) -> bool {
        if self.words.is_empty() {
            return true;
        }
        let idx = a as usize * self.n + b as usize;
        let word = &mut self.words[idx >> 6];
        let bit = 1u64 << (idx & 63);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }
}

/// Rank-indexed adjacency bitset of one [`PairUniverse`]: per node `x`,
/// a bitmap of its partners plus a per-word running popcount, so a
/// membership probe is one bit test and, on a hit, the partner-list
/// index (hence the pair's slot) is one masked popcount — no cursor, no
/// comparisons. At the scales the kernel targets (a few thousand nodes
/// per side) the whole structure is L2-resident, which is what makes
/// the replay build's `|xs| · |ys|` probe pass cheap. Built transiently
/// during [`SimRankUniverse::build`] and dropped before it returns.
struct AdjBits {
    /// Words per node row (`ceil(n_nodes / 64)`).
    stride: usize,
    /// `n_nodes · stride` bitmap words, row-major by node.
    words: Vec<u64>,
    /// Per word: number of set bits in the node's earlier words.
    ranks: Vec<u32>,
}

impl AdjBits {
    /// Memory cap (bytes of bitmap) above which the build falls back to
    /// the two-pointer [`push_sources`] walk: 256 MiB covers every node
    /// count up to ~118 k while bounding transient memory.
    const MAX_WORDS_BYTES: usize = 256 << 20;

    fn build(pairs: &PairUniverse, n_nodes: usize) -> Option<Self> {
        let stride = n_nodes.div_ceil(64);
        let bytes = n_nodes.checked_mul(stride)?.checked_mul(8)?;
        if bytes > Self::MAX_WORDS_BYTES {
            return None;
        }
        let mut words = vec![0u64; n_nodes * stride];
        let mut ranks = vec![0u32; n_nodes * stride];
        for x in 0..n_nodes {
            let base = x * stride;
            for &y in pairs.partners(x as u32) {
                words[base + (y as usize >> 6)] |= 1u64 << (y & 63);
            }
            let mut seen = 0u32;
            for w in 0..stride {
                ranks[base + w] = seen;
                seen += words[base + w].count_ones();
            }
        }
        Some(Self {
            stride,
            words,
            ranks,
        })
    }
}

/// Bitset-probing variant of [`push_sources`]: identical emission
/// sequence (ascending `xs`, per `x` ascending `ys`, diagonal inline),
/// but each `(x, y)` probe is a bit test + rank popcount instead of a
/// cursor advance over `x`'s partner list.
fn push_sources_bits(
    pairs: &PairUniverse,
    bits: &AdjBits,
    xs: &[u32],
    ys: &[u32],
    sources: &mut Vec<u32>,
) {
    for &x in xs {
        let slots = pairs.partner_slots(x);
        let base = x as usize * bits.stride;
        let words = &bits.words[base..base + bits.stride];
        let ranks = &bits.ranks[base..base + bits.stride];
        for &y in ys {
            if y == x {
                sources.push(DIAGONAL);
                continue;
            }
            let word = words[y as usize >> 6];
            let bit = 1u64 << (y & 63);
            if word & bit != 0 {
                let idx = ranks[y as usize >> 6] + (word & (bit - 1)).count_ones();
                sources.push(slots[idx as usize]);
            }
        }
    }
}

/// `Σ` of slot `slot`'s recorded contribution sequence against the
/// opposite side's current `scores`. Adds the same values in the same
/// order as the reference oracle's nested loops, so the result is
/// bit-identical.
fn replay_sum(idx: &ReplayIndex, scores: &[f64], slot: usize) -> f64 {
    let mut sum = 0.0;
    for &src in idx.sources(slot) {
        sum += if src == DIAGONAL {
            1.0
        } else {
            scores[src as usize]
        };
    }
    sum
}

/// The frozen inputs of a SimRank run: both pair universes, CSR copies
/// of the postings (term → records) and term lists (record → terms),
/// and the two per-slot `ReplayIndex`es the iteration loop gathers
/// over. Build once, iterate many times.
#[derive(Debug, Clone, Default)]
pub struct SimRankUniverse {
    records: PairUniverse,
    terms: PairUniverse,
    post_offsets: Vec<usize>,
    post_records: Vec<u32>,
    rt_offsets: Vec<usize>,
    rt_terms: Vec<u32>,
    /// Per term-pair slot: contributing record-pair slots (Eq. 2).
    term_replay: ReplayIndex,
    /// Per record-pair slot: contributing term-pair slots (Eq. 1).
    rec_replay: ReplayIndex,
    /// Per term-pair slot: `(|I_a| · |I_b|) as f64`, Eq. 2's normalizer
    /// (constant across iterations, so computed once).
    term_norm: Vec<f64>,
    /// Per record-pair slot: `(|O_a| · |O_b|) as f64`, Eq. 1's normalizer.
    rec_norm: Vec<f64>,
}

impl SimRankUniverse {
    /// Builds the pruned pair universes.
    ///
    /// * `record_terms[r]` — sorted, deduplicated term ids of record `r`
    ///   (`O(ri)` in Eq. 1).
    /// * `n_terms` — size of the term universe.
    /// * `pair_filter` — optional candidate policy (e.g. cross-source
    ///   only); filtered record pairs are not tracked (score 0).
    pub fn build(
        record_terms: &[&[u32]],
        n_terms: usize,
        pair_filter: Option<&dyn Fn(u32, u32) -> bool>,
    ) -> Self {
        let _span = er_obs::span("simrank_universe_build");
        // Postings CSR: term -> ascending records.
        let mut post_offsets = vec![0usize; n_terms + 1];
        for terms in record_terms {
            for &t in *terms {
                post_offsets[t as usize + 1] += 1;
            }
        }
        for i in 0..n_terms {
            post_offsets[i + 1] += post_offsets[i];
        }
        let mut cursor = post_offsets.clone();
        let mut post_records = vec![0u32; post_offsets[n_terms]];
        for (r, terms) in record_terms.iter().enumerate() {
            debug_assert!(
                terms.windows(2).all(|w| w[0] < w[1]),
                "terms must be sorted+dedup"
            );
            for &t in *terms {
                post_records[cursor[t as usize]] = r as u32;
                cursor[t as usize] += 1;
            }
        }
        // Record-terms CSR (a flat copy of the input slices).
        let mut rt_offsets = Vec::with_capacity(record_terms.len() + 1);
        rt_offsets.push(0usize);
        let mut rt_terms = Vec::with_capacity(post_offsets[n_terms]);
        for terms in record_terms {
            rt_terms.extend_from_slice(terms);
            rt_offsets.push(rt_terms.len());
        }

        // Candidate record pairs: share >= 1 term and pass the filter.
        // A pair recurs once per shared term; the seen-bitset keeps each
        // occurrence after the first (and the filter call) off the list,
        // so the sort in `from_pairs` only handles unique pairs.
        let mut rec_seen = SeenPairs::new(record_terms.len());
        let mut rec_pairs: Vec<(u32, u32)> = Vec::new();
        for t in 0..n_terms {
            let recs = &post_records[post_offsets[t]..post_offsets[t + 1]];
            for (i, &a) in recs.iter().enumerate() {
                for &b in &recs[i + 1..] {
                    if !rec_seen.insert(a, b) {
                        continue;
                    }
                    if let Some(f) = pair_filter {
                        if !f(a, b) {
                            continue;
                        }
                    }
                    rec_pairs.push((a, b));
                }
            }
        }
        // Candidate term pairs: co-occur in >= 1 record.
        let mut term_seen = SeenPairs::new(n_terms);
        let mut term_pairs: Vec<(u32, u32)> = Vec::new();
        for terms in record_terms {
            for (i, &a) in terms.iter().enumerate() {
                for &b in &terms[i + 1..] {
                    if term_seen.insert(a, b) {
                        term_pairs.push((a, b));
                    }
                }
            }
        }
        let records = PairUniverse::from_pairs(record_terms.len(), rec_pairs);
        let terms = PairUniverse::from_pairs(n_terms, term_pairs);
        er_obs::gauge_set("simrank_record_pairs", records.len() as f64);
        er_obs::gauge_set("simrank_term_pairs", terms.len() as f64);

        // Record each slot's contribution sequence once; the iteration
        // loop replays it every pass instead of re-searching (the search
        // cost is paid once here instead of once per iteration). The
        // rank-bitset probe is the fast path; outsized universes fall
        // back to the two-pointer walk (same emission sequence).
        let rec_bits = AdjBits::build(&records, record_terms.len());
        let term_bits = AdjBits::build(&terms, n_terms);
        let mut term_replay = ReplayIndex {
            offsets: Vec::with_capacity(terms.len() + 1),
            sources: Vec::new(),
        };
        term_replay.offsets.push(0);
        let mut term_norm = Vec::with_capacity(terms.len());
        for slot in 0..terms.len() {
            let (ta, tb) = terms.pair(slot);
            let ia = &post_records[post_offsets[ta as usize]..post_offsets[ta as usize + 1]];
            let ib = &post_records[post_offsets[tb as usize]..post_offsets[tb as usize + 1]];
            match &rec_bits {
                Some(bits) => push_sources_bits(&records, bits, ia, ib, &mut term_replay.sources),
                None => push_sources(&records, ia, ib, &mut term_replay.sources),
            }
            term_replay.offsets.push(term_replay.sources.len());
            term_norm.push((ia.len() * ib.len()) as f64);
        }
        let mut rec_replay = ReplayIndex {
            offsets: Vec::with_capacity(records.len() + 1),
            sources: Vec::new(),
        };
        rec_replay.offsets.push(0);
        let mut rec_norm = Vec::with_capacity(records.len());
        for slot in 0..records.len() {
            let (ra, rb) = records.pair(slot);
            let oa = &rt_terms[rt_offsets[ra as usize]..rt_offsets[ra as usize + 1]];
            let ob = &rt_terms[rt_offsets[rb as usize]..rt_offsets[rb as usize + 1]];
            match &term_bits {
                Some(bits) => push_sources_bits(&terms, bits, oa, ob, &mut rec_replay.sources),
                None => push_sources(&terms, oa, ob, &mut rec_replay.sources),
            }
            rec_replay.offsets.push(rec_replay.sources.len());
            rec_norm.push((oa.len() * ob.len()) as f64);
        }

        Self {
            records,
            terms,
            post_offsets,
            post_records,
            rt_offsets,
            rt_terms,
            term_replay,
            rec_replay,
            term_norm,
            rec_norm,
        }
    }

    /// The record-pair universe.
    pub fn records(&self) -> &PairUniverse {
        &self.records
    }

    /// The term-pair universe.
    pub fn terms(&self) -> &PairUniverse {
        &self.terms
    }

    /// Ascending postings (records containing term `t`).
    pub fn postings(&self, t: u32) -> &[u32] {
        &self.post_records[self.post_offsets[t as usize]..self.post_offsets[t as usize + 1]]
    }

    /// Ascending term ids of record `r`.
    pub fn record_terms(&self, r: u32) -> &[u32] {
        &self.rt_terms[self.rt_offsets[r as usize]..self.rt_offsets[r as usize + 1]]
    }
}

/// Reusable score buffers for [`simrank_flat`]: the record scores are
/// double-buffered across iterations, the term scores are rewritten in
/// full each iteration before they are read.
///
/// A scratch may be reused across runs on *different* universes — every
/// run re-zeros exactly the slots it owns before iterating, so dirty
/// state from a previous (larger) run cannot leak (pinned by
/// `prop_simrank.rs`). Buffers grow to the high-water mark and are never
/// shrunk, which is what makes repeat runs allocation-free.
#[derive(Debug, Clone, Default)]
pub struct SimRankScratch {
    rec_prev: Vec<f64>,
    rec_next: Vec<f64>,
    terms: Vec<f64>,
}

impl SimRankScratch {
    /// Re-zeros the buffers for a run over `universe` (retaining
    /// capacity).
    fn prepare(&mut self, universe: &SimRankUniverse) {
        for (buf, len) in [
            (&mut self.rec_prev, universe.records.len()),
            (&mut self.rec_next, universe.records.len()),
            (&mut self.terms, universe.terms.len()),
        ] {
            buf.clear();
            buf.resize(len, 0.0);
        }
    }

    /// Record-pair scores of the last run, parallel to
    /// `universe.records()` slots.
    pub fn record_scores(&self) -> &[f64] {
        &self.rec_prev
    }

    /// Term-pair scores of the last run, parallel to `universe.terms()`
    /// slots.
    pub fn term_scores(&self) -> &[f64] {
        &self.terms
    }
}

/// Runs the flattened SimRank recursion over a prebuilt universe,
/// leaving the final scores in `scratch` ([`SimRankScratch::record_scores`]
/// / [`SimRankScratch::term_scores`]).
///
/// Each iteration is parallelized over pair-slot ranges on `pool`; every
/// slot is computed independently from the previous buffer with a serial
/// neighbor sum, so the result is bit-identical at any thread count. On a
/// serial pool the loop touches no allocator at steady state.
pub fn simrank_flat(
    universe: &SimRankUniverse,
    config: &SimRankConfig,
    scratch: &mut SimRankScratch,
    pool: &WorkerPool,
) {
    scratch.prepare(universe);
    // One dispatch decision for the whole run (each slot replays a
    // contribution list, ~8 ops apiece); sub-cutover universes iterate
    // inline with no per-iteration scope bookkeeping.
    let work = (universe.terms.len() + universe.records.len()).saturating_mul(8);
    let pool = pool.dispatch(work).is_parallel().then_some(pool);
    for _ in 0..config.iterations {
        // Terms from the previous record scores (Eq. 2), then records
        // from the fresh term scores (Eq. 1) — Jacobi-style, exactly the
        // reference oracle's order.
        update_slots(&mut scratch.terms, pool, &|slot| {
            term_pair_score(universe, &scratch.rec_prev, slot, config.c2)
        });
        update_slots(&mut scratch.rec_next, pool, &|slot| {
            record_pair_score(universe, &scratch.terms, slot, config.c1)
        });
        std::mem::swap(&mut scratch.rec_prev, &mut scratch.rec_next);
    }
}

/// Fills `out[slot] = score(slot)` for every slot, splitting the slot
/// range into deterministic chunks on `pool`. Chunks write disjoint
/// subslices and each slot's math is serial, so chunking never changes
/// bits. The serial path bypasses the pool entirely (no scope bookkeeping,
/// no allocation).
fn update_slots(out: &mut [f64], pool: Option<&WorkerPool>, score: &(dyn Fn(usize) -> f64 + Sync)) {
    let Some(pool) = pool.filter(|p| !p.is_serial()) else {
        for (slot, v) in out.iter_mut().enumerate() {
            *v = score(slot);
        }
        return;
    };
    let ranges = er_pool::chunk_ranges(out.len(), pool.threads(), MIN_CHUNK);
    // er-lint: allow(dispatch) -- pool param is pre-gated by the once-per-run dispatch decision in the caller
    pool.scope(|s| {
        let mut rest = out;
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let start = r.start;
            s.submit(move || {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = score(start + k);
                }
            });
        }
    });
}

/// Eq. 2 for term-pair `slot`: `C2 / (|I_a||I_b|) · Σ_{ra ∈ I_a, rb ∈ I_b}
/// s(ra, rb)`, replayed from the prerecorded contribution sequence in
/// ascending `(ra, rb)` order like the oracle. Pruned record pairs
/// contribute an exact `+0.0` and were omitted at build time.
// er-lint: zero-alloc
fn term_pair_score(u: &SimRankUniverse, rec_scores: &[f64], slot: usize, c2: f64) -> f64 {
    let sum = replay_sum(&u.term_replay, rec_scores, slot);
    c2 * sum / u.term_norm[slot]
}

/// Eq. 1 for record-pair `slot`: `C1 / (|O_a||O_b|) · Σ_{ta ∈ O_a, tb ∈ O_b}
/// s(ta, tb)` over the fresh term scores, replayed the same way.
// er-lint: zero-alloc
fn record_pair_score(u: &SimRankUniverse, term_scores: &[f64], slot: usize, c1: f64) -> f64 {
    let sum = replay_sum(&u.rec_replay, term_scores, slot);
    c1 * sum / u.rec_norm[slot]
}

/// Sparse SimRank scores for record pairs and term pairs, in flat
/// slot-indexed form over the run's [`PairUniverse`]s.
#[derive(Debug, Clone)]
pub struct SimRankScores {
    records: PairUniverse,
    terms: PairUniverse,
    record_scores: Vec<f64>,
    term_scores: Vec<f64>,
}

impl SimRankScores {
    /// Record-pair similarity `sb(ri, rj)`; 1 on the diagonal, 0 for
    /// pruned/unconnected pairs.
    pub fn record(&self, i: u32, j: u32) -> f64 {
        if i == j {
            return 1.0;
        }
        self.records
            .slot(i, j)
            .map_or(0.0, |s| self.record_scores[s])
    }

    /// Term-pair similarity `sb(ti, tj)`.
    pub fn term(&self, i: u32, j: u32) -> f64 {
        if i == j {
            return 1.0;
        }
        self.terms.slot(i, j).map_or(0.0, |s| self.term_scores[s])
    }

    /// Number of tracked (non-pruned) record pairs.
    pub fn tracked_record_pairs(&self) -> usize {
        self.record_scores.len()
    }

    /// Iterates tracked record pairs with their scores, in sorted order.
    pub fn record_entries(&self) -> impl Iterator<Item = ((u32, u32), f64)> + '_ {
        self.records.iter().zip(self.record_scores.iter().copied()) // er-lint: allow(unordered_iteration) -- sorted Vec fields; they merely share names with the oracle's HashMaps
    }

    /// Iterates tracked term pairs with their scores, in sorted order.
    pub fn term_entries(&self) -> impl Iterator<Item = ((u32, u32), f64)> + '_ {
        self.terms.iter().zip(self.term_scores.iter().copied()) // er-lint: allow(unordered_iteration) -- sorted Vec fields; they merely share names with the oracle's HashMaps
    }
}

/// Runs pruned bipartite SimRank serially (see [`bipartite_simrank_pooled`]).
pub fn bipartite_simrank(
    record_terms: &[&[u32]],
    n_terms: usize,
    config: &SimRankConfig,
    pair_filter: Option<&dyn Fn(u32, u32) -> bool>,
) -> SimRankScores {
    bipartite_simrank_pooled(
        record_terms,
        n_terms,
        config,
        pair_filter,
        &WorkerPool::new(1),
    )
}

/// Runs pruned bipartite SimRank on the CSR-flattened kernel, iterating
/// on `pool`. Results are bit-identical at any pool size and to the
/// HashMap [`mod@reference`] oracle.
///
/// * `record_terms[r]` — sorted, deduplicated term ids of record `r`.
/// * `n_terms` — size of the term universe.
/// * `pair_filter` — optional candidate policy (e.g. cross-source only);
///   filtered pairs keep score 0.
pub fn bipartite_simrank_pooled(
    record_terms: &[&[u32]],
    n_terms: usize,
    config: &SimRankConfig,
    pair_filter: Option<&dyn Fn(u32, u32) -> bool>,
    pool: &WorkerPool,
) -> SimRankScores {
    let universe = SimRankUniverse::build(record_terms, n_terms, pair_filter);
    let mut scratch = SimRankScratch::default();
    simrank_flat(&universe, config, &mut scratch, pool);
    SimRankScores {
        records: universe.records,
        terms: universe.terms,
        record_scores: scratch.rec_prev,
        term_scores: scratch.terms,
    }
}

pub mod reference {
    //! The original `HashMap`-based mutual recursion, retained verbatim
    //! as the correctness oracle for the CSR-flattened kernel (bit-
    //! identity is test-enforced in `prop_simrank.rs`) and as the
    //! baseline the `simrank_smoke` bench gate times against. Not a hot
    //! path — use [`super::bipartite_simrank`].

    use std::collections::HashMap;

    use super::SimRankConfig;

    /// Scores keyed by normalized `(min, max)` node-id pairs.
    pub type PairScores = HashMap<(u32, u32), f64>;

    /// Runs the HashMap recursion; returns `(record_scores, term_scores)`
    /// keyed by normalized `(min, max)` pairs.
    pub fn bipartite_simrank_reference(
        record_terms: &[&[u32]],
        n_terms: usize,
        config: &SimRankConfig,
        pair_filter: Option<&dyn Fn(u32, u32) -> bool>,
    ) -> (PairScores, PairScores) {
        // Postings: term -> sorted records.
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); n_terms];
        for (r, terms) in record_terms.iter().enumerate() {
            for &t in *terms {
                postings[t as usize].push(r as u32);
            }
        }

        // Candidate record pairs: share >= 1 term and pass the filter.
        let mut record_scores: HashMap<(u32, u32), f64> = HashMap::new();
        for recs in &postings {
            for (i, &a) in recs.iter().enumerate() {
                for &b in &recs[i + 1..] {
                    if let Some(f) = pair_filter {
                        if !f(a, b) {
                            continue;
                        }
                    }
                    record_scores.entry((a, b)).or_insert(0.0);
                }
            }
        }
        // Candidate term pairs: co-occur in >= 1 record.
        let mut term_scores: HashMap<(u32, u32), f64> = HashMap::new();
        for terms in record_terms {
            for (i, &a) in terms.iter().enumerate() {
                for &b in &terms[i + 1..] {
                    term_scores.entry((a, b)).or_insert(0.0);
                }
            }
        }

        for _ in 0..config.iterations {
            // Update term scores from record scores (Eq. 2), reading the
            // previous record scores (Jacobi-style update).
            let mut new_terms = HashMap::with_capacity(term_scores.len());
            // er-lint: allow(unordered_iteration) -- fills a keyed map; insertion order never escapes the oracle
            for &(ta, tb) in term_scores.keys() {
                let (ia, ib) = (&postings[ta as usize], &postings[tb as usize]);
                if ia.is_empty() || ib.is_empty() {
                    continue;
                }
                let mut sum = 0.0;
                for &ra in ia {
                    for &rb in ib {
                        sum += lookup(&record_scores, ra, rb);
                    }
                }
                let score = config.c2 * sum / (ia.len() * ib.len()) as f64;
                new_terms.insert((ta, tb), score);
            }
            // Update record scores from the *new* term scores (Eq. 1).
            let mut new_records = HashMap::with_capacity(record_scores.len());
            // er-lint: allow(unordered_iteration) -- fills a keyed map; insertion order never escapes the oracle
            for &(ra, rb) in record_scores.keys() {
                let (oa, ob) = (record_terms[ra as usize], record_terms[rb as usize]);
                if oa.is_empty() || ob.is_empty() {
                    continue;
                }
                let mut sum = 0.0;
                for &ta in oa {
                    for &tb in ob {
                        sum += lookup(&new_terms, ta, tb);
                    }
                }
                let score = config.c1 * sum / (oa.len() * ob.len()) as f64;
                new_records.insert((ra, rb), score);
            }
            term_scores = new_terms;
            record_scores = new_records;
        }
        (record_scores, term_scores)
    }

    fn lookup(map: &HashMap<(u32, u32), f64>, i: u32, j: u32) -> f64 {
        if i == j {
            return 1.0;
        }
        let key = if i < j { (i, j) } else { (j, i) };
        map.get(&key).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records 0 and 1 are near-duplicates ({a,b,c} vs {a,b,d});
    /// record 2 is unrelated except sharing one term with 1 ({d,e}).
    fn sample() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 2], vec![0, 1, 3], vec![3, 4]]
    }

    fn run(cfg: &SimRankConfig) -> SimRankScores {
        let data = sample();
        let slices: Vec<&[u32]> = data.iter().map(Vec::as_slice).collect();
        bipartite_simrank(&slices, 5, cfg, None)
    }

    #[test]
    fn duplicates_outscore_unrelated() {
        let s = run(&SimRankConfig::default());
        assert!(
            s.record(0, 1) > s.record(1, 2),
            "{} vs {}",
            s.record(0, 1),
            s.record(1, 2)
        );
        assert_eq!(s.record(0, 2), 0.0, "no shared term → pruned to 0");
    }

    #[test]
    fn diagonal_is_one_and_symmetric() {
        let s = run(&SimRankConfig::default());
        assert_eq!(s.record(1, 1), 1.0);
        assert_eq!(s.term(3, 3), 1.0);
        assert_eq!(s.record(0, 1), s.record(1, 0));
    }

    #[test]
    fn scores_bounded_by_decay() {
        let s = run(&SimRankConfig::default());
        assert!(s.record(0, 1) <= 0.8 + 1e-12, "off-diagonal ≤ C1");
        assert!(s.record(0, 1) > 0.0);
    }

    #[test]
    fn zero_iterations_gives_zero_offdiagonal() {
        let s = run(&SimRankConfig {
            iterations: 0,
            ..Default::default()
        });
        assert_eq!(s.record(0, 1), 0.0);
        assert_eq!(s.record(2, 2), 1.0);
    }

    #[test]
    fn pair_filter_prunes() {
        let data = sample();
        let slices: Vec<&[u32]> = data.iter().map(Vec::as_slice).collect();
        let filter = |a: u32, b: u32| !(a == 0 && b == 1 || a == 1 && b == 0);
        let s = bipartite_simrank(&slices, 5, &SimRankConfig::default(), Some(&filter));
        assert_eq!(s.record(0, 1), 0.0);
        assert!(s.record(1, 2) > 0.0);
    }

    #[test]
    fn identical_records_score_near_c1() {
        let data = [vec![0u32, 1], vec![0, 1]];
        let slices: Vec<&[u32]> = data.iter().map(Vec::as_slice).collect();
        let s = bipartite_simrank(
            &slices,
            2,
            &SimRankConfig {
                iterations: 20,
                ..Default::default()
            },
            None,
        );
        // Identical term sets: score converges toward C1 * avg term sim,
        // strictly positive and the maximum among pairs.
        assert!(s.record(0, 1) > 0.5, "{}", s.record(0, 1));
    }

    #[test]
    fn empty_input() {
        let s = bipartite_simrank(&[], 0, &SimRankConfig::default(), None);
        assert_eq!(s.tracked_record_pairs(), 0);
    }

    #[test]
    fn flat_matches_reference_bitwise() {
        let data = sample();
        let slices: Vec<&[u32]> = data.iter().map(Vec::as_slice).collect();
        let cfg = SimRankConfig::default();
        let flat = bipartite_simrank(&slices, 5, &cfg, None);
        let (rec_ref, term_ref) = reference::bipartite_simrank_reference(&slices, 5, &cfg, None);
        assert_eq!(flat.tracked_record_pairs(), rec_ref.len());
        for (key, score) in flat.record_entries() {
            assert_eq!(score.to_bits(), rec_ref[&key].to_bits(), "record {key:?}");
        }
        for (key, score) in flat.term_entries() {
            assert_eq!(score.to_bits(), term_ref[&key].to_bits(), "term {key:?}");
        }
    }

    #[test]
    fn pooled_matches_serial_bitwise() {
        let data = sample();
        let slices: Vec<&[u32]> = data.iter().map(Vec::as_slice).collect();
        let cfg = SimRankConfig::default();
        let serial = bipartite_simrank(&slices, 5, &cfg, None);
        for threads in [2, 4] {
            let pool = WorkerPool::new(threads);
            let pooled = bipartite_simrank_pooled(&slices, 5, &cfg, None, &pool);
            let a: Vec<u64> = serial.record_entries().map(|(_, s)| s.to_bits()).collect();
            let b: Vec<u64> = pooled.record_entries().map(|(_, s)| s.to_bits()).collect();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let data = sample();
        let slices: Vec<&[u32]> = data.iter().map(Vec::as_slice).collect();
        let cfg = SimRankConfig::default();
        let pool = WorkerPool::new(1);
        let big = SimRankUniverse::build(&slices, 5, None);
        let mut scratch = SimRankScratch::default();
        simrank_flat(&big, &cfg, &mut scratch, &pool);

        // Re-run a smaller problem on the dirty scratch: must equal a
        // fresh-scratch run bit for bit.
        let small_data = [vec![0u32, 1], vec![0, 1]];
        let small: Vec<&[u32]> = small_data.iter().map(Vec::as_slice).collect();
        let u = SimRankUniverse::build(&small, 2, None);
        simrank_flat(&u, &cfg, &mut scratch, &pool);
        let mut fresh = SimRankScratch::default();
        simrank_flat(&u, &cfg, &mut fresh, &pool);
        assert_eq!(scratch.record_scores(), fresh.record_scores());
        assert_eq!(scratch.term_scores(), fresh.term_scores());
    }

    #[test]
    fn bitset_probe_matches_two_pointer_walk() {
        // LCG-drawn universe large enough for multi-word bitmap rows.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n_nodes = 200usize;
        let pairs: Vec<(u32, u32)> = (0..600)
            .map(|_| (next() % n_nodes as u32, next() % n_nodes as u32))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        let universe = PairUniverse::from_pairs(n_nodes, pairs);
        let bits = AdjBits::build(&universe, n_nodes).expect("under the memory cap");
        for _ in 0..50 {
            let mut xs: Vec<u32> = (0..8).map(|_| next() % n_nodes as u32).collect();
            xs.sort_unstable();
            xs.dedup();
            let mut ys: Vec<u32> = (0..12).map(|_| next() % n_nodes as u32).collect();
            ys.sort_unstable();
            ys.dedup();
            let mut walked = Vec::new();
            push_sources(&universe, &xs, &ys, &mut walked);
            let mut probed = Vec::new();
            push_sources_bits(&universe, &bits, &xs, &ys, &mut probed);
            assert_eq!(walked, probed);
        }
    }

    #[test]
    fn pair_universe_slot_lookup() {
        let u = PairUniverse::from_pairs(5, vec![(1, 3), (0, 2), (1, 3), (0, 4)]);
        assert_eq!(u.len(), 3, "dedup");
        assert_eq!(u.slot(3, 1), u.slot(1, 3));
        assert!(u.slot(1, 3).is_some());
        assert!(u.slot(2, 2).is_none(), "diagonal untracked");
        assert!(u.slot(0, 1).is_none());
        assert_eq!(u.partners(1), &[3]);
        assert_eq!(u.partners(0), &[2, 4]);
        let pairs: Vec<_> = u.iter().collect();
        assert_eq!(pairs, vec![(0, 2), (0, 4), (1, 3)]);
    }
}
