//! Bipartite SimRank (§III-A, Eq. 1–2) — the first graph-theoretic
//! baseline.
//!
//! Two records are similar if they contain similar terms; two terms are
//! similar if they are contained in similar records — Jeh & Widom's
//! bipartite SimRank \[23\] applied to the record–term graph.
//!
//! # Pruned evaluation
//!
//! Dense SimRank needs `n² + m²` scores. The baseline only ever
//! thresholds record pairs that could possibly match — pairs sharing at
//! least one term — so we maintain sparse score maps restricted to
//! (a) record pairs with a common term and (b) term pairs co-occurring in
//! at least one record. Scores that would flow through pairs outside
//! these sets are treated as zero; for entity-resolution graphs this
//! prunes exactly the negligible long-range mass (documented deviation
//! from the dense definition, standard in SimRank practice).

use std::collections::HashMap;

/// SimRank parameters. The paper sets `C1 = C2 = 0.8` (§VII-C).
#[derive(Debug, Clone, Copy)]
pub struct SimRankConfig {
    /// Decay on the record side (Eq. 1).
    pub c1: f64,
    /// Decay on the term side (Eq. 2).
    pub c2: f64,
    /// Number of iterations of the mutual recursion.
    pub iterations: usize,
}

impl Default for SimRankConfig {
    fn default() -> Self {
        Self {
            c1: 0.8,
            c2: 0.8,
            iterations: 5,
        }
    }
}

/// Sparse SimRank scores for record pairs and term pairs.
#[derive(Debug, Clone)]
pub struct SimRankScores {
    record_scores: HashMap<(u32, u32), f64>,
    term_scores: HashMap<(u32, u32), f64>,
}

impl SimRankScores {
    /// Record-pair similarity `sb(ri, rj)`; 1 on the diagonal, 0 for
    /// pruned/unconnected pairs.
    pub fn record(&self, i: u32, j: u32) -> f64 {
        if i == j {
            return 1.0;
        }
        let key = if i < j { (i, j) } else { (j, i) };
        self.record_scores.get(&key).copied().unwrap_or(0.0)
    }

    /// Term-pair similarity `sb(ti, tj)`.
    pub fn term(&self, i: u32, j: u32) -> f64 {
        if i == j {
            return 1.0;
        }
        let key = if i < j { (i, j) } else { (j, i) };
        self.term_scores.get(&key).copied().unwrap_or(0.0)
    }

    /// Number of tracked (non-pruned) record pairs.
    pub fn tracked_record_pairs(&self) -> usize {
        self.record_scores.len()
    }
}

/// Runs pruned bipartite SimRank.
///
/// * `record_terms[r]` — sorted, deduplicated term ids of record `r`
///   (`O(ri)` in Eq. 1).
/// * `n_terms` — size of the term universe.
/// * `pair_filter` — optional candidate policy (e.g. cross-source only);
///   filtered pairs keep score 0.
pub fn bipartite_simrank(
    record_terms: &[&[u32]],
    n_terms: usize,
    config: &SimRankConfig,
    pair_filter: Option<&dyn Fn(u32, u32) -> bool>,
) -> SimRankScores {
    let n = record_terms.len();
    // Postings: term -> sorted records.
    let mut postings: Vec<Vec<u32>> = vec![Vec::new(); n_terms];
    for (r, terms) in record_terms.iter().enumerate() {
        for &t in *terms {
            postings[t as usize].push(r as u32);
        }
    }

    // Candidate record pairs: share >= 1 term and pass the filter.
    let mut record_scores: HashMap<(u32, u32), f64> = HashMap::new();
    for recs in &postings {
        for (i, &a) in recs.iter().enumerate() {
            for &b in &recs[i + 1..] {
                if let Some(f) = pair_filter {
                    if !f(a, b) {
                        continue;
                    }
                }
                record_scores.entry((a, b)).or_insert(0.0);
            }
        }
    }
    // Candidate term pairs: co-occur in >= 1 record.
    let mut term_scores: HashMap<(u32, u32), f64> = HashMap::new();
    for terms in record_terms {
        for (i, &a) in terms.iter().enumerate() {
            for &b in &terms[i + 1..] {
                term_scores.entry((a, b)).or_insert(0.0);
            }
        }
    }

    for _ in 0..config.iterations {
        // Update term scores from record scores (Eq. 2), reading the
        // previous record scores (Jacobi-style update like the original).
        let mut new_terms = HashMap::with_capacity(term_scores.len());
        for &(ta, tb) in term_scores.keys() {
            let (ia, ib) = (&postings[ta as usize], &postings[tb as usize]);
            if ia.is_empty() || ib.is_empty() {
                continue;
            }
            let mut sum = 0.0;
            for &ra in ia {
                for &rb in ib {
                    sum += lookup(&record_scores, ra, rb);
                }
            }
            let score = config.c2 * sum / (ia.len() * ib.len()) as f64;
            new_terms.insert((ta, tb), score);
        }
        // Update record scores from the *new* term scores (Eq. 1).
        let mut new_records = HashMap::with_capacity(record_scores.len());
        for &(ra, rb) in record_scores.keys() {
            let (oa, ob) = (record_terms[ra as usize], record_terms[rb as usize]);
            if oa.is_empty() || ob.is_empty() {
                continue;
            }
            let mut sum = 0.0;
            for &ta in oa {
                for &tb in ob {
                    sum += lookup_terms(&new_terms, ta, tb);
                }
            }
            let score = config.c1 * sum / (oa.len() * ob.len()) as f64;
            new_records.insert((ra, rb), score);
        }
        term_scores = new_terms;
        record_scores = new_records;
    }
    let _ = n;
    SimRankScores {
        record_scores,
        term_scores,
    }
}

fn lookup(map: &HashMap<(u32, u32), f64>, i: u32, j: u32) -> f64 {
    if i == j {
        return 1.0;
    }
    let key = if i < j { (i, j) } else { (j, i) };
    map.get(&key).copied().unwrap_or(0.0)
}

fn lookup_terms(map: &HashMap<(u32, u32), f64>, i: u32, j: u32) -> f64 {
    lookup(map, i, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records 0 and 1 are near-duplicates ({a,b,c} vs {a,b,d});
    /// record 2 is unrelated except sharing one term with 1 ({d,e}).
    fn sample() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 2], vec![0, 1, 3], vec![3, 4]]
    }

    fn run(cfg: &SimRankConfig) -> SimRankScores {
        let data = sample();
        let slices: Vec<&[u32]> = data.iter().map(Vec::as_slice).collect();
        bipartite_simrank(&slices, 5, cfg, None)
    }

    #[test]
    fn duplicates_outscore_unrelated() {
        let s = run(&SimRankConfig::default());
        assert!(
            s.record(0, 1) > s.record(1, 2),
            "{} vs {}",
            s.record(0, 1),
            s.record(1, 2)
        );
        assert_eq!(s.record(0, 2), 0.0, "no shared term → pruned to 0");
    }

    #[test]
    fn diagonal_is_one_and_symmetric() {
        let s = run(&SimRankConfig::default());
        assert_eq!(s.record(1, 1), 1.0);
        assert_eq!(s.term(3, 3), 1.0);
        assert_eq!(s.record(0, 1), s.record(1, 0));
    }

    #[test]
    fn scores_bounded_by_decay() {
        let s = run(&SimRankConfig::default());
        assert!(s.record(0, 1) <= 0.8 + 1e-12, "off-diagonal ≤ C1");
        assert!(s.record(0, 1) > 0.0);
    }

    #[test]
    fn zero_iterations_gives_zero_offdiagonal() {
        let s = run(&SimRankConfig {
            iterations: 0,
            ..Default::default()
        });
        assert_eq!(s.record(0, 1), 0.0);
        assert_eq!(s.record(2, 2), 1.0);
    }

    #[test]
    fn pair_filter_prunes() {
        let data = sample();
        let slices: Vec<&[u32]> = data.iter().map(Vec::as_slice).collect();
        let filter = |a: u32, b: u32| !(a == 0 && b == 1 || a == 1 && b == 0);
        let s = bipartite_simrank(&slices, 5, &SimRankConfig::default(), Some(&filter));
        assert_eq!(s.record(0, 1), 0.0);
        assert!(s.record(1, 2) > 0.0);
    }

    #[test]
    fn identical_records_score_near_c1() {
        let data = [vec![0u32, 1], vec![0, 1]];
        let slices: Vec<&[u32]> = data.iter().map(Vec::as_slice).collect();
        let s = bipartite_simrank(
            &slices,
            2,
            &SimRankConfig {
                iterations: 20,
                ..Default::default()
            },
            None,
        );
        // Identical term sets: score converges toward C1 * avg term sim,
        // strictly positive and the maximum among pairs.
        assert!(s.record(0, 1) > 0.5, "{}", s.record(0, 1));
    }

    #[test]
    fn empty_input() {
        let s = bipartite_simrank(&[], 0, &SimRankConfig::default(), None);
        assert_eq!(s.tracked_record_pairs(), 0);
    }
}
