//! The weighted record graph `Gr` of §VI-A.
//!
//! Nodes are records; an edge connects two records iff they form a pair
//! node in the bipartite graph (i.e. share at least one term), weighted by
//! the ITER similarity `s(ri, rj)`. RSS walks this graph directly;
//! CliqueRank materializes per-component transition matrices from it.

use er_pool::WorkerPool;

use crate::bipartite::PairNode;
use crate::components::{components, ComponentLabels};
use crate::csr::CsrGraph;
use crate::invariant::{debug_validate, InvariantViolation};

/// Weighted record graph with a pair-id ↔ edge mapping.
#[derive(Debug, Clone)]
pub struct RecordGraph {
    csr: CsrGraph,
    /// The pair list this graph was built from (edge `e` ↔ `pairs[e]`).
    pairs: Vec<PairNode>,
}

impl RecordGraph {
    /// Builds `Gr` over `n_records` nodes from pair nodes and their
    /// similarity scores (parallel slices). Pairs with non-positive
    /// similarity are dropped: a zero-similarity edge would have zero
    /// transition probability anyway and would only bloat the matrices.
    pub fn from_pair_scores(n_records: usize, pairs: &[PairNode], scores: &[f64]) -> Self {
        Self::build(n_records, pairs, scores, None)
    }

    /// [`Self::from_pair_scores`] with the score filter fanned out over a
    /// worker pool. The built graph is identical with or without a pool
    /// (chunk results concatenate back in input order).
    pub fn from_pair_scores_pooled(
        n_records: usize,
        pairs: &[PairNode],
        scores: &[f64],
        pool: &WorkerPool,
    ) -> Self {
        Self::build(n_records, pairs, scores, Some(pool))
    }

    fn build(
        n_records: usize,
        pairs: &[PairNode],
        scores: &[f64],
        pool: Option<&WorkerPool>,
    ) -> Self {
        assert_eq!(
            pairs.len(),
            scores.len(),
            "pairs and scores must be parallel"
        );
        let _span = er_obs::span("record_graph_build");
        const MIN_CHUNK: usize = 4096;
        let filter_range = |lo: usize, hi: usize| -> Vec<(PairNode, f64)> {
            pairs[lo..hi]
                .iter()
                .zip(&scores[lo..hi])
                .filter(|(_, &s)| s > 0.0)
                .map(|(&p, &s)| (p, s))
                .collect()
        };
        // Per-pair work is a compare-and-copy (~4 ops) — route the
        // serial/parallel choice through the pool's dispatch policy.
        let mut kept: Vec<(PairNode, f64)> = match pool {
            Some(pool)
                if pairs.len() >= 2 * MIN_CHUNK
                    && pool.dispatch(pairs.len().saturating_mul(4)).is_parallel() =>
            {
                let ranges = er_pool::chunk_ranges(pairs.len(), pool.threads() * 4, MIN_CHUNK);
                let mut parts: Vec<Vec<(PairNode, f64)>> =
                    ranges.iter().map(|_| Vec::new()).collect();
                pool.scope(|s| {
                    for (range, part) in ranges.iter().cloned().zip(parts.iter_mut()) {
                        let filter_range = &filter_range;
                        s.submit(move || *part = filter_range(range.start, range.end));
                    }
                });
                parts.concat()
            }
            _ => filter_range(0, pairs.len()),
        };
        // Sort so `pairs()` is binary-searchable regardless of input
        // order. In the pipeline the input comes from the bipartite
        // graph's sorted pair list, so this check skips the sort.
        if !kept.windows(2).all(|w| w[0].0 < w[1].0) {
            kept.sort_unstable_by_key(|&(p, _)| p);
        }
        let kept_pairs: Vec<PairNode> = kept.iter().map(|&(p, _)| p).collect();
        let edges: Vec<(u32, u32, f64)> = kept.iter().map(|&(p, s)| (p.a, p.b, s)).collect();
        let graph = Self {
            csr: CsrGraph::from_undirected_edges(n_records, &edges),
            pairs: kept_pairs,
        };
        debug_validate("RecordGraph::build", || graph.validate());
        graph
    }

    /// Checks the record-graph invariants on top of the CSR ones:
    ///
    /// * the adjacency passes [`CsrGraph::validate`] (sorted in-bounds
    ///   neighbor lists, no duplicates, symmetric finite weights);
    /// * every weight is strictly positive (non-positive pairs are
    ///   dropped at construction — a zero-weight edge would give a
    ///   zero-probability transition row in CliqueRank);
    /// * `pairs` is strictly ascending (binary-searchable), one entry per
    ///   edge, and each entry is an actual edge of the adjacency.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        self.csr.validate()?;
        let err = |detail: String| Err(InvariantViolation::new("RecordGraph", detail));
        if let Some((u, v, w)) = self.csr.edges().find(|&(_, _, w)| w <= 0.0) {
            return err(format!("non-positive similarity {w} on edge {{{u}, {v}}}"));
        }
        if self.pairs.len() != self.csr.edge_count() {
            return err(format!(
                "{} pairs for {} edges",
                self.pairs.len(),
                self.csr.edge_count()
            ));
        }
        if let Some(w) = self.pairs.windows(2).find(|w| w[0] >= w[1]) {
            return err(format!(
                "pair list not strictly ascending: {:?} then {:?}",
                w[0], w[1]
            ));
        }
        if let Some(p) = self.pairs.iter().find(|p| !self.csr.has_edge(p.a, p.b)) {
            return err(format!("pair {p:?} has no corresponding edge"));
        }
        Ok(())
    }

    /// The underlying CSR adjacency.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Number of records (nodes).
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Number of edges (surviving pairs).
    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    /// The retained pairs, sorted ascending (binary-searchable) and
    /// aligned with the edge-probability vectors produced by RSS and
    /// CliqueRank.
    pub fn pairs(&self) -> &[PairNode] {
        &self.pairs
    }

    /// Similarity weight of edge `{u, v}` if present.
    pub fn similarity(&self, u: u32, v: u32) -> Option<f64> {
        self.csr.edge_weight(u, v)
    }

    /// Sorted neighbors of `u` with aligned weights.
    pub fn neighbors(&self, u: u32) -> (&[u32], &[f64]) {
        (self.csr.neighbors(u), self.csr.neighbor_weights(u))
    }

    /// True when `{u, v}` is an edge (records share a term and have
    /// positive similarity).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.csr.has_edge(u, v)
    }

    /// Connected components of `Gr` (the blocks CliqueRank iterates over).
    pub fn components(&self) -> ComponentLabels {
        components(&self.csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(ps: &[(u32, u32)]) -> Vec<PairNode> {
        ps.iter().map(|&(a, b)| PairNode::new(a, b)).collect()
    }

    #[test]
    fn builds_weighted_graph() {
        let p = pairs(&[(0, 1), (1, 2), (3, 4)]);
        let g = RecordGraph::from_pair_scores(5, &p, &[0.9, 0.2, 0.7]);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.similarity(0, 1), Some(0.9));
        assert_eq!(g.similarity(1, 0), Some(0.9));
        assert_eq!(g.similarity(0, 2), None);
    }

    #[test]
    fn drops_zero_similarity_pairs() {
        let p = pairs(&[(0, 1), (1, 2)]);
        let g = RecordGraph::from_pair_scores(3, &p, &[0.5, 0.0]);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.pairs().len(), 1);
    }

    #[test]
    fn component_decomposition() {
        let p = pairs(&[(0, 1), (1, 2), (3, 4)]);
        let g = RecordGraph::from_pair_scores(6, &p, &[1.0, 1.0, 1.0]);
        let comps = g.components();
        assert_eq!(comps.count(), 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(comps.largest(), 3);
    }

    #[test]
    fn neighbors_aligned() {
        let p = pairs(&[(0, 1), (0, 2)]);
        let g = RecordGraph::from_pair_scores(3, &p, &[0.4, 0.6]);
        let (ns, ws) = g.neighbors(0);
        assert_eq!(ns, &[1, 2]);
        assert_eq!(ws, &[0.4, 0.6]);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_slices_panic() {
        RecordGraph::from_pair_scores(3, &pairs(&[(0, 1)]), &[]);
    }

    #[test]
    fn pooled_build_is_identical() {
        // Cross the parallel-filter threshold with a mix of kept and
        // dropped scores, unsorted input included.
        let n = 1500u32;
        let mut ps = Vec::new();
        for i in 0..n {
            for j in i + 1..(i + 8).min(n) {
                ps.push(PairNode::new(i, j));
            }
        }
        ps.reverse(); // exercise the sort path too
        let scores: Vec<f64> = (0..ps.len()).map(|i| ((i % 5) as f64) * 0.2).collect();
        let serial = RecordGraph::from_pair_scores(n as usize, &ps, &scores);
        for threads in [2, 4] {
            let pool = WorkerPool::new(threads);
            let pooled = RecordGraph::from_pair_scores_pooled(n as usize, &ps, &scores, &pool);
            assert_eq!(serial.pairs(), pooled.pairs(), "threads={threads}");
            for u in 0..n {
                assert_eq!(serial.neighbors(u), pooled.neighbors(u));
            }
        }
    }
}
