//! Sliding-window term co-occurrence graph (§III-B).
//!
//! TextRank / TW-IDF build an undirected graph whose nodes are terms and
//! whose edges connect terms co-occurring within a fixed-size sliding
//! window over a record's token sequence. PageRank on this graph yields
//! the term-salience weights of the TW-IDF baseline (Eq. 3–4).

use std::collections::HashSet;

use crate::csr::CsrGraph;

/// Builds the co-occurrence graph over `n_terms` from per-record token
/// sequences (token lists **with duplicates and in order**, as produced by
/// `er_text::Corpus::tokens`).
///
/// `window` is the sliding-window size in tokens (≥ 2); TW-IDF typically
/// uses 3–4. Edges are unweighted (weight 1.0) and deduplicated across the
/// whole corpus, matching the TextRank construction.
pub fn cooccurrence_graph(token_lists: &[&[u32]], n_terms: usize, window: usize) -> CsrGraph {
    assert!(window >= 2, "window must cover at least two tokens");
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    for tokens in token_lists {
        if tokens.len() < 2 {
            continue;
        }
        for start in 0..tokens.len() {
            let end = (start + window).min(tokens.len());
            for i in start..end {
                for j in i + 1..end {
                    let (a, b) = (tokens[i], tokens[j]);
                    if a == b {
                        continue;
                    }
                    let key = if a < b { (a, b) } else { (b, a) };
                    edges.insert(key);
                }
            }
        }
    }
    let mut edge_list: Vec<(u32, u32, f64)> = edges.into_iter().map(|(a, b)| (a, b, 1.0)).collect(); // er-lint: allow(unordered_iteration) -- sorted on the next line before any use
    edge_list.sort_unstable_by_key(|&(a, b, _)| (a, b));
    CsrGraph::from_undirected_edges(n_terms, &edge_list)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_two_links_adjacent_tokens() {
        let tokens: &[u32] = &[0, 1, 2, 3];
        let g = cooccurrence_graph(&[tokens], 4, 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn window_three_links_distance_two() {
        let tokens: &[u32] = &[0, 1, 2, 3];
        let g = cooccurrence_graph(&[tokens], 4, 3);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn duplicate_tokens_no_self_loop() {
        let tokens: &[u32] = &[0, 0, 1];
        let g = cooccurrence_graph(&[tokens], 2, 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn edges_deduplicated_across_records() {
        let a: &[u32] = &[0, 1];
        let b: &[u32] = &[1, 0];
        let g = cooccurrence_graph(&[a, b], 2, 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn hub_term_has_high_degree() {
        // Term 0 co-occurs with everything; discriminative terms 3,4 only
        // appear together.
        let r1: &[u32] = &[0, 1];
        let r2: &[u32] = &[0, 2];
        let r3: &[u32] = &[0, 3, 4];
        let g = cooccurrence_graph(&[r1, r2, r3], 5, 3);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(4), 2); // connected to 0 and 3
    }

    #[test]
    fn short_records_skipped() {
        let r: &[u32] = &[7];
        let g = cooccurrence_graph(&[r], 8, 2);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_tiny_window() {
        cooccurrence_graph(&[], 0, 1);
    }
}
