//! Append-friendly CSR rows with staged compaction — the posting-list
//! substrate of the streaming ingest path (`er-serve`).
//!
//! A plain CSR ([`crate::csr::CsrGraph`]) is the right read-side layout
//! but the wrong write-side one: inserting a value into row `r` shifts
//! every later row. The serving engine appends values (record ids) to
//! term rows on every ingested record, so this structure keeps each row
//! as an immutable **base** slice inside one contiguous arena plus a
//! small per-row **spill** vector of values appended since the last
//! compaction. Reads see the logical row `base ++ spill`; because
//! appended values are required to be strictly ascending per row (record
//! ids are assigned densely), the concatenation is already sorted and no
//! merge is ever needed.
//!
//! **Staged compaction:** spill vectors trade append cost for pointer
//! chasing on reads. [`AppendableCsr::spill_fraction`] reports how much
//! of the structure lives outside the arena; callers compact when it
//! crosses a policy threshold ([`AppendableCsr::maybe_compact`]), which
//! rebuilds the base arena in one linear pass and empties every spill.
//! Between compactions, appends are O(1) amortized and never move
//! another row's data.

/// CSR-like container of sorted `u32` rows supporting per-row appends.
///
/// Rows are created with [`AppendableCsr::push_row`] (or implicitly via
/// [`AppendableCsr::ensure_rows`]) and grow only at the tail; values
/// within a row must be appended in strictly ascending order.
#[derive(Debug, Clone, Default)]
pub struct AppendableCsr {
    /// Base arena row offsets (`base_offsets.len() == base_rows + 1`).
    base_offsets: Vec<usize>,
    /// Base arena values.
    base_values: Vec<u32>,
    /// Per-row spill of values appended since the last compaction. Rows
    /// beyond the base arena (created after the last compaction) have an
    /// empty base and live entirely in spill.
    spill: Vec<Vec<u32>>,
    /// Total values across all spill vectors.
    spilled: usize,
}

impl AppendableCsr {
    /// An empty structure with no rows.
    pub fn new() -> Self {
        Self {
            base_offsets: vec![0],
            base_values: Vec::new(),
            spill: Vec::new(),
            spilled: 0,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.spill.len()
    }

    /// Total number of stored values (base + spill).
    pub fn len(&self) -> usize {
        self.base_values.len() + self.spilled
    }

    /// True when no values are stored (rows may still exist).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a new empty row, returning its index.
    pub fn push_row(&mut self) -> usize {
        self.spill.push(Vec::new());
        self.spill.len() - 1
    }

    /// Grows the structure to at least `rows` rows.
    pub fn ensure_rows(&mut self, rows: usize) {
        if rows > self.spill.len() {
            self.spill.resize_with(rows, Vec::new);
        }
    }

    /// Number of rows covered by the base arena (rows created after the
    /// last [`AppendableCsr::compact`] have no base slice yet).
    fn base_rows(&self) -> usize {
        self.base_offsets.len() - 1
    }

    /// The compacted part of row `r`.
    pub fn base_row(&self, r: usize) -> &[u32] {
        if r < self.base_rows() {
            &self.base_values[self.base_offsets[r]..self.base_offsets[r + 1]]
        } else {
            &[]
        }
    }

    /// The values appended to row `r` since the last compaction.
    pub fn spill_row(&self, r: usize) -> &[u32] {
        &self.spill[r]
    }

    /// True when row `r` is fully contained in the base arena (its
    /// logical content is the contiguous [`AppendableCsr::base_row`]).
    pub fn is_clean(&self, r: usize) -> bool {
        self.spill[r].is_empty()
    }

    /// Logical length of row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        self.base_row(r).len() + self.spill[r].len()
    }

    /// Last value of row `r`, if any.
    pub fn row_last(&self, r: usize) -> Option<u32> {
        self.spill[r]
            .last()
            .or_else(|| self.base_row(r).last())
            .copied()
    }

    /// Appends `value` to row `r`. Values must arrive in strictly
    /// ascending order per row — the invariant that keeps every logical
    /// row sorted without merging.
    pub fn append(&mut self, r: usize, value: u32) {
        assert!(
            self.row_last(r).is_none_or(|last| value > last),
            "row {r}: append {value} breaks the ascending-order invariant"
        );
        self.spill[r].push(value);
        self.spilled += 1;
    }

    /// Copies the logical content of row `r` (base ++ spill, sorted
    /// ascending) into `out`, replacing its contents.
    pub fn row_into(&self, r: usize, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(self.base_row(r));
        out.extend_from_slice(&self.spill[r]);
    }

    /// The logical content of row `r` as a fresh vector.
    pub fn row_to_vec(&self, r: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.row_len(r));
        self.row_into(r, &mut out);
        out
    }

    /// Iterates the logical content of row `r` without allocating.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = u32> + '_ {
        self.base_row(r).iter().chain(self.spill[r].iter()).copied()
    }

    /// Fraction of stored values living in spill vectors — the staged
    /// compaction policy's input signal.
    pub fn spill_fraction(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.spilled as f64 / self.len() as f64
        }
    }

    /// Rebuilds the base arena from every logical row and empties the
    /// spill vectors. One linear pass over the stored values.
    pub fn compact(&mut self) {
        let rows = self.spill.len();
        let total = self.len();
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut values = Vec::with_capacity(total);
        offsets.push(0);
        for r in 0..rows {
            values.extend_from_slice(self.base_row(r));
            values.append(&mut self.spill[r]);
            offsets.push(values.len());
        }
        self.base_offsets = offsets;
        self.base_values = values;
        self.spilled = 0;
    }

    /// Compacts when the spill fraction is at least `threshold` (and
    /// anything is spilled at all); returns whether compaction ran. A
    /// threshold of `1.0` disables compaction.
    pub fn maybe_compact(&mut self, threshold: f64) -> bool {
        // A threshold of 1.0 disables staged compaction outright: the
        // spill fraction hits exactly 1.0 whenever the base arena is
        // empty (e.g. right after the first appends), which would
        // otherwise trigger a useless compaction at the "never" setting.
        if threshold < 1.0 && self.spilled > 0 && self.spill_fraction() >= threshold {
            self.compact();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_grow_and_read_back_sorted() {
        let mut c = AppendableCsr::new();
        c.ensure_rows(3);
        c.append(0, 2);
        c.append(0, 5);
        c.append(2, 1);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.row_to_vec(0), vec![2, 5]);
        assert!(c.row_to_vec(1).is_empty());
        assert_eq!(c.row_to_vec(2), vec![1]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn compact_preserves_logical_rows() {
        let mut c = AppendableCsr::new();
        c.ensure_rows(2);
        for v in [1, 4, 9] {
            c.append(0, v);
        }
        c.append(1, 3);
        c.compact();
        assert!(c.is_clean(0) && c.is_clean(1));
        assert_eq!(c.base_row(0), &[1, 4, 9]);
        assert_eq!(c.base_row(1), &[3]);
        // Appends after compaction spill again and concatenate in order.
        c.append(0, 12);
        assert!(!c.is_clean(0));
        assert_eq!(c.row_to_vec(0), vec![1, 4, 9, 12]);
        assert_eq!(c.row_iter(0).collect::<Vec<_>>(), vec![1, 4, 9, 12]);
    }

    #[test]
    fn rows_created_after_compaction_have_empty_base() {
        let mut c = AppendableCsr::new();
        c.ensure_rows(1);
        c.append(0, 7);
        c.compact();
        let r = c.push_row();
        c.append(r, 2);
        assert!(c.base_row(r).is_empty());
        assert_eq!(c.row_to_vec(r), vec![2]);
        c.compact();
        assert_eq!(c.base_row(r), &[2]);
    }

    #[test]
    fn spill_fraction_drives_maybe_compact() {
        let mut c = AppendableCsr::new();
        c.ensure_rows(1);
        for v in 0..8 {
            c.append(0, v);
        }
        c.compact();
        assert_eq!(c.spill_fraction(), 0.0);
        c.append(0, 100);
        assert!((c.spill_fraction() - 1.0 / 9.0).abs() < 1e-12);
        assert!(!c.maybe_compact(0.5), "1/9 spilled is below the threshold");
        assert!(c.maybe_compact(0.1));
        assert_eq!(c.spill_fraction(), 0.0);
        assert!(!c.maybe_compact(0.0), "nothing spilled, nothing to do");
    }

    #[test]
    #[should_panic(expected = "ascending-order invariant")]
    fn non_ascending_append_rejected() {
        let mut c = AppendableCsr::new();
        c.ensure_rows(1);
        c.append(0, 5);
        c.append(0, 5);
    }

    #[test]
    fn empty_structure_is_well_formed() {
        let c = AppendableCsr::new();
        assert_eq!(c.rows(), 0);
        assert!(c.is_empty());
        assert_eq!(c.spill_fraction(), 0.0);
    }
}
